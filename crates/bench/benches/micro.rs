//! Criterion micro-benchmarks for the substrates behind the experiments:
//! join + provenance, plan-once/execute-many re-evaluation, min-cut
//! resilience, profile combination, greedy iterations, and the
//! query-complexity analyses.
// The replan-per-call baseline deliberately measures the legacy one-shot
// entry point (the fluent v2 `Solve` adds a per-run explain pass that
// would skew the comparison against `PreparedQuery`).
#![allow(deprecated)]

use adp_core::analysis::{find_hard_structures, is_ptime};
use adp_core::solver::{compute_adp_arc, AdpOptions, CostProfile, PreparedQuery};
use adp_datagen::queries;
use adp_datagen::zipf::ZipfConfig;
use adp_engine::database::Database;
use adp_engine::join::evaluate;
use adp_engine::plan::{AliveMask, QueryPlan};
use adp_engine::provenance::ProvenanceIndex;
use adp_engine::semijoin::remove_dangling;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench_join(c: &mut Criterion) {
    let db = adp_datagen::zipf_pair(&ZipfConfig::new(10_000, 0.5, 7, true));
    let q = queries::qpath();
    c.bench_function("join_qpath_10k", |b| {
        b.iter(|| {
            let r = evaluate(black_box(&db), q.atoms(), q.head());
            black_box(r.output_count())
        })
    });
}

/// The acceptance benchmark for the plan-once/execute-many refactor:
/// re-evaluating the same query under a deletion mask with a cached
/// `QueryPlan` + `JoinIndexes` must beat the old regime of materializing
/// the masked database and evaluating from scratch (fresh plan, fresh
/// indexes) on the same workload.
fn bench_plan_reuse(c: &mut Criterion) {
    let db = adp_datagen::zipf_pair(&ZipfConfig::new(10_000, 0.5, 7, true));
    let q = queries::qpath();
    let plan = QueryPlan::new(&db, q.atoms(), q.head());
    let indexes = plan.build_indexes(&db);
    // Deletion state: every 10th tuple of every relation dead.
    let mut mask = AliveMask::all_alive(&db, q.atoms());
    for (atom, schema) in q.atoms().iter().enumerate() {
        let n = db.expect(schema.name()).len() as u32;
        for idx in (0..n).step_by(10) {
            mask.kill(atom, idx);
        }
    }
    c.bench_function("masked_reeval_cached_plan_10k", |b| {
        b.iter(|| black_box(plan.execute_masked(&db, &indexes, &mask).output_count()))
    });
    c.bench_function("masked_reeval_rebuild_per_call_10k", |b| {
        b.iter(|| {
            let mut masked_db = Database::new();
            for (atom, schema) in q.atoms().iter().enumerate() {
                let rel = db.expect(schema.name());
                let (kept, _) = rel.filter_by_index(|i| mask.is_alive(atom, i));
                masked_db.add(kept);
            }
            black_box(evaluate(&masked_db, q.atoms(), q.head()).output_count())
        })
    });
}

/// Plan reuse across a ρ-sweep: one `PreparedQuery` solved for all four
/// ratios vs a fresh `compute_adp_arc` per ratio (which replans, rebuilds
/// indexes, and re-joins every time).
fn bench_prepared_sweep(c: &mut Criterion) {
    let db = Arc::new(adp_datagen::zipf_pair(&ZipfConfig::new(
        2_000, 0.5, 11, true,
    )));
    let q = queries::qpath();
    let opts = AdpOptions {
        force_greedy: true,
        use_drastic: true,
        mode: adp_core::solver::Mode::Count,
        ..Default::default()
    };
    let total = PreparedQuery::new(q.clone(), Arc::clone(&db)).output_count();
    let ks: Vec<u64> = adp_bench::RATIOS
        .iter()
        .map(|&r| adp_bench::k_for_ratio(total, r))
        .collect();
    c.bench_function("rho_sweep_prepared_2k", |b| {
        b.iter(|| {
            let prep = PreparedQuery::new(q.clone(), Arc::clone(&db));
            let mut acc = 0;
            for &k in &ks {
                acc += prep.solve(k, &opts).unwrap().cost;
            }
            black_box(acc)
        })
    });
    c.bench_function("rho_sweep_solve_per_ratio_2k", |b| {
        b.iter(|| {
            let mut acc = 0;
            for &k in &ks {
                acc += compute_adp_arc(&q, Arc::clone(&db), k, &opts).unwrap().cost;
            }
            black_box(acc)
        })
    });
}

/// The acceptance benchmark for the `adp-runtime` subsystem: the same
/// hard-query ρ-sweep — (trial, ρ) cells over the NP-hard `Q_path`,
/// greedy reporting — run sequentially and fanned out over a 4-worker
/// pool. On a machine with ≥4 cores the parallel pair must be ≥2×
/// faster (8 cells whose cost is dominated by the two ρ=75% solves);
/// on fewer cores it degrades gracefully. Outcomes are asserted
/// byte-identical (cost, deletion set, outputs removed) before either
/// variant is timed, so the pair always also checks determinism.
fn bench_parallel_sweep(c: &mut Criterion) {
    // Two independent trials of the hard workload: more cells than a
    // single 4-ratio sweep, so 4 workers stay busy.
    let preps: Vec<PreparedQuery> = [13u64, 14]
        .into_iter()
        .map(|seed| {
            let db = Arc::new(adp_datagen::zipf_pair(&ZipfConfig::new(
                1_000, 0.5, seed, true,
            )));
            PreparedQuery::new(queries::qpath(), Arc::clone(&db))
        })
        .collect();
    // The inner solver stays sequential in *both* variants: the pair
    // isolates the sweep-level fan-out.
    let opts = AdpOptions {
        force_greedy: true,
        sequential: true,
        ..Default::default()
    };
    // (trial, k) cells, hardest ratios included.
    let cells: Vec<(usize, u64)> = preps
        .iter()
        .enumerate()
        .flat_map(|(t, prep)| {
            let total = prep.output_count();
            adp_bench::RATIOS
                .iter()
                .map(move |&r| (t, adp_bench::k_for_ratio(total, r)))
                .collect::<Vec<_>>()
        })
        .collect();
    let pool = adp_runtime::ThreadPool::new(4);

    let solve_seq = || -> Vec<_> {
        cells
            .iter()
            .map(|&(t, k)| preps[t].solve(k, &opts).unwrap())
            .collect()
    };
    let solve_par = || -> Vec<_> {
        adp_runtime::parallel_sweep(&pool, &cells, |_, &(t, k)| {
            preps[t].solve(k, &opts).unwrap()
        })
    };

    // Determinism gate: the parallel sweep must be byte-identical.
    let seq = solve_seq();
    let par = solve_par();
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.cost, p.cost, "parallel sweep changed a cost");
        assert_eq!(s.achieved, p.achieved, "parallel sweep changed coverage");
        assert_eq!(
            s.solution, p.solution,
            "parallel sweep changed a deletion set"
        );
    }

    c.bench_function("rho_sweep_hard_sequential", |b| {
        b.iter(|| black_box(solve_seq().iter().map(|o| o.cost).sum::<u64>()))
    });
    c.bench_function("rho_sweep_hard_parallel_4t", |b| {
        b.iter(|| black_box(solve_par().iter().map(|o| o.cost).sum::<u64>()))
    });
}

/// The acceptance benchmark for the incremental delta maintenance
/// layer: the same fig10-style hard workload (`Q_path` over skewed Zipf
/// data), solved by greedy at ρ=75%, once per round-strategy —
/// `greedy_rounds_masked` pays a full scoring rescan per round
/// (`full_reeval`, the pre-delta oracle), `greedy_rounds_delta` runs on
/// the incrementally maintained scores (`O(Δ)` per round). Outcomes are
/// asserted byte-identical (cost, deletion set, outputs removed)
/// **before** either variant is timed; the delta pair must be ≥5×
/// faster (measured ~14–20× at this size, growing with n).
fn bench_greedy_rounds(c: &mut Criterion) {
    let db = Arc::new(adp_datagen::zipf_pair(&ZipfConfig::new(
        4_000, 0.5, 21, true,
    )));
    let prep = PreparedQuery::new(queries::qpath(), db);
    let total = prep.output_count();
    let k = adp_bench::k_for_ratio(total, 0.75);
    // Sequential inner loops in both variants: the pair isolates the
    // per-round maintenance strategy, not the pool.
    let delta_opts = AdpOptions {
        force_greedy: true,
        sequential: true,
        ..Default::default()
    };
    let masked_opts = AdpOptions {
        full_reeval: true,
        ..delta_opts.clone()
    };

    // Determinism gate: the incremental rounds must be byte-identical.
    let d = prep.solve(k, &delta_opts).unwrap();
    let m = prep.solve(k, &masked_opts).unwrap();
    assert_eq!(d.cost, m.cost, "delta rounds changed the cost");
    assert_eq!(d.achieved, m.achieved, "delta rounds changed coverage");
    assert_eq!(
        d.solution, m.solution,
        "delta rounds changed the deletion set"
    );

    c.bench_function("greedy_rounds_masked", |b| {
        b.iter(|| black_box(prep.solve(k, &masked_opts).unwrap().cost))
    });
    c.bench_function("greedy_rounds_delta", |b| {
        b.iter(|| black_box(prep.solve(k, &delta_opts).unwrap().cost))
    });
}

fn bench_provenance(c: &mut Criterion) {
    let db = adp_datagen::zipf_pair(&ZipfConfig::new(5_000, 0.5, 7, true));
    let q = queries::qpath();
    let eval = evaluate(&db, q.atoms(), q.head());
    c.bench_function("provenance_build_5k", |b| {
        b.iter(|| black_box(ProvenanceIndex::new(&eval)))
    });
    let prov = ProvenanceIndex::new(&eval);
    c.bench_function("provenance_profits_5k", |b| {
        b.iter(|| black_box(prov.profits()))
    });
}

fn bench_semijoin(c: &mut Criterion) {
    let db = adp_datagen::zipf_pair(&ZipfConfig::new(10_000, 1.0, 3, true));
    let q = queries::qpath();
    c.bench_function("full_reducer_10k", |b| {
        b.iter(|| black_box(remove_dangling(&db, q.atoms())))
    });
}

fn bench_mincut_resilience(c: &mut Criterion) {
    // boolean chain over zipf data: exercises linearization + Dinic
    let db = Arc::new(adp_datagen::zipf_pair(&ZipfConfig::new(
        5_000, 0.5, 9, true,
    )));
    let q = adp_core::query::parse_query("Q() :- R1(A), R2(A,B), R3(B)").unwrap();
    c.bench_function("boolean_resilience_5k", |b| {
        b.iter(|| {
            let out = compute_adp_arc(&q, Arc::clone(&db), 1, &AdpOptions::counting()).unwrap();
            black_box(out.cost)
        })
    });
}

fn bench_singleton_solver(c: &mut Criterion) {
    let db = Arc::new(adp_datagen::zipf_pair(&ZipfConfig::new(
        50_000, 1.0, 5, false,
    )));
    let q = queries::q6();
    let probe = compute_adp_arc(&q, Arc::clone(&db), 1, &AdpOptions::counting()).unwrap();
    let k = probe.output_count / 2;
    c.bench_function("singleton_q6_50k_half", |b| {
        b.iter(|| {
            let out = compute_adp_arc(&q, Arc::clone(&db), k, &AdpOptions::counting()).unwrap();
            black_box(out.cost)
        })
    });
}

fn bench_profile_ops(c: &mut Criterion) {
    let pairs: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i, i * 3 + (i % 7))).collect();
    c.bench_function("profile_from_pairs_10k", |b| {
        b.iter(|| black_box(CostProfile::from_pairs(pairs.iter().copied())))
    });
    let p = CostProfile::from_pairs(pairs.iter().copied());
    c.bench_function("profile_min_cost_queries", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for m in (0..30_000).step_by(37) {
                acc = acc.wrapping_add(p.min_cost(m).unwrap_or(0));
            }
            black_box(acc)
        })
    });
}

fn bench_analysis(c: &mut Criterion) {
    let catalogue: Vec<adp_core::query::Query> = [
        "Q(A,B) :- R1(A), R2(A,B), R3(B)",
        "Q(A,F,G,H) :- R1(A,B), R2(F,G), R3(B,C), R4(C), R5(G,H)",
        "Q(A,B,C,E,F,H) :- R1(A,B,C), R2(A,B,F), R3(A,E), R4(A,E,H)",
        "Q(E,F,G) :- R1(A,B,E), R2(B,C,F), R3(C,A,G)",
    ]
    .iter()
    .map(|t| adp_core::query::parse_query(t).unwrap())
    .collect();
    c.bench_function("is_ptime_catalogue", |b| {
        b.iter(|| {
            for q in &catalogue {
                black_box(is_ptime(q));
            }
        })
    });
    c.bench_function("hard_structures_catalogue", |b| {
        b.iter(|| {
            for q in &catalogue {
                black_box(find_hard_structures(q));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_join,
    bench_plan_reuse,
    bench_prepared_sweep,
    bench_parallel_sweep,
    bench_greedy_rounds,
    bench_provenance,
    bench_semijoin,
    bench_mincut_resilience,
    bench_singleton_solver,
    bench_profile_ops,
    bench_analysis
);
criterion_main!(benches);
