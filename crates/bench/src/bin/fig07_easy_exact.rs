//! Regenerates the paper figures behind `fig07` (see adp-bench::experiments).
//! Pass `--quick` for CI-sized inputs, `--threads N` to size the worker
//! pool, and `--seed S` to re-roll the workload data.

fn main() {
    adp_bench::cli::init();
    adp_bench::experiments::fig07();
}
