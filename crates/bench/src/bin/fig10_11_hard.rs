//! Regenerates the paper figures behind `fig10_11` (see adp-bench::experiments).
//! Pass `--quick` for CI-sized inputs.

fn main() {
    adp_bench::cli::init();
    adp_bench::experiments::fig10_11();
}
