//! Regenerates the paper figures behind `fig14_15` (see adp-bench::experiments).
//! Pass `--quick` for CI-sized inputs.

fn main() {
    adp_bench::cli::init();
    adp_bench::experiments::fig14_15();
}
