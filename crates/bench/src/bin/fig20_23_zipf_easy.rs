//! Regenerates the paper figures behind `fig_zipf_easy` (see adp-bench::experiments).
//! Pass `--quick` for CI-sized inputs.

fn main() {
    adp_bench::cli::init();
    adp_bench::experiments::fig_zipf_easy();
}
