//! Regenerates the paper figures behind `fig29` (see adp-bench::experiments).
//! Pass `--quick` for CI-sized inputs.

fn main() {
    adp_bench::cli::init();
    adp_bench::experiments::fig29();
}
