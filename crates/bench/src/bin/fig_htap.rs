//! The HTAP acceptance harness for the copy-on-write snapshot layer:
//! O(batch) epoch installs vs O(n) rebuilds across a 10× size step,
//! then a concurrent solver/mutator/subscriber storm with every answer
//! re-solved against the exact epoch snapshot it came from. Writes
//! `BENCH_htap.json`. Pass `--quick` for CI sizes.

fn main() {
    adp_bench::cli::init();
    adp_bench::experiments::fig_htap();
    adp_bench::checks::finish();
}
