//! Open-loop serving harness: Poisson arrivals over the real TCP wire
//! path, sweeping offered load around the measured saturation point and
//! reporting p50/p95/p99 vs an SLO, shed rate, and goodput. Writes
//! `BENCH_open_loop.json`. Pass `--quick` for CI sizes.

fn main() {
    adp_bench::cli::init();
    adp_bench::experiments::fig_open_loop();
    adp_bench::checks::finish();
}
