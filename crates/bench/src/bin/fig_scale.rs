//! Paper-scale figure: columnar storage footprint and partition-parallel
//! join scaling up to 3M input tuples (see adp-bench::experiments).
//! Sweeps local worker pools independently of `--threads` (which caps
//! the sweep), checks parallel results byte-for-byte against the
//! single-worker baseline, and writes `BENCH_scale.json` alongside the
//! CSV lines. Pass `--quick` for CI-sized inputs. Exits non-zero on any
//! divergence.

fn main() {
    adp_bench::cli::init();
    adp_bench::experiments::fig_scale();
    adp_bench::checks::finish();
}
