//! Serving-layer figure: closed-loop load against `adp-service` (shared
//! plan cache) vs cold plan-per-request, over client thread counts (see
//! adp-bench::experiments::fig_serve). Pass `--quick` for CI-sized
//! inputs, `--threads N` to size the solver worker pool, and `--seed S`
//! to re-roll the workload data. Exits non-zero if any served response
//! diverges from the direct sequential solve.

fn main() {
    adp_bench::cli::init();
    adp_bench::experiments::fig_serve();
    adp_bench::checks::finish();
}
