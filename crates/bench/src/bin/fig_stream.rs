//! Streaming-deletion figure: incremental delta maintenance vs masked
//! full re-evaluation per batch (see adp-bench::experiments). Pass
//! `--quick` for CI-sized inputs, `--threads N` to size the worker
//! pool, and `--seed S` to re-roll the workload data. Exits non-zero if
//! the maintained state ever diverges from the masked oracle.

fn main() {
    adp_bench::cli::init();
    adp_bench::experiments::fig_stream();
    adp_bench::checks::finish();
}
