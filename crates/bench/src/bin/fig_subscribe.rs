//! Subscription figure: push-based incremental view maintenance vs pull
//! re-solving at fan-outs 1/8/64 (see adp-bench::experiments::
//! fig_subscribe). Pass `--quick` for CI-sized inputs, `--threads N` to
//! size the solver worker pool, and `--seed S` to re-roll the workload
//! data. Every pushed diff is equality-checked against a fresh solve;
//! exits non-zero on any divergence or a missed speedup floor. Writes
//! `BENCH_subscribe.json`.

fn main() {
    adp_bench::cli::init();
    adp_bench::experiments::fig_subscribe();
    adp_bench::checks::finish();
}
