//! Runs every experiment (Figures 7-29). Pass `--quick` for CI sizes,
//! `--threads N` to size the worker pool, `--seed S` to re-roll data.

fn main() {
    adp_bench::cli::init();
    use adp_bench::experiments as e;
    e::fig07();
    e::fig08_09();
    e::fig10_11();
    e::fig12_13();
    e::fig14_15();
    e::fig_zipf_hard();
    e::fig_zipf_easy();
    e::fig_stream();
    e::fig28();
    e::fig29();
}
