//! Runs every experiment (Figures 7-29 plus the streaming and serving
//! figures). Pass `--quick` for CI sizes, `--threads N` to size the
//! worker pool, `--seed S` to re-roll data.
//!
//! Each figure runs guarded: a panic (or a failed internal equality
//! check) is recorded, the remaining figures still run, and the process
//! exits non-zero at the end — so CI smoke jobs fail on divergence
//! without losing the other figures' output.

fn main() {
    adp_bench::cli::init();
    use adp_bench::checks::{finish, run_guarded};
    use adp_bench::experiments as e;
    run_guarded("fig07", e::fig07);
    run_guarded("fig08_09", e::fig08_09);
    run_guarded("fig10_11", e::fig10_11);
    run_guarded("fig12_13", e::fig12_13);
    run_guarded("fig14_15", e::fig14_15);
    run_guarded("fig_zipf_hard", e::fig_zipf_hard);
    run_guarded("fig_zipf_easy", e::fig_zipf_easy);
    run_guarded("fig_stream", e::fig_stream);
    run_guarded("fig_serve", e::fig_serve);
    run_guarded("fig_subscribe", e::fig_subscribe);
    run_guarded("fig_htap", e::fig_htap);
    run_guarded("fig_open_loop", e::fig_open_loop);
    run_guarded("fig_scale", e::fig_scale);
    run_guarded("fig28", e::fig28);
    run_guarded("fig29", e::fig29);
    finish();
}
