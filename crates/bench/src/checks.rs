//! Soft internal checks for the figure binaries.
//!
//! The harness asserts equalities while it measures (delta state vs the
//! masked oracle in `fig_stream`, served responses vs direct solves in
//! `fig_serve`, variant agreement in the ablations). A hard `assert!`
//! aborts the run at the first divergence and hides every later data
//! point; a `println!` lets CI smoke jobs "pass" while printing
//! garbage. These helpers take the third road: record the failure,
//! keep producing the figure, and make the **process exit non-zero** at
//! the end ([`finish`]), so CI catches divergence without losing the
//! diagnostic output.
//!
//! Every figure binary ends its `main` with [`finish`]; the
//! `figures` umbrella additionally catches per-figure panics so one
//! broken figure cannot mask the others (the run still exits 1).

use std::sync::atomic::{AtomicU64, Ordering};

static FAILURES: AtomicU64 = AtomicU64::new(0);

/// Records one internal check failure and prints it to stderr.
pub fn record_failure(msg: &str) {
    FAILURES.fetch_add(1, Ordering::Relaxed);
    eprintln!("CHECK FAILED: {msg}");
}

/// Soft assertion: on failure, records and reports but does not abort.
/// Returns the condition so callers can branch.
pub fn check(cond: bool, msg: impl FnOnce() -> String) -> bool {
    if !cond {
        record_failure(&msg());
    }
    cond
}

/// Soft equality assertion with `Debug` output for both sides.
pub fn check_eq<T: PartialEq + std::fmt::Debug>(
    left: &T,
    right: &T,
    ctx: impl FnOnce() -> String,
) -> bool {
    check(left == right, || {
        format!("{}: left = {left:?}, right = {right:?}", ctx())
    })
}

/// Number of failures recorded so far in this process.
pub fn failures() -> u64 {
    FAILURES.load(Ordering::Relaxed)
}

/// Terminates the process with exit code 1 if any internal check
/// failed; otherwise returns normally. Call at the end of every figure
/// binary's `main`.
pub fn finish() {
    let n = failures();
    if n > 0 {
        eprintln!("error: {n} internal check(s) failed; see CHECK FAILED lines above");
        std::process::exit(1);
    }
}

/// Runs `f`, converting a panic into a recorded failure instead of
/// aborting the process — used by the `figures` umbrella binary so one
/// broken figure cannot mask the rest (the process still exits 1 via
/// [`finish`]).
pub fn run_guarded(name: &str, f: impl FnOnce() + std::panic::UnwindSafe) {
    if let Err(payload) = std::panic::catch_unwind(f) {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("non-string panic payload");
        record_failure(&format!("{name} panicked: {msg}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The counter is process-global, so this single test exercises the
    /// whole lifecycle (parallel tests would race the tallies).
    #[test]
    fn checks_record_and_tally() {
        let before = failures();
        assert!(check(true, || unreachable!("not evaluated on success")));
        assert!(check_eq(&1u64, &1u64, || unreachable!()));
        assert_eq!(failures(), before);
        assert!(!check(false, || "expected failure (test)".into()));
        assert!(!check_eq(&1u64, &2u64, || "expected diff (test)".into()));
        assert_eq!(failures(), before + 2);
        run_guarded("guarded (test)", || panic!("expected panic (test)"));
        assert_eq!(failures(), before + 3);
        // finish() would exit(1) here; that path is exercised by the CI
        // smoke jobs which require exit code 0 of healthy runs.
    }
}
