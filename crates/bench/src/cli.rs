//! Shared command-line handling for every bench binary.
//!
//! All figure binaries accept the same flags, parsed by [`init`] and
//! consumed by the harness (`quick_mode`, `size_ladder`, the sweep
//! helpers):
//!
//! * `--quick` — CI-sized inputs (also enabled by `ADP_BENCH_QUICK=1`),
//! * `--threads N` — worker count for the global [`adp_runtime`] pool
//!   (default: the machine's available parallelism, or `ADP_THREADS`),
//! * `--seed S` — override the workload RNG seeds, so parallel and
//!   sequential runs are reproducibly comparable on the same data,
//! * `--help` / `-h` — usage.
//!
//! Unknown flags are rejected with exit code 2 instead of being silently
//! ignored, so a typo like `--qick` cannot run a multi-minute full-size
//! sweep by accident.

use std::sync::OnceLock;

/// Parsed command-line arguments shared by all figure binaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// Run CI-sized inputs.
    pub quick: bool,
    /// Worker count for the global runtime pool (`None` = default).
    pub threads: Option<usize>,
    /// Workload seed override (`None` = per-figure defaults).
    pub seed: Option<u64>,
    /// Print usage and exit.
    pub help: bool,
}

static ARGS: OnceLock<BenchArgs> = OnceLock::new();

/// Parses an argument list (without the program name). Returns an error
/// message for unknown arguments or malformed flag values.
pub fn parse<I, S>(argv: I) -> Result<BenchArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut args = BenchArgs::default();
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_ref() {
            "--quick" => args.quick = true,
            "--help" | "-h" => args.help = true,
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--threads requires a value".to_owned())?;
                // Same strict parser as ADP_THREADS, so flag and env can
                // never accept different syntaxes.
                let n = adp_runtime::parse_thread_count(v.as_ref())
                    .map_err(|e| format!("invalid --threads: {e}"))?;
                args.threads = Some(n);
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--seed requires a value".to_owned())?;
                let s: u64 = v
                    .as_ref()
                    .parse()
                    .map_err(|_| format!("--seed expects a u64, got {}", v.as_ref()))?;
                args.seed = Some(s);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Parses the process arguments, honors `ADP_BENCH_QUICK`, sizes the
/// global runtime pool, and stores the result for [`args`]. Call once
/// at the top of every bench `main`. Prints usage and exits on
/// `--help` or unknown flags.
pub fn init() -> BenchArgs {
    let mut parsed = match parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    if parsed.help {
        println!("{}", usage());
        std::process::exit(0);
    }
    if std::env::var("ADP_BENCH_QUICK").is_ok() {
        parsed.quick = true;
    }
    // Size the pool before anything touches it. Precedence: `--threads`
    // flag > `ADP_THREADS` > available parallelism — and an *invalid*
    // ADP_THREADS is always an error, never a silent fallback (even when
    // the flag would win, so typos cannot hide).
    let threads = match resolve_threads(parsed.threads, adp_runtime::env_threads()) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    if let Err(e) = adp_runtime::configure_global(threads) {
        eprintln!("warning: {e}; continuing with the existing pool");
    }
    let _ = ARGS.set(parsed);
    parsed
}

/// Resolves the worker count from the `--threads` flag and the
/// (pre-validated) `ADP_THREADS` environment value. The flag wins over
/// the variable; the variable wins over auto-detection; a malformed
/// variable is an error regardless of the flag.
fn resolve_threads(
    flag: Option<usize>,
    env: Result<Option<usize>, String>,
) -> Result<usize, String> {
    let env = env?;
    Ok(flag.or(env).unwrap_or_else(adp_runtime::auto_threads))
}

/// The arguments stored by [`init`], or the environment-variable
/// fallback when no binary entry point ran (library/test callers).
pub fn args() -> BenchArgs {
    ARGS.get().copied().unwrap_or_else(|| BenchArgs {
        quick: std::env::var("ADP_BENCH_QUICK").is_ok(),
        threads: None,
        seed: None,
        help: false,
    })
}

fn usage() -> String {
    let exe = std::env::args()
        .next()
        .unwrap_or_else(|| "figure-binary".into());
    format!(
        "usage: {exe} [--quick] [--threads N] [--seed S]\n\n\
         Regenerates paper figures as text tables + `csv,` lines.\n\n\
         options:\n  \
         --quick      CI-sized inputs (also: ADP_BENCH_QUICK=1)\n  \
         --threads N  worker threads for ρ-sweeps and the parallel\n               \
         solvers; overrides ADP_THREADS (default: ADP_THREADS,\n               \
         then available cores); 0 and non-numbers are rejected\n  \
         --seed S     override workload RNG seeds (u64); combined with\n               \
         each figure's default so figures still differ\n  \
         -h, --help   this message"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_flags() {
        assert_eq!(
            parse(["--quick"]).unwrap(),
            BenchArgs {
                quick: true,
                ..Default::default()
            }
        );
        assert_eq!(
            parse(["-h"]).unwrap(),
            BenchArgs {
                help: true,
                ..Default::default()
            }
        );
        assert_eq!(
            parse(["--quick", "--help"]).unwrap(),
            BenchArgs {
                quick: true,
                help: true,
                ..Default::default()
            }
        );
        assert_eq!(parse(Vec::<String>::new()).unwrap(), BenchArgs::default());
    }

    #[test]
    fn parses_threads_and_seed() {
        assert_eq!(
            parse(["--threads", "4", "--seed", "99"]).unwrap(),
            BenchArgs {
                threads: Some(4),
                seed: Some(99),
                ..Default::default()
            }
        );
        assert_eq!(
            parse(["--seed", "18446744073709551615"]).unwrap().seed,
            Some(u64::MAX)
        );
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = parse(["--qick"]).unwrap_err();
        assert!(err.contains("--qick"));
    }

    #[test]
    fn rejects_malformed_values() {
        assert!(parse(["--threads"]).unwrap_err().contains("value"));
        assert!(parse(["--threads", "zero"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(["--threads", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(["--threads", "-1"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(["--seed"]).unwrap_err().contains("value"));
        assert!(parse(["--seed", "-3"]).unwrap_err().contains("u64"));
    }

    /// Regression: the flag and `ADP_THREADS` used to disagree — the
    /// flag rejected bad values while the env var silently fell back to
    /// auto-detection. Both now share one strict parser, with the
    /// documented precedence flag > env > auto.
    #[test]
    fn thread_resolution_precedence_and_strictness() {
        // flag wins over a valid env var
        assert_eq!(resolve_threads(Some(3), Ok(Some(8))), Ok(3));
        // env var wins over auto-detection
        assert_eq!(resolve_threads(None, Ok(Some(8))), Ok(8));
        // neither set: auto-detection, always positive
        assert!(resolve_threads(None, Ok(None)).unwrap() >= 1);
        // invalid env var errors even when the flag would win
        let err = resolve_threads(Some(3), Err("invalid ADP_THREADS: …".into())).unwrap_err();
        assert!(err.contains("ADP_THREADS"));
        // the env validation itself is adp_runtime's strict parser
        assert!(adp_runtime::parse_thread_count("0").is_err());
        assert!(adp_runtime::parse_thread_count("four").is_err());
        assert_eq!(adp_runtime::parse_thread_count("6"), Ok(6));
    }
}
