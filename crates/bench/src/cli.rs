//! Shared command-line handling for every bench binary.
//!
//! All figure binaries accept the same flags, parsed by [`init`] and
//! consumed by the harness (`quick_mode`, `size_ladder`):
//!
//! * `--quick` — CI-sized inputs (also enabled by `ADP_BENCH_QUICK=1`),
//! * `--help` / `-h` — usage.
//!
//! Unknown flags are rejected with exit code 2 instead of being silently
//! ignored, so a typo like `--qick` cannot run a multi-minute full-size
//! sweep by accident.

use std::sync::OnceLock;

/// Parsed command-line arguments shared by all figure binaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// Run CI-sized inputs.
    pub quick: bool,
    /// Print usage and exit.
    pub help: bool,
}

static ARGS: OnceLock<BenchArgs> = OnceLock::new();

/// Parses an argument list (without the program name). Returns an error
/// message for unknown arguments.
pub fn parse<I, S>(argv: I) -> Result<BenchArgs, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut args = BenchArgs::default();
    for a in argv {
        match a.as_ref() {
            "--quick" => args.quick = true,
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Parses the process arguments, honors `ADP_BENCH_QUICK`, and stores
/// the result for [`args`]. Call once at the top of every bench `main`.
/// Prints usage and exits on `--help` or unknown flags.
pub fn init() -> BenchArgs {
    let mut parsed = match parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    };
    if parsed.help {
        println!("{}", usage());
        std::process::exit(0);
    }
    if std::env::var("ADP_BENCH_QUICK").is_ok() {
        parsed.quick = true;
    }
    let _ = ARGS.set(parsed);
    parsed
}

/// The arguments stored by [`init`], or the environment-variable
/// fallback when no binary entry point ran (library/test callers).
pub fn args() -> BenchArgs {
    ARGS.get().copied().unwrap_or_else(|| BenchArgs {
        quick: std::env::var("ADP_BENCH_QUICK").is_ok(),
        help: false,
    })
}

fn usage() -> String {
    let exe = std::env::args()
        .next()
        .unwrap_or_else(|| "figure-binary".into());
    format!(
        "usage: {exe} [--quick]\n\n\
         Regenerates paper figures as text tables + `csv,` lines.\n\n\
         options:\n  \
         --quick     CI-sized inputs (also: ADP_BENCH_QUICK=1)\n  \
         -h, --help  this message"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_flags() {
        assert_eq!(
            parse(["--quick"]).unwrap(),
            BenchArgs {
                quick: true,
                help: false
            }
        );
        assert_eq!(
            parse(["-h"]).unwrap(),
            BenchArgs {
                quick: false,
                help: true
            }
        );
        assert_eq!(
            parse(["--quick", "--help"]).unwrap(),
            BenchArgs {
                quick: true,
                help: true
            }
        );
        assert_eq!(parse(Vec::<String>::new()).unwrap(), BenchArgs::default());
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = parse(["--qick"]).unwrap_err();
        assert!(err.contains("--qick"));
    }
}
