//! The paper's experiments (§8), one function per figure group.
//!
//! Every function prints a [`Figure`] table plus CSV lines; binaries in
//! `src/bin/` are thin wrappers so `--bin figures` can run everything.

use crate::{
    k_for_ratio, prepare, quick_mode, size_ladder, sweep_solve, timed_solve, workload_seed, Figure,
    SweepCell, RATIOS,
};
use adp_core::selection::{solve_selection, SelectionQuery};
use adp_core::solver::brute::BruteForceOptions;
use adp_core::solver::{AdpOptions, DecomposeStrategy, Mode, UniverseStrategy};
use adp_datagen::ego::{ego_database_for, ego_network, EgoConfig};
use adp_datagen::queries;
use adp_datagen::zipf::ZipfConfig;
use adp_engine::schema::attr;
use std::time::Instant;

fn greedy_opts() -> AdpOptions {
    AdpOptions {
        force_greedy: true,
        ..Default::default()
    }
}

fn drastic_opts() -> AdpOptions {
    AdpOptions {
        force_greedy: true,
        use_drastic: true,
        ..Default::default()
    }
}

/// Figure 7: exact counting vs reporting on σθQ1 over input size and ρ.
pub fn fig07() {
    let sizes = size_ladder(&[1_000, 10_000, 100_000, 300_000], &[1_000, 10_000]);
    let mut fig = Figure::new("fig07", "exact count/report on σθQ1 (easy) vs input size");
    for &n in &sizes {
        let db = adp_datagen::tpch::tpch_selected(n, workload_seed(0xF16));
        let sq = SelectionQuery::new(queries::q1(), vec![(attr("PK"), 0)]).unwrap();
        let probe = solve_selection(&sq, &db, 1, &AdpOptions::counting()).unwrap();
        let total = probe.output_count;
        for rho in RATIOS {
            let k = k_for_ratio(total, rho);
            for (mode, label) in [(Mode::Count, "Counting"), (Mode::Report, "Reporting")] {
                let opts = AdpOptions {
                    mode,
                    ..Default::default()
                };
                let start = Instant::now();
                let out = solve_selection(&sq, &db, k, &opts).unwrap();
                let ms = start.elapsed().as_secs_f64() * 1e3;
                assert!(out.exact, "σθQ1 is poly-time");
                fig.push(
                    &format!("{label}, rho={:.0}%", rho * 100.0),
                    n as f64,
                    ms,
                    out.cost,
                );
            }
        }
    }
    fig.finish();
}

/// Figures 8 + 9: heuristics (Greedy / Drastic) vs Exact on σθQ1 —
/// running time and quality (tuples removed).
pub fn fig08_09() {
    // Greedy materializes the cross-product join, so its ladder is short
    // (the paper reaches the same conclusion at larger SQL-backed sizes).
    let sizes = size_ladder(&[1_000, 3_000, 6_000], &[600, 1_000]);
    let mut f8 = Figure::new("fig08", "heuristics vs exact on σθQ1: reporting time");
    let mut f9 = Figure::new("fig09", "heuristics vs exact on σθQ1: quality");
    for &n in &sizes {
        let db = adp_datagen::tpch::tpch_selected(n, workload_seed(0xF89));
        let sq = SelectionQuery::new(queries::q1(), vec![(attr("PK"), 0)]).unwrap();
        let probe = solve_selection(&sq, &db, 1, &AdpOptions::counting()).unwrap();
        let total = probe.output_count;
        // cap greedy's ratios on larger inputs: its per-iteration rescan
        // over all witnesses makes ρ=75% prohibitive exactly as in the
        // paper's Figure 8 (where Greedy stops at 100k).
        for rho in RATIOS {
            let k = k_for_ratio(total, rho);
            for (label, opts) in [
                ("Exact", AdpOptions::default()),
                ("Greedy", greedy_opts()),
                ("Drastic", drastic_opts()),
            ] {
                if label == "Greedy" && (n > 3_000 || (n > 1_000 && rho > 0.5)) {
                    continue; // Greedy does not scale there (paper, §8.2)
                }
                let start = Instant::now();
                let out = solve_selection(&sq, &db, k, &opts).unwrap();
                let ms = start.elapsed().as_secs_f64() * 1e3;
                let series = format!("{label}, rho={:.0}%", rho * 100.0);
                f8.push(&series, n as f64, ms, u64::MAX);
                f9.push(&series, n as f64, ms, out.cost);
            }
        }
    }
    f8.finish();
    f9.finish();
}

/// Figures 10 + 11: the NP-hard Q1 — Greedy vs Drastic, time and quality.
///
/// The (ρ, heuristic) cells of each workload are independent, so they
/// fan out across the global runtime pool (`--threads`); results and
/// point order are identical to the sequential loop.
pub fn fig10_11() {
    let sizes = size_ladder(&[1_000, 10_000, 100_000], &[1_000, 5_000]);
    let mut f10 = Figure::new("fig10", "heuristics on Q1 (hard): reporting time");
    let mut f11 = Figure::new("fig11", "heuristics on Q1 (hard): quality");
    let q = queries::q1();
    for &n in &sizes {
        let cfg = adp_datagen::tpch::TpchConfig::scaled(n, workload_seed(0xAB));
        // One prepared query per workload: every ρ (and both heuristics)
        // reuses the same plan, indexes, and root evaluation.
        let prep = prepare(&q, adp_datagen::tpch_chain(&cfg));
        let total = prep.output_count();
        let mut cells = Vec::new();
        for rho in RATIOS {
            let k = k_for_ratio(total, rho);
            for (label, opts) in [("Greedy", greedy_opts()), ("Drastic", drastic_opts())] {
                if label == "Greedy" && n > 10_000 {
                    continue; // paper: Greedy is not scalable past ~100k
                }
                cells.push(SweepCell::new(
                    format!("{label}, rho={:.0}%", rho * 100.0),
                    k,
                    opts,
                ));
            }
        }
        for (cell, (ms, out)) in cells.iter().zip(sweep_solve(&prep, &cells)) {
            f10.push(&cell.series, n as f64, ms, u64::MAX);
            f11.push(&cell.series, n as f64, ms, out.cost);
        }
    }
    f10.finish();
    f11.finish();
}

/// Figures 12 + 13: BruteForce vs heuristics on small hard Q1 instances.
pub fn fig12_13() {
    let sizes = size_ladder(&[100, 200, 300, 400, 500], &[100, 200]);
    let mut f12 = Figure::new("fig12", "BruteForce vs heuristics on Q1: time");
    let mut f13 = Figure::new("fig13", "BruteForce vs heuristics on Q1: quality");
    let q = queries::q1();
    for &n in &sizes {
        let cfg = adp_datagen::tpch::TpchConfig::scaled(n, workload_seed(0xBF));
        let prep = prepare(&q, adp_datagen::tpch_chain(&cfg));
        let k = k_for_ratio(prep.output_count(), 0.10);
        for (label, opts) in [("Greedy", greedy_opts()), ("Drastic", drastic_opts())] {
            let (ms, out) = timed_solve(&prep, k, &opts);
            f12.push(label, n as f64, ms, u64::MAX);
            f13.push(label, n as f64, ms, out.cost);
        }
        // Timed with the legacy entry point on purpose: the fluent
        // brute path additionally verifies `achieved` via the cached
        // provenance postings, which would skew this series against the
        // paper baseline (same rationale as benches/micro.rs).
        let start = Instant::now();
        #[allow(deprecated)]
        match adp_core::solver::brute::brute_force_prepared(&prep, k, &BruteForceOptions::default())
        {
            Ok((cost, _)) => {
                let ms = start.elapsed().as_secs_f64() * 1e3;
                f12.push("BruteForce", n as f64, ms, u64::MAX);
                f13.push("BruteForce", n as f64, ms, cost);
            }
            Err(e) => {
                // The paper's BruteForce also "did not stop in several
                // hours" beyond small sizes — report the DNF honestly.
                println!("  BruteForce did not finish at x={n}: {e}");
            }
        }
    }
    f12.finish();
    f13.finish();
}

/// Figures 14 + 15: Q2..Q5 on the ego-network, sweeping ρ.
pub fn fig14_15() {
    let cfg = if quick_mode() {
        EgoConfig {
            nodes: 40,
            circles: 4,
            edges: 140,
            intra_share: 0.85,
            seed: workload_seed(414),
        }
    } else {
        EgoConfig {
            nodes: 100,
            circles: 7,
            edges: 700,
            intra_share: 0.85,
            seed: workload_seed(414),
        }
    };
    let (_, edges) = ego_network(&cfg);
    let mut f14 = Figure::new("fig14", "Q2..Q5 on the ego-network: time vs ρ");
    let mut f15 = Figure::new("fig15", "Q2..Q5 on the ego-network: quality vs ρ");
    let named = [
        ("Q2", queries::q2()),
        ("Q3", queries::q3()),
        ("Q4", queries::q4()),
        ("Q5", queries::q5()),
    ];
    for (name, q) in named {
        let prep = prepare(&q, ego_database_for(&edges, q.atoms()));
        let total = prep.output_count();
        if total == 0 {
            continue; // e.g. no triangles in a sparse quick graph
        }
        for rho in RATIOS {
            let k = k_for_ratio(total, rho);
            let (ms, out) = timed_solve(&prep, k, &greedy_opts());
            f14.push(&format!("Greedy, {name}"), rho, ms, u64::MAX);
            f15.push(&format!("Greedy, {name}"), rho, ms, out.cost);
            // Drastic applies to the full CQs Q2, Q3 only (paper §8.3).
            if q.is_full() {
                let (ms, out) = timed_solve(&prep, k, &drastic_opts());
                f14.push(&format!("Drastic, {name}"), rho, ms, u64::MAX);
                f15.push(&format!("Drastic, {name}"), rho, ms, out.cost);
            }
        }
    }
    f14.finish();
    f15.finish();
}

/// Figures 16–19 and 24–27: the NP-hard `Q_path` over Zipf(α) data.
pub fn fig_zipf_hard() {
    let alphas = [0.0, 0.25, 0.5, 1.0];
    let sizes = size_ladder(&[1_000, 10_000, 100_000], &[1_000, 4_000]);
    for alpha in alphas {
        let figure_no = match alpha {
            0.0 => "fig16-17",
            0.25 => "fig24-25",
            0.5 => "fig26-27",
            _ => "fig18-19",
        };
        let mut fig = Figure::new(
            figure_no,
            &format!("Q_path (hard) on Zipf α={alpha}: time+quality"),
        );
        for &n in &sizes {
            let q = queries::qpath();
            let prep = prepare(
                &q,
                adp_datagen::zipf_pair(&ZipfConfig::new(n, alpha, workload_seed(0x21F), true)),
            );
            let total = prep.output_count();
            // Independent (ρ, heuristic) cells: fan out across workers.
            let mut cells = Vec::new();
            for rho in RATIOS {
                let k = k_for_ratio(total, rho);
                for (label, opts) in [("Greedy", greedy_opts()), ("Drastic", drastic_opts())] {
                    if label == "Greedy" && n > 10_000 {
                        continue;
                    }
                    cells.push(SweepCell::new(
                        format!("{label}, rho={:.0}%", rho * 100.0),
                        k,
                        opts,
                    ));
                }
            }
            for (cell, (ms, out)) in cells.iter().zip(sweep_solve(&prep, &cells)) {
                fig.push(&cell.series, n as f64, ms, out.cost);
            }
        }
        fig.finish();
    }
}

/// Figures 20–23: the poly-time singleton `Q6` over Zipf(α) data, exact.
pub fn fig_zipf_easy() {
    let alphas = [0.0, 1.0];
    let sizes = size_ladder(&[1_000, 10_000, 100_000, 1_000_000], &[1_000, 10_000]);
    for alpha in alphas {
        let figure_no = if alpha == 0.0 { "fig20-21" } else { "fig22-23" };
        let mut fig = Figure::new(
            figure_no,
            &format!("Q6 (easy) on Zipf α={alpha}: exact time+quality"),
        );
        for &n in &sizes {
            let q = queries::q6();
            let prep = prepare(
                &q,
                adp_datagen::zipf_pair(&ZipfConfig::new(n, alpha, workload_seed(0x21E), false)),
            );
            let total = prep.output_count();
            for rho in RATIOS {
                let k = k_for_ratio(total, rho);
                let (ms, out) = timed_solve(&prep, k, &AdpOptions::default());
                assert!(out.exact);
                fig.push(
                    &format!("Exact, rho={:.0}%", rho * 100.0),
                    n as f64,
                    ms,
                    out.cost,
                );
            }
        }
        fig.finish();
    }
}

/// Figure 28: singleton-query optimizations on Q7 — universal attributes
/// removed one-by-one vs as a whole vs the sort-based Singleton routine.
pub fn fig28() {
    let mut fig = Figure::new(
        "fig28",
        "Q7 singleton ablation (universal-attribute handling)",
    );
    let q = queries::q7();
    let per_rel = if quick_mode() { 200 } else { 500 };
    let prep = prepare(
        &q,
        adp_datagen::uniform::correlated_q7(&q, per_rel, 60, 100, workload_seed(0x728)),
    );
    let total = prep.output_count();
    for rho in [0.5, 0.75] {
        let k = k_for_ratio(total, rho);
        let variants: [(&str, AdpOptions); 3] = [
            (
                "Remove one by one",
                AdpOptions {
                    skip_singleton: true,
                    universe: UniverseStrategy::OneByOne,
                    ..Default::default()
                },
            ),
            (
                "Remove as whole",
                AdpOptions {
                    skip_singleton: true,
                    universe: UniverseStrategy::Combined,
                    ..Default::default()
                },
            ),
            ("Improved algorithm", AdpOptions::default()),
        ];
        let mut costs = Vec::new();
        for (label, opts) in variants {
            let (ms, out) = timed_solve(&prep, k, &opts);
            assert!(out.exact);
            costs.push(out.cost);
            fig.push(
                &format!("{label}, rho={:.0}%", rho * 100.0),
                rho,
                ms,
                out.cost,
            );
        }
        assert!(
            costs.windows(2).all(|w| w[0] == w[1]),
            "all Q7 variants must agree: {costs:?}"
        );
    }
    fig.finish();
}

/// Figure 29: decomposition optimizations on Q8 — full partitions vs two
/// partitions at a time vs the improved DP.
pub fn fig29() {
    let mut fig = Figure::new("fig29", "Q8 decompose ablation (component combination)");
    let q = queries::q8();
    let (small, large) = if quick_mode() { (15, 30) } else { (25, 50) };
    let sizes = vec![small, large, small, large, small, large];
    let prep = prepare(
        &q,
        adp_datagen::uniform::uniform_db_for_query(&q, &sizes, 100, workload_seed(0x829)),
    );
    let total = prep.output_count();
    for rho in [0.01, 0.10] {
        let k = k_for_ratio(total, rho);
        let variants: [(&str, DecomposeStrategy); 3] = [
            ("Full partitions", DecomposeStrategy::NaiveFull),
            ("Two partitions", DecomposeStrategy::NaivePairs),
            ("Improved DP", DecomposeStrategy::ImprovedDp),
        ];
        let mut costs = Vec::new();
        for (label, strat) in variants {
            let opts = AdpOptions {
                decompose: strat,
                ..Default::default()
            };
            let (ms, out) = timed_solve(&prep, k, &opts);
            assert!(out.exact);
            costs.push(out.cost);
            fig.push(
                &format!("{label}, rho={:.0}%", rho * 100.0),
                rho,
                ms,
                out.cost,
            );
        }
        assert!(
            costs.windows(2).all(|w| w[0] == w[1]),
            "all Q8 variants must agree: {costs:?}"
        );
    }
    fig.finish();
}

/// `fig_stream`: the streaming-deletion workload the delta layer opens
/// up. A `Q_path` instance over skewed Zipf data receives a stream of
/// deletion batches (with periodic re-insertion batches, as a serving
/// layer undoing speculative deletions would); after every batch the
/// maintained `|Q(D − S)|` is **asserted equal** to a masked full
/// re-evaluation of the cached plan, and both maintenance strategies
/// are timed. The delta series does `O(Δ)` work per batch; the masked
/// series re-joins.
///
/// A third series isolates the **snapshot-install** cost: the same
/// batches are absorbed by a sealed copy-on-write epoch chain (clone +
/// per-tuple tombstones + threshold compaction + `Arc` install), the
/// write path the service pays per mutation. Earlier revisions folded
/// an `O(n)` snapshot rebuild into the per-batch loop, hiding the
/// install/apply split; the three components now land separately in
/// `BENCH_stream.json`.
pub fn fig_stream() {
    use adp_engine::delta::DeltaProvenance;
    use adp_engine::plan::{AliveMask, QueryPlan};
    use adp_engine::provenance::TupleRef;

    let sizes = size_ladder(&[10_000, 50_000, 200_000], &[2_000, 8_000]);
    let batches = if quick_mode() { 48 } else { 192 };
    let batch_size = 8usize;
    let q = queries::qpath();
    let mut fig = Figure::new(
        "fig-stream",
        "Streaming deletions: delta maintenance vs masked re-eval (avg ms/batch)",
    );
    let mut records: Vec<StreamRecord> = Vec::new();
    for &n in &sizes {
        let db = adp_datagen::zipf_pair(&ZipfConfig::new(n, 0.5, workload_seed(0x57E), true));
        let plan = QueryPlan::new(&db, q.atoms(), q.head());
        let indexes = plan.build_indexes(&db);
        let eval = plan.execute(&db, &indexes);
        let mut delta = DeltaProvenance::try_new(&eval).expect("instance fits u32 witness ids");
        let mut mask = AliveMask::all_alive(&db, q.atoms());
        let rel_lens: Vec<u64> = q
            .atoms()
            .iter()
            .map(|a| db.expect(a.name()).len() as u64)
            .collect();

        // The copy-on-write epoch chain absorbing the same batches.
        // The base seals with nothing deleted, so its dense indices
        // are the permanent stable ids and the stream's `TupleRef`
        // base coordinates address it directly.
        let slots: Vec<usize> = q
            .atoms()
            .iter()
            .map(|a| db.rel_id(a.name()).expect("atom names a relation").index())
            .collect();
        let mut sealed = db.clone();
        sealed.seal_all(1 << 14);
        let mut epoch_db = std::sync::Arc::new(sealed);

        // Deterministic LCG op stream; every 4th batch restores tuples
        // deleted earlier instead of deleting new ones.
        let mut state = workload_seed(0x57E) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut deleted: Vec<TupleRef> = Vec::new();
        let (mut delta_ms, mut masked_ms, mut install_ms) = (0.0f64, 0.0f64, 0.0f64);
        for round in 0..batches {
            let restore_round = round % 4 == 3 && !deleted.is_empty();
            let batch: Vec<TupleRef> = if restore_round {
                (0..batch_size.min(deleted.len()))
                    .map(|_| deleted[(next() as usize) % deleted.len()])
                    .collect()
            } else {
                (0..batch_size)
                    .map(|_| {
                        let atom = (next() as usize) % rel_lens.len();
                        TupleRef::new(atom, (next() % rel_lens[atom]) as u32)
                    })
                    .collect()
            };

            let start = Instant::now();
            if restore_round {
                delta.restore_batch(&batch);
            } else {
                delta.delete_batch(&batch);
            }
            delta_ms += start.elapsed().as_secs_f64() * 1e3;

            // Timed: the same batch as an O(Δ) epoch install — clone
            // (Arc bumps on sealed segments), per-tuple tombstones or
            // re-materialized restores, threshold compaction, install.
            // Mutations are idempotent, so batches that repeat a tuple
            // apply cleanly here too.
            let start = Instant::now();
            let mut next_epoch = (*epoch_db).clone();
            for &t in &batch {
                let slot = slots[t.atom];
                if restore_round {
                    let row = db.relations()[slot].tuple_vec(t.index);
                    let _ = next_epoch.relations_mut()[slot].restore_stable(t.index, &row);
                } else {
                    let _ = next_epoch.relations_mut()[slot].delete_stable(t.index);
                }
            }
            if !restore_round {
                next_epoch.maybe_compact_all(50);
            }
            epoch_db = std::sync::Arc::new(next_epoch);
            install_ms += start.elapsed().as_secs_f64() * 1e3;

            for &t in &batch {
                if restore_round {
                    mask.revive(t.atom, t.index);
                    deleted.retain(|&d| d != t);
                } else if mask.kill(t.atom, t.index) {
                    deleted.push(t);
                }
            }
            let start = Instant::now();
            let masked = plan.execute_masked(&db, &indexes, &mask);
            masked_ms += start.elapsed().as_secs_f64() * 1e3;
            // Soft check: a divergence is recorded (and fails the
            // process at exit) without hiding the remaining batches.
            crate::checks::check_eq(&delta.live_outputs(), &masked.output_count(), || {
                format!("fig_stream n={n}: delta diverged from the masked oracle at batch {round}")
            });
        }
        // The chain's final epoch must answer identically to the
        // maintained view (same live set, fresh join).
        let epoch_plan = QueryPlan::new(&epoch_db, q.atoms(), q.head());
        let epoch_eval = epoch_plan.execute(&epoch_db, &epoch_plan.build_indexes(&epoch_db));
        crate::checks::check_eq(&epoch_eval.output_count(), &delta.live_outputs(), || {
            format!("fig_stream n={n}: epoch snapshot diverged from delta maintenance")
        });

        fig.push(
            "Delta (O(batch))",
            n as f64,
            delta_ms / batches as f64,
            delta.removed_outputs(),
        );
        fig.push(
            "Epoch install (O(batch))",
            n as f64,
            install_ms / batches as f64,
            delta.removed_outputs(),
        );
        fig.push(
            "Masked re-eval",
            n as f64,
            masked_ms / batches as f64,
            delta.removed_outputs(),
        );
        records.push(StreamRecord {
            n,
            delta_ms_per_batch: delta_ms / batches as f64,
            install_ms_per_batch: install_ms / batches as f64,
            masked_ms_per_batch: masked_ms / batches as f64,
        });
    }
    fig.finish();

    let json = stream_json(batches, batch_size, &records);
    let path = "BENCH_stream.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} bytes)", json.len());
}

/// One input size's record for `BENCH_stream.json`.
struct StreamRecord {
    n: usize,
    delta_ms_per_batch: f64,
    install_ms_per_batch: f64,
    masked_ms_per_batch: f64,
}

/// Hand-rolled JSON (the workspace takes no serialization dependency).
fn stream_json(batches: usize, batch_size: usize, records: &[StreamRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"figure\": \"fig-stream\",\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str(&format!(
        "  \"batches\": {batches},\n  \"batch_size\": {batch_size},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"delta_ms_per_batch\": {:.4}, \"install_ms_per_batch\": {:.4}, \
             \"masked_ms_per_batch\": {:.4}}}{}\n",
            r.n,
            r.delta_ms_per_batch,
            r.install_ms_per_batch,
            r.masked_ms_per_batch,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// `fig_serve`: closed-loop load generation against the `adp-service`
/// front door — the serving regime the plan cache is for. For each
/// client count, `clients` OS threads hammer one shared [`Service`]
/// three ways:
///
/// * **"Statement (prepared)"** — each client holds one prepared
///   [`Statement`] and binds per-request targets: the v2 hot path,
///   zero query-text work per call (the per-request parse /
///   normalization / fingerprint savings are measured with the
///   process-wide counters in `adp_core::query::metrics` and reported
///   next to the series — the statement arm must measure **zero**,
///   which is checked, not just printed);
/// * **"Service (cached)"** — the text front door: every request
///   re-parses and re-normalizes its query string, then shares the
///   cached plan / evaluation / delta template;
/// * **"Cold plan-per-request"** — a fresh `PreparedQuery` per request:
///   what every caller did before the service existed.
///
/// Reported per series: throughput (solves/s), mean and p50/p95/p99
/// latency, and the cache hit rate. Every response is **checked for
/// equality** against a direct sequential solve of the same `(Q, k)`
/// (soft check; divergence fails the process at exit).
///
/// [`Service`]: adp_service::Service
/// [`Statement`]: adp_service::Statement
pub fn fig_serve() {
    use adp_core::query::metrics;
    use adp_core::solver::PreparedQuery;
    use adp_engine::provenance::TupleRef;
    use adp_service::{Service, ServiceConfig, SolveRequest, Target};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier, Mutex};

    let n = if quick_mode() { 2_000 } else { 20_000 };
    let per_client = if quick_mode() { 40 } else { 150 };
    let client_counts: &[usize] = &[1, 2, 4];
    let q = queries::qpath();
    let db = adp_datagen::zipf_pair(&ZipfConfig::new(n, 0.5, workload_seed(0x5E21), true));

    // The hot request mix: one query shape, four rotating targets.
    let q_text = format!("{q}");
    let shared_db = Arc::new(db.clone());
    // One prepared query provides both |Q(D)| and the reference
    // outcomes, so the figure's setup pays the root evaluation once.
    let reference_prep = PreparedQuery::new(q.clone(), Arc::clone(&shared_db));
    let total = reference_prep.output_count();
    // Small interactive targets: the serving regime this figure models
    // is many cheap point requests against a hot query, where the
    // plan/evaluation reuse — not the greedy rounds — is the cost that
    // matters.
    let ks: Vec<u64> = [1u64, 2, 3, 4]
        .into_iter()
        .map(|k| k.clamp(1, total.max(1)))
        .collect();

    // Sequential reference outcomes, one direct solve per distinct k:
    // the byte-equality oracle for every served response.
    let reference: Vec<adp_core::solver::AdpOutcome> = ks
        .iter()
        .map(|&k| {
            reference_prep
                .solve(k, &AdpOptions::default())
                .expect("reference solve")
        })
        .collect();
    let check_response =
        |k_slot: usize, cost: u64, solution: &Option<Vec<TupleRef>>, series: &str| {
            let r = &reference[k_slot];
            crate::checks::check_eq(&cost, &r.cost, || {
                format!("fig_serve {series}: cost diverged for k={}", ks[k_slot])
            });
            crate::checks::check_eq(solution, &r.solution, || {
                format!(
                    "fig_serve {series}: deletion set diverged for k={}",
                    ks[k_slot]
                )
            });
        };

    let mut fig = Figure::new(
        "fig-serve",
        "Serving: shared plan cache vs cold plan-per-request (closed loop)",
    );
    println!(
        "  workload: Q_path over Zipf(0.5) n={n}, |Q(D)|={total}, \
         {per_client} requests/client, targets k={ks:?}"
    );

    for &clients in client_counts {
        let requests = clients * per_client;

        // --- Series 1: prepared statements (v2 hot path). ----------
        // One Statement per client, prepared before the clock starts;
        // the measured loop performs zero query-text work, which the
        // metrics counters verify (not just report).
        let svc = Arc::new(Service::with_config(
            db.clone(),
            ServiceConfig {
                max_in_flight: 4 * clients.max(1),
                ..Default::default()
            },
        ));
        let statements: Vec<_> = (0..clients)
            .map(|_| svc.prepare(&q_text).expect("hot query parses"))
            .collect();
        let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(requests));
        let barrier = Barrier::new(clients);
        let text_before = metrics::text_work();
        let started = Instant::now();
        std::thread::scope(|scope| {
            for (c, stmt) in statements.iter().enumerate() {
                let (latencies, barrier, ks) = (&latencies, &barrier, &ks);
                let check_response = &check_response;
                scope.spawn(move || {
                    barrier.wait();
                    let mut local = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let slot = (c + i) % ks.len();
                        let t0 = Instant::now();
                        let resp = stmt
                            .solve(Target::Outputs(ks[slot]))
                            .expect("admission limit sized for the client count");
                        local.push(t0.elapsed().as_micros() as u64);
                        check_response(
                            slot,
                            resp.outcome.cost,
                            &resp.outcome.solution,
                            "statement",
                        );
                    }
                    latencies.lock().unwrap().extend(local);
                });
            }
        });
        let stmt_secs = started.elapsed().as_secs_f64();
        let text_after = metrics::text_work();
        let stmt_throughput = requests as f64 / stmt_secs;
        let lat = latencies.into_inner().unwrap();
        report_latencies(
            &mut fig,
            &format!("Statement (prepared), {clients} clients"),
            clients,
            stmt_throughput,
            &lat,
        );
        let stmt_parses = text_after.parses - text_before.parses;
        let stmt_norms = text_after.normalizations - text_before.normalizations;
        let stmt_prints = text_after.fingerprints - text_before.fingerprints;
        println!(
            "      text work across {requests} statement solves: \
             {stmt_parses} parses, {stmt_norms} normalizations, {stmt_prints} fingerprints"
        );
        // The v2 acceptance criterion, enforced in the figure run too:
        // the statement hot path performs zero text work per call.
        crate::checks::check(
            stmt_parses == 0 && stmt_norms == 0 && stmt_prints == 0,
            || {
                format!(
                    "fig_serve: statement arm did text work \
                     ({stmt_parses} parses / {stmt_norms} normalizations / \
                     {stmt_prints} fingerprints across {requests} solves)"
                )
            },
        );
        drop(statements);
        drop(svc);

        // --- Series 2: the service text path, shared plan cache. ----
        let svc = Arc::new(Service::with_config(
            db.clone(),
            ServiceConfig {
                max_in_flight: 4 * clients.max(1),
                ..Default::default()
            },
        ));
        let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(requests));
        let hits = AtomicU64::new(0);
        let barrier = Barrier::new(clients);
        let text_before = metrics::text_work();
        let started = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let svc = Arc::clone(&svc);
                let (latencies, hits, barrier) = (&latencies, &hits, &barrier);
                let (q_text, ks) = (&q_text, &ks);
                let check_response = &check_response;
                scope.spawn(move || {
                    barrier.wait();
                    let mut local = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let slot = (c + i) % ks.len();
                        let t0 = Instant::now();
                        let resp = svc
                            .solve(&SolveRequest::outputs(q_text.clone(), ks[slot]))
                            .expect("admission limit sized for the client count");
                        local.push(t0.elapsed().as_micros() as u64);
                        if resp.stats.cache_hit {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                        check_response(slot, resp.outcome.cost, &resp.outcome.solution, "service");
                    }
                    latencies.lock().unwrap().extend(local);
                });
            }
        });
        let cached_secs = started.elapsed().as_secs_f64();
        let cached_throughput = requests as f64 / cached_secs;
        let hit_rate = 100.0 * hits.load(Ordering::Relaxed) as f64 / requests as f64;
        let lat = latencies.into_inner().unwrap();
        report_latencies(
            &mut fig,
            &format!("Service (cached), {clients} clients"),
            clients,
            cached_throughput,
            &lat,
        );
        println!(
            "      cache hit rate {hit_rate:.1}% ({} plans cached)",
            svc.cached_plans()
        );
        // The per-request text-path cost the statement arm skips
        // entirely: parses + normalizations + fingerprints per solve.
        let text_after = metrics::text_work();
        let per_request_text_ops = (text_after.parses - text_before.parses
            + (text_after.normalizations - text_before.normalizations)
            + (text_after.fingerprints - text_before.fingerprints))
            as f64
            / requests as f64;
        println!(
            "      text path pays {per_request_text_ops:.1} parse/normalize/hash ops per \
             request; statements pay 0 (saved {:.0} ops at this client count)",
            per_request_text_ops * requests as f64
        );

        // --- Series 3: cold plan-per-request (pre-service world). --
        let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(requests));
        let barrier = Barrier::new(clients);
        let started = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let (latencies, barrier, ks) = (&latencies, &barrier, &ks);
                let (q, shared_db) = (&q, &shared_db);
                let check_response = &check_response;
                scope.spawn(move || {
                    barrier.wait();
                    let mut local = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let slot = (c + i) % ks.len();
                        let t0 = Instant::now();
                        let prep = PreparedQuery::new(q.clone(), Arc::clone(shared_db));
                        let out = prep
                            .solve(ks[slot], &AdpOptions::default())
                            .expect("cold solve");
                        local.push(t0.elapsed().as_micros() as u64);
                        check_response(slot, out.cost, &out.solution, "cold");
                    }
                    latencies.lock().unwrap().extend(local);
                });
            }
        });
        let cold_secs = started.elapsed().as_secs_f64();
        let cold_throughput = requests as f64 / cold_secs;
        let lat = latencies.into_inner().unwrap();
        report_latencies(
            &mut fig,
            &format!("Cold plan-per-request, {clients} clients"),
            clients,
            cold_throughput,
            &lat,
        );

        let speedup = cached_throughput / cold_throughput;
        println!("      cached/cold throughput ratio at {clients} clients: {speedup:.1}x");
        println!(
            "      statement/cached throughput ratio at {clients} clients: {:.2}x",
            stmt_throughput / cached_throughput
        );
        if clients == 4 {
            // Acceptance floor: the plan cache must buy ≥5× solve
            // throughput over plan-per-request at 4 clients (quick mode
            // uses a smaller instance where fixed costs weigh more, so
            // the floor is relaxed to 2× there).
            let floor = if quick_mode() { 2.0 } else { 5.0 };
            crate::checks::check(speedup >= floor, || {
                format!(
                    "fig_serve: cached throughput only {speedup:.2}x of cold at 4 clients \
                     (floor {floor}x)"
                )
            });
        }
    }
    fig.finish();
}

/// Prints mean/p50/p95/p99 for one `fig_serve` series and records two
/// figure points: `<series> [ms/solve]` (x = client count, y = mean
/// latency) and `<series> [solves/s]` (x = client count,
/// y = throughput).
fn report_latencies(fig: &mut Figure, series: &str, clients: usize, throughput: f64, lat: &[u64]) {
    let mut sorted = lat.to_vec();
    sorted.sort_unstable();
    let pct = |p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx] as f64 / 1e3
    };
    let mean_ms = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<u64>() as f64 / sorted.len() as f64 / 1e3
    };
    fig.push(
        &format!("{series} [ms/solve]"),
        clients as f64,
        mean_ms,
        u64::MAX,
    );
    fig.push(
        &format!("{series} [solves/s]"),
        clients as f64,
        throughput,
        u64::MAX,
    );
    println!(
        "      {series}: {throughput:.0} solves/s, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms",
        pct(0.50),
        pct(0.95),
        pct(0.99)
    );
}

/// `fig_subscribe`: push-based incremental view maintenance vs pull
/// re-solving — the subscription subsystem's reason to exist. One hot
/// `Q_path` statement receives a deterministic stream of
/// always-effective delete/restore batches (every 4th batch restores
/// earlier deletions), and two identical services race at each fan-out
/// N ∈ {1, 8, 64}:
///
/// * **Push** — N subscribers registered once up front; each batch pays
///   one shared delta application, one incremental greedy re-solve for
///   the shared target, and N bounded-channel sends. The timed span is
///   the *aggregate update latency*: mutation call through all N
///   deliveries drained.
/// * **Pull** — the pre-subscription world: after the same batch each
///   of N clients re-solves the prepared statement at the new epoch.
///   The first re-solve rebuilds the plan/eval/delta for that epoch and
///   the other N−1 share it from the plan cache, so this is the
///   *favorable* pull baseline, not a strawman.
///
/// Every pushed diff is equality-checked in-harness: subscriber 0's
/// replica (live rows + target cost + deletion set, advanced only by
/// the pushed diffs) must byte-identically equal a fresh evaluation +
/// sequential greedy solve at every single epoch (soft check;
/// divergence fails the process at exit). At N = 8 the push arm must
/// beat pull by ≥5× aggregate update latency (≥1.5× in quick mode,
/// where a small instance and short stream flatten the gap). The whole
/// record is written as `BENCH_subscribe.json`.
///
/// The mutation span is additionally split: a third, subscriber-free
/// service absorbs the same batches so the O(Δ) **snapshot install**
/// is timed alone, and the record separates it from the shared
/// **delta application** (provenance maintenance + incremental
/// re-solve) the subscription group adds on top. Earlier revisions
/// timed the O(n) snapshot rebuild inside the mutation span, burying
/// the write path's actual cost.
pub fn fig_subscribe() {
    use adp_core::solver::PreparedQuery;
    use adp_engine::provenance::TupleRef;
    use adp_engine::value::Value;
    use adp_service::{Service, SubscribeOptions, Target};
    use std::collections::{BTreeMap, BTreeSet};

    let n = if quick_mode() { 2_000 } else { 20_000 };
    let batches = if quick_mode() { 24 } else { 96 };
    let batch_size = 8usize;
    let k = 8u64;
    let fan_outs: [usize; 3] = [1, 8, 64];
    let q = queries::qpath();
    let q_text = format!("{q}");
    let db = adp_datagen::zipf_pair(&ZipfConfig::new(n, 0.5, workload_seed(0x5AB), true));
    let rel_names: Vec<String> = q.atoms().iter().map(|a| a.name().to_string()).collect();
    let rel_lens: Vec<u64> = rel_names
        .iter()
        .map(|r| db.expect(r).len() as u64)
        .collect();
    let seq_greedy = || AdpOptions {
        force_greedy: true,
        sequential: true,
        ..Default::default()
    };

    // One deterministic op stream shared by both arms and every
    // fan-out, built so every batch is effective: deletes only hit
    // currently-live tuples, restores only hit currently-deleted ones.
    let mut state = workload_seed(0x5AB) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut deleted: Vec<(usize, u32)> = Vec::new();
    let mut deleted_set: BTreeSet<(usize, u32)> = BTreeSet::new();
    let mut ops: Vec<(bool, Vec<(usize, u32)>)> = Vec::new();
    for round in 0..batches {
        let restore_round = round % 4 == 3 && !deleted.is_empty();
        let mut batch: BTreeSet<(usize, u32)> = BTreeSet::new();
        if restore_round {
            for _ in 0..batch_size.min(deleted.len()) {
                batch.insert(deleted[(next() as usize) % deleted.len()]);
            }
            deleted.retain(|t| !batch.contains(t));
            for t in &batch {
                deleted_set.remove(t);
            }
        } else {
            while batch.len() < batch_size {
                let atom = (next() as usize) % rel_lens.len();
                let idx = (next() % rel_lens[atom]) as u32;
                if !deleted_set.contains(&(atom, idx)) {
                    batch.insert((atom, idx));
                }
            }
            for &t in &batch {
                deleted_set.insert(t);
                deleted.push(t);
            }
        }
        ops.push((!restore_round, batch.into_iter().collect()));
    }

    let mut fig = Figure::new(
        "fig-subscribe",
        "Push subscriptions vs pull re-solves (aggregate ms/batch)",
    );
    println!(
        "  workload: Q_path over Zipf(0.5) n={n}, {batches} batches x {batch_size} ops, \
         k={k}, fan-out {fan_outs:?}"
    );
    let mut records: Vec<SubscribeRecord> = Vec::new();

    for &subs_n in &fan_outs {
        // --- Push arm: register once, then every batch fans out. ----
        let push_svc = Service::new(db.clone());
        let stmt = push_svc.prepare(&q_text).expect("hot query parses");
        let receivers: Vec<_> = (0..subs_n)
            .map(|_| {
                push_svc
                    .subscribe(
                        &stmt,
                        Target::Outputs(k),
                        // Drained every batch; 8 slots is plenty.
                        SubscribeOptions::default().with_buffer(8),
                    )
                    .expect("subscribe")
                    .1
            })
            .collect();

        // Subscriber 0's replica, advanced only by pushed diffs and
        // checked against a fresh solve after every batch.
        let (_epoch0, snap0) = push_svc.snapshot();
        let prep0 = PreparedQuery::new(q.clone(), snap0);
        let mut rows: BTreeMap<u32, Box<[Value]>> = prep0
            .eval()
            .outputs
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u32, r.clone()))
            .collect();
        let seed_out = prep0
            .solve(k.min(prep0.output_count()), &seq_greedy())
            .expect("seed solve");
        let mut cost = seed_out.cost as i64;
        // At epoch 0 solver coordinates are base coordinates.
        let mut deletions: Vec<TupleRef> = {
            let mut d = seed_out.solution.expect("greedy reports its set");
            d.sort_unstable();
            d
        };

        // --- Pull arm: an identical service, re-solved per batch. ---
        let pull_svc = Service::new(db.clone());
        let pull_stmt = pull_svc.prepare(&q_text).expect("hot query parses");

        // --- Bare arm: no statements, no subscribers — each batch is
        // a pure O(Δ) snapshot install, isolating the write path's
        // floor from the delta application the group adds on top.
        let bare_svc = Service::new(db.clone());

        let (mut push_ms, mut pull_ms) = (0.0f64, 0.0f64);
        let (mut mutate_ms, mut install_ms) = (0.0f64, 0.0f64);
        for (round, (is_delete, batch)) in ops.iter().enumerate() {
            let named: Vec<(&str, u32)> = batch
                .iter()
                .map(|&(a, i)| (rel_names[a].as_str(), i))
                .collect();

            // Timed: mutation (delta + incremental solve + N sends)
            // plus draining all N deliveries.
            let t0 = Instant::now();
            if *is_delete {
                push_svc.delete_tuples(&named).expect("delete batch");
            } else {
                push_svc.restore_tuples(&named).expect("restore batch");
            }
            mutate_ms += t0.elapsed().as_secs_f64() * 1e3;
            let mut first = None;
            for (s, rx) in receivers.iter().enumerate() {
                let u = rx
                    .try_recv()
                    .expect("updates are buffered before the mutation returns");
                if s == 0 {
                    first = Some(u);
                }
            }
            push_ms += t0.elapsed().as_secs_f64() * 1e3;

            // Timed: same batch, then N re-solves at the new epoch.
            let t1 = Instant::now();
            if *is_delete {
                pull_svc.delete_tuples(&named).expect("delete batch");
            } else {
                pull_svc.restore_tuples(&named).expect("restore batch");
            }
            for _ in 0..subs_n {
                let resp = pull_stmt.solve(Target::Outputs(k)).expect("pull solve");
                std::hint::black_box(resp);
            }
            pull_ms += t1.elapsed().as_secs_f64() * 1e3;

            // Timed: the same batch with nobody watching — the O(Δ)
            // epoch install alone.
            let t2 = Instant::now();
            if *is_delete {
                bare_svc.delete_tuples(&named).expect("bare delete");
            } else {
                bare_svc.restore_tuples(&named).expect("bare restore");
            }
            install_ms += t2.elapsed().as_secs_f64() * 1e3;

            // Untimed: advance subscriber 0's replica by the pushed
            // diff and compare against a fresh solve of the snapshot.
            let u = first.expect("every effective batch pushes one update");
            crate::checks::check_eq(&u.seq, &(round as u64), || {
                format!("fig_subscribe N={subs_n}: seq gap at batch {round}")
            });
            crate::checks::check(u.lagged.is_none(), || {
                format!("fig_subscribe N={subs_n}: drained subscriber lagged at batch {round}")
            });
            for row in &u.outputs_lost {
                let prev = rows.remove(&row.id);
                crate::checks::check(prev.as_ref() == Some(&row.values), || {
                    format!("fig_subscribe N={subs_n}: lost row {} was not live", row.id)
                });
            }
            for row in &u.outputs_gained {
                let prev = rows.insert(row.id, row.values.clone());
                crate::checks::check(prev.is_none(), || {
                    format!("fig_subscribe N={subs_n}: gained row {} was live", row.id)
                });
            }
            cost += u.cost_drift;
            for t in &u.deletion_set_churn.removed {
                if let Ok(pos) = deletions.binary_search(t) {
                    deletions.remove(pos);
                }
            }
            for t in &u.deletion_set_churn.added {
                if let Err(pos) = deletions.binary_search(t) {
                    deletions.insert(pos, *t);
                }
            }

            let (epoch, snap) = push_svc.snapshot();
            let prep = PreparedQuery::new(q.clone(), snap);
            let mut fresh_rows: Vec<Box<[Value]>> = prep.eval().outputs.to_vec();
            fresh_rows.sort();
            let mut replica_rows: Vec<Box<[Value]>> = rows.values().cloned().collect();
            replica_rows.sort();
            crate::checks::check_eq(&replica_rows, &fresh_rows, || {
                format!("fig_subscribe N={subs_n}: replica rows diverged at batch {round}")
            });
            let k_eff = k.min(prep.output_count());
            if k_eff == 0 {
                crate::checks::check(cost == 0 && deletions.is_empty(), || {
                    format!("fig_subscribe N={subs_n}: empty view must cost 0 at batch {round}")
                });
            } else {
                let out = prep.solve(k_eff, &seq_greedy()).expect("oracle solve");
                crate::checks::check_eq(&cost, &(out.cost as i64), || {
                    format!("fig_subscribe N={subs_n}: replica cost diverged at batch {round}")
                });
                let base_pairs = push_svc
                    .to_base_tuples(&q_text, epoch, &out.solution.expect("greedy reports"))
                    .expect("coordinate bridge");
                let mut fresh_deletions: Vec<TupleRef> = base_pairs
                    .iter()
                    .map(|(name, idx)| {
                        let atom = rel_names
                            .iter()
                            .position(|r| r == name)
                            .expect("relation name maps to a query atom");
                        TupleRef::new(atom, *idx)
                    })
                    .collect();
                fresh_deletions.sort_unstable();
                crate::checks::check_eq(&deletions, &fresh_deletions, || {
                    format!("fig_subscribe N={subs_n}: deletion set diverged at batch {round}")
                });
            }
        }

        let stats = push_svc.stats();
        crate::checks::check_eq(&stats.shared_delta_applications, &(batches as u64), || {
            format!("fig_subscribe N={subs_n}: expected one delta application per batch")
        });
        crate::checks::check_eq(&stats.updates_pushed, &((batches * subs_n) as u64), || {
            format!("fig_subscribe N={subs_n}: every subscriber gets every batch")
        });
        drop(receivers);

        crate::checks::check_eq(&bare_svc.epoch(), &(batches as u64), || {
            format!("fig_subscribe N={subs_n}: bare service must install every batch")
        });

        let push_per = push_ms / batches as f64;
        let pull_per = pull_ms / batches as f64;
        let install_per = install_ms / batches as f64;
        // What the subscription group adds to the mutation span beyond
        // the bare install (shared provenance delta + incremental
        // re-solve + sends). Clamped: both spans are measured, so
        // noise on tiny batches could dip the difference below zero.
        let apply_per = ((mutate_ms - install_ms) / batches as f64).max(0.0);
        let speedup = pull_ms / push_ms;
        fig.push(
            &format!("Push (1 delta + {subs_n} pushes)"),
            subs_n as f64,
            push_per,
            u64::MAX,
        );
        fig.push(
            &format!("Pull ({subs_n} re-solves)"),
            subs_n as f64,
            pull_per,
            u64::MAX,
        );
        println!(
            "      {subs_n} subscribers: push {push_per:.3} ms/batch \
             (install {install_per:.3} + delta-apply {apply_per:.3} + fan-out), \
             pull {pull_per:.3} ms/batch, speedup {speedup:.1}x"
        );
        if subs_n == 8 {
            // Acceptance floor: pushing diffs to 8 subscribers must be
            // ≥5× cheaper than 8 pull re-solves per batch (quick mode
            // runs a small instance where fixed costs weigh more, so
            // the floor is relaxed to 1.5× there).
            let floor = if quick_mode() { 1.5 } else { 5.0 };
            crate::checks::check(speedup >= floor, || {
                format!(
                    "fig_subscribe: push only {speedup:.2}x faster than pull at 8 \
                     subscribers (floor {floor}x)"
                )
            });
        }
        records.push(SubscribeRecord {
            subscribers: subs_n,
            push_ms_per_batch: push_per,
            install_ms_per_batch: install_per,
            delta_apply_ms_per_batch: apply_per,
            pull_ms_per_batch: pull_per,
            speedup,
            updates_pushed: stats.updates_pushed,
            shared_delta_applications: stats.shared_delta_applications,
            lagged_drops: stats.lagged_drops,
        });
    }
    fig.finish();

    let json = subscribe_json(n, batches, batch_size, k, &records);
    let path = "BENCH_subscribe.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} bytes)", json.len());
}

/// One fan-out's record for `BENCH_subscribe.json`.
struct SubscribeRecord {
    subscribers: usize,
    push_ms_per_batch: f64,
    install_ms_per_batch: f64,
    delta_apply_ms_per_batch: f64,
    pull_ms_per_batch: f64,
    speedup: f64,
    updates_pushed: u64,
    shared_delta_applications: u64,
    lagged_drops: u64,
}

/// Hand-rolled JSON (the workspace takes no serialization dependency).
fn subscribe_json(
    n: usize,
    batches: usize,
    batch_size: usize,
    k: u64,
    records: &[SubscribeRecord],
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"figure\": \"fig-subscribe\",\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str(&format!(
        "  \"n\": {n},\n  \"batches\": {batches},\n  \"batch_size\": {batch_size},\n  \"k\": {k},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"subscribers\": {}, \"push_ms_per_batch\": {:.3}, \
             \"install_ms_per_batch\": {:.4}, \"delta_apply_ms_per_batch\": {:.4}, \
             \"pull_ms_per_batch\": {:.3}, \"speedup\": {:.2}, \"updates_pushed\": {}, \
             \"shared_delta_applications\": {}, \"lagged_drops\": {}}}{}\n",
            r.subscribers,
            r.push_ms_per_batch,
            r.install_ms_per_batch,
            r.delta_apply_ms_per_batch,
            r.pull_ms_per_batch,
            r.speedup,
            r.updates_pushed,
            r.shared_delta_applications,
            r.lagged_drops,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// `fig_htap`: the copy-on-write snapshot layer under HTAP load — the
/// acceptance harness for the O(Δ) write path.
///
/// **Phase A (write path).** For each input size a sealed base
/// snapshot absorbs one deterministic, always-effective delete/restore
/// stream two ways, both timed per batch:
///
/// * **"Epoch install (O(batch))"** — clone the current epoch (`Arc`
///   bumps on every sealed segment), tombstone / re-materialize the
///   batch, run threshold compaction, install the next
///   `Arc<Database>`.
/// * **"Full rebuild (O(n))"** — what a batch cost before the segment
///   layer: every surviving row re-materialized into fresh columnar
///   stores.
///
/// Sampled epochs (every 8th batch and the last) are byte-checked:
/// evaluation outputs and greedy picks on the installed epoch must
/// equal the rebuild's. Acceptance: across the 10× size step the
/// install stays flat (≤2× full mode; ≤4× quick, where both sides are
/// microseconds) while the rebuild grows ≥4× (≥3× quick).
///
/// **Phase B (HTAP storm).** 4 solver threads + 2 mutators + 2
/// subscribers share one [`Service`] while the main thread pins epoch
/// 0 end-to-end. Every response is answered from a recorded epoch and
/// re-solved against that exact snapshot (byte-equal cost / achieved /
/// solution); both subscribers must see gapless, strictly-monotone
/// updates; the pinned epoch must still evaluate byte-identically
/// after the storm. Mutation and solve latency quantiles land in
/// `BENCH_htap.json` together with the Phase A growth ratios.
///
/// [`Service`]: adp_service::Service
pub fn fig_htap() {
    use adp_core::solver::PreparedQuery;
    use adp_engine::{Database, RelationInstance};
    use adp_service::{Service, ServiceConfig, SolveRequest, SubscribeOptions, Target};
    use std::collections::{BTreeSet, HashMap};
    use std::sync::{Arc, Barrier, Mutex};
    use std::time::Duration;

    let sizes = size_ladder(&[20_000, 200_000], &[2_000, 20_000]);
    let batches = if quick_mode() { 24 } else { 64 };
    let batch_size = 64usize; // Δ big enough that per-tuple work, not
                              // fixed clone overhead, dominates a batch
    let k = 4u64;
    let q = queries::qpath();

    // ---- Phase A: O(batch) install vs O(n) rebuild. ----
    let mut fig = Figure::new(
        "fig-htap",
        "HTAP write path: O(batch) epoch install vs O(n) rebuild (avg ms/batch)",
    );
    let mut write_records: Vec<HtapWriteRecord> = Vec::new();
    for &n in &sizes {
        let mut sealed =
            adp_datagen::zipf_pair(&ZipfConfig::new(n, 0.5, workload_seed(0x47A9), true));
        // Size-proportional seal policy: ~8 segments per relation at
        // every n, so the epoch header an install clones is O(1) in n
        // (the clone is O(Δ + segments); a fixed segment size would
        // leak an O(n / target) term into every install).
        sealed.seal_all((n / 8).max(1));
        let base = Arc::new(sealed);
        let rel_lens: Vec<u64> = q
            .atoms()
            .iter()
            .map(|a| base.expect(a.name()).len() as u64)
            .collect();
        let slots: Vec<usize> = q
            .atoms()
            .iter()
            .map(|a| {
                base.rel_id(a.name())
                    .expect("atom names a relation")
                    .index()
            })
            .collect();

        // Deterministic always-effective op stream in atom
        // coordinates: deletes hit live tuples, every 4th batch
        // restores earlier deletions. The base sealed with nothing
        // deleted, so base dense indices are the permanent stable ids.
        let mut state = workload_seed(0x47A9) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut deleted: Vec<(usize, u32)> = Vec::new();
        let mut deleted_set: BTreeSet<(usize, u32)> = BTreeSet::new();
        let mut ops: Vec<(bool, Vec<(usize, u32)>)> = Vec::new();
        for round in 0..batches {
            let restore_round = round % 4 == 3 && !deleted.is_empty();
            let mut batch: BTreeSet<(usize, u32)> = BTreeSet::new();
            if restore_round {
                for _ in 0..batch_size.min(deleted.len()) {
                    batch.insert(deleted[(next() as usize) % deleted.len()]);
                }
                deleted.retain(|t| !batch.contains(t));
                for t in &batch {
                    deleted_set.remove(t);
                }
            } else {
                while batch.len() < batch_size {
                    let atom = (next() as usize) % rel_lens.len();
                    let idx = (next() % rel_lens[atom]) as u32;
                    if !deleted_set.contains(&(atom, idx)) {
                        batch.insert((atom, idx));
                    }
                }
                for &t in &batch {
                    deleted_set.insert(t);
                    deleted.push(t);
                }
            }
            ops.push((!restore_round, batch.into_iter().collect()));
        }

        // Pass 1 (timed): the O(Δ) epoch-install chain alone, under
        // its own cache regime — interleaving the O(n) rebuild would
        // evict the chain's working set between batches and charge the
        // misses to the install. A whole chain is microseconds, so the
        // pass runs three times and the minimum counts (the usual
        // microbenchmark guard against allocator warm-up and frequency
        // noise); the streams are identical, so the last pass's
        // sampled epochs (kept alive by `Arc` bump, not copy) serve
        // the equality pass.
        let is_sample = |round: usize| round % 8 == 7 || round + 1 == batches;
        let mut sampled: Vec<Arc<Database>> = Vec::new();
        let mut install_ms = f64::INFINITY;
        for pass in 0..3 {
            let mut cur = Arc::clone(&base);
            let mut pass_ms = 0.0f64;
            for (round, (is_delete, batch)) in ops.iter().enumerate() {
                let t0 = Instant::now();
                let mut next_epoch = (*cur).clone();
                for &(a, idx) in batch {
                    let slot = slots[a];
                    if *is_delete {
                        let _ = next_epoch.relations_mut()[slot].delete_stable(idx);
                    } else {
                        let row = base.relations()[slot].tuple_vec(idx);
                        let _ = next_epoch.relations_mut()[slot].restore_stable(idx, &row);
                    }
                }
                if *is_delete {
                    next_epoch.maybe_compact_all(50);
                }
                cur = Arc::new(next_epoch);
                pass_ms += t0.elapsed().as_secs_f64() * 1e3;
                if pass == 2 && is_sample(round) {
                    sampled.push(Arc::clone(&cur));
                }
            }
            install_ms = install_ms.min(pass_ms);
        }

        // Pass 2 (timed): replay the stream as O(n) rebuilds — what a
        // batch cost before the segment layer — and byte-check the
        // sampled epochs against them.
        let mut dead: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); slots.len()];
        let mut rebuild_ms = 0.0f64;
        let mut checked = 0usize;
        let mut sampled = sampled.into_iter();
        for (round, (is_delete, batch)) in ops.iter().enumerate() {
            for &(a, idx) in batch {
                if *is_delete {
                    dead[a].insert(idx);
                } else {
                    dead[a].remove(&idx);
                }
            }

            let t1 = Instant::now();
            let mut fresh = Database::new();
            for (a, atom) in q.atoms().iter().enumerate() {
                let src = &base.relations()[slots[a]];
                let mut inst = RelationInstance::new(atom.clone());
                for stable in 0..rel_lens[a] as u32 {
                    if !dead[a].contains(&stable) {
                        inst.insert(&src.tuple_vec(stable));
                    }
                }
                fresh.add(inst);
            }
            rebuild_ms += t1.elapsed().as_secs_f64() * 1e3;

            // Untimed, sampled: the installed epoch answers
            // byte-identically to the from-scratch rebuild.
            if is_sample(round) {
                checked += 1;
                let cow = PreparedQuery::new(
                    q.clone(),
                    sampled.next().expect("one sampled epoch per sampled round"),
                );
                let oracle = PreparedQuery::new(q.clone(), Arc::new(fresh));
                crate::checks::check_eq(&cow.eval().outputs, &oracle.eval().outputs, || {
                    format!(
                        "fig_htap n={n}: epoch {} diverged from the fresh rebuild",
                        round + 1
                    )
                });
                let k_eff = k.min(cow.output_count());
                if k_eff > 0 {
                    let a = cow.solve(k_eff, &AdpOptions::default()).expect("cow solve");
                    let b = oracle
                        .solve(k_eff, &AdpOptions::default())
                        .expect("oracle solve");
                    crate::checks::check_eq(&a.cost, &b.cost, || {
                        format!(
                            "fig_htap n={n}: greedy cost diverged at epoch {}",
                            round + 1
                        )
                    });
                    crate::checks::check_eq(&a.solution, &b.solution, || {
                        format!(
                            "fig_htap n={n}: greedy picks diverged at epoch {}",
                            round + 1
                        )
                    });
                }
            }
        }

        let install_per = install_ms / batches as f64;
        let rebuild_per = rebuild_ms / batches as f64;
        fig.push("Epoch install (O(batch))", n as f64, install_per, u64::MAX);
        fig.push("Full rebuild (O(n))", n as f64, rebuild_per, u64::MAX);
        println!(
            "      n={n}: install {install_per:.4} ms/batch vs rebuild {rebuild_per:.3} ms/batch \
             ({checked} epochs byte-checked)"
        );
        write_records.push(HtapWriteRecord {
            n,
            install_ms_per_batch: install_per,
            rebuild_ms_per_batch: rebuild_per,
        });
    }
    fig.finish();

    let first = &write_records[0];
    let last = &write_records[write_records.len() - 1];
    let install_growth = last.install_ms_per_batch / first.install_ms_per_batch.max(1e-6);
    let rebuild_growth = last.rebuild_ms_per_batch / first.rebuild_ms_per_batch.max(1e-6);
    // Acceptance: install flat across the 10× size step, rebuild not.
    // Quick mode runs instances where the install is single-digit
    // microseconds, so its cap absorbs timer noise.
    let (flat_cap, growth_floor) = if quick_mode() { (4.0, 3.0) } else { (2.0, 4.0) };
    crate::checks::check(install_growth <= flat_cap, || {
        format!(
            "fig_htap: epoch install grew {install_growth:.2}x across a 10x size step \
             (cap {flat_cap}x) — the write path must be O(batch), not O(n)"
        )
    });
    crate::checks::check(rebuild_growth >= growth_floor, || {
        format!(
            "fig_htap: the O(n) rebuild grew only {rebuild_growth:.2}x across a 10x size \
             step (floor {growth_floor}x) — the baseline is not exercising n"
        )
    });
    println!("    10x size step: install x{install_growth:.2}, rebuild x{rebuild_growth:.2}");

    // ---- Phase B: the storm. ----
    let n_htap = sizes[0];
    let db = adp_datagen::zipf_pair(&ZipfConfig::new(n_htap, 0.5, workload_seed(0x47A9), true));
    let svc = Arc::new(Service::with_config(
        db,
        ServiceConfig {
            max_in_flight: 256,
            segment_target_rows: (n_htap / 8).max(1), // several segments per relation
            compact_tombstone_pct: 25,                // compactions fire mid-storm
            ..Default::default()
        },
    ));
    let q_text = format!("{q}");
    let stmt = svc.prepare(&q_text).expect("hot query parses");

    let solvers = 4usize;
    let solver_iters = if quick_mode() { 8 } else { 25 };
    let mutators = 2usize;
    let ops_per_mutator: u64 = if quick_mode() { 12 } else { 32 };
    let subs_n = 2usize;
    let total_epochs = mutators as u64 * ops_per_mutator;
    println!(
        "  storm: n={n_htap}, {solvers} solvers x {solver_iters}, {mutators} mutators x \
         {ops_per_mutator}, {subs_n} subscribers, epoch 0 pinned throughout"
    );

    let receivers: Vec<_> = (0..subs_n)
        .map(|_| {
            svc.subscribe(
                &stmt,
                Target::Outputs(k),
                SubscribeOptions::default().with_buffer(total_epochs as usize + 8),
            )
            .expect("subscribe")
            .1
        })
        .collect();

    // Epoch → snapshot oracle map; the install lock makes each
    // mutator's install+snapshot atomic, so every epoch is recorded.
    let snapshots: Mutex<HashMap<u64, Arc<Database>>> = Mutex::new(HashMap::new());
    snapshots.lock().unwrap().insert(0, svc.snapshot().1);
    let install_lock = Mutex::new(());
    let mutation_lat: Mutex<Vec<f64>> = Mutex::default();
    let solve_lat: Mutex<Vec<f64>> = Mutex::default();
    let responses: Mutex<Vec<(u64, u64, adp_service::SolveResponse)>> = Mutex::default();
    // The in-flight reader: epoch 0 stays pinned across the storm.
    let pinned = svc.snapshot().1;
    let rel0 = q.atoms()[0].name().to_string();

    let barrier = Barrier::new(solvers + mutators + subs_n);
    std::thread::scope(|scope| {
        for t in 0..solvers {
            let svc = Arc::clone(&svc);
            let (barrier, responses, solve_lat) = (&barrier, &responses, &solve_lat);
            let q_text = q_text.as_str();
            scope.spawn(move || {
                barrier.wait();
                for i in 0..solver_iters {
                    let kk = 1 + ((t + i) % 3) as u64;
                    let pre = svc.epoch();
                    let t0 = Instant::now();
                    let resp = svc
                        .solve(&SolveRequest::outputs(q_text, kk))
                        .expect("ample admission limit: nothing sheds");
                    solve_lat
                        .lock()
                        .unwrap()
                        .push(t0.elapsed().as_secs_f64() * 1e3);
                    responses.lock().unwrap().push((pre, kk, resp));
                }
            });
        }
        // Disjoint index ranges: every delete is effective, so
        // subscription seqs count every epoch bump.
        for m in 0..mutators {
            let svc = Arc::clone(&svc);
            let (barrier, snapshots, install_lock, mutation_lat) =
                (&barrier, &snapshots, &install_lock, &mutation_lat);
            let rel0 = rel0.as_str();
            scope.spawn(move || {
                barrier.wait();
                for i in 0..ops_per_mutator {
                    let idx = (m as u64 * ops_per_mutator + i) as u32;
                    let guard = install_lock.lock().unwrap();
                    let t0 = Instant::now();
                    let epoch = svc.delete_tuples(&[(rel0, idx)]).expect("effective delete");
                    let dt = t0.elapsed().as_secs_f64() * 1e3;
                    let (snap_epoch, snap) = svc.snapshot();
                    drop(guard);
                    assert_eq!(snap_epoch, epoch, "install lock serializes mutators");
                    snapshots.lock().unwrap().insert(epoch, snap);
                    mutation_lat.lock().unwrap().push(dt);
                    std::thread::yield_now();
                }
            });
        }
        for rx in receivers {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let mut next_seq = 0u64;
                let mut last_epoch = 0u64;
                while next_seq < total_epochs {
                    let u = rx
                        .recv_timeout(Duration::from_secs(30))
                        .expect("subscriber starved");
                    assert!(u.lagged.is_none(), "ample buffers must never lag");
                    assert_eq!(u.seq, next_seq, "subscription seq gap");
                    assert!(u.epoch > last_epoch, "epochs must be strictly monotone");
                    last_epoch = u.epoch;
                    next_seq += 1;
                }
            });
        }
    });

    // Every response re-solved against the exact snapshot it was
    // answered from.
    let snapshots = snapshots.into_inner().unwrap();
    let responses = responses.into_inner().unwrap();
    crate::checks::check_eq(&(snapshots.len() as u64), &(total_epochs + 1), || {
        "fig_htap: every epoch must be recorded".to_string()
    });
    let mut preps: HashMap<u64, PreparedQuery> = HashMap::new();
    let mut oracle_checked = 0usize;
    for (pre, kk, resp) in &responses {
        crate::checks::check(resp.stats.epoch >= *pre, || {
            format!(
                "fig_htap: stale answer (issued at epoch {pre}, answered from {})",
                resp.stats.epoch
            )
        });
        let Some(snap) = snapshots.get(&resp.stats.epoch) else {
            crate::checks::check(false, || {
                format!(
                    "fig_htap: response from unrecorded epoch {}",
                    resp.stats.epoch
                )
            });
            continue;
        };
        let prep = preps
            .entry(resp.stats.epoch)
            .or_insert_with(|| PreparedQuery::new(q.clone(), Arc::clone(snap)));
        let k_eff = (*kk).min(resp.outcome.output_count);
        if k_eff == 0 {
            crate::checks::check_eq(&resp.outcome.cost, &0, || {
                format!(
                    "fig_htap: empty view must cost 0 at epoch {}",
                    resp.stats.epoch
                )
            });
            continue;
        }
        let oracle = prep
            .solve(k_eff, &AdpOptions::default())
            .expect("oracle solve");
        crate::checks::check_eq(&resp.outcome.cost, &oracle.cost, || {
            format!(
                "fig_htap: cost diverged at epoch {} k={kk}",
                resp.stats.epoch
            )
        });
        crate::checks::check_eq(&resp.outcome.achieved, &oracle.achieved, || {
            format!(
                "fig_htap: achieved diverged at epoch {} k={kk}",
                resp.stats.epoch
            )
        });
        crate::checks::check_eq(&resp.outcome.solution, &oracle.solution, || {
            format!(
                "fig_htap: solution diverged at epoch {} k={kk}",
                resp.stats.epoch
            )
        });
        oracle_checked += 1;
    }

    // The pinned epoch 0 still evaluates byte-identically to a fresh
    // build of the same data — the storm never touched its segments.
    let fresh0 = Arc::new(adp_datagen::zipf_pair(&ZipfConfig::new(
        n_htap,
        0.5,
        workload_seed(0x47A9),
        true,
    )));
    let pinned_eval = PreparedQuery::new(q.clone(), pinned).eval();
    let fresh_eval = PreparedQuery::new(q.clone(), fresh0).eval();
    crate::checks::check_eq(&pinned_eval.outputs, &fresh_eval.outputs, || {
        "fig_htap: pinned epoch 0 drifted under the storm".to_string()
    });

    let mut mlat = mutation_lat.into_inner().unwrap();
    mlat.sort_by(f64::total_cmp);
    let mut slat = solve_lat.into_inner().unwrap();
    slat.sort_by(f64::total_cmp);
    let pct = |v: &[f64], p: f64| v[((v.len() as f64 * p) as usize).min(v.len() - 1)];
    let stats = svc.stats();
    crate::checks::check_eq(&stats.epoch_bumps, &total_epochs, || {
        "fig_htap: every mutation must bump the epoch".to_string()
    });
    crate::checks::check_eq(&stats.lagged_drops, &0u64, || {
        "fig_htap: ample buffers must never lag".to_string()
    });
    crate::checks::check(pct(&mlat, 0.99) < 250.0, || {
        format!(
            "fig_htap: mutation p99 {:.3} ms — the write path must not wait on pinned readers",
            pct(&mlat, 0.99)
        )
    });
    let storm = HtapStormRecord {
        n: n_htap,
        solvers,
        mutators,
        subscribers: subs_n,
        epochs: total_epochs,
        responses: responses.len(),
        oracle_checked,
        mutation_p50_ms: pct(&mlat, 0.5),
        mutation_p99_ms: pct(&mlat, 0.99),
        solve_p50_ms: pct(&slat, 0.5),
        solve_p99_ms: pct(&slat, 0.99),
        updates_pushed: stats.updates_pushed,
        lagged_drops: stats.lagged_drops,
    };
    println!(
        "      mutation p50 {:.4} ms, p99 {:.4} ms; solve p50 {:.3} ms, p99 {:.3} ms; \
         {} of {} answers oracle-checked",
        storm.mutation_p50_ms,
        storm.mutation_p99_ms,
        storm.solve_p50_ms,
        storm.solve_p99_ms,
        storm.oracle_checked,
        storm.responses
    );

    let json = htap_json(
        batches,
        batch_size,
        &write_records,
        install_growth,
        rebuild_growth,
        &storm,
    );
    let path = "BENCH_htap.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} bytes)", json.len());
}

/// One input size's write-path record for `BENCH_htap.json`.
struct HtapWriteRecord {
    n: usize,
    install_ms_per_batch: f64,
    rebuild_ms_per_batch: f64,
}

/// The Phase B storm record for `BENCH_htap.json`.
struct HtapStormRecord {
    n: usize,
    solvers: usize,
    mutators: usize,
    subscribers: usize,
    epochs: u64,
    responses: usize,
    oracle_checked: usize,
    mutation_p50_ms: f64,
    mutation_p99_ms: f64,
    solve_p50_ms: f64,
    solve_p99_ms: f64,
    updates_pushed: u64,
    lagged_drops: u64,
}

/// Hand-rolled JSON (the workspace takes no serialization dependency).
fn htap_json(
    batches: usize,
    batch_size: usize,
    write: &[HtapWriteRecord],
    install_growth: f64,
    rebuild_growth: f64,
    storm: &HtapStormRecord,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"figure\": \"fig-htap\",\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str("  \"write_path\": {\n");
    out.push_str(&format!(
        "    \"batches\": {batches},\n    \"batch_size\": {batch_size},\n"
    ));
    out.push_str("    \"sizes\": [\n");
    for (i, r) in write.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"n\": {}, \"install_ms_per_batch\": {:.4}, \
             \"rebuild_ms_per_batch\": {:.4}}}{}\n",
            r.n,
            r.install_ms_per_batch,
            r.rebuild_ms_per_batch,
            if i + 1 == write.len() { "" } else { "," }
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"install_growth_10x\": {install_growth:.3},\n    \
         \"rebuild_growth_10x\": {rebuild_growth:.3}\n  }},\n"
    ));
    out.push_str(&format!(
        "  \"htap\": {{\"n\": {}, \"solvers\": {}, \"mutators\": {}, \"subscribers\": {}, \
         \"epochs\": {}, \"responses\": {}, \"oracle_checked\": {}, \
         \"mutation_p50_ms\": {:.4}, \"mutation_p99_ms\": {:.4}, \
         \"solve_p50_ms\": {:.4}, \"solve_p99_ms\": {:.4}, \
         \"updates_pushed\": {}, \"lagged_drops\": {}}}\n}}\n",
        storm.n,
        storm.solvers,
        storm.mutators,
        storm.subscribers,
        storm.epochs,
        storm.responses,
        storm.oracle_checked,
        storm.mutation_p50_ms,
        storm.mutation_p99_ms,
        storm.solve_p50_ms,
        storm.solve_p99_ms,
        storm.updates_pushed,
        storm.lagged_drops
    ));
    out
}

/// `fig_scale`: paper-scale storage and parallel-join scaling. For each
/// input size (the full ladder tops out at 3M rows, 10× the largest
/// size any other figure touches) the harness:
///
/// 1. streams a TPC-H chain instance straight into the columnar stores
///    and reports [`Database::memory_report`] (tuples, interned
///    symbols, resident bytes — the numbers behind the ~8 B/tuple
///    claim);
/// 2. sweeps worker counts with **local** pools, timing the partitioned
///    index build ([`QueryPlan::build_indexes_on`]), the chunk-parallel
///    probe ([`QueryPlan::execute_on`]), and one delta greedy scoring
///    round (`score_range` fan-out) at each count;
/// 3. checks — not just reports — that every parallel result is
///    **byte-identical** to the single-worker run (eval results and
///    profit maps alike), and that a memory-budgeted build degrades to
///    fewer partitions with a recorded note while still answering
///    identically;
/// 4. writes the whole record as `BENCH_scale.json` next to the CSV
///    lines.
///
/// On a single-core box the sweep still runs (pools oversubscribe);
/// speedups are reported as measured, whatever they are.
///
/// [`Database::memory_report`]: adp_engine::database::Database::memory_report
/// [`QueryPlan::build_indexes_on`]: adp_engine::plan::QueryPlan::build_indexes_on
/// [`QueryPlan::execute_on`]: adp_engine::plan::QueryPlan::execute_on
pub fn fig_scale() {
    use adp_datagen::tpch::TpchConfig;
    use adp_engine::delta::{DeltaProvenance, RangeScores};
    use adp_engine::plan::{IndexBuildOptions, QueryPlan};
    use adp_engine::provenance::ProvenanceIndex;
    use adp_runtime::ThreadPool;

    let sizes = size_ladder(&[300_000, 1_000_000, 3_000_000], &[30_000, 100_000]);
    let threads_sweep: Vec<usize> = {
        let cap = crate::cli::args()
            .threads
            .unwrap_or_else(adp_runtime::auto_threads)
            .max(4);
        let mut v = vec![1usize];
        let mut t = 2;
        while t <= cap {
            v.push(t);
            t *= 2;
        }
        v
    };
    let q = queries::q1();
    let mut fig = Figure::new(
        "fig-scale",
        "Columnar storage + partition-parallel joins at paper scale",
    );
    println!("  worker sweep: {threads_sweep:?} (local pools; global pool untouched)");
    let mut size_records = Vec::new();

    for &n in &sizes {
        let start = Instant::now();
        // No hot part: the σPK=0 skew of the selection figures makes
        // |witnesses| quadratic in n, which would measure output blowup
        // rather than engine scaling. With it off the chain's fan-out is
        // constant and |witnesses| ≈ 2.2 n across the whole ladder.
        let cfg = TpchConfig {
            hot_part_share: 0.0,
            ..TpchConfig::scaled(n, workload_seed(0x5CA1))
        };
        let db = adp_datagen::tpch_chain(&cfg);
        let gen_ms = start.elapsed().as_secs_f64() * 1e3;
        let mem = db.memory_report();
        println!(
            "  n={n}: generated {} tuples in {gen_ms:.0} ms, {} symbols, \
             {} bytes resident ({:.1} B/tuple)",
            mem.total_tuples,
            mem.total_symbols,
            mem.total_bytes,
            mem.bytes_per_tuple()
        );
        fig.push("datagen [ms]", n as f64, gen_ms, u64::MAX);
        fig.push(
            "storage [B/tuple]",
            n as f64,
            mem.bytes_per_tuple(),
            u64::MAX,
        );

        let plan = QueryPlan::new(&db, q.atoms(), q.head());
        // Baseline: one worker, one partition, one chunk.
        let mut baseline: Option<(adp_engine::EvalResult, Vec<_>)> = None;
        let mut thread_records = Vec::new();
        let mut prov_ms = 0.0f64;
        for &t in &threads_sweep {
            let pool = ThreadPool::new(t);

            let start = Instant::now();
            let idx = plan.build_indexes_on(&db, &pool, IndexBuildOptions::default());
            let build_ms = start.elapsed().as_secs_f64() * 1e3;

            let start = Instant::now();
            let eval = plan.execute_on(&db, &idx, None, &pool);
            let exec_ms = start.elapsed().as_secs_f64() * 1e3;

            // One greedy scoring round: the per-round cost the solvers
            // pay, fanned out over this pool.
            let start = Instant::now();
            let mut delta = DeltaProvenance::new_unscored(&eval).expect("fits u32 ids");
            let slots = delta.output_slots();
            let chunk = slots.div_ceil(pool.threads() * 4).max(1);
            let parts: Vec<RangeScores> = pool.par_indexed(slots.div_ceil(chunk), |i| {
                delta.score_range(i * chunk, ((i + 1) * chunk).min(slots))
            });
            delta.install_scores(parts);
            let score_ms = start.elapsed().as_secs_f64() * 1e3;

            if t == 1 {
                // Provenance incidence build, timed once per size on the
                // sequential path for the JSON record.
                let start = Instant::now();
                let prov = ProvenanceIndex::try_new(&eval).expect("fits u32 ids");
                prov_ms = start.elapsed().as_secs_f64() * 1e3;
                assert_eq!(prov.live_outputs(), eval.output_count());
            }

            match &baseline {
                None => baseline = Some((eval, delta.profits().to_vec())),
                Some((base_eval, base_profits)) => {
                    crate::checks::check(*base_eval == eval, || {
                        format!("fig_scale n={n} t={t}: parallel eval diverged from t=1")
                    });
                    crate::checks::check(base_profits.as_slice() == delta.profits(), || {
                        format!("fig_scale n={n} t={t}: parallel profits diverged from t=1")
                    });
                }
            }

            fig.push(&format!("build t={t}"), n as f64, build_ms, u64::MAX);
            fig.push(&format!("probe t={t}"), n as f64, exec_ms, u64::MAX);
            fig.push(&format!("score t={t}"), n as f64, score_ms, u64::MAX);
            thread_records.push((t, build_ms, exec_ms, score_ms, idx.partition_counts()));
        }
        let (base_eval, _) = baseline.as_ref().expect("sweep includes t=1");
        let witnesses = base_eval.witness_count();
        let outputs = base_eval.output_count();
        println!("  n={n}: |witnesses|={witnesses}, |Q(D)|={outputs}, prov build {prov_ms:.0} ms");

        // Memory-budgeted build: half the unconstrained estimate forces
        // the degradation path; the result must be identical anyway.
        let full_pool = ThreadPool::new(*threads_sweep.last().unwrap());
        let unconstrained = plan.build_indexes_on(&db, &full_pool, IndexBuildOptions::default());
        let budget = (mem.total_bytes / 2).max(1);
        let start = Instant::now();
        let budgeted = plan.build_indexes_on(
            &db,
            &full_pool,
            IndexBuildOptions {
                partitions: None,
                memory_budget_bytes: Some(budget),
            },
        );
        let budget_ms = start.elapsed().as_secs_f64() * 1e3;
        crate::checks::check_eq(
            &plan.execute_on(&db, &unconstrained, None, &full_pool),
            &plan.execute_on(&db, &budgeted, None, &full_pool),
            || format!("fig_scale n={n}: budgeted index changed the result"),
        );
        for note in budgeted.notes() {
            println!("  n={n} budget note: {note}");
        }

        size_records.push(ScaleRecord {
            n,
            gen_ms,
            mem,
            witnesses,
            outputs,
            prov_ms,
            threads: thread_records,
            budget_bytes: budget,
            budget_ms,
            budget_partitions: budgeted.partition_counts(),
            budget_notes: budgeted.notes().to_vec(),
        });
    }
    fig.finish();

    let json = scale_json(&sizes, &threads_sweep, &size_records);
    let path = "BENCH_scale.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} bytes)", json.len());
}

/// One input size's record for `BENCH_scale.json`.
struct ScaleRecord {
    n: usize,
    gen_ms: f64,
    mem: adp_engine::database::MemoryReport,
    witnesses: u64,
    outputs: u64,
    prov_ms: f64,
    /// `(threads, build_ms, exec_ms, score_ms, partition_counts)`.
    threads: Vec<(usize, f64, f64, f64, Vec<usize>)>,
    budget_bytes: usize,
    budget_ms: f64,
    budget_partitions: Vec<usize>,
    budget_notes: Vec<String>,
}

/// Hand-rolled JSON (the workspace takes no serialization dependency).
fn scale_json(sizes: &[usize], threads: &[usize], records: &[ScaleRecord]) -> String {
    fn esc(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }
    fn ms(v: f64) -> String {
        format!("{:.3}", v)
    }
    let mut out = String::new();
    out.push_str("{\n  \"figure\": \"fig-scale\",\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str(&format!(
        "  \"sizes\": [{}],\n",
        sizes
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"thread_sweep\": [{}],\n",
        threads
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"n\": {},\n", r.n));
        out.push_str(&format!("      \"gen_ms\": {},\n", ms(r.gen_ms)));
        out.push_str(&format!("      \"witnesses\": {},\n", r.witnesses));
        out.push_str(&format!("      \"outputs\": {},\n", r.outputs));
        out.push_str(&format!("      \"prov_build_ms\": {},\n", ms(r.prov_ms)));
        out.push_str("      \"memory\": {\n");
        out.push_str(&format!(
            "        \"total_tuples\": {}, \"total_symbols\": {}, \"total_bytes\": {}, \
             \"bytes_per_tuple\": {:.2},\n",
            r.mem.total_tuples,
            r.mem.total_symbols,
            r.mem.total_bytes,
            r.mem.bytes_per_tuple()
        ));
        out.push_str("        \"relations\": [\n");
        for (j, rel) in r.mem.relations.iter().enumerate() {
            out.push_str(&format!(
                "          {{\"name\": \"{}\", \"tuples\": {}, \"arity\": {}, \
                 \"symbols\": {}, \"approx_bytes\": {}}}{}\n",
                esc(&rel.name),
                rel.tuples,
                rel.arity,
                rel.symbols,
                rel.approx_bytes,
                if j + 1 == r.mem.relations.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("        ]\n      },\n");
        out.push_str("      \"threads\": [\n");
        for (j, (t, build, exec, score, parts)) in r.threads.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"threads\": {t}, \"build_ms\": {}, \"exec_ms\": {}, \
                 \"score_ms\": {}, \"partitions\": [{}]}}{}\n",
                ms(*build),
                ms(*exec),
                ms(*score),
                parts
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
                if j + 1 == r.threads.len() { "" } else { "," }
            ));
        }
        out.push_str("      ],\n");
        out.push_str("      \"budget\": {\n");
        out.push_str(&format!(
            "        \"budget_bytes\": {}, \"build_ms\": {}, \"partitions\": [{}],\n",
            r.budget_bytes,
            ms(r.budget_ms),
            r.budget_partitions
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("        \"notes\": [");
        out.push_str(
            &r.budget_notes
                .iter()
                .map(|n| format!("\"{}\"", esc(n)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("]\n      }\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// `fig_open_loop`: the serving knee under open-loop (Poisson) load.
///
/// Closed-loop benchmarks (like `fig_serve`) hide overload: a slow
/// response slows the *generator* down. This harness does the opposite
/// — requests arrive on a Poisson schedule that does not care whether
/// the server kept up, and each request's latency is measured from its
/// *scheduled* arrival, so queueing delay counts. The sweep offers
/// multiples of the measured saturation throughput and reports, per
/// offered rate:
///
/// * p50 / p95 / p99 latency of completed requests vs an SLO derived
///   from the calibration run (`max(5 ms, 10× closed-loop mean)`),
/// * the shed rate — requests the server refused with a typed
///   `Overloaded` frame (admission control doing its job), and
/// * goodput — completed (non-shed) requests per second.
///
/// Expected shape, checked not just reported: p99 within the SLO at
/// ≤ 50 % of saturation, and a measurable knee past it (p99 blowing
/// through the SLO and/or typed sheds appearing). Every response still
/// travels the real wire path: TCP loopback, framed protocol, one
/// connection per load worker. Writes `BENCH_open_loop.json`.
pub fn fig_open_loop() {
    use adp_server::client::Client;
    use adp_server::server::{Server, ServerConfig};
    use adp_service::{Service, ServiceConfig, Target};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    // Deterministic exponential inter-arrival sampler (splitmix64 under
    // the hood; the workspace takes no RNG dependency in adp-bench).
    struct Arrivals {
        state: u64,
    }
    impl Arrivals {
        fn next_f64(&mut self) -> f64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        }
        /// Exponential with rate `lambda` (per second), in seconds.
        fn exp(&mut self, lambda: f64) -> f64 {
            -(1.0 - self.next_f64()).ln() / lambda
        }
    }

    fn percentile(sorted: &[f64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    let quick = quick_mode();
    let n = if quick { 2_000 } else { 20_000 };
    // Admission cap below the worker count, so overload has somewhere
    // to go: the excess workers' requests shed with a typed frame.
    let cap = if quick { 4 } else { 8 };
    let workers = cap + 2;
    let cal_rounds = if quick { 60 } else { 200 };
    let point_secs = if quick { 1.2 } else { 4.0 };
    let multipliers: &[f64] = if quick {
        &[0.25, 0.5, 1.0, 2.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0]
    };

    let q = queries::qpath();
    let q_text = format!("{q}");
    let db = adp_datagen::zipf_pair(&ZipfConfig::new(n, 0.5, workload_seed(0x09E7), true));
    let svc = Arc::new(Service::with_config(
        db,
        ServiceConfig {
            max_in_flight: cap,
            ..ServiceConfig::default()
        },
    ));
    let server = Server::start(
        Arc::clone(&svc),
        None,
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.addr();
    let targets = [1u64, 2, 3, 4];

    // ---- Calibration: closed loop at exactly the admission cap. ----
    // `cap` blocking workers can never trip admission control (each has
    // one request in flight), so this measures clean saturation: the
    // aggregate completion rate is the knee, and the mean latency seeds
    // the SLO.
    let cal_start = Instant::now();
    let cal_total_micros = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for w in 0..cap {
        let total_micros = Arc::clone(&cal_total_micros);
        let q_text = q_text.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("calibration connect");
            let stmt = c.prepare(&q_text).expect("calibration prepare");
            for i in 0..cal_rounds {
                let k = targets[(w + i) % targets.len()];
                let t0 = Instant::now();
                c.solve_stmt(stmt, Target::Outputs(k), None)
                    .expect("calibration solve");
                total_micros.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().expect("calibration worker");
    }
    let cal_wall = cal_start.elapsed().as_secs_f64();
    let cal_count = (cap * cal_rounds) as f64;
    let saturation_qps = cal_count / cal_wall;
    let mean_ms = cal_total_micros.load(Ordering::Relaxed) as f64 / cal_count / 1_000.0;
    let slo_p99_ms = (10.0 * mean_ms).max(5.0);
    println!(
        "calibration: {cal_count:.0} solves in {cal_wall:.2}s -> saturation {saturation_qps:.0} \
         req/s, mean {mean_ms:.3} ms, SLO p99 <= {slo_p99_ms:.3} ms"
    );

    // ---- The open-loop sweep. ----
    struct PointRecord {
        multiplier: f64,
        offered_qps: f64,
        sent: usize,
        shed: usize,
        transport_errors: usize,
        goodput_qps: f64,
        p50_ms: f64,
        p95_ms: f64,
        p99_ms: f64,
    }

    let mut figure = Figure::new(
        "fig-open-loop",
        "Open-loop serving: latency vs offered load (Poisson arrivals)",
    );
    let mut points: Vec<PointRecord> = Vec::new();
    for &mult in multipliers {
        let offered = (saturation_qps * mult).max(1.0);
        // One shared Poisson schedule, dealt round-robin to the load
        // workers: the aggregate arrival process is the target rate and
        // does not slow down when the server does.
        let mut arrivals = Arrivals {
            state: workload_seed(0x09E7) ^ (mult * 1e4) as u64,
        };
        let mut schedule: Vec<f64> = Vec::new();
        let mut t = 0.0;
        while t < point_secs && schedule.len() < 60_000 {
            t += arrivals.exp(offered);
            schedule.push(t);
        }
        let sent = schedule.len();

        let mut handles = Vec::new();
        for w in 0..workers {
            let my_arrivals: Vec<(usize, f64)> = schedule
                .iter()
                .copied()
                .enumerate()
                .filter(|(i, _)| i % workers == w)
                .collect();
            let q_text = q_text.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("load connect");
                let stmt = c.prepare(&q_text).expect("load prepare");
                let start = Instant::now();
                let mut latencies_ms: Vec<f64> = Vec::with_capacity(my_arrivals.len());
                let (mut shed, mut transport_errors) = (0usize, 0usize);
                for (i, at) in my_arrivals {
                    let due = Duration::from_secs_f64(at);
                    if let Some(wait) = due.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let k = targets[i % targets.len()];
                    match c.solve_stmt(stmt, Target::Outputs(k), None) {
                        // Latency from the *scheduled* arrival: queueing
                        // behind a busy worker counts against the SLO.
                        Ok(_) => latencies_ms
                            .push((start.elapsed().as_secs_f64() - at).max(0.0) * 1_000.0),
                        Err(e) if e.is_overloaded() => shed += 1,
                        Err(_) => transport_errors += 1,
                    }
                }
                (latencies_ms, shed, transport_errors)
            }));
        }
        let run_start = Instant::now();
        let mut latencies: Vec<f64> = Vec::new();
        let (mut shed, mut transport_errors) = (0usize, 0usize);
        for h in handles {
            let (l, s, t) = h.join().expect("load worker");
            latencies.extend(l);
            shed += s;
            transport_errors += t;
        }
        let wall = run_start.elapsed().as_secs_f64().max(point_secs);
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let record = PointRecord {
            multiplier: mult,
            offered_qps: offered,
            sent,
            shed,
            transport_errors,
            goodput_qps: latencies.len() as f64 / wall,
            p50_ms: percentile(&latencies, 0.50),
            p95_ms: percentile(&latencies, 0.95),
            p99_ms: percentile(&latencies, 0.99),
        };
        println!(
            "offered {:>7.0} req/s ({mult:>4.2}x): p50 {:>8.3} ms, p99 {:>9.3} ms, \
             goodput {:>7.0} req/s, shed {:>5.1}% ({} of {})",
            record.offered_qps,
            record.p50_ms,
            record.p99_ms,
            record.goodput_qps,
            100.0 * record.shed as f64 / record.sent.max(1) as f64,
            record.shed,
            record.sent
        );
        figure.push("p99 ms", mult, record.p99_ms, record.shed as u64);
        points.push(record);
    }

    // ---- Overload probe: typed sheds past the knee. ----
    // The sweep's blocking workers can convoy on small machines (one
    // runnable solver at a time never trips admission control), so the
    // shed behaviour gets its own unambiguous probe: 3× the admission
    // cap of clients release one *heavy* solve each simultaneously.
    // Those solves are long enough that the OS must interleave them,
    // so in-flight exceeds the cap and the excess must come back as
    // typed `Overloaded` frames — never dropped connections.
    let burst = cap * 3;
    let (mut probe_ok, mut probe_shed, mut probe_err) = (0u64, 0u64, 0u64);
    // Whether a given burst overlaps enough to trip the cap is up to
    // the OS scheduler; a couple of rounds make the signal reliable
    // without weakening the assertion (any shed is a typed frame).
    for _round in 0..3 {
        let barrier = Arc::new(std::sync::Barrier::new(burst));
        let mut handles = Vec::new();
        for _ in 0..burst {
            let barrier = Arc::clone(&barrier);
            let q_text = q_text.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("probe connect");
                let stmt = c.prepare(&q_text).expect("probe prepare");
                barrier.wait();
                match c.solve_stmt(stmt, Target::Ratio(0.9), None) {
                    Ok(_) => (1u64, 0u64, 0u64),
                    Err(e) if e.is_overloaded() => (0, 1, 0),
                    Err(_) => (0, 0, 1),
                }
            }));
        }
        for h in handles {
            let (ok, shed, err) = h.join().expect("probe worker");
            probe_ok += ok;
            probe_shed += shed;
            probe_err += err;
        }
        if probe_shed > 0 {
            break;
        }
    }
    println!(
        "overload probe: bursts of {burst} simultaneous heavy solves vs cap {cap} -> \
         {probe_ok} served, {probe_shed} shed (typed), {probe_err} transport errors"
    );
    server.stop();

    // ---- The knee must be measurable, not just plotted. ----
    let total_transport: usize = points.iter().map(|p| p.transport_errors).sum();
    crate::checks::check(total_transport == 0, || {
        format!("open-loop: {total_transport} transport errors (sheds must be typed frames)")
    });
    for p in points.iter().filter(|p| p.multiplier <= 0.5) {
        if quick {
            // One-core CI boxes oversleep the Poisson schedule under
            // thread contention, which shows up as generator (not
            // server) tail noise; check the p95 against a padded SLO
            // there and leave the strict p99 gate to the full run.
            crate::checks::check(p.p95_ms <= slo_p99_ms.max(50.0), || {
                format!(
                    "open-loop: p95 {:.3} ms blows the padded {:.3} ms SLO at {:.2}x saturation",
                    p.p95_ms,
                    slo_p99_ms.max(50.0),
                    p.multiplier
                )
            });
        } else {
            crate::checks::check(p.p99_ms <= slo_p99_ms, || {
                format!(
                    "open-loop: p99 {:.3} ms blows the {:.3} ms SLO at {:.2}x saturation",
                    p.p99_ms, slo_p99_ms, p.multiplier
                )
            });
        }
    }
    let low = points.first().expect("at least one point");
    let top = points.last().expect("at least one point");
    crate::checks::check(top.p99_ms > low.p99_ms || top.shed > 0, || {
        format!(
            "open-loop: no knee — p99 {:.3} -> {:.3} ms and zero sheds at {:.2}x",
            low.p99_ms, top.p99_ms, top.multiplier
        )
    });
    crate::checks::check(probe_shed > 0, || {
        format!(
            "open-loop: {burst} simultaneous heavy solves against an admission cap of {cap} \
             produced no typed sheds"
        )
    });
    crate::checks::check(probe_ok >= 1 && probe_err == 0, || {
        format!(
            "open-loop probe: {probe_ok} served, {probe_err} transport errors \
             (overload must degrade, not break)"
        )
    });

    // ---- BENCH_open_loop.json ----
    let mut json = String::new();
    json.push_str("{\n  \"figure\": \"fig-open-loop\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"calibration\": {{\"workers\": {cap}, \"mean_ms\": {mean_ms:.4}, \
         \"saturation_qps\": {saturation_qps:.1}, \"slo_p99_ms\": {slo_p99_ms:.4}}},\n"
    ));
    json.push_str(&format!(
        "  \"load_workers\": {workers},\n  \"admission_cap\": {cap},\n"
    ));
    json.push_str(&format!(
        "  \"overload_probe\": {{\"burst\": {burst}, \"served\": {probe_ok}, \
         \"shed\": {probe_shed}, \"transport_errors\": {probe_err}}},\n  \"points\": [\n"
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"multiplier\": {:.2}, \"offered_qps\": {:.1}, \"sent\": {}, \
             \"completed\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \"goodput_qps\": {:.1}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"within_slo\": {}}}{}\n",
            p.multiplier,
            p.offered_qps,
            p.sent,
            p.sent - p.shed - p.transport_errors,
            p.shed,
            p.shed as f64 / p.sent.max(1) as f64,
            p.goodput_qps,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            p.p99_ms <= slo_p99_ms,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_open_loop.json";
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} bytes)", json.len());
    figure.finish();
}
