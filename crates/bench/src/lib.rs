//! # adp-bench
//!
//! Experiment harness regenerating every figure of the paper's evaluation
//! (§8, Figures 7–29). Each binary prints the same series the paper
//! plots, as aligned text tables plus machine-readable CSV lines of the
//! form `csv,<figure>,<series>,<x>,<y>`.
//!
//! Absolute numbers differ from the paper (we replace PostgreSQL+Java
//! with a pure in-memory Rust engine and scale 10M-row workloads to
//! laptop sizes); the *shape* — who wins, by what factor, where methods
//! stop scaling — is the reproduction target. See `EXPERIMENTS.md`.

#![forbid(unsafe_code)]

pub mod checks;
pub mod cli;
pub mod experiments;

use adp_core::query::Query;
use adp_core::solver::{AdpOptions, AdpOutcome, PreparedQuery};
use adp_engine::database::Database;
use std::sync::Arc;
use std::time::Instant;

/// The removal ratios ρ the paper sweeps.
pub const RATIOS: [f64; 4] = [0.10, 0.25, 0.50, 0.75];

/// One measured data point.
#[derive(Clone, Debug)]
pub struct Point {
    /// Series label (e.g. "Greedy, rho=10%").
    pub series: String,
    /// X value (input size or ratio).
    pub x: f64,
    /// Elapsed milliseconds.
    pub millis: f64,
    /// Solution quality: tuples removed (u64::MAX = not applicable).
    pub quality: u64,
}

/// Collects and prints the points of one figure.
pub struct Figure {
    /// Figure identifier, e.g. "fig07".
    pub id: String,
    /// What the figure shows.
    pub title: String,
    points: Vec<Point>,
}

impl Figure {
    /// Starts a figure.
    pub fn new(id: &str, title: &str) -> Self {
        println!("\n=== {id}: {title} ===");
        Figure {
            id: id.to_owned(),
            title: title.to_owned(),
            points: Vec::new(),
        }
    }

    /// Records and echoes a point.
    pub fn push(&mut self, series: &str, x: f64, millis: f64, quality: u64) {
        println!(
            "  {series:<28} x={x:<12} time={millis:>10.2} ms{}",
            if quality == u64::MAX {
                String::new()
            } else {
                format!("  removed_tuples={quality}")
            }
        );
        self.points.push(Point {
            series: series.to_owned(),
            x,
            millis,
            quality,
        });
    }

    /// Emits the machine-readable CSV block.
    pub fn finish(self) {
        for p in &self.points {
            if p.quality == u64::MAX {
                println!("csv,{},{},{},{:.3}", self.id, p.series, p.x, p.millis);
            } else {
                println!(
                    "csv,{},{},{},{:.3},{}",
                    self.id, p.series, p.x, p.millis, p.quality
                );
            }
        }
        let _ = self.title;
    }
}

/// Compiles a query against a workload database once, so every solve in
/// a ρ-sweep reuses the same plan, hash indexes, and root evaluation —
/// from every worker: `PreparedQuery` is `Send + Sync`.
pub fn prepare(query: &Query, db: Database) -> PreparedQuery {
    PreparedQuery::new(query.clone(), Arc::new(db))
}

/// Times one solver invocation against a prepared query. The first call
/// on a fresh [`PreparedQuery`] pays the evaluation; subsequent calls
/// measure pure solver time — the plan-once/execute-many regime the
/// harness reports.
pub fn timed_solve(prep: &PreparedQuery, k: u64, opts: &AdpOptions) -> (f64, AdpOutcome) {
    let start = Instant::now();
    let out = prep
        .solve(k, opts)
        .unwrap_or_else(|e| panic!("{} k={k}: {e}", prep.query()));
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// `k = ceil(ρ · |Q(D)|)`, clamped to `1..=|Q(D)|`.
pub fn k_for_ratio(total: u64, ratio: f64) -> u64 {
    ((total as f64 * ratio).ceil() as u64).clamp(1, total.max(1))
}

/// One (k, options) cell of a ρ-sweep, labeled for the figure series.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Series label, e.g. `"Greedy, rho=25%"`.
    pub series: String,
    /// The removal target for this cell.
    pub k: u64,
    /// Solver configuration for this cell.
    pub opts: AdpOptions,
}

impl SweepCell {
    /// Builds a cell.
    pub fn new(series: impl Into<String>, k: u64, opts: AdpOptions) -> Self {
        SweepCell {
            series: series.into(),
            k,
            opts,
        }
    }
}

/// Solves every cell of a ρ-sweep against one shared [`PreparedQuery`],
/// fanning the cells out across the global [`adp_runtime`] pool (one
/// worker per cell, dynamically balanced). Results come back **in cell
/// order** and are byte-identical to the sequential loop — per-cell
/// wall-clock times are measured inside each cell, exactly like
/// [`timed_solve`].
///
/// With a single-worker pool (`--threads 1`) this *is* the sequential
/// loop.
pub fn sweep_solve(prep: &PreparedQuery, cells: &[SweepCell]) -> Vec<(f64, AdpOutcome)> {
    adp_runtime::parallel_sweep(adp_runtime::global(), cells, |_, cell| {
        timed_solve(prep, cell.k, &cell.opts)
    })
}

/// The seed a figure's workload generator should use: the figure's
/// default, or — under `--seed S` — the default combined with `S`
/// (XOR), so a user-chosen seed varies every figure's data while
/// figures still draw distinct instances.
pub fn workload_seed(figure_default: u64) -> u64 {
    match cli::args().seed {
        Some(s) => s ^ figure_default,
        None => figure_default,
    }
}

/// Whether the harness runs in quick mode (smaller sizes, for CI).
/// Binaries set this through [`cli::init`]; library and test callers
/// fall back to the `ADP_BENCH_QUICK` environment variable.
pub fn quick_mode() -> bool {
    cli::args().quick
}

/// Input size ladder: full mode walks further up the paper's 1k..10M
/// sweep than quick mode does.
pub fn size_ladder(full: &[usize], quick: &[usize]) -> Vec<usize> {
    if quick_mode() {
        quick.to_vec()
    } else {
        full.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_for_ratio_clamps() {
        assert_eq!(k_for_ratio(100, 0.10), 10);
        assert_eq!(k_for_ratio(100, 0.0), 1);
        assert_eq!(k_for_ratio(3, 0.9), 3);
    }

    #[test]
    fn figure_collects_points() {
        let mut f = Figure::new("t", "test");
        f.push("s", 1.0, 2.0, 3);
        assert_eq!(f.points.len(), 1);
        f.finish();
    }

    #[test]
    fn workload_seed_defaults_without_cli_override() {
        // Library/test callers never ran `cli::init`, so the figure
        // default passes through unchanged.
        assert_eq!(workload_seed(0xF16), 0xF16);
    }

    #[test]
    fn sweep_solve_matches_sequential_loop() {
        use adp_core::query::parse_query;
        use adp_engine::schema::attrs;

        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("R3", attrs(&["B"]), &[&[1], &[2]]);
        let prep = prepare(&q, db);
        let total = prep.output_count();
        let cells: Vec<SweepCell> = RATIOS
            .iter()
            .map(|&r| {
                SweepCell::new(
                    format!("rho={r}"),
                    k_for_ratio(total, r),
                    AdpOptions::default(),
                )
            })
            .collect();
        let swept = sweep_solve(&prep, &cells);
        assert_eq!(swept.len(), cells.len());
        for (cell, (_, out)) in cells.iter().zip(&swept) {
            let reference = prep.solve(cell.k, &cell.opts).unwrap();
            assert_eq!(out.cost, reference.cost, "{}", cell.series);
            assert_eq!(out.solution, reference.solution, "{}", cell.series);
        }
    }
}
