//! The procedural dichotomy `IsPtime(Q)` (Theorem 2, Algorithm 1).
//!
//! `IsPtime` alternately applies two complexity-preserving simplification
//! steps — removing universal attributes (Lemma 2) and decomposing a
//! disconnected query (Lemma 3) — until it reaches a base case:
//!
//! * boolean query → poly-time iff no triad (Theorem 1, Freire et al.),
//! * vacuum relation present → poly-time (Lemma 1),
//! * anything else ("Others") → NP-hard (Lemma 4).

use super::triad::find_triad;
use crate::query::Query;

/// One step of the `IsPtime` recursion, for tracing/teaching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecisionStep {
    /// Removed these universal attributes.
    RemovedUniversal(Vec<String>),
    /// Base case: boolean query without a triad — poly-time.
    BooleanNoTriad,
    /// Base case: boolean query with a triad on these atoms — NP-hard.
    BooleanTriad([usize; 3]),
    /// Base case: a vacuum relation exists — poly-time.
    VacuumRelation(String),
    /// Decomposed into connected components; each traced recursively.
    Decomposed(Vec<DecisionTrace>),
    /// Base case "Others": connected, non-boolean, no universal attribute,
    /// no vacuum relation — NP-hard (Lemma 4).
    Others,
}

/// A full trace of the `IsPtime` run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionTrace {
    /// The (sub)query this trace describes, rendered as text.
    pub query: String,
    /// The steps taken.
    pub steps: Vec<DecisionStep>,
    /// The verdict: `true` = ADP is poly-time solvable on this query.
    pub ptime: bool,
}

impl DecisionTrace {
    /// Renders the trace as an indented explanation, e.g. for CLIs:
    ///
    /// ```text
    /// Q(A,F,...) :- ...  =>  NP-hard
    ///   decomposed into 2 components
    ///     Q[3] ... => NP-hard (Others)
    ///     Q[2] ... => poly-time (vacuum relation R2)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let verdict = if self.ptime { "poly-time" } else { "NP-hard" };
        out.push_str(&format!("{pad}{}  =>  {verdict}\n", self.query));
        for step in &self.steps {
            match step {
                DecisionStep::RemovedUniversal(attrs) => {
                    out.push_str(&format!(
                        "{pad}  removed universal attributes {{{}}}\n",
                        attrs.join(",")
                    ));
                }
                DecisionStep::BooleanNoTriad => {
                    out.push_str(&format!("{pad}  boolean, no triad\n"));
                }
                DecisionStep::BooleanTriad(t) => {
                    out.push_str(&format!("{pad}  boolean with triad on atoms {t:?}\n"));
                }
                DecisionStep::VacuumRelation(r) => {
                    out.push_str(&format!("{pad}  vacuum relation {r}\n"));
                }
                DecisionStep::Decomposed(traces) => {
                    out.push_str(&format!(
                        "{pad}  decomposed into {} components:\n",
                        traces.len()
                    ));
                    for t in traces {
                        t.render_into(out, depth + 2);
                    }
                }
                DecisionStep::Others => {
                    out.push_str(&format!(
                        "{pad}  connected, non-boolean, no universal attribute, \
                         no vacuum relation (\"Others\", Lemma 4)\n"
                    ));
                }
            }
        }
    }
}

/// Decides poly-time solvability of `ADP(Q, D, k)` for all `D`, `k`
/// (Theorem 2). Runs in time polynomial in the query size.
pub fn is_ptime(q: &Query) -> bool {
    is_ptime_trace(q).ptime
}

/// [`is_ptime`] with a step-by-step trace.
pub fn is_ptime_trace(q: &Query) -> DecisionTrace {
    let mut steps = Vec::new();
    let mut query = q.clone();

    // Line 1: remove all universal attributes.
    let universal = query.universal_attrs();
    if !universal.is_empty() {
        steps.push(DecisionStep::RemovedUniversal(
            universal.iter().map(|a| a.name().to_owned()).collect(),
        ));
        query = query.without_attrs(&universal);
    }

    // Lines 2–5: boolean base case.
    if query.is_boolean() {
        let (step, ptime) = match find_triad(&query) {
            None => (DecisionStep::BooleanNoTriad, true),
            Some(t) => (DecisionStep::BooleanTriad(t), false),
        };
        steps.push(step);
        return DecisionTrace {
            query: q.to_string(),
            steps,
            ptime,
        };
    }

    // Lines 6–7: vacuum relation base case.
    if let Some(v) = query.atoms().iter().find(|a| a.is_vacuum()) {
        steps.push(DecisionStep::VacuumRelation(v.name().to_owned()));
        return DecisionTrace {
            query: q.to_string(),
            steps,
            ptime: true,
        };
    }

    // Lines 9–11: decompose a disconnected query.
    let components = query.connected_components();
    if components.len() > 1 {
        let traces: Vec<DecisionTrace> = components
            .iter()
            .map(|c| is_ptime_trace(&query.subquery(c)))
            .collect();
        let ptime = traces.iter().all(|t| t.ptime);
        steps.push(DecisionStep::Decomposed(traces));
        return DecisionTrace {
            query: q.to_string(),
            steps,
            ptime,
        };
    }

    // Line 12: "Others" — NP-hard.
    steps.push(DecisionStep::Others);
    DecisionTrace {
        query: q.to_string(),
        steps,
        ptime: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;

    fn ptime(text: &str) -> bool {
        is_ptime(&parse_query(text).unwrap())
    }

    #[test]
    fn example4_is_np_hard() {
        // Paper Example 4: Q1 (R1,R3,R4 component) lands in "Others".
        assert!(!ptime(
            "Q(A,F,G,H) :- R1(A,B), R2(F,G), R3(B,C), R4(C), R5(G,H)"
        ));
    }

    #[test]
    fn example4_easy_component_alone() {
        // The {R2, R5} part decomposes to vacuum relations: poly-time.
        assert!(ptime("Q(F,G,H) :- R2(F,G), R5(G,H)"));
    }

    #[test]
    fn core_queries_are_hard() {
        assert!(!ptime("Q(A,B) :- R1(A), R2(A,B), R3(B)")); // Qpath/Qcover
        assert!(!ptime("Q(A) :- R2(A,B), R3(B)")); // Qswing
        assert!(!ptime("Q(A) :- R1(A), R2(A,B), R3(B)")); // Qseesaw
    }

    #[test]
    fn boolean_dichotomy_matches_triads() {
        assert!(!ptime("Q() :- R1(A,B), R2(B,C), R3(C,A)")); // triangle
        assert!(!ptime("Q() :- R1(A,B,C), R2(A), R3(B), R4(C)")); // QT
        assert!(ptime("Q() :- R1(A,B), R2(B,C), R3(C,E)")); // chain
        assert!(ptime("Q() :- R1(A), R2(A,B), R3(B)")); // path
    }

    #[test]
    fn hierarchical_full_cq_is_easy() {
        assert!(ptime(
            "Q(A,B,C,E,F,H) :- R1(A,B,C), R2(A,B,F), R3(A,E), R4(A,E,H)"
        ));
    }

    #[test]
    fn universal_attribute_saves_the_day() {
        // §5.2.2: Q(A) over a chain with A everywhere is easy...
        assert!(ptime("Q(A) :- R1(A,C,E), R2(A,E,F), R3(A,F,H)"));
        // ...but selectively adding A,B makes it hard.
        assert!(!ptime("Q(A,B) :- R1(A,C,E), R2(A,B,E,F), R3(B,F,H)"));
    }

    #[test]
    fn strand_example_is_hard() {
        assert!(!ptime("Q(A,B,C) :- R1(A,B,E), R2(A,C,E)"));
    }

    #[test]
    fn vacuum_relation_is_easy() {
        assert!(ptime("Q(A) :- R(A,B), V()"));
    }

    #[test]
    fn full_singleton_queries_are_easy() {
        assert!(ptime("Q(A,B) :- R1(A), R2(A,B)"));
        assert!(ptime(
            "Q7(A,B,C,D,E,F,G) :- R1(A,B,C), R2(A,B,C,D,E), R3(A,B,C,D,G), R4(A,B,C,F)"
        ));
    }

    #[test]
    fn q8_disconnected_easy() {
        assert!(ptime(
            "Q8(A1,B1,A2,B2,A3,B3) :- R11(A1), R12(A1,B1), R21(A2), R22(A2,B2), R31(A3), R32(A3,B3)"
        ));
    }

    #[test]
    fn snap_queries_are_hard() {
        assert!(!ptime("Q2(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)"));
        assert!(!ptime("Q3(A,B,C) :- R1(A,B), R2(B,C), R3(C,A)"));
        assert!(!ptime("Q4(A,C,E,G) :- R1(A,B), R2(B,C), R3(E,F), R4(F,G)"));
        assert!(!ptime("Q5(A,B,C) :- R1(A,E), R2(B,E), R3(C,E)"));
    }

    #[test]
    fn trace_records_steps() {
        let t = is_ptime_trace(&parse_query("Q(A) :- R1(A,B), R2(A,B,C)").unwrap());
        assert!(t.ptime);
        assert!(matches!(t.steps[0], DecisionStep::RemovedUniversal(_)));
    }

    #[test]
    fn render_explains_the_decision() {
        let t = is_ptime_trace(
            &parse_query("Q(A,F,G,H) :- R1(A,B), R2(F,G), R3(B,C), R4(C), R5(G,H)").unwrap(),
        );
        let text = t.render();
        assert!(text.contains("NP-hard"), "{text}");
        assert!(text.contains("decomposed into 2 components"), "{text}");
        assert!(text.contains("Others"), "{text}");
        // the easy component mentions its vacuum/boolean resolution
        assert!(text.contains("poly-time"), "{text}");
    }

    #[test]
    fn render_shows_universal_removal() {
        let t = is_ptime_trace(&parse_query("Q(A) :- R1(A,B), R2(A,B,C)").unwrap());
        let text = t.render();
        assert!(text.contains("removed universal attributes {A}"), "{text}");
    }

    #[test]
    fn non_hierarchical_full_cq_is_hard() {
        // Lemma 7 direction: Qpath-shaped full CQ.
        assert!(!ptime("Q(A,B,C,E) :- R1(A,C), R2(C,E), R3(E,B)"));
    }
}
