//! Hierarchical joins (Definition 5): a full CQ is hierarchical if for
//! each pair of attributes `A, B`, `rels(A) ⊆ rels(B)`,
//! `rels(B) ⊆ rels(A)`, or `rels(A) ∩ rels(B) = ∅`.

use adp_engine::schema::{Attr, RelationSchema};
use std::collections::BTreeSet;

/// Checks the hierarchical property over a set of atoms (typically a head
/// join restricted to non-dominated atoms). Returns `Ok(())` when
/// hierarchical, or the violating attribute pair otherwise.
pub fn hierarchy_violation(atoms: &[RelationSchema]) -> Result<(), (Attr, Attr)> {
    let all_attrs: BTreeSet<Attr> = atoms
        .iter()
        .flat_map(|a| a.attrs().iter().cloned())
        .collect();
    let attrs: Vec<Attr> = all_attrs.into_iter().collect();
    let rels: Vec<Vec<usize>> = attrs
        .iter()
        .map(|a| {
            atoms
                .iter()
                .enumerate()
                .filter(|(_, s)| s.contains(a))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    for i in 0..attrs.len() {
        for j in i + 1..attrs.len() {
            let (ra, rb) = (&rels[i], &rels[j]);
            let a_sub_b = ra.iter().all(|x| rb.contains(x));
            let b_sub_a = rb.iter().all(|x| ra.contains(x));
            let disjoint = ra.iter().all(|x| !rb.contains(x));
            if !(a_sub_b || b_sub_a || disjoint) {
                return Err((attrs[i].clone(), attrs[j].clone()));
            }
        }
    }
    Ok(())
}

/// True if the atoms form a hierarchical join.
pub fn is_hierarchical(atoms: &[RelationSchema]) -> bool {
    hierarchy_violation(atoms).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;

    fn atoms(text: &str) -> Vec<RelationSchema> {
        parse_query(text).unwrap().atoms().to_vec()
    }

    #[test]
    fn figure5_is_hierarchical() {
        let a = atoms("Q(A,B,C,E,F,H) :- R1(A,B,C), R2(A,B,F), R3(A,E), R4(A,E,H)");
        assert!(is_hierarchical(&a));
    }

    #[test]
    fn qpath_is_not_hierarchical() {
        let a = atoms("Q(A,B) :- R1(A), R2(A,B), R3(B)");
        let (x, y) = hierarchy_violation(&a).unwrap_err();
        let mut pair = vec![x.name().to_owned(), y.name().to_owned()];
        pair.sort();
        assert_eq!(pair, vec!["A", "B"]);
    }

    #[test]
    fn section5_counterexample() {
        // §5.2.2: Q(A,B,E) :- R1(A,E), R2(A,B,E), R3(B,E), R4(E) is
        // non-hierarchical (A and B overlap at R2 without containment)...
        let a = atoms("Q(A,B,E) :- R1(A,E), R2(A,B,E), R3(B,E), R4(E)");
        assert!(!is_hierarchical(&a));
    }

    #[test]
    fn disjoint_attrs_are_fine() {
        let a = atoms("Q(A,B) :- R1(A), R2(B)");
        assert!(is_hierarchical(&a));
    }

    #[test]
    fn vacuum_atoms_are_ignored_by_hierarchy() {
        let a = atoms("Q(A) :- R1(A), V()");
        assert!(is_hierarchical(&a));
    }

    #[test]
    fn single_atom_is_hierarchical() {
        let a = atoms("Q(A,B) :- R(A,B)");
        assert!(is_hierarchical(&a));
    }
}
