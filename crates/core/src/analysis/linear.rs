//! Linear atom orderings (paper §7.1).
//!
//! A boolean query is *linear* if its atoms can be arranged so that every
//! attribute occurs in a contiguous run of atoms. The boolean ADP solver
//! reduces resilience of linear queries to s-t min-cut; Freire et al. \[11\]
//! show triad-free queries can be made linear.
//!
//! Query sizes are constants (data complexity), so a pruned backtracking
//! search over atom orders is exact and fast.

use adp_engine::schema::{Attr, RelationSchema};

/// Finds an ordering of `atoms` in which every attribute's occurrences
/// are contiguous, or `None` if the query is not linear.
pub fn find_linear_order(atoms: &[RelationSchema]) -> Option<Vec<usize>> {
    let n = atoms.len();
    if n == 0 {
        return None;
    }
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    // attribute state: 0 = unseen, 1 = open (in the last placed atom's
    // run), 2 = closed (seen earlier, absent from the last atom)
    fn backtrack(atoms: &[RelationSchema], order: &mut Vec<usize>, used: &mut [bool]) -> bool {
        let n = atoms.len();
        if order.len() == n {
            return true;
        }
        for i in 0..n {
            if used[i] {
                continue;
            }
            if violates(atoms, order, i) {
                continue;
            }
            used[i] = true;
            order.push(i);
            if backtrack(atoms, order, used) {
                return true;
            }
            order.pop();
            used[i] = false;
        }
        false
    }
    if backtrack(atoms, &mut order, &mut used) {
        Some(order)
    } else {
        None
    }
}

/// Would appending atom `next` re-open a closed attribute?
fn violates(atoms: &[RelationSchema], order: &[usize], next: usize) -> bool {
    atoms[next].attrs().iter().any(|a| {
        let seen = order.iter().any(|&i| atoms[i].contains(a));
        if !seen {
            return false;
        }
        // adp-lint: allow(panic-path) -- `seen` scanned `order`, so a
        // hit implies the order is non-empty.
        let last = *order.last().expect("seen implies non-empty");
        !atoms[last].contains(a) // appeared before, absent from the last atom: closed
    })
}

/// Checks a specific order for the contiguity property (used by tests and
/// by callers that already have a candidate).
pub fn is_linear_order(atoms: &[RelationSchema], order: &[usize]) -> bool {
    let mut all_attrs: Vec<&Attr> = atoms.iter().flat_map(|a| a.attrs()).collect();
    all_attrs.sort();
    all_attrs.dedup();
    all_attrs.iter().all(|a| {
        let positions: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(_, &i)| atoms[i].contains(a))
            .map(|(pos, _)| pos)
            .collect();
        match (positions.first(), positions.last()) {
            (Some(&f), Some(&l)) => l - f + 1 == positions.len(),
            _ => true,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;

    fn atoms(text: &str) -> Vec<RelationSchema> {
        parse_query(text).unwrap().atoms().to_vec()
    }

    #[test]
    fn chain_is_linear() {
        let a = atoms("Q() :- R1(A,B), R2(B,C), R3(C,E)");
        let order = find_linear_order(&a).unwrap();
        assert!(is_linear_order(&a, &order));
    }

    #[test]
    fn path_with_exogenous_middle_is_linear() {
        let a = atoms("Q() :- R1(A), R2(A,B), R3(B)");
        let order = find_linear_order(&a).unwrap();
        assert!(is_linear_order(&a, &order));
    }

    #[test]
    fn star_is_linear() {
        // R1(A,B), R2(B,C), R3(B,D): order R2,R1,R3? B must be contiguous
        // (it is everywhere), C/A/D are singletons: any order works.
        let a = atoms("Q() :- R1(A,B), R2(B,C), R3(B,D)");
        assert!(find_linear_order(&a).is_some());
    }

    #[test]
    fn triangle_is_not_linear() {
        let a = atoms("Q() :- R1(A,B), R2(B,C), R3(C,A)");
        assert_eq!(find_linear_order(&a), None);
    }

    #[test]
    fn qt_star_is_not_linear() {
        // triad query QT: R1(A,B,C),R2(A),R3(B),R4(C)
        let a = atoms("Q() :- R1(A,B,C), R2(A), R3(B), R4(C)");
        assert_eq!(find_linear_order(&a), None);
    }

    #[test]
    fn single_atom_is_linear() {
        let a = atoms("Q() :- R(A,B)");
        assert_eq!(find_linear_order(&a), Some(vec![0]));
    }

    #[test]
    fn longer_chain_with_supersets() {
        let a = atoms("Q() :- R1(A), R2(A,B), R3(B), R4(B,C), R5(C)");
        let order = find_linear_order(&a).unwrap();
        assert!(is_linear_order(&a, &order));
    }
}
