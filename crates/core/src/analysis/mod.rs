//! Complexity analysis of the ADP problem for a given query.
//!
//! * [`roles`] — endogenous/exogenous atoms (paper Appendix A), dominated
//!   atoms (Definitions 6 and 7), singleton queries (Definition 10);
//! * [`hierarchy`] — hierarchical joins (Definition 5);
//! * [`triad`] — triads (Definition 3) and triad-like structures
//!   (Definition 4);
//! * [`strand`] — strands (Definition 8);
//! * [`decide`] — the procedural dichotomy `IsPtime` (Theorem 2,
//!   Algorithm 1);
//! * [`structure`] — the structural dichotomy (Theorem 3);
//! * [`linear`] — linear atom orderings for the boolean min-cut solver
//!   (§7.1);
//! * [`witness_map`] — query mappings onto the hard core queries
//!   (Definition 2, §4.2.3), yielding machine-checkable NP-hardness
//!   certificates.

pub mod decide;
pub mod hierarchy;
pub mod linear;
pub mod roles;
pub mod strand;
pub mod structure;
pub mod triad;
pub mod witness_map;

pub use decide::{is_ptime, is_ptime_trace, DecisionStep, DecisionTrace};
pub use hierarchy::is_hierarchical;
pub use linear::find_linear_order;
pub use roles::{dominated_atoms, endogenous_atoms, singleton_atom};
pub use strand::find_strand;
pub use structure::{find_hard_structures, has_hard_structure, HardStructure};
pub use triad::{find_triad, find_triad_like};
pub use witness_map::{
    hardness_certificate, validate_mapping, CoreQuery, HardnessCertificate, HardnessWitness,
    QueryMapping, Target,
};
