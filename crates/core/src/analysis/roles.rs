//! Atom roles: endogenous/exogenous (Appendix A), dominated (Definitions
//! 6/7), and the singleton base case (Definition 10).

use crate::query::Query;
use adp_engine::schema::Attr;

/// True per atom if the atom is **endogenous** (paper Appendix A):
/// `Rj` is *exogenous* iff some other atom `Ri` has `attr(Ri) ⊊ attr(Rj)`;
/// among atoms with identical attribute sets, the first is endogenous and
/// the rest exogenous. Optimal ADP solutions only ever delete tuples from
/// endogenous atoms (Lemma 13).
pub fn endogenous_atoms(q: &Query) -> Vec<bool> {
    let n = q.atom_count();
    let sets: Vec<Vec<&Attr>> = q
        .atoms()
        .iter()
        .map(|a| {
            let mut v: Vec<&Attr> = a.attrs().iter().collect();
            v.sort();
            v
        })
        .collect();
    (0..n)
        .map(|j| {
            let dup_earlier = (0..j).any(|i| sets[i] == sets[j]);
            let strict_subset_exists =
                (0..n).any(|i| i != j && is_strict_subset(&sets[i], &sets[j]));
            !(dup_earlier || strict_subset_exists)
        })
        .collect()
}

/// True per atom if the atom is **dominated** (Definition 7; Definition 6
/// is the special case of a full CQ). `Rj` is dominated by `Ri` iff
///
/// 1. `attr(Ri) ⊆ attr(Rj)` (strict, with equal sets handled by the
///    dedup rule below),
/// 2. for every `Rk` with `attr(Ri) − attr(Rk) ≠ ∅`:
///    `attr(Rj) ∩ attr(Rk) ⊆ attr(Ri) ∩ head(Q)`,
/// 3. `attr(Ri) ⊆ head(Q)` or `head(Q) ⊆ attr(Ri)`.
///
/// Atoms with identical attribute sets: the first is non-dominated, the
/// rest dominated.
pub fn dominated_atoms(q: &Query) -> Vec<bool> {
    let n = q.atom_count();
    let sets: Vec<Vec<&Attr>> = q
        .atoms()
        .iter()
        .map(|a| {
            let mut v: Vec<&Attr> = a.attrs().iter().collect();
            v.sort();
            v
        })
        .collect();
    let head: Vec<&Attr> = q.head().iter().collect();
    (0..n)
        .map(|j| {
            if (0..j).any(|i| sets[i] == sets[j]) {
                return true; // duplicate attribute set
            }
            (0..n).any(|i| {
                i != j
                    && is_strict_subset(&sets[i], &sets[j])
                    && cond2(&sets, i, j, &head)
                    && cond3(&sets[i], &head)
            })
        })
        .collect()
}

fn cond2(sets: &[Vec<&Attr>], i: usize, j: usize, head: &[&Attr]) -> bool {
    let ri_cap_head: Vec<&Attr> = sets[i]
        .iter()
        .filter(|a| head.contains(a))
        .copied()
        .collect();
    (0..sets.len()).all(|k| {
        if k == i || k == j {
            return true;
        }
        let ri_minus_rk_nonempty = sets[i].iter().any(|a| !sets[k].contains(a));
        if !ri_minus_rk_nonempty {
            return true;
        }
        // attr(Rj) ∩ attr(Rk) ⊆ attr(Ri) ∩ head(Q)
        sets[j]
            .iter()
            .filter(|a| sets[k].contains(a))
            .all(|a| ri_cap_head.contains(a))
    })
}

fn cond3(ri: &[&Attr], head: &[&Attr]) -> bool {
    ri.iter().all(|a| head.contains(a)) || head.iter().all(|a| ri.contains(a))
}

fn is_strict_subset(a: &[&Attr], b: &[&Attr]) -> bool {
    a.len() < b.len() && a.iter().all(|x| b.contains(x))
}

/// If the query is a **singleton** (Definition 10), returns the index of
/// the witnessing atom `Ri`: `attr(Ri) ⊆ attr(Rj)` for every other atom,
/// and `attr(Ri) ⊆ head(Q)` or `head(Q) ⊆ attr(Ri)`.
pub fn singleton_atom(q: &Query) -> Option<usize> {
    let head = q.head();
    q.atoms().iter().enumerate().find_map(|(i, ri)| {
        let subset_of_all = q
            .atoms()
            .iter()
            .enumerate()
            .all(|(j, rj)| j == i || ri.attrs().iter().all(|a| rj.contains(a)));
        let head_cond =
            ri.attrs().iter().all(|a| head.contains(a)) || head.iter().all(|a| ri.contains(a));
        (subset_of_all && head_cond).then_some(i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;

    fn q(text: &str) -> Query {
        parse_query(text).unwrap()
    }

    #[test]
    fn endogenous_in_qpath() {
        // R2(A,B) ⊋ R1(A): R2 exogenous; R1, R3 endogenous.
        let q = q("Q(A,B) :- R1(A), R2(A,B), R3(B)");
        assert_eq!(endogenous_atoms(&q), vec![true, false, true]);
    }

    #[test]
    fn duplicate_attr_sets_keep_one_endogenous() {
        // Appendix A example: R1 and any one of R3,R4,R5 endogenous.
        let q = q("Q() :- R1(A), R2(A,B), R3(B,C), R4(B,C), R5(B,C)");
        assert_eq!(endogenous_atoms(&q), vec![true, false, true, false, false]);
    }

    #[test]
    fn qpath_has_no_dominated_atoms() {
        let q = q("Q(A,B) :- R1(A), R2(A,B), R3(B)");
        assert_eq!(dominated_atoms(&q), vec![false, false, false]);
    }

    #[test]
    fn figure5_r4_dominated() {
        // Fig 5 hierarchical full CQ: R4(A,E,H) dominated by R3(A,E).
        let q = q("Q(A,B,C,E,F,H) :- R1(A,B,C), R2(A,B,F), R3(A,E), R4(A,E,H)");
        assert_eq!(dominated_atoms(&q), vec![false, false, false, true]);
    }

    #[test]
    fn vacuum_atom_dominates_everything() {
        let q = q("Q(A) :- V(), R(A), S(A,B)");
        let dom = dominated_atoms(&q);
        assert!(!dom[0], "vacuum atom itself non-dominated");
        assert!(dom[1] && dom[2], "everything else dominated (Lemma 15)");
    }

    #[test]
    fn domination_needs_head_condition() {
        // Qswing: R3(B) ⊊ R2(A,B) but attr(R3)={B} vs head={A}: neither
        // containment holds, so R2 is NOT dominated (and ADP is hard).
        let q = q("Q(A) :- R2(A,B), R3(B)");
        assert_eq!(dominated_atoms(&q), vec![false, false]);
    }

    #[test]
    fn singleton_detection() {
        // Paper Q6(A,B) :- R1(A), R2(A,B): R1 subset of all, attrs ⊆ head.
        assert_eq!(singleton_atom(&q("Q(A,B) :- R1(A), R2(A,B)")), Some(0));
        // Q7: R1(A,B,C) ⊆ everyone, attr(R1) ⊆ head.
        let q7 = q("Q7(A,B,C,D,E,F,G) :- R1(A,B,C), R2(A,B,C,D,E), R3(A,B,C,D,G), R4(A,B,C,F)");
        assert_eq!(singleton_atom(&q7), Some(0));
        // chain is not a singleton
        assert_eq!(
            singleton_atom(&q("Q(A,E) :- R1(A,B), R2(B,C), R3(C,E)")),
            None
        );
        // head ⊆ attr(Ri) direction
        assert_eq!(singleton_atom(&q("Q(A) :- R1(A,B), R2(A,B,C)")), Some(0));
    }

    #[test]
    fn qswing_not_singleton() {
        assert_eq!(singleton_atom(&q("Q(A) :- R2(A,B), R3(B)")), None);
    }
}
