//! Strands (Definition 8): a pair of *non-dominated* atoms `Ri, Rj` with
//!
//! 1. `head(Q) ∩ attr(Ri) ≠ head(Q) ∩ attr(Rj)`, and
//! 2. `(attr(Ri) ∩ attr(Rj)) − head(Q) ≠ ∅`.
//!
//! A strand makes ADP NP-hard even when the boolean and full projections
//! of the query are individually easy (paper §5.2.3).

use super::roles::dominated_atoms;
use crate::query::Query;
use adp_engine::schema::Attr;

/// Finds a strand, returning the two atom indices.
pub fn find_strand(q: &Query) -> Option<(usize, usize)> {
    let dom = dominated_atoms(q);
    let head = q.head();
    let idx: Vec<usize> = (0..q.atom_count()).filter(|&i| !dom[i]).collect();
    for (a, &i) in idx.iter().enumerate() {
        for &j in idx.iter().skip(a + 1) {
            let ri = q.atoms()[i].attrs();
            let rj = q.atoms()[j].attrs();
            let head_i: Vec<&Attr> = ri.iter().filter(|x| head.contains(x)).collect();
            let head_j: Vec<&Attr> = rj.iter().filter(|x| head.contains(x)).collect();
            let mut hi = head_i.clone();
            let mut hj = head_j.clone();
            hi.sort();
            hj.sort();
            let differing_heads = hi != hj;
            let shared_existential = ri.iter().any(|x| rj.contains(x) && !head.contains(x));
            if differing_heads && shared_existential {
                return Some((i, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;

    fn q(text: &str) -> Query {
        parse_query(text).unwrap()
    }

    #[test]
    fn section523_example_is_a_strand() {
        // Q(A,B,C) :- R1(A,B,E), R2(A,C,E) is NP-hard via a strand.
        assert_eq!(
            find_strand(&q("Q(A,B,C) :- R1(A,B,E), R2(A,C,E)")),
            Some((0, 1))
        );
    }

    #[test]
    fn qswing_and_qseesaw_contain_strands() {
        assert!(find_strand(&q("Q(A) :- R2(A,B), R3(B)")).is_some());
        assert!(find_strand(&q("Q(A) :- R1(A), R2(A,B), R3(B)")).is_some());
    }

    #[test]
    fn full_projection_only_no_strand() {
        // Shared attribute is an output: condition (2) fails.
        assert_eq!(find_strand(&q("Q(A,B,C) :- R1(A,B), R2(A,C)")), None);
    }

    #[test]
    fn equal_head_intersections_no_strand() {
        // Both atoms expose the same head attributes: condition (1) fails.
        assert_eq!(find_strand(&q("Q(A) :- R1(A,E), R2(A,E,F)")), None);
    }

    #[test]
    fn dominated_atoms_cannot_form_strands() {
        // Q(A) :- R1(A), R2(A,B): R2 is dominated by R1 (attr(R1) ⊆ head,
        // cond2 vacuous), so the pair is not a strand and ADP stays easy.
        assert_eq!(find_strand(&q("Q(A) :- R1(A), R2(A,B)")), None);
    }

    #[test]
    fn boolean_queries_have_no_strands() {
        // head = ∅ means condition (1) can never hold.
        assert_eq!(find_strand(&q("Q() :- R1(A,B), R2(B,C)")), None);
    }
}
