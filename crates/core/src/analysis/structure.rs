//! The structural dichotomy (Theorem 3): `ADP(Q, D, k)` is NP-hard iff
//! the query contains a *triad-like* structure, a *strand*, or the head
//! join of its non-dominated relations is *non-hierarchical*.
//!
//! This complements the procedural [`super::decide::is_ptime`]; the
//! equivalence of the two characterizations (proved in the paper's
//! Appendix D) is enforced here by property tests.

use super::hierarchy::hierarchy_violation;
use super::roles::dominated_atoms;
use super::strand::find_strand;
use super::triad::find_triad_like;
use crate::query::Query;
use adp_engine::schema::RelationSchema;

/// A witness of NP-hardness per Theorem 3.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HardStructure {
    /// A triad-like triple of endogenous atoms (Definition 4).
    TriadLike([usize; 3]),
    /// A strand: a pair of non-dominated atoms (Definition 8).
    Strand(usize, usize),
    /// The head join of non-dominated atoms violates the hierarchical
    /// property at this attribute pair (Definitions 5–7).
    NonHierarchicalHeadJoin(String, String),
}

/// Finds every hard structure present in `Q` (possibly several kinds).
pub fn find_hard_structures(q: &Query) -> Vec<HardStructure> {
    let mut out = Vec::new();
    if let Some(t) = find_triad_like(q) {
        out.push(HardStructure::TriadLike(t));
    }
    if let Some((i, j)) = find_strand(q) {
        out.push(HardStructure::Strand(i, j));
    }
    let dom = dominated_atoms(q);
    let head = q.head().to_vec();
    let non_dominated_head_join: Vec<RelationSchema> = q
        .atoms()
        .iter()
        .enumerate()
        .filter(|(i, _)| !dom[*i])
        .map(|(_, a)| {
            let existential: Vec<_> = a
                .attrs()
                .iter()
                .filter(|x| !head.contains(x))
                .cloned()
                .collect();
            a.without_attrs(&existential)
        })
        .collect();
    if let Err((a, b)) = hierarchy_violation(&non_dominated_head_join) {
        out.push(HardStructure::NonHierarchicalHeadJoin(
            a.name().to_owned(),
            b.name().to_owned(),
        ));
    }
    out
}

/// True iff some hard structure is present — by Theorem 3, exactly when
/// `ADP(Q, D, k)` is NP-hard, i.e. iff [`super::decide::is_ptime`] is
/// false.
pub fn has_hard_structure(q: &Query) -> bool {
    !find_hard_structures(q).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::decide::is_ptime;
    use crate::query::parse_query;

    fn q(text: &str) -> Query {
        parse_query(text).unwrap()
    }

    #[test]
    fn qpath_is_non_hierarchical() {
        let hs = find_hard_structures(&q("Q(A,B) :- R1(A), R2(A,B), R3(B)"));
        assert!(hs
            .iter()
            .any(|h| matches!(h, HardStructure::NonHierarchicalHeadJoin(_, _))));
    }

    #[test]
    fn qswing_and_qseesaw_are_strands() {
        for text in ["Q(A) :- R2(A,B), R3(B)", "Q(A) :- R1(A), R2(A,B), R3(B)"] {
            let hs = find_hard_structures(&q(text));
            assert!(
                hs.iter().any(|h| matches!(h, HardStructure::Strand(_, _))),
                "{text}: {hs:?}"
            );
        }
    }

    #[test]
    fn triad_like_example() {
        let hs = find_hard_structures(&q("Q(E,F,G) :- R1(A,B,E), R2(B,C,F), R3(C,A,G)"));
        assert!(hs.iter().any(|h| matches!(h, HardStructure::TriadLike(_))));
    }

    #[test]
    fn easy_queries_have_no_hard_structures() {
        for text in [
            "Q(A,B) :- R1(A), R2(A,B)",
            "Q(A,B,C,E,F,H) :- R1(A,B,C), R2(A,B,F), R3(A,E), R4(A,E,H)",
            "Q(A) :- R1(A,C,E), R2(A,E,F), R3(A,F,H)",
            "Q() :- R1(A,B), R2(B,C), R3(C,E)",
            "Q(A) :- R(A,B), V()",
            "Q(A,B,C) :- R1(A,B), R2(A,C)",
        ] {
            assert!(
                find_hard_structures(&q(text)).is_empty(),
                "{text} should be structure-free"
            );
        }
    }

    /// Theorem 2 ≡ Theorem 3 on a catalogue of queries from the paper.
    #[test]
    fn dichotomies_agree_on_paper_catalogue() {
        for text in [
            "Q(A,B) :- R1(A), R2(A,B), R3(B)",
            "Q(A) :- R2(A,B), R3(B)",
            "Q(A) :- R1(A), R2(A,B), R3(B)",
            "Q() :- R1(A,B), R2(B,C), R3(C,A)",
            "Q() :- R1(A,B,C), R2(A), R3(B), R4(C)",
            "Q() :- R1(A,B), R2(B,C), R3(C,E)",
            "Q(A,F,G,H) :- R1(A,B), R2(F,G), R3(B,C), R4(C), R5(G,H)",
            "Q(E,F,G) :- R1(A,B,E), R2(B,C,F), R3(C,A,G)",
            "Q(A,B,C) :- R1(A,B,E), R2(A,C,E)",
            "Q(A,B,C) :- R1(A,B), R2(A,C)",
            "Q(A,B,E) :- R1(A,E), R2(A,B,E), R3(B,E), R4(E)",
            "Q(A,B) :- R1(A,C,E), R2(A,B,E,F), R3(B,F,H)",
            "Q(A) :- R1(A,C,E), R2(A,E,F), R3(A,F,H)",
            "Q(A,B,C,E,F,H) :- R1(A,B,C), R2(A,B,F), R3(A,E), R4(A,E,H)",
            "Q2(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)",
            "Q3(A,B,C) :- R1(A,B), R2(B,C), R3(C,A)",
            "Q4(A,C,E,G) :- R1(A,B), R2(B,C), R3(E,F), R4(F,G)",
            "Q5(A,B,C) :- R1(A,E), R2(B,E), R3(C,E)",
            "Q(A,B) :- R1(A), R2(A,B)",
            "Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)",
            "Q8(A1,B1,A2,B2) :- R11(A1), R12(A1,B1), R21(A2), R22(A2,B2)",
            "Q(A) :- R(A,B), V()",
        ] {
            let query = q(text);
            assert_eq!(
                is_ptime(&query),
                !has_hard_structure(&query),
                "dichotomies disagree on {text}"
            );
        }
    }
}
