//! Triads (Definition 3) and triad-like structures (Definition 4).
//!
//! A *triad* is a triple of endogenous atoms such that each pair is
//! connected by a path using only attributes outside the third atom.
//! A *triad-like* structure additionally forbids output attributes on the
//! connecting paths. On boolean queries (`head = ∅`) the two notions
//! coincide.

use super::roles::endogenous_atoms;
use crate::query::graph::connected_avoiding;
use crate::query::Query;
use adp_engine::schema::Attr;

/// Finds a triad (Definition 3): used for boolean resilience (Theorem 4).
/// Paths may use any attribute outside the third atom.
pub fn find_triad(q: &Query) -> Option<[usize; 3]> {
    find_triple(q, &[])
}

/// Finds a triad-like structure (Definition 4): paths must avoid output
/// attributes as well.
pub fn find_triad_like(q: &Query) -> Option<[usize; 3]> {
    find_triple(q, q.head())
}

fn find_triple(q: &Query, extra_excluded: &[Attr]) -> Option<[usize; 3]> {
    let endo = endogenous_atoms(q);
    let idx: Vec<usize> = (0..q.atom_count()).filter(|&i| endo[i]).collect();
    let atoms = q.atoms();
    for (a, &i) in idx.iter().enumerate() {
        for (b, &j) in idx.iter().enumerate().skip(a + 1) {
            for &k in idx.iter().skip(b + 1) {
                let triple = [i, j, k];
                let ok = [(i, j, k), (i, k, j), (j, k, i)].iter().all(|&(x, y, z)| {
                    let mut excluded: Vec<Attr> = atoms[z].attrs().to_vec();
                    excluded.extend(extra_excluded.iter().cloned());
                    connected_avoiding(atoms, x, y, &excluded)
                });
                if ok {
                    return Some(triple);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;

    fn q(text: &str) -> Query {
        parse_query(text).unwrap()
    }

    #[test]
    fn triangle_query_has_triad() {
        // Q△ :- R1(A,B), R2(B,C), R3(C,A)
        let q = q("Q() :- R1(A,B), R2(B,C), R3(C,A)");
        assert_eq!(find_triad(&q), Some([0, 1, 2]));
    }

    #[test]
    fn qt_star_has_triad() {
        // QT :- R1(A,B,C), R2(A), R3(B), R4(C): triad on R2,R3,R4
        // (paths go through the exogenous R1).
        let q = q("Q() :- R1(A,B,C), R2(A), R3(B), R4(C)");
        assert_eq!(find_triad(&q), Some([1, 2, 3]));
    }

    #[test]
    fn chain_has_no_triad() {
        let q = q("Q() :- R1(A,B), R2(B,C), R3(C,E)");
        assert_eq!(find_triad(&q), None);
    }

    #[test]
    fn triad_needs_endogenous_atoms() {
        // add a superset atom making R1 exogenous: still a triad among
        // the endogenous triangle? R4(A,B,C) makes R1,R2,R3 all exogenous?
        // attr(R1)={A,B} ⊊ {A,B,C} so R4 is the superset: R4 exogenous,
        // R1..R3 stay endogenous and the triad survives.
        let q = q("Q() :- R1(A,B), R2(B,C), R3(C,A), R4(A,B,C)");
        assert!(find_triad(&q).is_some());
    }

    #[test]
    fn triad_like_respects_head() {
        // §5.2.1: Q(E,F,G) :- R1(A,B,E), R2(B,C,F), R3(C,A,G) contains a
        // triad-like structure (the triangle lives on non-output attrs).
        let hard = q("Q(E,F,G) :- R1(A,B,E), R2(B,C,F), R3(C,A,G)");
        assert!(find_triad_like(&hard).is_some());
        // Making the triangle attributes outputs kills the triad-like
        // structure (paths may no longer use output attributes).
        let softer = q("Q(A,B,C) :- R1(A,B), R2(B,C), R3(C,A)");
        assert_eq!(find_triad_like(&softer), None);
        // but as a boolean query it is still a triad
        assert!(find_triad(&softer).is_some());
    }

    #[test]
    fn two_atoms_cannot_form_a_triad() {
        let q = q("Q() :- R1(A,B), R2(B,A)");
        assert_eq!(find_triad(&q), None);
    }
}
