//! Query mappings and NP-hardness certificates (Definition 2, §4.2.2–4.2.3).
//!
//! When `IsPtime(Q)` is false, the paper proves NP-hardness by exhibiting
//! a *query mapping* from a simplified subquery of `Q` onto one of three
//! core hard queries:
//!
//! ```text
//! Q_path(A,B)  :- R1(A), R2(A,B), R3(B)     (aka Q_cover)
//! Q_swing(A)   :- R2(A,B), R3(B)
//! Q_seesaw(A)  :- R1(A), R2(A,B), R3(B)
//! ```
//!
//! [`hardness_certificate`] reproduces that construction: it follows the
//! `IsPtime` simplification steps to a hard connected subquery and builds
//! a mapping per the Case 1/2/3 analysis of §4.2.3 (with an exhaustive
//! search fallback over the constant-size attribute space), then checks
//! the mapping against Definition 2. The result is a machine-checkable
//! witness of hardness.

use crate::analysis::decide::is_ptime;
use crate::query::Query;
use adp_engine::schema::Attr;
use std::collections::BTreeSet;

/// The three core hard queries of §4.2.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreQuery {
    /// `Q_path(A,B) :- R1(A), R2(A,B), R3(B)` (also called `Q_cover`);
    /// equivalent to partial vertex cover on bipartite graphs.
    Path,
    /// `Q_swing(A) :- R2(A,B), R3(B)`; equivalent to k-minimum coverage.
    Swing,
    /// `Q_seesaw(A) :- R1(A), R2(A,B), R3(B)`; the side-constrained
    /// bipartite vertex cover problem.
    Seesaw,
}

impl CoreQuery {
    /// Atom attribute sets of the core query, as (uses A, uses B) flags.
    fn atom_shapes(self) -> Vec<(bool, bool)> {
        match self {
            CoreQuery::Path | CoreQuery::Seesaw => {
                vec![(true, false), (true, true), (false, true)]
            }
            CoreQuery::Swing => vec![(true, true), (false, true)],
        }
    }

    /// Is `B` an output attribute of the core query?
    fn b_is_output(self) -> bool {
        matches!(self, CoreQuery::Path)
    }
}

/// Where an attribute of the source query is sent by the mapping `f`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// mapped to the core attribute `A`
    A,
    /// mapped to the core attribute `B`
    B,
    /// mapped to `∗` (dropped)
    Star,
}

/// A query mapping `f : attr(Q) → {A, B, ∗}` onto a core query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryMapping {
    /// The core query targeted.
    pub core: CoreQuery,
    /// The attribute assignment, sorted by attribute.
    pub assignment: Vec<(Attr, Target)>,
}

impl QueryMapping {
    /// The target of attribute `a` (defaults to `∗` for unknown attrs).
    pub fn target(&self, a: &Attr) -> Target {
        self.assignment
            .iter()
            .find(|(x, _)| x == a)
            .map(|(_, t)| *t)
            .unwrap_or(Target::Star)
    }
}

/// The witness inside a [`HardnessCertificate`].
#[derive(Clone, Debug)]
pub enum HardnessWitness {
    /// A validated query mapping onto a core query (Lemma 6).
    Mapping(QueryMapping),
    /// A triad in a boolean subquery (Theorem 4, Freire et al.).
    Triad([usize; 3]),
}

/// A machine-checkable NP-hardness witness for a query.
#[derive(Clone, Debug)]
pub struct HardnessCertificate {
    /// Human-readable record of the simplification steps taken (universal
    /// attribute removals and component selections).
    pub simplification: Vec<String>,
    /// The simplified subquery the witness is defined on.
    pub subquery: Query,
    /// The hardness witness.
    pub witness: HardnessWitness,
}

impl HardnessCertificate {
    /// The mapping, if the witness is a mapping.
    pub fn mapping(&self) -> Option<&QueryMapping> {
        match &self.witness {
            HardnessWitness::Mapping(m) => Some(m),
            HardnessWitness::Triad(_) => None,
        }
    }
}

/// Validates a mapping against Definition 2 plus the head-compatibility
/// conditions required by the Lemma 6 reduction:
///
/// * every source atom's image equals the attribute set of some core atom,
/// * every core atom is the image of at least one source atom,
/// * no **output** attribute maps to a core *existential* attribute (a
///   single core output would then correspond to several source outputs),
/// * every core **output** attribute is hit by at least one source output
///   attribute (so outputs correspond one-to-one; source existential
///   attributes may *also* map to core outputs — their values are glued
///   in the constructed instance, cf. paper Example 6).
pub fn validate_mapping(q: &Query, m: &QueryMapping) -> bool {
    let shapes = m.core.atom_shapes();
    let mut covered = vec![false; shapes.len()];
    for atom in q.atoms() {
        let uses_a = atom.attrs().iter().any(|x| m.target(x) == Target::A);
        let uses_b = atom.attrs().iter().any(|x| m.target(x) == Target::B);
        match shapes.iter().position(|&s| s == (uses_a, uses_b)) {
            Some(i) => covered[i] = true,
            None => return false, // image is ∅ or not a core atom
        }
    }
    if !covered.iter().all(|&c| c) {
        return false;
    }
    // Head compatibility.
    let head = q.head();
    let b_output = m.core.b_is_output();
    // (a) head attributes never map to core existential attributes
    for (x, t) in &m.assignment {
        if head.contains(x) && *t == Target::B && !b_output {
            return false;
        }
    }
    // (b) every core output is hit by a source output attribute
    let head_hits = |target: Target| {
        m.assignment
            .iter()
            .any(|(x, t)| *t == target && head.contains(x))
    };
    if !head_hits(Target::A) {
        return false;
    }
    if b_output && !head_hits(Target::B) {
        return false;
    }
    // (c) core existential attributes still need some preimage (Def 2
    // condition (ii) at the attribute level) — implied by atom coverage.
    m.assignment.iter().any(|(_, t)| *t == Target::B)
}

/// Builds a hardness certificate for `q`, or `None` when `IsPtime(q)` is
/// true (no certificate exists — the query is poly-time solvable).
pub fn hardness_certificate(q: &Query) -> Option<HardnessCertificate> {
    if is_ptime(q) {
        return None;
    }
    let mut steps: Vec<String> = Vec::new();
    let mut query = q.clone();
    loop {
        let universal = query.universal_attrs();
        if !universal.is_empty() {
            steps.push(format!(
                "remove universal attributes {{{}}}",
                universal
                    .iter()
                    .map(|a| a.name().to_owned())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            query = query.without_attrs(&universal);
            continue;
        }
        if query.is_boolean() {
            // Hard boolean query: certify with its triad (Theorem 4).
            let triad = crate::analysis::triad::find_triad(&query)
                // adp-lint: allow(panic-path) -- Theorem 4 (paper):
                // every non-PTIME boolean query contains a triad; a miss
                // falsifies the hardness analysis itself.
                .expect("hard boolean query contains a triad");
            return Some(HardnessCertificate {
                simplification: steps,
                subquery: query,
                witness: HardnessWitness::Triad(triad),
            });
        }
        let components = query.connected_components();
        if components.len() > 1 {
            // recurse into a hard component
            let hard = components
                .iter()
                .find(|c| !is_ptime(&query.subquery(c)))
                // adp-lint: allow(panic-path) -- IsPtime on a
                // disconnected query is the conjunction over components,
                // so a false overall implies a hard component.
                .expect("a hard component exists when IsPtime is false");
            steps.push(format!(
                "select hard connected component over atoms {hard:?}"
            ));
            query = query.subquery(hard);
            continue;
        }
        break;
    }

    // `query` is now an "Others" query. Try the constructive recipes
    // first, then the exhaustive fallback (attribute space is constant).
    let mapping = recipe_mapping(&query)
        .filter(|m| validate_mapping(&query, m))
        .or_else(|| exhaustive_mapping(&query))?;
    Some(HardnessCertificate {
        simplification: steps,
        subquery: query,
        witness: HardnessWitness::Mapping(mapping),
    })
}

/// The Case 1/2/3 construction of §4.2.3 for "Others" queries.
fn recipe_mapping(q: &Query) -> Option<QueryMapping> {
    if q.is_boolean() {
        return None; // triad case: handled by exhaustive fallback
    }
    let head: BTreeSet<Attr> = q.head().iter().cloned().collect();
    let all: BTreeSet<Attr> = q.attrs().into_iter().collect();
    let existential: BTreeSet<Attr> = all.difference(&head).cloned().collect();

    // Case 1: head join has a vacuum relation (an atom entirely over
    // existential attributes). I = head, J = existential.
    let vacuum_in_head_join = q
        .atoms()
        .iter()
        .any(|a| !a.attrs().is_empty() && a.attrs().iter().all(|x| existential.contains(x)));
    if vacuum_in_head_join {
        let core = if q
            .atoms()
            .iter()
            .any(|a| a.attrs().iter().all(|x| head.contains(x)))
        {
            CoreQuery::Seesaw
        } else {
            CoreQuery::Swing
        };
        return Some(assign(q, &head, &existential, core));
    }

    // Head-join connectivity: components of atoms linked by shared head
    // attributes.
    let head_join = q.head_join();
    let hj_components = head_join.connected_components();
    if hj_components.len() > 1 {
        // Case 2. For each component C, let I = head attrs in C; try both
        // orientations and both sub-cases.
        for comp in &hj_components {
            let i_set: BTreeSet<Attr> = comp
                .iter()
                .flat_map(|&a| q.atoms()[a].attrs().iter())
                .filter(|x| head.contains(x))
                .cloned()
                .collect();
            if i_set.is_empty() || i_set.len() == head.len() {
                continue;
            }
            let has_ri = q
                .atoms()
                .iter()
                .any(|a| a.attrs().iter().all(|x| i_set.contains(x)));
            let rest_head: BTreeSet<Attr> = head.difference(&i_set).cloned().collect();
            let has_rj = q
                .atoms()
                .iter()
                .any(|a| a.attrs().iter().all(|x| rest_head.contains(x)));
            if has_ri && has_rj {
                // Case 2.1: J = attr(Q) − I, target Q_path.
                let j_set: BTreeSet<Attr> = all.difference(&i_set).cloned().collect();
                return Some(assign(q, &i_set, &j_set, CoreQuery::Path));
            }
            // Case 2.2: J = existential attrs; Seesaw if Ri exists else Swing.
            let core = if has_ri {
                CoreQuery::Seesaw
            } else {
                CoreQuery::Swing
            };
            let candidate = assign(q, &i_set, &existential, core);
            if validate_mapping(q, &candidate) {
                return Some(candidate);
            }
        }
        return None;
    }

    // Case 3: head join connected, no vacuum head-join relation.
    // Case 3.1: a pair of atoms with disjoint head attributes.
    for (ii, ri) in q.atoms().iter().enumerate() {
        for rj in q.atoms().iter().skip(ii + 1) {
            let disjoint_on_head = ri
                .attrs()
                .iter()
                .all(|x| !head.contains(x) || !rj.contains(x));
            if disjoint_on_head {
                let i_set: BTreeSet<Attr> = ri
                    .attrs()
                    .iter()
                    .filter(|x| head.contains(x))
                    .cloned()
                    .collect();
                let j_set: BTreeSet<Attr> =
                    head.iter().filter(|x| !ri.contains(x)).cloned().collect();
                if i_set.is_empty() || j_set.is_empty() {
                    continue;
                }
                let candidate = assign(q, &i_set, &j_set, CoreQuery::Path);
                if validate_mapping(q, &candidate) {
                    return Some(candidate);
                }
            }
        }
    }
    // Case 3.2 (all pairs share head attributes): delegate to the
    // exhaustive search — the recipe's tie-breaking is intricate and the
    // attribute space is tiny.
    None
}

fn assign(
    q: &Query,
    i_set: &BTreeSet<Attr>,
    j_set: &BTreeSet<Attr>,
    core: CoreQuery,
) -> QueryMapping {
    let assignment = q
        .attrs()
        .into_iter()
        .map(|a| {
            let t = if i_set.contains(&a) {
                Target::A
            } else if j_set.contains(&a) {
                Target::B
            } else {
                Target::Star
            };
            (a, t)
        })
        .collect();
    QueryMapping { core, assignment }
}

/// Exhaustive fallback: enumerate all assignments `attr → {A,B,∗}` for
/// each core query. Query sizes are constants, so `3^|attr|` is fine.
fn exhaustive_mapping(q: &Query) -> Option<QueryMapping> {
    let attrs = q.attrs();
    let n = attrs.len();
    if n > 14 {
        return None; // defensive cap; realistic queries are far smaller
    }
    for core in [CoreQuery::Path, CoreQuery::Swing, CoreQuery::Seesaw] {
        let mut choice = vec![0u8; n];
        loop {
            let assignment: Vec<(Attr, Target)> = attrs
                .iter()
                .cloned()
                .zip(choice.iter().map(|&c| match c {
                    0 => Target::A,
                    1 => Target::B,
                    _ => Target::Star,
                }))
                .collect();
            let m = QueryMapping { core, assignment };
            if validate_mapping(q, &m) {
                return Some(m);
            }
            // increment base-3 counter
            let mut i = 0;
            loop {
                if i == n {
                    break;
                }
                choice[i] += 1;
                if choice[i] < 3 {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
            if i == n {
                break;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;

    fn q(text: &str) -> Query {
        parse_query(text).unwrap()
    }

    #[test]
    fn easy_queries_have_no_certificate() {
        for text in [
            "Q(A,B) :- R1(A), R2(A,B)",
            "Q() :- R1(A,B), R2(B,C), R3(C,E)",
            "Q(A) :- R(A,B), V()",
        ] {
            assert!(hardness_certificate(&q(text)).is_none(), "{text}");
        }
    }

    #[test]
    fn core_queries_certify_themselves() {
        let c = hardness_certificate(&q("Q(A,B) :- R1(A), R2(A,B), R3(B)")).unwrap();
        assert!(validate_mapping(&c.subquery, c.mapping().unwrap()));
        let c = hardness_certificate(&q("Q(A) :- R2(A,B), R3(B)")).unwrap();
        assert!(validate_mapping(&c.subquery, c.mapping().unwrap()));
        let c = hardness_certificate(&q("Q(A) :- R1(A), R2(A,B), R3(B)")).unwrap();
        assert!(validate_mapping(&c.subquery, c.mapping().unwrap()));
    }

    #[test]
    fn example5_maps_to_seesaw_via_case1() {
        // Paper Example 5: Q1(A,C,F) with vacuum head-join relation R2(B).
        let query = q("Q1(A,C,F) :- R1(A,C), R2(B), R3(B,C), R4(C,E,F)");
        let c = hardness_certificate(&query).unwrap();
        assert!(validate_mapping(&c.subquery, c.mapping().unwrap()));
        assert_eq!(c.mapping().unwrap().core, CoreQuery::Seesaw);
    }

    #[test]
    fn example5_without_r1_maps_to_swing() {
        let query = q("Q1(C,F) :- R2(B), R3(B,C), R4(C,E,F)");
        let c = hardness_certificate(&query).unwrap();
        assert!(validate_mapping(&c.subquery, c.mapping().unwrap()));
        assert_eq!(c.mapping().unwrap().core, CoreQuery::Swing);
    }

    #[test]
    fn example6_disconnected_head_join_maps_to_path() {
        // Q2(A,B) :- R1(A), R2(A,C), R3(C,B), R4(B): Case 2.1.
        let query = q("Q2(A,B) :- R1(A), R2(A,C), R3(C,B), R4(B)");
        let c = hardness_certificate(&query).unwrap();
        assert!(validate_mapping(&c.subquery, c.mapping().unwrap()));
        assert_eq!(c.mapping().unwrap().core, CoreQuery::Path);
    }

    #[test]
    fn example7_full_cq_case31() {
        // Q3(A,B,C,E) :- R1(A,C), R2(C,E), R3(E,B): maps to Q_path.
        let query = q("Q3(A,B,C,E) :- R1(A,C), R2(C,E), R3(E,B)");
        let c = hardness_certificate(&query).unwrap();
        assert!(validate_mapping(&c.subquery, c.mapping().unwrap()));
        assert_eq!(c.mapping().unwrap().core, CoreQuery::Path);
    }

    #[test]
    fn example7_case32() {
        // Q4(A,B,C,E,F) :- R1(A,B,C,E,F), R2(B,C,E), R3(A,C): Case 3.2.
        let query = q("Q4(A,B,C,E,F) :- R1(A,B,C,E,F), R2(B,C,E), R3(A,C)");
        let c = hardness_certificate(&query).unwrap();
        assert!(validate_mapping(&c.subquery, c.mapping().unwrap()));
        assert_eq!(c.mapping().unwrap().core, CoreQuery::Path);
    }

    #[test]
    fn certificate_traces_simplifications() {
        // Example 4: certificate should pick the hard component.
        let query = q("Q(A,F,G,H) :- R1(A,B), R2(F,G), R3(B,C), R4(C), R5(G,H)");
        let c = hardness_certificate(&query).unwrap();
        assert!(!c.simplification.is_empty());
        assert!(validate_mapping(&c.subquery, c.mapping().unwrap()));
    }

    #[test]
    fn snap_queries_have_certificates() {
        for text in [
            "Q2(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)",
            "Q5(A,B,C) :- R1(A,E), R2(B,E), R3(C,E)",
        ] {
            let c = hardness_certificate(&q(text)).unwrap();
            assert!(
                validate_mapping(&c.subquery, c.mapping().unwrap()),
                "{text}"
            );
        }
    }

    #[test]
    fn validate_rejects_bad_mappings() {
        let query = q("Q(A,B) :- R1(A), R2(A,B), R3(B)");
        // everything to ∗: invalid
        let bad = QueryMapping {
            core: CoreQuery::Path,
            assignment: query
                .attrs()
                .into_iter()
                .map(|a| (a, Target::Star))
                .collect(),
        };
        assert!(!validate_mapping(&query, &bad));
        // existential-to-output violation on Q_swing-shaped query
        let swing = q("Q(A) :- R2(A,B), R3(B)");
        let bad = QueryMapping {
            core: CoreQuery::Path, // B would have to be an output
            assignment: vec![
                (adp_engine::schema::Attr::new("A"), Target::A),
                (adp_engine::schema::Attr::new("B"), Target::B),
            ],
        };
        assert!(!validate_mapping(&swing, &bad));
    }
}
