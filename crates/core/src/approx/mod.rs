//! Approximation algorithms for ADP on full CQs (paper §6, Theorem 5).
//!
//! On a full CQ every output is a witness and deleting an input tuple
//! deletes exactly the witnesses containing it, so `ADP(Q, D, k)` is a
//! **Partial Set Cover** (PSC) instance: sets = input tuples, elements =
//! outputs, every element in exactly `p` sets. PSC admits an `O(log k)`
//! greedy and a `p`-approximate primal-dual algorithm
//! (Gandhi–Khuller–Srinivasan), both implemented here over a generic
//! [`PscInstance`] plus a query adapter.
//!
//! With projections ADP is `Ω(n^ε)`-inapproximable (Lemma 10), so no
//! general algorithm is offered there — use the solver's heuristics.

pub mod psc;

use crate::error::SolveError;
use crate::query::Query;
use crate::solver::PreparedQuery;
use adp_engine::database::Database;
use adp_engine::join::{evaluate, EvalResult};
use adp_engine::provenance::TupleRef;
pub use psc::{greedy_psc, primal_dual_psc, PscInstance};

/// Builds the PSC instance of a **full CQ**: one set per input tuple, one
/// element per output (= witness), set membership = provenance.
pub fn psc_instance(query: &Query, db: &Database) -> (PscInstance, Vec<TupleRef>) {
    let eval = evaluate(db, query.atoms(), query.head());
    psc_instance_from_eval(query, &eval)
}

/// [`psc_instance`] against a [`PreparedQuery`]'s cached evaluation —
/// building both approximation instances (greedy and primal-dual) from
/// one prepared query joins exactly once.
pub fn psc_instance_prepared(prep: &PreparedQuery) -> (PscInstance, Vec<TupleRef>) {
    let eval = prep.eval();
    psc_instance_from_eval(prep.query(), &eval)
}

/// Builds the PSC instance from an existing evaluation of a full CQ.
pub fn psc_instance_from_eval(query: &Query, eval: &EvalResult) -> (PscInstance, Vec<TupleRef>) {
    assert!(
        query.is_full(),
        "the PSC reduction requires a full CQ (Theorem 5)"
    );
    let mut sets: Vec<Vec<u32>> = Vec::new();
    let mut refs: Vec<TupleRef> = Vec::new();
    let mut slot: std::collections::HashMap<TupleRef, usize> = std::collections::HashMap::new();
    for (wid, w) in eval.witnesses.iter().enumerate() {
        for (atom, &idx) in w.tuples.iter().enumerate() {
            let t = TupleRef::new(atom, idx);
            let s = *slot.entry(t).or_insert_with(|| {
                sets.push(Vec::new());
                refs.push(t);
                sets.len() - 1
            });
            // adp-lint: allow(truncating-cast) -- wid enumerates
            // eval.witnesses, cap-checked by ProvenanceIndex::try_new.
            sets[s].push(wid as u32);
        }
    }
    (
        PscInstance {
            sets,
            // adp-lint: allow(truncating-cast) -- same cap-checked
            // witness count as above.
            n_elements: eval.witnesses.len() as u32,
        },
        refs,
    )
}

/// `O(log k)`-approximate ADP for full CQs via greedy PSC.
pub fn greedy_full_cq(query: &Query, db: &Database, k: u64) -> Result<Vec<TupleRef>, SolveError> {
    let (inst, refs) = psc_instance(query, db);
    check_k(k, inst.n_elements as u64)?;
    Ok(greedy_psc(&inst, k).into_iter().map(|s| refs[s]).collect())
}

/// `p`-approximate ADP for full CQs via primal-dual PSC, where `p` is the
/// number of relations.
pub fn primal_dual_full_cq(
    query: &Query,
    db: &Database,
    k: u64,
) -> Result<Vec<TupleRef>, SolveError> {
    let (inst, refs) = psc_instance(query, db);
    check_k(k, inst.n_elements as u64)?;
    Ok(primal_dual_psc(&inst, k)
        .into_iter()
        .map(|s| refs[s])
        .collect())
}

fn check_k(k: u64, available: u64) -> Result<(), SolveError> {
    if k == 0 {
        return Err(SolveError::KZero);
    }
    if k > available {
        return Err(SolveError::KTooLarge { k, available });
    }
    Ok(())
}

#[cfg(test)]
// Pins the legacy v1 entry points; the fluent v2 path is
// differentially tested against them.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use crate::solver::brute::{brute_force, BruteForceOptions};
    use crate::solver::removed_outputs;
    use adp_engine::schema::attrs;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[2], &[3]]);
        db.add_relation(
            "R2",
            attrs(&["A", "B"]),
            &[&[1, 1], &[1, 2], &[2, 1], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["B"]), &[&[1], &[2], &[3]]);
        db
    }

    fn q() -> Query {
        parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap()
    }

    #[test]
    fn greedy_is_feasible() {
        for k in 1..=4 {
            let sol = greedy_full_cq(&q(), &db(), k).unwrap();
            assert!(removed_outputs(&q(), &db(), &sol) >= k, "k={k}");
        }
    }

    #[test]
    fn primal_dual_is_feasible_and_within_p() {
        let p = 3u64;
        for k in 1..=4 {
            let sol = primal_dual_full_cq(&q(), &db(), k).unwrap();
            assert!(removed_outputs(&q(), &db(), &sol) >= k, "k={k}");
            let (opt, _) = brute_force(&q(), &db(), k, &BruteForceOptions::default()).unwrap();
            assert!(
                sol.len() as u64 <= p * opt,
                "k={k}: primal-dual {} vs p·OPT {}",
                sol.len(),
                p * opt
            );
        }
    }

    #[test]
    fn greedy_within_harmonic_factor() {
        for k in 1..=4u64 {
            let sol = greedy_full_cq(&q(), &db(), k).unwrap();
            let (opt, _) = brute_force(&q(), &db(), k, &BruteForceOptions::default()).unwrap();
            // H_k ≤ 1 + ln k; generous integer bound:
            let hk = (1..=k).map(|i| 1.0 / i as f64).sum::<f64>();
            assert!(
                (sol.len() as f64) <= hk * opt as f64 + 1e-9,
                "k={k}: greedy {} vs H_k·OPT {}",
                sol.len(),
                hk * opt as f64
            );
        }
    }

    #[test]
    #[should_panic(expected = "full CQ")]
    fn projection_rejected() {
        let q = parse_query("Q(A) :- R1(A), R2(A,B), R3(B)").unwrap();
        let _ = psc_instance(&q, &db());
    }

    #[test]
    fn prepared_instance_matches_and_joins_once() {
        use std::sync::Arc;
        let prep = PreparedQuery::new(q(), Arc::new(db()));
        let (a, refs_a) = psc_instance_prepared(&prep);
        let (b, refs_b) = psc_instance(&q(), &db());
        assert_eq!(a.n_elements, b.n_elements);
        assert_eq!(refs_a, refs_b);
        assert_eq!(a.sets, b.sets);
        // Both instances drawn from one prepared query share one join.
        let e1 = prep.eval();
        let (_, _) = psc_instance_prepared(&prep);
        assert!(Arc::ptr_eq(&e1, &prep.eval()), "evaluation computed once");
    }
}
