//! Partial Set Cover (Definition 9) with unit costs.
//!
//! Given sets over a universe and a target `k`, pick the fewest sets
//! covering at least `k` elements. Used by the full-CQ approximation
//! algorithms (Theorem 5); also a standalone, tested combinatorial
//! substrate.

/// A PSC instance with unit set costs.
#[derive(Clone, Debug)]
pub struct PscInstance {
    /// `sets[s]` = element ids covered by set `s`.
    pub sets: Vec<Vec<u32>>,
    /// Universe size; element ids are `0..n_elements`.
    pub n_elements: u32,
}

impl PscInstance {
    /// Elements covered by a collection of sets.
    pub fn coverage(&self, chosen: &[usize]) -> u64 {
        let mut covered = vec![false; self.n_elements as usize];
        let mut count = 0u64;
        for &s in chosen {
            for &e in &self.sets[s] {
                if !covered[e as usize] {
                    covered[e as usize] = true;
                    count += 1;
                }
            }
        }
        count
    }
}

/// Greedy PSC: repeatedly pick the set covering the most uncovered
/// elements (capped at the residual target). `O(log k)` approximation
/// [Gandhi–Khuller–Srinivasan 2004].
pub fn greedy_psc(inst: &PscInstance, k: u64) -> Vec<usize> {
    let mut covered = vec![false; inst.n_elements as usize];
    let mut chosen: Vec<usize> = Vec::new();
    let mut remaining = k;
    let mut used = vec![false; inst.sets.len()];
    while remaining > 0 {
        let mut best: Option<(u64, usize)> = None;
        for (s, elems) in inst.sets.iter().enumerate() {
            if used[s] {
                continue;
            }
            let gain = elems.iter().filter(|&&e| !covered[e as usize]).count() as u64;
            // cap the useful gain at the residual target (partial cover)
            let gain = gain.min(remaining);
            if gain > 0 && best.map(|(g, _)| gain > g).unwrap_or(true) {
                best = Some((gain, s));
            }
        }
        let Some((_, s)) = best else {
            break; // nothing left to cover
        };
        used[s] = true;
        chosen.push(s);
        let mut newly = 0u64;
        for &e in &inst.sets[s] {
            if !covered[e as usize] {
                covered[e as usize] = true;
                newly += 1;
            }
        }
        remaining = remaining.saturating_sub(newly);
    }
    chosen
}

/// Primal-dual PSC in the Gandhi–Khuller–Srinivasan style, `f`-approximate
/// where `f` is the maximum element frequency (`= p` for full CQs).
///
/// Unit costs simplify the scheme: raising the dual of an uncovered
/// element immediately makes every set containing it tight, so the
/// algorithm repeatedly picks an uncovered element, buys **all** sets
/// containing it (≤ `f` sets), and stops once `k` elements are covered;
/// a final reverse-delete pass drops redundant sets.
pub fn primal_dual_psc(inst: &PscInstance, k: u64) -> Vec<usize> {
    let mut containing: Vec<Vec<usize>> = vec![Vec::new(); inst.n_elements as usize];
    for (s, elems) in inst.sets.iter().enumerate() {
        for &e in elems {
            containing[e as usize].push(s);
        }
    }
    let mut covered = vec![false; inst.n_elements as usize];
    let mut chosen: Vec<usize> = Vec::new();
    let mut in_solution = vec![false; inst.sets.len()];
    let mut covered_count = 0u64;

    // Process elements by decreasing "weight" (how much buying them
    // covers) to keep the solution small in practice; any order preserves
    // the f-approximation.
    let mut order: Vec<u32> = (0..inst.n_elements).collect();
    order.sort_by_key(|&e| {
        std::cmp::Reverse(
            containing[e as usize]
                .iter()
                .map(|&s| inst.sets[s].len())
                .sum::<usize>(),
        )
    });

    for &e in &order {
        if covered_count >= k {
            break;
        }
        if covered[e as usize] || containing[e as usize].is_empty() {
            continue;
        }
        for &s in &containing[e as usize] {
            if in_solution[s] {
                continue;
            }
            in_solution[s] = true;
            chosen.push(s);
            for &x in &inst.sets[s] {
                if !covered[x as usize] {
                    covered[x as usize] = true;
                    covered_count += 1;
                }
            }
        }
    }

    // Reverse delete: drop sets that are not needed to keep coverage ≥ k.
    let mut i = chosen.len();
    while i > 0 {
        i -= 1;
        let without: Vec<usize> = chosen
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &s)| s)
            .collect();
        if inst.coverage(&without) >= k.min(total_coverage(inst)) {
            chosen.remove(i);
        }
    }
    chosen
}

fn total_coverage(inst: &PscInstance) -> u64 {
    let all: Vec<usize> = (0..inst.sets.len()).collect();
    inst.coverage(&all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> PscInstance {
        // elements 0..6; sets: {0,1,2}, {2,3}, {4}, {5}, {0,4,5}
        PscInstance {
            sets: vec![vec![0, 1, 2], vec![2, 3], vec![4], vec![5], vec![0, 4, 5]],
            n_elements: 6,
        }
    }

    /// exhaustive optimum for small instances
    fn opt(inst: &PscInstance, k: u64) -> u64 {
        let n = inst.sets.len();
        for size in 0..=n {
            let mut idx: Vec<usize> = (0..size).collect();
            loop {
                if inst.coverage(&idx) >= k {
                    return size as u64;
                }
                // next combination
                let mut i = size;
                let mut advanced = false;
                while i > 0 {
                    i -= 1;
                    if idx[i] < n - size + i {
                        idx[i] += 1;
                        for j in i + 1..size {
                            idx[j] = idx[j - 1] + 1;
                        }
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    break;
                }
            }
        }
        u64::MAX
    }

    #[test]
    fn greedy_feasible_for_all_k() {
        let inst = inst();
        for k in 1..=6 {
            let sol = greedy_psc(&inst, k);
            assert!(inst.coverage(&sol) >= k, "k={k}");
        }
    }

    #[test]
    fn primal_dual_feasible_and_bounded() {
        let inst = inst();
        let f = 2; // max element frequency here (0 and 2 are in 2 sets)
        for k in 1..=6u64 {
            let sol = primal_dual_psc(&inst, k);
            assert!(inst.coverage(&sol) >= k, "k={k}");
            let o = opt(&inst, k);
            assert!(
                sol.len() as u64 <= f * o,
                "k={k}: {} vs f·OPT={}",
                sol.len(),
                f * o
            );
        }
    }

    #[test]
    fn greedy_picks_large_sets_first() {
        let inst = inst();
        let sol = greedy_psc(&inst, 3);
        assert_eq!(sol, vec![0], "one set of size 3 suffices");
    }

    #[test]
    fn partial_cap_prefers_exact_fits() {
        // k=1: a singleton set is as good as a large one.
        let inst = inst();
        let sol = greedy_psc(&inst, 1);
        assert_eq!(sol.len(), 1);
    }

    #[test]
    fn coverage_counts_distinct_elements() {
        let inst = inst();
        assert_eq!(inst.coverage(&[0, 1]), 4);
        assert_eq!(inst.coverage(&[]), 0);
        assert_eq!(inst.coverage(&[0, 4]), 5);
    }

    #[test]
    fn random_instances_greedy_vs_opt() {
        // deterministic LCG
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for _ in 0..30 {
            let n_elem = 4 + rng(6) as u32;
            let n_sets = 3 + rng(5) as usize;
            let sets: Vec<Vec<u32>> = (0..n_sets)
                .map(|_| {
                    let mut s: Vec<u32> = (0..n_elem).filter(|_| rng(2) == 0).collect();
                    if s.is_empty() {
                        s.push(rng(n_elem as u64) as u32);
                    }
                    s
                })
                .collect();
            let inst = PscInstance {
                sets,
                n_elements: n_elem,
            };
            let max_cov = total_coverage(&inst);
            for k in 1..=max_cov {
                let g = greedy_psc(&inst, k);
                assert!(inst.coverage(&g) >= k);
                let o = opt(&inst, k);
                let hk = (1..=k).map(|i| 1.0 / i as f64).sum::<f64>();
                assert!((g.len() as f64) <= hk * o as f64 + 1.0);
            }
        }
    }
}
