//! Error types for query construction and solving.

use adp_engine::error::AdpError;
use std::fmt;

/// Errors raised while building or parsing queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The query body is empty.
    EmptyBody,
    /// Two atoms reference the same relation (self-joins are out of scope).
    SelfJoin(String),
    /// A head attribute does not occur in the body.
    HeadNotInBody(String),
    /// An attribute repeats within one atom (e.g. `R(A,A)`); the
    /// paper's queries never repeat an attribute inside an atom.
    DuplicateAttr {
        /// The atom with the repeated attribute.
        relation: String,
        /// The repeated attribute.
        attr: String,
    },
    /// A query, relation, or attribute name is not an identifier
    /// (alphanumerics and `_`), so its text form could not round-trip
    /// through the parser.
    BadIdentifier(String),
    /// Parse failure with a human-readable message.
    Parse(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyBody => write!(f, "query body must contain at least one atom"),
            QueryError::SelfJoin(r) => write!(
                f,
                "relation {r} appears twice; self-join-free CQs only (paper scope)"
            ),
            QueryError::HeadNotInBody(a) => {
                write!(f, "head attribute {a} does not appear in the body")
            }
            QueryError::DuplicateAttr { relation, attr } => {
                write!(f, "attribute {attr} repeats within atom {relation}")
            }
            QueryError::BadIdentifier(name) => write!(
                f,
                "{name:?} is not an identifier (alphanumerics and '_' only)"
            ),
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Errors raised by the ADP solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// `k` exceeds `|Q(D)|`: the requested number of output deletions is
    /// unattainable (the paper requires `1 ≤ k ≤ |Q(D)|`).
    KTooLarge {
        /// requested deletions
        k: u64,
        /// available outputs
        available: u64,
    },
    /// `k = 0` is trivial; the caller probably made an off-by-one error.
    KZero,
    /// An exact dynamic program would exceed the configured memory budget
    /// (dense table larger than [`crate::solver::AdpOptions::dense_limit`]).
    BudgetExceeded(String),
    /// Under the given deletion policy (frozen relations) no deletion set
    /// can remove `k` outputs.
    Infeasible {
        /// requested deletions
        k: u64,
        /// outputs removable under the policy
        removable: u64,
    },
    /// The engine refused to build an index over the evaluation (e.g.
    /// [`AdpError::TooManyWitnesses`]): solving would corrupt provenance.
    Engine(AdpError),
}

impl From<AdpError> for SolveError {
    fn from(e: AdpError) -> Self {
        SolveError::Engine(e)
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::KTooLarge { k, available } => write!(
                f,
                "cannot remove {k} outputs: only {available} outputs exist"
            ),
            SolveError::KZero => write!(f, "k must be at least 1"),
            SolveError::BudgetExceeded(what) => write!(f, "memory budget exceeded: {what}"),
            SolveError::Infeasible { k, removable } => write!(
                f,
                "cannot remove {k} outputs: the deletion policy only allows removing {removable}"
            ),
            SolveError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SolveError {}
