//! # adp-core
//!
//! A complete implementation of **Aggregated Deletion Propagation for
//! Counting Conjunctive Query Answers** (Hu, Sun, Patwa, Panigrahi, Roy;
//! VLDB 2020, arXiv:2010.08694).
//!
//! Given a self-join-free conjunctive query `Q`, a database `D`, and an
//! integer `k`, `ADP(Q, D, k)` asks for the minimum number of input
//! tuples whose deletion removes at least `k` tuples from `Q(D)`.
//!
//! The crate provides:
//!
//! * [`query`] — the CQ model, a datalog-style parser, and the typed
//!   [`query::QueryBuilder`] (v2 programmatic construction);
//! * [`analysis`] — both dichotomies: the procedural
//!   [`analysis::is_ptime`] (Theorem 2) and the structural
//!   [`analysis::has_hard_structure`] (Theorem 3), plus machine-checkable
//!   [`analysis::hardness_certificate`]s (Lemma 6);
//! * [`solver`] — the unified `ComputeADP` (Algorithm 2) behind the
//!   fluent [`solver::Solve`] builder: exact on poly-time queries,
//!   greedy heuristic on NP-hard ones, with counting and reporting
//!   modes and an explain trace on every [`solver::Report`];
//! * [`approx`] — the Partial-Set-Cover approximation algorithms for
//!   full CQs (Theorem 5);
//! * [`selection`] — CQs with selection predicates (§7.5, Lemma 12).
//!
//! ## Quick start
//!
//! ```
//! use adp_core::analysis::is_ptime;
//! use adp_core::query::Query;
//! use adp_core::solver::Solve;
//! use adp_engine::database::Database;
//! use adp_engine::schema::attrs;
//!
//! // The paper's waitlist query (Example 1), built without a string
//! // round-trip.
//! let q = Query::builder("QWL")
//!     .head(["S", "C"])
//!     .atom("Major", ["S", "M"])
//!     .atom("Req", ["M", "C"])
//!     .atom("NoSeat", ["C"])
//!     .build()
//!     .unwrap();
//! assert!(!is_ptime(&q)); // NP-hard in general
//!
//! let mut db = Database::new();
//! db.add_relation("Major", attrs(&["S", "M"]), &[&[1, 10], &[2, 10]]);
//! db.add_relation("Req", attrs(&["M", "C"]), &[&[10, 100], &[10, 101]]);
//! db.add_relation("NoSeat", attrs(&["C"]), &[&[100], &[101]]);
//!
//! // Shrink the waitlist by 2 entries with minimum intervention.
//! let report = Solve::new(&q, &db).k(2).run().unwrap();
//! assert!(report.cost() >= 1 && report.outcome.achieved >= 2);
//! assert_eq!(report.explain.solver, "greedy");
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod approx;
pub mod error;
pub mod query;
pub mod selection;
pub mod solver;
pub mod wire;

pub use error::{QueryError, SolveError};
pub use query::{parse_query, Query, QueryBuilder};
#[allow(deprecated)]
pub use solver::{compute_adp, compute_adp_arc};
pub use solver::{AdpOptions, AdpOutcome, Branch, Explain, Mode, Report, Solve};
