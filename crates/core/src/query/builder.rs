//! A typed, validating builder for [`Query`] values.
//!
//! The v1 API forced programmatic callers through query *text*: build a
//! string, [`parse_query`](super::parse_query) it, handle parse errors
//! at runtime — a round-trip that re-tokenizes what the caller already
//! had in structured form. [`QueryBuilder`] constructs the same
//! [`Query`] directly, with every standing assumption checked at
//! [`build`](QueryBuilder::build) time as a typed [`QueryError`]:
//! identifier validity (so [`Query::to_text`] is guaranteed to
//! round-trip through the parser), per-atom attribute uniqueness (a
//! typed error instead of the old panic), self-join freedom, non-empty
//! body, and head ⊆ body.
//!
//! ```
//! use adp_core::query::{parse_query, Query};
//!
//! let q = Query::builder("Q3path")
//!     .head(["A", "D"])
//!     .atom("R1", ["A", "B"])
//!     .atom("R2", ["B", "C"])
//!     .atom("R3", ["C", "D"])
//!     .build()
//!     .unwrap();
//! assert_eq!(q, parse_query("Q3path(A,D) :- R1(A,B), R2(B,C), R3(C,D)").unwrap());
//! assert_eq!(parse_query(&q.to_text()).unwrap(), q); // round-trips
//! ```

use super::Query;
use crate::error::QueryError;
use adp_engine::schema::{Attr, RelationSchema};

/// True if `s` is a parser-accepted identifier (the grammar's `ident`):
/// non-empty, alphanumerics and `_` only.
pub(crate) fn is_ident(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// Builds a [`RelationSchema`], rejecting repeated attributes with a
/// typed [`QueryError::DuplicateAttr`] instead of the schema
/// constructor's panic. Shared by the builder and the parser, so no
/// front door can reach the panicking path.
pub(crate) fn checked_schema(name: &str, attrs: Vec<Attr>) -> Result<RelationSchema, QueryError> {
    for (i, a) in attrs.iter().enumerate() {
        if attrs[..i].contains(a) {
            return Err(QueryError::DuplicateAttr {
                relation: name.to_owned(),
                attr: a.to_string(),
            });
        }
    }
    Ok(RelationSchema::new(name, attrs))
}

/// A fluent, validating constructor for [`Query`] — the programmatic
/// alternative to [`parse_query`](super::parse_query). See the module
/// docs for what is validated and when.
#[derive(Clone, Debug, Default)]
pub struct QueryBuilder {
    name: String,
    head: Vec<Attr>,
    atoms: Vec<(String, Vec<Attr>)>,
}

impl QueryBuilder {
    /// Starts a query named `name`. The name is display-only (it never
    /// affects solving or cache keys) but must be an identifier so the
    /// built query's [`Query::to_text`] round-trips through the parser.
    pub fn new(name: &str) -> Self {
        QueryBuilder {
            name: name.to_owned(),
            head: Vec::new(),
            atoms: Vec::new(),
        }
    }

    /// Sets the output attributes (`head(Q)`), replacing any previous
    /// head. An empty head (the default) is a boolean query.
    pub fn head<I, A>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        self.head = attrs.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one body atom `name(attrs...)`. Atom order is preserved:
    /// it carries the [`TupleRef.atom`] coordinates of every reported
    /// deletion set.
    ///
    /// [`TupleRef.atom`]: adp_engine::provenance::TupleRef
    pub fn atom<I, A>(mut self, name: &str, attrs: I) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Attr>,
    {
        self.atoms
            .push((name.to_owned(), attrs.into_iter().map(Into::into).collect()));
        self
    }

    /// Validates and builds the [`Query`]. Every failure is a typed
    /// [`QueryError`]; on success, `parse_query(&q.to_text())`
    /// reproduces the query exactly.
    pub fn build(self) -> Result<Query, QueryError> {
        if !is_ident(&self.name) {
            return Err(QueryError::BadIdentifier(self.name));
        }
        let mut atoms = Vec::with_capacity(self.atoms.len());
        for (name, attrs) in self.atoms {
            if !is_ident(&name) {
                return Err(QueryError::BadIdentifier(name));
            }
            if let Some(a) = attrs.iter().find(|a| !is_ident(a.name())) {
                return Err(QueryError::BadIdentifier(a.to_string()));
            }
            atoms.push(checked_schema(&name, attrs)?);
        }
        for h in &self.head {
            if !is_ident(h.name()) {
                return Err(QueryError::BadIdentifier(h.to_string()));
            }
        }
        Query::new(&self.name, self.head, atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use adp_engine::schema::attrs;

    #[test]
    fn builder_matches_parser() {
        let built = Query::builder("QWL")
            .head(["S", "C"])
            .atom("Major", ["S", "M"])
            .atom("Req", ["M", "C"])
            .atom("NoSeat", ["C"])
            .build()
            .unwrap();
        let parsed = parse_query("QWL(S,C) :- Major(S,M), Req(M,C), NoSeat(C)").unwrap();
        assert_eq!(built, parsed);
        assert_eq!(built.normalized_text(), parsed.normalized_text());
    }

    #[test]
    fn accepts_attr_values_and_strs() {
        // Both `&str` and pre-built `Attr` head/atom lists work.
        let q = Query::builder("Q")
            .head(attrs(&["A"]))
            .atom("R", attrs(&["A", "B"]))
            .build()
            .unwrap();
        assert_eq!(q, parse_query("Q(A) :- R(A,B)").unwrap());
    }

    #[test]
    fn boolean_and_vacuum_forms() {
        let q = Query::builder("Q")
            .atom("R", ["A"])
            .atom("V", Vec::<Attr>::new())
            .build()
            .unwrap();
        assert!(q.is_boolean());
        assert!(q.has_vacuum_atom());
        assert_eq!(parse_query(&q.to_text()).unwrap(), q);
    }

    #[test]
    fn validation_is_typed() {
        assert_eq!(
            Query::builder("Q").build().unwrap_err(),
            QueryError::EmptyBody
        );
        assert!(matches!(
            Query::builder("Q!").atom("R", ["A"]).build().unwrap_err(),
            QueryError::BadIdentifier(_)
        ));
        assert!(matches!(
            Query::builder("Q").atom("R(", ["A"]).build().unwrap_err(),
            QueryError::BadIdentifier(_)
        ));
        assert!(matches!(
            Query::builder("Q").atom("R", ["A,B"]).build().unwrap_err(),
            QueryError::BadIdentifier(_)
        ));
        assert_eq!(
            Query::builder("Q")
                .atom("R", ["A", "A"])
                .build()
                .unwrap_err(),
            QueryError::DuplicateAttr {
                relation: "R".into(),
                attr: "A".into(),
            }
        );
        assert!(matches!(
            Query::builder("Q")
                .atom("R", ["A"])
                .atom("R", ["B"])
                .build()
                .unwrap_err(),
            QueryError::SelfJoin(_)
        ));
        assert!(matches!(
            Query::builder("Q")
                .head(["Z"])
                .atom("R", ["A"])
                .build()
                .unwrap_err(),
            QueryError::HeadNotInBody(_)
        ));
    }

    #[test]
    fn head_replaces_not_appends() {
        let q = Query::builder("Q")
            .head(["A", "B"])
            .head(["A"])
            .atom("R", ["A", "B"])
            .build()
            .unwrap();
        assert_eq!(q.head(), &attrs(&["A"])[..]);
    }
}
