//! The query graph `G_Q` (paper §3.1, Figure 2): one vertex per relation,
//! an edge whenever two relations share an attribute. Also the
//! attribute-restricted reachability used by triad detection (§5).

use adp_engine::schema::{Attr, RelationSchema};

/// Connected components of `G_Q` as sorted lists of atom indices,
/// deterministically ordered by smallest member.
pub fn connected_components(atoms: &[RelationSchema]) -> Vec<Vec<usize>> {
    let n = atoms.len();
    let mut comp: Vec<Option<usize>> = vec![None; n];
    let mut out: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if comp[start].is_some() {
            continue;
        }
        let id = out.len();
        let mut stack = vec![start];
        let mut members = Vec::new();
        comp[start] = Some(id);
        while let Some(u) = stack.pop() {
            members.push(u);
            for v in 0..n {
                if comp[v].is_none() && shares_attr(&atoms[u], &atoms[v]) {
                    comp[v] = Some(id);
                    stack.push(v);
                }
            }
        }
        members.sort_unstable();
        out.push(members);
    }
    out
}

/// Do two atoms share at least one attribute?
pub fn shares_attr(a: &RelationSchema, b: &RelationSchema) -> bool {
    a.attrs().iter().any(|x| b.contains(x))
}

/// Do two atoms share at least one attribute **outside** `excluded`?
pub fn shares_attr_outside(a: &RelationSchema, b: &RelationSchema, excluded: &[Attr]) -> bool {
    a.attrs()
        .iter()
        .any(|x| b.contains(x) && !excluded.contains(x))
}

/// Is there a path (sequence of atoms, consecutive pairs sharing an
/// attribute outside `excluded`) from atom `from` to atom `to`? Both
/// endpoints may themselves contain excluded attributes; only the
/// *connections* are restricted, matching the paper's path definition for
/// triads ("a path from R1 to R2 only using attributes in
/// attr(Q) − attr(R3)").
pub fn connected_avoiding(
    atoms: &[RelationSchema],
    from: usize,
    to: usize,
    excluded: &[Attr],
) -> bool {
    if from == to {
        return true;
    }
    let n = atoms.len();
    let mut seen = vec![false; n];
    seen[from] = true;
    let mut stack = vec![from];
    while let Some(u) = stack.pop() {
        for v in 0..n {
            if !seen[v] && shares_attr_outside(&atoms[u], &atoms[v], excluded) {
                if v == to {
                    return true;
                }
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_engine::schema::attrs;

    fn chain() -> Vec<RelationSchema> {
        vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ]
    }

    #[test]
    fn chain_is_connected() {
        assert_eq!(connected_components(&chain()), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn figure2_graph_components() {
        // Figure 2 of the paper: one connected query.
        let atoms = vec![
            RelationSchema::new("R1", attrs(&["A", "B", "C"])),
            RelationSchema::new("R2", attrs(&["A", "H"])),
            RelationSchema::new("R3", attrs(&["B", "E", "F"])),
            RelationSchema::new("R4", attrs(&["E", "K"])),
            RelationSchema::new("R5", attrs(&["K", "I"])),
            RelationSchema::new("R6", attrs(&["C", "I", "J"])),
        ];
        assert_eq!(connected_components(&atoms).len(), 1);
    }

    #[test]
    fn avoiding_attrs_breaks_paths() {
        let atoms = chain();
        // R1–R3 connected in general...
        assert!(connected_avoiding(&atoms, 0, 2, &[]));
        // ...but not when the only bridge attributes are excluded.
        assert!(!connected_avoiding(&atoms, 0, 2, &attrs(&["B"])));
        assert!(!connected_avoiding(&atoms, 0, 2, &attrs(&["C"])));
    }

    #[test]
    fn triangle_has_two_routes() {
        let atoms = vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "A"])),
        ];
        // excluding C still leaves the direct A/B connections
        assert!(connected_avoiding(&atoms, 0, 1, &attrs(&["C"])));
        // excluding B forces the route through R3
        assert!(connected_avoiding(&atoms, 0, 1, &attrs(&["B"])));
        // excluding both disconnects R1 from R2
        assert!(!connected_avoiding(&atoms, 0, 1, &attrs(&["B", "A", "C"])));
    }

    #[test]
    fn vacuum_atoms_are_isolated() {
        let atoms = vec![
            RelationSchema::new("V", vec![]),
            RelationSchema::new("R", attrs(&["A"])),
        ];
        assert_eq!(connected_components(&atoms).len(), 2);
    }
}
