//! Process-wide counters for the query-text front door.
//!
//! The v2 prepared-statement contract promises that a bound
//! [`Statement`]'s hot path performs **zero** query-text work per call:
//! no parse, no normalization, no text fingerprint. Promises about
//! *absence* of work are easy to regress silently, so the three
//! text-path operations tick a relaxed atomic each time they run:
//!
//! * [`parses`] — [`parse_query`](super::parse_query) invocations;
//! * [`normalizations`] — [`Query::normalized_text`](super::Query::normalized_text)
//!   renders (including the one inside every fingerprint);
//! * [`fingerprints`] — [`Query::fingerprint`](super::Query::fingerprint)
//!   FNV-1a runs over the normalized text.
//!
//! The counters are monotone process-wide tallies (never reset, never
//! used for synchronization); consumers assert on **deltas** around a
//! region of interest. The `statement_hot_path` integration test pins
//! the zero-work contract with them, and `fig_serve`'s statement arm
//! reports the per-request text-path savings they expose. A relaxed
//! `fetch_add` on an uncontended cache line is a nanosecond-scale cost,
//! which is why they can stay always-on instead of feature-gated.
//!
//! [`Statement`]: https://docs.rs/adp-service

use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) static PARSES: AtomicU64 = AtomicU64::new(0);
pub(crate) static NORMALIZATIONS: AtomicU64 = AtomicU64::new(0);
pub(crate) static FINGERPRINTS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Total [`parse_query`](super::parse_query) calls in this process.
pub fn parses() -> u64 {
    PARSES.load(Ordering::Relaxed)
}

/// Total [`Query::normalized_text`](super::Query::normalized_text)
/// renders in this process (fingerprinting normalizes too, so every
/// fingerprint also counts here).
pub fn normalizations() -> u64 {
    NORMALIZATIONS.load(Ordering::Relaxed)
}

/// Total [`Query::fingerprint`](super::Query::fingerprint) hashes in
/// this process.
pub fn fingerprints() -> u64 {
    FINGERPRINTS.load(Ordering::Relaxed)
}

/// One consistent snapshot of all three counters, for delta assertions:
/// `let before = text_work(); ...; assert_eq!(text_work(), before);`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TextWork {
    /// [`parses`] at snapshot time.
    pub parses: u64,
    /// [`normalizations`] at snapshot time.
    pub normalizations: u64,
    /// [`fingerprints`] at snapshot time.
    pub fingerprints: u64,
}

/// Snapshots the text-path counters.
pub fn text_work() -> TextWork {
    TextWork {
        parses: parses(),
        normalizations: normalizations(),
        fingerprints: fingerprints(),
    }
}
