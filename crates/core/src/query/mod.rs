//! Conjunctive queries without self-joins (paper §3.1).
//!
//! A [`Query`] is a head (output attribute set) plus a body of atoms, each
//! an [`RelationSchema`]. Transformations used throughout the paper —
//! residual queries `Q^{-A}`, head joins, connected components — live
//! here; complexity analyses live in [`crate::analysis`].

pub mod builder;
pub mod graph;
pub mod metrics;
pub mod parser;

use crate::error::QueryError;
use adp_engine::schema::{Attr, RelationSchema};
use std::collections::BTreeSet;
use std::fmt;

pub use builder::QueryBuilder;
pub use parser::parse_query;

/// A self-join-free conjunctive query `Q(head) :- R1(..), ..., Rp(..)`.
#[derive(Clone, PartialEq, Eq)]
pub struct Query {
    name: String,
    head: Vec<Attr>,
    atoms: Vec<RelationSchema>,
}

impl Query {
    /// Builds a query, validating the paper's standing assumptions:
    /// non-empty body, no self-joins, head ⊆ body attributes.
    pub fn new(
        name: &str,
        head: Vec<Attr>,
        atoms: Vec<RelationSchema>,
    ) -> Result<Self, QueryError> {
        if atoms.is_empty() {
            return Err(QueryError::EmptyBody);
        }
        for (i, a) in atoms.iter().enumerate() {
            if atoms[..i].iter().any(|b| b.name() == a.name()) {
                return Err(QueryError::SelfJoin(a.name().to_owned()));
            }
        }
        let mut head_set: Vec<Attr> = head;
        head_set.sort();
        head_set.dedup();
        for h in &head_set {
            if !atoms.iter().any(|a| a.contains(h)) {
                return Err(QueryError::HeadNotInBody(h.to_string()));
            }
        }
        Ok(Query {
            name: name.to_owned(),
            head: head_set,
            atoms,
        })
    }

    /// Starts a typed [`QueryBuilder`] named `name` — the programmatic
    /// alternative to [`parse_query`], validating at build time instead
    /// of parse time.
    pub fn builder(name: &str) -> QueryBuilder {
        QueryBuilder::new(name)
    }

    /// The query's name (used for display only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output attributes (`head(Q)`), sorted.
    pub fn head(&self) -> &[Attr] {
        &self.head
    }

    /// Body atoms (`rels(Q)`).
    pub fn atoms(&self) -> &[RelationSchema] {
        &self.atoms
    }

    /// Number of atoms (`p`).
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// All attributes appearing in the body (`attr(Q)`), sorted.
    pub fn attrs(&self) -> Vec<Attr> {
        let set: BTreeSet<Attr> = self
            .atoms
            .iter()
            .flat_map(|a| a.attrs().iter().cloned())
            .collect();
        set.into_iter().collect()
    }

    /// Non-output (existential) attributes, sorted.
    pub fn existential_attrs(&self) -> Vec<Attr> {
        self.attrs()
            .into_iter()
            .filter(|a| !self.head.contains(a))
            .collect()
    }

    /// True if the query has no output attributes (`head(Q) = ∅`).
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// True if every body attribute is an output attribute (full CQ —
    /// the natural join).
    pub fn is_full(&self) -> bool {
        self.attrs().iter().all(|a| self.head.contains(a))
    }

    /// True if some atom is vacuum (zero attributes).
    pub fn has_vacuum_atom(&self) -> bool {
        self.atoms.iter().any(|a| a.is_vacuum())
    }

    /// The relations containing attribute `a` (`rels(A)`), as atom indices.
    pub fn rels_with(&self, a: &Attr) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, s)| s.contains(a))
            .map(|(i, _)| i)
            .collect()
    }

    /// Universal attributes: **output** attributes appearing in *every*
    /// atom (paper §4: "an attribute is universal if it is an output
    /// attribute appearing in all relations").
    pub fn universal_attrs(&self) -> Vec<Attr> {
        self.head
            .iter()
            .filter(|h| self.atoms.iter().all(|a| a.contains(h)))
            .cloned()
            .collect()
    }

    /// Residual query `Q^{-A}`: `remove` dropped from the head and from
    /// every atom (paper Lemma 2 / §7.5).
    pub fn without_attrs(&self, remove: &[Attr]) -> Query {
        Query {
            name: format!("{}^-", self.name),
            head: self
                .head
                .iter()
                .filter(|h| !remove.contains(h))
                .cloned()
                .collect(),
            atoms: self.atoms.iter().map(|a| a.without_attrs(remove)).collect(),
        }
    }

    /// The *head join* `Q_head`: the residual query after removing all
    /// non-output attributes from all atoms (paper §4.2.3 / §5.2.2).
    pub fn head_join(&self) -> Query {
        self.without_attrs(&self.existential_attrs())
    }

    /// The subquery on a subset of atoms, keeping only head attributes
    /// that occur in those atoms. Panics on an empty selection.
    pub fn subquery(&self, atom_indices: &[usize]) -> Query {
        assert!(!atom_indices.is_empty(), "subquery needs at least one atom");
        let atoms: Vec<RelationSchema> = atom_indices
            .iter()
            .map(|&i| self.atoms[i].clone())
            .collect();
        let head: Vec<Attr> = self
            .head
            .iter()
            .filter(|h| atoms.iter().any(|a| a.contains(h)))
            .cloned()
            .collect();
        Query {
            name: format!("{}[{}]", self.name, atoms.len()),
            head,
            atoms,
        }
    }

    /// Connected components of the query graph `G_Q`, as sets of atom
    /// indices (paper §3.1). Sorted for determinism.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        graph::connected_components(&self.atoms)
    }

    /// True if `G_Q` is connected.
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() == 1
    }

    /// Canonical cache-key text for this query: the head (already sorted
    /// and deduplicated by [`Query::new`]) and the body atoms in
    /// declaration order, with canonical punctuation and **without the
    /// query name** (the name is display-only and never affects
    /// solving). Two query texts normalize to the same string iff the
    /// solver treats them identically, so the text is safe to key a
    /// shared plan cache: `"Q(A) :- R(A)"`, `"Q(A):-R(A)"`, and
    /// `"Other(A) :- R(A)"` all map to `"(A) :- R(A)"`.
    ///
    /// Atom order and per-atom attribute order are preserved: they feed
    /// the solver's atom indexing ([`TupleRef.atom`] coordinates), so
    /// reordering them would conflate requests whose deletion sets are
    /// not interchangeable.
    ///
    /// [`TupleRef.atom`]: adp_engine::provenance::TupleRef
    pub fn normalized_text(&self) -> String {
        use std::fmt::Write;
        metrics::bump(&metrics::NORMALIZATIONS);
        let mut out = String::new();
        out.push('(');
        for (i, h) in self.head.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{h}");
        }
        out.push_str(") :- ");
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{a}");
        }
        out
    }

    /// 64-bit FNV-1a fingerprint of [`normalized_text`](Self::normalized_text).
    /// Stable across processes and builds (unlike `DefaultHasher`
    /// values, which the std documentation reserves the right to
    /// change), so it can shard caches and key persisted artifacts.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_of_normalized(&self.normalized_text())
    }

    /// The query's canonical parser-compatible text:
    /// `name(head) :- atoms`. For any query whose name and attributes
    /// are identifiers (everything a [`QueryBuilder`] builds and
    /// everything [`parse_query`] accepts),
    /// `parse_query(&q.to_text()) == q` — the round-trip the
    /// `api_v2_differential` proptest suite pins. Derived queries
    /// (residuals, subqueries) carry decorated display names like
    /// `Q^-`, which are not identifiers; their text is for humans only.
    pub fn to_text(&self) -> String {
        format!("{self}")
    }
}

/// [`Query::fingerprint`] for an already-rendered
/// [`normalized_text`](Query::normalized_text), so callers that need
/// both the key text and its fingerprint (the serving layer's cache
/// path) render the text exactly once.
pub fn fingerprint_of_normalized(normalized: &str) -> u64 {
    metrics::bump(&metrics::FINGERPRINTS);
    fnv1a(normalized.as_bytes())
}

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parses `text` and returns its canonical cache-key form (see
/// [`Query::normalized_text`]). The cheap front door for serving
/// layers: one parse, then string keys.
pub fn normalize_query_text(text: &str) -> Result<String, QueryError> {
    Ok(parse_query(text)?.normalized_text())
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, h) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{h}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_engine::schema::attrs;

    fn q(text: &str) -> Query {
        parse_query(text).unwrap()
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            Query::new("Q", vec![], vec![]).unwrap_err(),
            QueryError::EmptyBody
        );
        let r = RelationSchema::new("R", attrs(&["A"]));
        assert!(matches!(
            Query::new("Q", vec![], vec![r.clone(), r.clone()]).unwrap_err(),
            QueryError::SelfJoin(_)
        ));
        assert!(matches!(
            Query::new("Q", attrs(&["Z"]), vec![r]).unwrap_err(),
            QueryError::HeadNotInBody(_)
        ));
    }

    #[test]
    fn attr_sets() {
        let q = q("Q(A,E) :- R1(A,B), R2(B,C), R3(C,E)");
        assert_eq!(q.attrs(), attrs(&["A", "B", "C", "E"]));
        assert_eq!(q.existential_attrs(), attrs(&["B", "C"]));
        assert!(!q.is_boolean());
        assert!(!q.is_full());
    }

    #[test]
    fn full_and_boolean_flags() {
        assert!(q("Q(A,B) :- R1(A,B)").is_full());
        assert!(q("Q() :- R1(A,B)").is_boolean());
    }

    #[test]
    fn universal_attrs_must_be_output_and_everywhere() {
        // B is everywhere but not output; A is output and everywhere.
        let q = q("Q(A) :- R1(A,B), R2(A,B,C)");
        assert_eq!(q.universal_attrs(), attrs(&["A"]));
        // nothing universal in a chain
        assert!(q2_chain().universal_attrs().is_empty());
    }

    fn q2_chain() -> Query {
        q("Q(A,E) :- R1(A,B), R2(B,C), R3(C,E)")
    }

    #[test]
    fn residual_query_drops_attr_everywhere() {
        let q = q("Q(A,B) :- R1(A,B), R2(A,C)");
        let r = q.without_attrs(&attrs(&["A"]));
        assert_eq!(r.head(), &attrs(&["B"])[..]);
        assert_eq!(r.atoms()[0].attrs(), &attrs(&["B"])[..]);
        assert_eq!(r.atoms()[1].attrs(), &attrs(&["C"])[..]);
    }

    #[test]
    fn head_join_keeps_only_output_attrs() {
        let q = q2_chain();
        let hj = q.head_join();
        assert_eq!(hj.atoms()[0].attrs(), &attrs(&["A"])[..]);
        assert!(hj.atoms()[1].is_vacuum());
        assert_eq!(hj.atoms()[2].attrs(), &attrs(&["E"])[..]);
    }

    #[test]
    fn example4_components() {
        // Paper Example 4.
        let q = q("Q(A,F,G,H) :- R1(A,B), R2(F,G), R3(B,C), R4(C), R5(G,H)");
        let mut comps = q.connected_components();
        comps.sort();
        assert_eq!(comps, vec![vec![0, 2, 3], vec![1, 4]]);
        assert!(!q.is_connected());
        let sub = q.subquery(&[1, 4]);
        assert_eq!(sub.head(), &attrs(&["F", "G", "H"])[..]);
    }

    #[test]
    fn normalized_text_canonicalizes_lexical_noise_only() {
        // Whitespace and the query name are noise; atom order is not.
        let a = q("Q(A,B) :- R1(A,B), R2(B)");
        let b = parse_query("Other( B , A )   :-   R1( A , B ),R2( B )").unwrap();
        assert_eq!(a.normalized_text(), "(A,B) :- R1(A,B), R2(B)");
        assert_eq!(a.normalized_text(), b.normalized_text());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let reordered = q("Q(A,B) :- R2(B), R1(A,B)");
        assert_ne!(
            a.normalized_text(),
            reordered.normalized_text(),
            "atom order carries TupleRef coordinates and must stay distinct"
        );
        assert_eq!(
            normalize_query_text("X(A,B):-R1(A,B)  ,  R2(B)").unwrap(),
            a.normalized_text()
        );
        assert!(normalize_query_text("not a query").is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        // FNV-1a is a fixed algorithm: the value must never drift across
        // runs or builds (it keys shared caches).
        let f = q("Q(A) :- R(A)").fingerprint();
        assert_eq!(f, q("Z(A) :- R(A)").fingerprint());
        assert_eq!(f, super::fnv1a("(A) :- R(A)".as_bytes()));
        assert_ne!(f, q("Q(A) :- S(A)").fingerprint());
        assert_ne!(f, q("Q() :- R(A)").fingerprint());
    }

    #[test]
    fn vacuum_detection() {
        let q = Query::new(
            "Q",
            vec![],
            vec![
                RelationSchema::new("V", vec![]),
                RelationSchema::new("R", attrs(&["A"])),
            ],
        )
        .unwrap();
        assert!(q.has_vacuum_atom());
    }
}
