//! A small datalog-style parser for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  :=  name '(' attrlist? ')' (':-' | '<-') atom (',' atom)*
//! atom   :=  name '(' attrlist? ')'
//! attrlist := ident (',' ident)*
//! ```
//!
//! Examples from the paper parse directly:
//!
//! ```
//! use adp_core::query::parse_query;
//! let q = parse_query("QWL(S,C) :- Major(S,M), Req(M,C), NoSeat(C)").unwrap();
//! assert_eq!(q.atom_count(), 3);
//! assert_eq!(q.head().len(), 2);
//! ```

use super::builder::is_ident;
use super::Query;
use crate::error::QueryError;
use adp_engine::schema::Attr;

/// Parses a query from its datalog-ish text form.
pub fn parse_query(text: &str) -> Result<Query, QueryError> {
    super::metrics::bump(&super::metrics::PARSES);
    let (head_part, body_part) = split_rule(text)?;
    let (qname, head_attrs) = parse_atom_text(head_part)?;
    let mut atoms = Vec::new();
    for atom_text in split_atoms(body_part)? {
        let (rname, rattrs) = parse_atom_text(&atom_text)?;
        atoms.push(super::builder::checked_schema(
            &rname,
            rattrs.into_iter().map(|a| Attr::new(&a)).collect(),
        )?);
    }
    Query::new(
        &qname,
        head_attrs.into_iter().map(|a| Attr::new(&a)).collect(),
        atoms,
    )
}

fn split_rule(text: &str) -> Result<(&str, &str), QueryError> {
    for sep in [":-", "<-"] {
        if let Some(pos) = text.find(sep) {
            return Ok((&text[..pos], &text[pos + sep.len()..]));
        }
    }
    Err(QueryError::Parse(format!(
        "missing ':-' separator in {text:?}"
    )))
}

/// Splits the body into atom strings, respecting parentheses.
fn split_atoms(body: &str) -> Result<Vec<String>, QueryError> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in body.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| QueryError::Parse("unbalanced ')'".into()))?;
                cur.push(c);
            }
            ',' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_owned());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if depth != 0 {
        return Err(QueryError::Parse("unbalanced '('".into()));
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_owned());
    }
    if out.is_empty() {
        return Err(QueryError::EmptyBody);
    }
    Ok(out)
}

/// Parses `Name(A,B,C)` (or `Name()` / `Name` for vacuum) into the name
/// and attribute list.
fn parse_atom_text(text: &str) -> Result<(String, Vec<String>), QueryError> {
    let text = text.trim();
    let Some(open) = text.find('(') else {
        // bare name, vacuum atom
        if text.is_empty() || !is_ident(text) {
            return Err(QueryError::Parse(format!("bad atom {text:?}")));
        }
        return Ok((text.to_owned(), Vec::new()));
    };
    let name = text[..open].trim();
    if name.is_empty() || !is_ident(name) {
        return Err(QueryError::Parse(format!("bad relation name in {text:?}")));
    }
    let close = text
        .rfind(')')
        .ok_or_else(|| QueryError::Parse(format!("missing ')' in {text:?}")))?;
    let inner = text[open + 1..close].trim();
    if inner.is_empty() {
        return Ok((name.to_owned(), Vec::new()));
    }
    let mut attrs = Vec::new();
    for part in inner.split(',') {
        let a = part.trim();
        if a.is_empty() || !is_ident(a) {
            return Err(QueryError::Parse(format!(
                "bad attribute {a:?} in {text:?}"
            )));
        }
        attrs.push(a.to_owned());
    }
    Ok((name.to_owned(), attrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_engine::schema::attrs;

    #[test]
    fn parses_paper_examples() {
        for text in [
            "QWL(S,C) :- Major(S,M), Req(M,C), NoSeat(C)",
            "QPossible(C) :- Teaches(P,C), NotOnLeave(P)",
            "Q3path(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)",
            "Qcover(A,B) :- R1(A), R2(A,B), R3(B)",
            "Qswing(A) :- R2(A,B), R3(B)",
            "Qseesaw(A) :- R1(A), R2(A,B), R3(B)",
        ] {
            parse_query(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn boolean_head() {
        let q = parse_query("Q() :- R(A,B), S(B)").unwrap();
        assert!(q.is_boolean());
    }

    #[test]
    fn vacuum_atom_forms() {
        let q = parse_query("Q(A) :- R(A), V()").unwrap();
        assert!(q.has_vacuum_atom());
        let q = parse_query("Q(A) :- R(A), V").unwrap();
        assert!(q.has_vacuum_atom());
    }

    #[test]
    fn arrow_separator() {
        assert!(parse_query("Q(A) <- R(A)").is_ok());
    }

    #[test]
    fn head_sorted_and_deduped() {
        let q = parse_query("Q(B,A,B) :- R(A,B)").unwrap();
        assert_eq!(q.head(), &attrs(&["A", "B"])[..]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            parse_query("Q(A) R(A)"),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            parse_query("Q(A) :- R(A), R(A)"),
            Err(QueryError::SelfJoin(_))
        ));
        assert!(matches!(
            parse_query("Q(Z) :- R(A)"),
            Err(QueryError::HeadNotInBody(_))
        ));
        assert!(matches!(
            parse_query("Q(A) :- "),
            Err(QueryError::EmptyBody)
        ));
        assert!(matches!(
            parse_query("Q(A) :- R(A"),
            Err(QueryError::Parse(_))
        ));
        // Regression: a repeated attribute within one atom used to panic
        // inside `RelationSchema::new`; it is now a typed error.
        assert!(matches!(
            parse_query("Q(A) :- R(A,A)"),
            Err(QueryError::DuplicateAttr { .. })
        ));
    }
}
