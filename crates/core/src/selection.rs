//! Conjunctive queries with selection predicates (paper §7.5).
//!
//! A selection predicate fixes an attribute to a constant (`A = a`). By
//! Lemma 12, `ADP(σ_θ Q, D, k)` equals `ADP(Q^{-A_θ}, D', k)` where `D'`
//! keeps only the tuples satisfying the predicates and drops the selected
//! attributes. [`solve_selection`] applies exactly that reduction and
//! maps the solution back to the caller's coordinates.

use crate::error::SolveError;
use crate::query::Query;
use crate::solver::{self, AdpOptions, AdpOutcome, View};
use adp_engine::database::Database;
use adp_engine::relation::RelationInstance;
use adp_engine::schema::Attr;
use adp_engine::value::Value;
use std::sync::Arc;

/// A query with equality selection predicates on some attributes.
#[derive(Clone, Debug)]
pub struct SelectionQuery {
    /// The underlying conjunctive query.
    pub query: Query,
    /// `(attribute, constant)` predicates. An attribute may appear once.
    pub predicates: Vec<(Attr, Value)>,
}

impl SelectionQuery {
    /// Builds a selection query, checking the predicates reference body
    /// attributes and do not repeat.
    pub fn new(query: Query, predicates: Vec<(Attr, Value)>) -> Result<Self, SolveError> {
        let attrs = query.attrs();
        for (i, (a, _)) in predicates.iter().enumerate() {
            assert!(
                attrs.contains(a),
                "selection predicate on unknown attribute {a}"
            );
            assert!(
                !predicates[..i].iter().any(|(b, _)| b == a),
                "duplicate selection predicate on {a}"
            );
        }
        Ok(SelectionQuery { query, predicates })
    }

    /// The residual query `Q^{-A_θ}` (selected attributes dropped).
    pub fn residual(&self) -> Query {
        let selected: Vec<Attr> = self.predicates.iter().map(|(a, _)| a.clone()).collect();
        self.query.without_attrs(&selected)
    }

    /// Is the ADP problem for this selection query poly-time solvable?
    /// By Lemma 12 this is decided on the residual query.
    pub fn is_ptime(&self) -> bool {
        crate::analysis::is_ptime(&self.residual())
    }
}

/// Solves `ADP(σ_θ Q, D, k)` per Lemma 12. The returned solution uses
/// the caller's (original) atom and tuple coordinates.
pub fn solve_selection(
    sq: &SelectionQuery,
    db: &Database,
    k: u64,
    opts: &AdpOptions,
) -> Result<AdpOutcome, SolveError> {
    let selected: Vec<Attr> = sq.predicates.iter().map(|(a, _)| a.clone()).collect();
    let residual = sq.residual();

    // Filter each relation by the applicable predicates and project away
    // the selected attributes (injective after filtering).
    let mut new_db = Database::new();
    let mut maps: Vec<Option<Vec<u32>>> = Vec::new();
    for (ai, atom) in sq.query.atoms().iter().enumerate() {
        // adp-lint: allow(panic-path) -- documented panicking lookup;
        // the selection rewrite runs on a query already validated
        // against the database.
        let rel = db.expect(atom.name());
        let local_preds: Vec<(usize, Value)> = sq
            .predicates
            .iter()
            .filter_map(|(a, v)| rel.schema().position(a).map(|p| (p, *v)))
            .collect();
        let kept_attrs: Vec<Attr> = atom
            .attrs()
            .iter()
            .filter(|a| !selected.contains(a))
            .cloned()
            .collect();
        let mut inst = RelationInstance::new(residual.atoms()[ai].clone());
        let mut back = Vec::new();
        for idx in rel.indices() {
            let t = rel.tuple(idx);
            if local_preds.iter().all(|&(p, v)| t[p] == v) {
                let projected = rel.project(idx, &kept_attrs);
                let new_idx = inst.insert(&projected);
                debug_assert_eq!(
                    new_idx as usize,
                    back.len(),
                    "projection injective after selection"
                );
                back.push(idx);
            }
        }
        new_db.add(inst);
        maps.push(Some(back));
    }

    // Solve on the residual view; solutions come back in original
    // coordinates thanks to the view's tuple maps.
    let root = View::root(sq.query.clone(), Arc::new(db.clone()));
    let view = root.rebased(residual, new_db, maps);
    let solved = solver::solve(&view, k, opts)?;
    if k == 0 {
        return Err(SolveError::KZero);
    }
    if k > solved.total_outputs {
        return Err(SolveError::KTooLarge {
            k,
            available: solved.total_outputs,
        });
    }
    let Some(cost) = solved.min_cost(k)? else {
        if solved.truncated {
            return solver::truncated_outcome(&solved, opts);
        }
        return Err(SolveError::Infeasible {
            k,
            removable: solved.max_removable(),
        });
    };
    let solution = match opts.mode {
        solver::Mode::Report => {
            let mut s = solved.extract(k)?;
            s.sort_unstable();
            s.dedup();
            Some(s)
        }
        solver::Mode::Count => None,
    };
    Ok(AdpOutcome {
        cost,
        achieved: k,
        exact: solved.exact,
        truncated: solved.truncated,
        output_count: solved.total_outputs,
        solution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use adp_engine::schema::{attr, attrs};

    /// TPC-H-shaped Q1 with a selection on PK (paper §8.1).
    fn setup() -> (SelectionQuery, Database) {
        let q = parse_query("Q1(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let sq = SelectionQuery::new(q, vec![(attr("PK"), 7)]).unwrap();
        let mut db = Database::new();
        db.add_relation("S", attrs(&["NK", "SK"]), &[&[1, 1], &[1, 2], &[2, 3]]);
        db.add_relation(
            "PS",
            attrs(&["SK", "PK"]),
            &[&[1, 7], &[2, 7], &[3, 8], &[3, 7]],
        );
        db.add_relation("L", attrs(&["OK", "PK"]), &[&[10, 7], &[11, 7], &[12, 8]]);
        (sq, db)
    }

    #[test]
    fn selection_makes_q1_ptime() {
        let (sq, _) = setup();
        assert!(sq.is_ptime(), "σθQ1 is poly-time (paper §8.1)");
        // without the selection Q1 is NP-hard
        assert!(!crate::analysis::is_ptime(&sq.query));
    }

    #[test]
    fn selection_filters_and_solves_exactly() {
        let (sq, db) = setup();
        // After σ PK=7: S×PS pairs (3 suppliers each matching), L has 2
        // orders. |Q| = 3·2 = 6.
        let out = solve_selection(&sq, &db, 6, &AdpOptions::default()).unwrap();
        assert_eq!(out.output_count, 6);
        assert!(out.exact);
        // removing everything: cheapest is deleting both L tuples w/ PK=7
        assert_eq!(out.cost, 2);
        let sol = out.solution.unwrap();
        let removed = crate::solver::removed_outputs(&sq.query, &db, &sol);
        // measured against the *selected* outputs they all had PK=7
        assert!(removed >= 6);
    }

    #[test]
    fn solution_indices_are_original() {
        let (sq, db) = setup();
        let out = solve_selection(&sq, &db, 1, &AdpOptions::default()).unwrap();
        let sol = out.solution.unwrap();
        // any reported L-tuple index must be one of the PK=7 rows (0, 1)
        for t in &sol {
            if t.atom == 2 {
                assert!(t.index <= 1, "index in original coordinates");
            }
        }
    }

    #[test]
    fn k_larger_than_selected_outputs_fails() {
        let (sq, db) = setup();
        assert!(matches!(
            solve_selection(&sq, &db, 7, &AdpOptions::default()),
            Err(SolveError::KTooLarge { available: 6, .. })
        ));
    }
}
