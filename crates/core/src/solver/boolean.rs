//! The boolean base case: resilience via linearization and min-cut
//! (paper §7.1, building on Freire et al. \[11\]).
//!
//! Pipeline: reduce the instance to its non-dangling tuples, split the
//! query into connected components (making any one component false makes
//! the query false), arrange each component's atoms in a *linear order*
//! (every attribute contiguous), and build the flow network whose edges
//! are tuples — endogenous tuples with capacity 1, exogenous tuples with
//! capacity ∞ (they never need to be deleted, Lemma 13). The min cut is
//! the component's resilience; the query's resilience is the component
//! minimum.
//!
//! Triad-free boolean queries are linearizable after these steps; if no
//! linear order exists (the NP-hard triad case) we fall back to the
//! greedy heuristic and mark the result inexact.

use super::profile::CostProfile;
use super::solved::{Extractor, Solved, Step};
use super::view::View;
use super::AdpOptions;
use crate::analysis::linear::find_linear_order;
use crate::analysis::roles::endogenous_atoms;
use crate::error::SolveError;
use adp_engine::provenance::TupleRef;
use adp_engine::schema::Attr;
use adp_engine::semijoin::remove_dangling;
use adp_engine::value::Value;
use adp_flow::{FlowNetwork, INF};
use std::collections::HashMap;

/// Solves the boolean ADP (= resilience when the query is true).
pub(crate) fn solve_boolean(view: &View, opts: &AdpOptions) -> Result<Solved, SolveError> {
    let deletable = vec![true; view.query.atom_count()];
    solve_boolean_with_policy(view, opts, &deletable)
}

/// [`solve_boolean`] under a deletion policy: frozen atoms receive
/// infinite capacity in the cut network (exactness is preserved — they
/// simply behave like exogenous atoms). Components with no finite cut
/// are skipped; if none remains the profile is empty (infeasible).
pub(crate) fn solve_boolean_with_policy(
    view: &View,
    opts: &AdpOptions,
    deletable: &[bool],
) -> Result<Solved, SolveError> {
    let atoms = view.query.atoms();
    let reduced = remove_dangling(&view.db, atoms);
    if reduced.db.relations().iter().any(|r| r.is_empty()) {
        // Query is false: |Q(D)| = 0, nothing to remove.
        return Ok(Solved::empty());
    }
    let rview = view.rebased(
        view.query.clone(),
        reduced.db,
        reduced.backmap.into_iter().map(Some).collect(),
    );

    let mut best: Option<(u64, Vec<TupleRef>, bool)> = None;
    let mut all_exact = true;
    let mut truncated = false;
    for comp in rview.query.connected_components() {
        let sub = rview.subview(&comp);
        let sub_deletable: Vec<bool> = comp.iter().map(|&i| deletable[i]).collect();
        let (res, comp_truncated) = component_resilience(&sub, opts, &sub_deletable)?;
        truncated |= comp_truncated;
        // A budget-truncated component is not a proven "no finite cut":
        // its (possibly cheaper) resilience is simply unknown, so any
        // answer built without it is at best a bound.
        all_exact &= !comp_truncated;
        let Some((cost, tuples, exact)) = res else {
            continue; // no finite cut under the policy (or budget expired)
        };
        all_exact &= exact;
        if best.as_ref().map(|(c, _, _)| cost < *c).unwrap_or(true) {
            best = Some((cost, tuples, exact));
        }
    }
    let Some((cost, tuples, chosen_exact)) = best else {
        if truncated {
            // The budget expired before any component could be made
            // false: report best-so-far (nothing achieved yet) with the
            // truncation flag, NOT a proven infeasibility.
            return Ok(Solved::eager(
                super::profile::CostProfile::empty(),
                Extractor::Empty,
                false,
                1,
            )
            .with_truncated(true));
        }
        // policy leaves no way to make the query false
        return Ok(Solved::eager(
            super::profile::CostProfile::empty(),
            Extractor::Empty,
            true,
            1,
        ));
    };
    // The overall value is exact only if every component bound is exact
    // (an inexact smaller bound could hide a cheaper exact component).
    // A truncated sibling component keeps the flag visible even though
    // this cut is complete: its unexplored component might have been
    // cheaper, so the answer is budget-limited, not final.
    let exact = chosen_exact && all_exact;
    Ok(Solved::eager(
        CostProfile::single(cost, 1),
        Extractor::Steps(vec![Step {
            tuples,
            removed_cum: 1,
            cost_cum: cost,
        }]),
        exact,
        1,
    )
    .with_truncated(truncated))
}

/// One component's answer: `(cost, cut tuples, exact)` when a finite
/// cut was found, paired with whether the wall-clock budget truncated
/// the search.
type ComponentCut = (Option<(u64, Vec<TupleRef>, bool)>, bool);

/// Resilience of one connected boolean component over a reduced view.
/// The first slot is `None` when the deletion policy admits no finite
/// cut (or, on the triad path, when the wall-clock budget expired
/// before the component could be made false); the second reports that
/// budget truncation so the caller can distinguish "proven infinite"
/// from "ran out of time".
fn component_resilience(
    sub: &View,
    opts: &AdpOptions,
    deletable: &[bool],
) -> Result<ComponentCut, SolveError> {
    match find_linear_order(sub.query.atoms()) {
        Some(order) => {
            let (cost, tuples) = min_cut_resilience(sub, &order, deletable);
            if cost >= INF {
                return Ok((None, false));
            }
            Ok((Some((cost, tuples, true)), false))
        }
        None => {
            // Triad case (NP-hard): greedy heuristic on the boolean query
            // (the subview's head is empty, so `eval` has boolean
            // semantics).
            let eval = sub.eval();
            let solved = super::greedy::solve_greedy_filtered(sub, &eval, 1, deletable, opts)?;
            let Some(cost) = solved.min_cost(1)? else {
                return Ok((None, solved.truncated));
            };
            let tuples = solved.extract(1)?;
            Ok((Some((cost, tuples, false)), solved.truncated))
        }
    }
}

/// Builds the layered tuple-edge network for a linear atom order and
/// returns (min cut value, cut tuples in original coordinates).
fn min_cut_resilience(sub: &View, order: &[usize], deletable: &[bool]) -> (u64, Vec<TupleRef>) {
    let atoms = sub.query.atoms();
    // Unit capacity = "may be cut". Without a policy only endogenous
    // atoms need finite capacity (Lemma 13). With a policy the Lemma-13
    // swap into an endogenous atom may be blocked by a frozen relation,
    // so every deletable atom gets unit capacity (still a valid
    // cut ⇔ deletion-set correspondence, hence still exact).
    let policy_active = deletable.iter().any(|&d| !d);
    let endo: Vec<bool> = endogenous_atoms(&sub.query)
        .into_iter()
        .zip(deletable)
        .map(|(e, &d)| d && (e || policy_active))
        .collect();
    let p = order.len();

    // Boundary attribute sets between consecutive atoms in the order.
    let boundaries: Vec<Vec<Attr>> = (0..p.saturating_sub(1))
        .map(|i| {
            atoms[order[i]]
                .attrs()
                .iter()
                .filter(|a| atoms[order[i + 1]].contains(a))
                .cloned()
                .collect()
        })
        .collect();

    // Node interning: source = 0, sink = 1, boundary-value nodes after.
    let mut node_ids: HashMap<(usize, Vec<Value>), u32> = HashMap::new();
    let mut next_node: u32 = 2;
    let mut edges: Vec<(u32, u32, u64, u32)> = Vec::new();
    let mut edge_tuples: Vec<TupleRef> = Vec::new();

    for (pos, &ai) in order.iter().enumerate() {
        // adp-lint: allow(panic-path) -- documented panicking lookup;
        // the flow network is built over validated subquery atoms.
        let rel = sub.db.expect(atoms[ai].name());
        let cap = if endo[ai] { 1 } else { INF };
        for idx in rel.indices() {
            let u = if pos == 0 {
                0
            } else {
                let key = rel.project(idx, &boundaries[pos - 1]);
                *node_ids.entry((pos - 1, key)).or_insert_with(|| {
                    let id = next_node;
                    next_node += 1;
                    id
                })
            };
            let v = if pos == p - 1 {
                1
            } else {
                let key = rel.project(idx, &boundaries[pos]);
                *node_ids.entry((pos, key)).or_insert_with(|| {
                    let id = next_node;
                    next_node += 1;
                    id
                })
            };
            let id = adp_engine::ids::dense_id(edge_tuples.len(), "flow edge ids");
            edge_tuples.push(sub.to_original(ai, idx));
            edges.push((u, v, cap, id));
        }
    }

    let mut net = FlowNetwork::new(next_node as usize);
    for &(u, v, c, id) in &edges {
        net.add_edge(u, v, c, id);
    }
    let flow = net.max_flow_dinic(0, 1);
    if flow.value >= INF {
        // only possible under a deletion policy freezing a whole layer
        return (flow.value, Vec::new());
    }
    let cut = net.min_cut(0);
    let tuples: Vec<TupleRef> = cut.iter().map(|&id| edge_tuples[id as usize]).collect();
    debug_assert_eq!(tuples.len() as u64, flow.value);
    (flow.value, tuples)
}

#[cfg(test)]
// Pins the legacy v1 entry points; the fluent v2 path is
// differentially tested against them.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use adp_engine::database::Database;
    use adp_engine::schema::attrs;
    use std::sync::Arc;

    fn solve(qtext: &str, db: Database) -> (u64, Vec<TupleRef>, bool) {
        let q = parse_query(qtext).unwrap();
        let view = View::root(q, Arc::new(db));
        let s = solve_boolean(&view, &AdpOptions::default()).unwrap();
        let cost = s.min_cost(1).unwrap().unwrap();
        let tuples = s.extract(1).unwrap();
        (cost, tuples, s.exact)
    }

    #[test]
    fn single_relation_resilience_is_tuple_count() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2], &[3]]);
        let (cost, tuples, exact) = solve("Q() :- R(A)", db);
        assert_eq!(cost, 3);
        assert_eq!(tuples.len(), 3);
        assert!(exact);
    }

    #[test]
    fn path_query_min_cut() {
        // R1(A): {1,2}; R2(A,B): 1-1, 1-2, 2-1; R3(B): {1,2}
        // witnesses: (1,1),(1,2),(2,1). Deleting R3(1) and R3(2) works
        // (cost 2); deleting R1(1) and R1(2) also cost 2; min is 2.
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("R3", attrs(&["B"]), &[&[1], &[2]]);
        let (cost, _, exact) = solve("Q() :- R1(A), R2(A,B), R3(B)", db);
        assert_eq!(cost, 2);
        assert!(exact);
    }

    #[test]
    fn exogenous_tuples_never_cut() {
        // Star bipartite graph: a1 connected to b1..b3 through exogenous
        // R4(A,B). Deleting a1 (1 tuple) beats deleting 3 b's or 3 edges.
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1]]);
        db.add_relation("R4", attrs(&["A", "B"]), &[&[1, 1], &[1, 2], &[1, 3]]);
        db.add_relation("R3", attrs(&["B"]), &[&[1], &[2], &[3]]);
        let (cost, tuples, exact) = solve("Q() :- R1(A), R4(A,B), R3(B)", db);
        assert_eq!(cost, 1);
        assert_eq!(tuples, vec![TupleRef::new(0, 0)]);
        assert!(exact);
    }

    #[test]
    fn vertex_cover_instance() {
        // K2,n-ish: VC = 2 (both A values) though |B| side is larger.
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation(
            "R4",
            attrs(&["A", "B"]),
            &[&[1, 1], &[1, 2], &[1, 3], &[2, 1], &[2, 2], &[2, 3]],
        );
        db.add_relation("R3", attrs(&["B"]), &[&[1], &[2], &[3]]);
        let (cost, _, exact) = solve("Q() :- R1(A), R4(A,B), R3(B)", db);
        assert_eq!(cost, 2);
        assert!(exact);
    }

    #[test]
    fn disconnected_boolean_takes_cheapest_component() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2], &[3]]);
        db.add_relation("S", attrs(&["B"]), &[&[5]]);
        let (cost, tuples, exact) = solve("Q() :- R(A), S(B)", db);
        assert_eq!(cost, 1);
        assert_eq!(tuples, vec![TupleRef::new(1, 0)]);
        assert!(exact);
    }

    #[test]
    fn false_query_is_empty() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1]]);
        db.add_relation("S", attrs(&["A"]), &[&[2]]);
        let q = parse_query("Q() :- R(A), S(A)").unwrap();
        let view = View::root(q, Arc::new(db));
        let s = solve_boolean(&view, &AdpOptions::default()).unwrap();
        assert_eq!(s.total_outputs, 0);
        assert_eq!(s.max_removable(), 0);
    }

    #[test]
    fn dangling_tuples_do_not_inflate_cuts() {
        // R has an extra dangling tuple that must not appear in any cut.
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[9]]);
        db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 1]]);
        db.add_relation("R3", attrs(&["B"]), &[&[1]]);
        let (cost, tuples, _) = solve("Q() :- R1(A), R2(A,B), R3(B)", db);
        assert_eq!(cost, 1);
        assert_ne!(tuples[0], TupleRef::new(0, 1), "dangling tuple not chosen");
    }

    /// Regression: an expired budget on the triad (greedy) path used to
    /// be misreported as "no finite cut" — a falsely *exact* empty
    /// result that `solve_prepared` surfaced as `Infeasible`. It must
    /// instead propagate the truncation flag so the caller gets the
    /// documented best-so-far outcome.
    #[test]
    fn expired_deadline_on_triad_truncates_instead_of_infeasible() {
        // Two disjoint triangles = one boolean output with two
        // witnesses and no sole killer: the guaranteed first greedy
        // round cannot make the query false, so the expired deadline
        // truncates with nothing achieved yet.
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 2], &[4, 5]]);
        db.add_relation("R2", attrs(&["B", "C"]), &[&[2, 3], &[5, 6]]);
        db.add_relation("R3", attrs(&["C", "A"]), &[&[3, 1], &[6, 4]]);
        let q = parse_query("Q() :- R1(A,B), R2(B,C), R3(C,A)").unwrap();
        let opts = AdpOptions {
            deadline: Some(std::time::Instant::now()),
            ..Default::default()
        };
        let out = crate::solver::compute_adp(&q, &db, 1, &opts).unwrap();
        assert!(out.truncated, "budget expiry must be visible, not an error");
        assert!(!out.exact);
        assert_eq!(out.achieved, 0);
        assert_eq!(out.cost, 0);
        assert_eq!(out.solution.as_deref(), Some(&[][..]));
        // Without a deadline the same instance is solvable (both
        // triangles must break): never truncated.
        let out = crate::solver::compute_adp(&q, &db, 1, &AdpOptions::default()).unwrap();
        assert!(!out.truncated);
        assert_eq!(out.cost, 2);
    }

    /// Regression (second half of the truncation contract): when a
    /// *sibling* component truncates but another component still yields
    /// a finite cut, the flag must survive on the success path — the
    /// unexplored component might have been cheaper.
    #[test]
    fn truncated_sibling_component_keeps_flag_on_success_path() {
        // Triad component (truncates under the expired budget: two
        // disjoint triangles, no sole killer in round one) + a linear
        // single-tuple component whose min-cut ignores the deadline.
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 2], &[4, 5]]);
        db.add_relation("R2", attrs(&["B", "C"]), &[&[2, 3], &[5, 6]]);
        db.add_relation("R3", attrs(&["C", "A"]), &[&[3, 1], &[6, 4]]);
        db.add_relation("S", attrs(&["X"]), &[&[7]]);
        let q = parse_query("Q() :- R1(A,B), R2(B,C), R3(C,A), S(X)").unwrap();
        let opts = AdpOptions {
            deadline: Some(std::time::Instant::now()),
            ..Default::default()
        };
        let out = crate::solver::compute_adp(&q, &db, 1, &opts).unwrap();
        assert_eq!(out.cost, 1, "deleting S(7) still makes the query false");
        assert_eq!(out.achieved, 1);
        assert!(
            out.truncated,
            "the truncated triad sibling must keep the budget expiry visible"
        );
        assert!(!out.exact, "the unexplored component could be cheaper");
    }

    #[test]
    fn triangle_falls_back_to_heuristic() {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 2]]);
        db.add_relation("R2", attrs(&["B", "C"]), &[&[2, 3]]);
        db.add_relation("R3", attrs(&["C", "A"]), &[&[3, 1]]);
        let (cost, _, exact) = solve("Q() :- R1(A,B), R2(B,C), R3(C,A)", db);
        assert_eq!(cost, 1, "one edge suffices to break the only triangle");
        assert!(!exact, "triad queries are heuristic");
    }
}
