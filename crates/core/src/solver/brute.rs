//! The `BruteForce` baseline (paper §8): enumerate deletion sets in
//! increasing size until one removes at least `k` outputs.
//!
//! The paper's implementation issued one SQL query per subset (up to
//! `2^500`); ours evaluates candidate sets against an in-memory
//! [`ProvenanceIndex`], with the same search order (increasing size,
//! first feasible set wins), so the *answers* coincide while probes are
//! micro-seconds. Restricting candidates to endogenous relations is sound
//! by Lemma 13 and matches the optimized baseline.
//!
//! ## Parallel subset search
//!
//! The size-`s` stage enumerates `C(n, s)` candidate subsets in
//! lexicographic order. That order nests by **first element**: every
//! subset starting with candidate `i` precedes every subset starting
//! with `i' > i`. The parallel search exploits exactly that structure —
//! one partition per first-element index, each enumerating its suffix
//! combinations in the same lexicographic order, reduced by taking the
//! feasible subset from the *lowest* partition. The winner is therefore
//! the globally lexicographically-first feasible subset: byte-identical
//! to the sequential scan. Partitions later than an already-found
//! winner abort early (they cannot win the reduce), which recovers most
//! of the sequential early-exit without giving up determinism.

use super::prepared::PreparedQuery;
use crate::analysis::roles::endogenous_atoms;
use crate::error::SolveError;
use crate::query::Query;
use adp_engine::database::Database;
use adp_engine::join::{evaluate, EvalResult};
use adp_engine::provenance::{ProvenanceIndex, TupleRef};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimum number of subsets at one size before the search fans out
/// across the global pool; below this the per-partition bookkeeping
/// costs more than the probes.
pub const PAR_MIN_SUBSETS: u128 = 2048;

/// Exhaustive-search options.
#[derive(Clone, Copy, Debug)]
pub struct BruteForceOptions {
    /// Only consider deletions from endogenous relations (Lemma 13).
    pub endogenous_only: bool,
    /// Abort if the number of candidate sets at some size exceeds this.
    pub max_subsets: u128,
    /// Force the single-threaded scan even when the global
    /// [`adp_runtime`] pool has multiple workers. Parallel and
    /// sequential searches return byte-identical answers; this switch
    /// exists for differential tests and benchmarking.
    pub sequential: bool,
}

impl Default for BruteForceOptions {
    fn default() -> Self {
        BruteForceOptions {
            endogenous_only: true,
            max_subsets: 500_000_000,
            sequential: false,
        }
    }
}

/// Finds a minimum deletion set removing at least `k` outputs by
/// exhaustive search. Exact but exponential — use on small instances.
#[deprecated(
    since = "0.3.0",
    note = "use the fluent v2 API: `Solve::new(query, db).k(k).brute_force().run()` \
            (byte-identical deletion sets)"
)]
pub fn brute_force(
    query: &Query,
    db: &Database,
    k: u64,
    opts: &BruteForceOptions,
) -> Result<(u64, Vec<TupleRef>), SolveError> {
    let eval = evaluate(db, query.atoms(), query.head());
    brute_force_with_eval(query, db, &eval, k, opts)
}

/// [`brute_force`] against a [`PreparedQuery`]: the cached plan and
/// evaluation are reused, so repeated baseline probes (one per `k` in a
/// sweep) never re-join.
#[deprecated(
    since = "0.3.0",
    note = "use the fluent v2 API: `Solve::prepared(&prep).k(k).brute_force().run()` \
            (byte-identical deletion sets)"
)]
pub fn brute_force_prepared(
    prep: &PreparedQuery,
    k: u64,
    opts: &BruteForceOptions,
) -> Result<(u64, Vec<TupleRef>), SolveError> {
    let eval = prep.eval();
    brute_force_with_eval(prep.query(), prep.database(), &eval, k, opts)
}

pub(crate) fn brute_force_with_eval(
    query: &Query,
    db: &Database,
    eval: &EvalResult,
    k: u64,
    opts: &BruteForceOptions,
) -> Result<(u64, Vec<TupleRef>), SolveError> {
    if k == 0 {
        return Err(SolveError::KZero);
    }
    let total = eval.output_count();
    if k > total {
        return Err(SolveError::KTooLarge {
            k,
            available: total,
        });
    }
    let prov = ProvenanceIndex::new(eval);

    let endo = endogenous_atoms(query);
    let mut candidates: Vec<TupleRef> = Vec::new();
    for (atom, schema) in query.atoms().iter().enumerate() {
        if opts.endogenous_only && !endo[atom] {
            continue;
        }
        // adp-lint: allow(panic-path) -- documented panicking lookup;
        // the solver runs on a query validated against the database.
        let rel = db.expect(schema.name());
        for idx in rel.indices() {
            candidates.push(TupleRef::new(atom, idx));
        }
    }

    // Only touch (and thereby lazily build) the global pool when the
    // caller actually allows parallelism.
    let pool = if opts.sequential {
        None
    } else {
        let p = adp_runtime::global();
        (p.threads() > 1).then_some(p)
    };
    let n = candidates.len();
    for size in 1..=n {
        let combos = binomial(n as u128, size as u128);
        if combos > opts.max_subsets {
            return Err(SolveError::BudgetExceeded(format!(
                "brute force would enumerate {combos} subsets of size {size}"
            )));
        }
        let found = match pool {
            Some(pool) if size >= 2 && combos >= PAR_MIN_SUBSETS => {
                search_size_parallel(pool, &prov, &candidates, size, k)
            }
            _ => search_size_sequential(&prov, &candidates, size, k),
        };
        if let Some(subset) = found {
            return Ok((size as u64, subset));
        }
    }
    // adp-lint: allow(panic-path) -- the size loop ends at all
    // candidates, and deleting every candidate empties Q(D), so some
    // size always succeeds before this point.
    unreachable!("deleting all candidate tuples removes every output");
}

/// The sequential size-`size` stage: lexicographic enumeration, first
/// feasible subset wins.
fn search_size_sequential(
    prov: &ProvenanceIndex,
    candidates: &[TupleRef],
    size: usize,
    k: u64,
) -> Option<Vec<TupleRef>> {
    let n = candidates.len();
    let mut idx: Vec<usize> = (0..size).collect();
    let mut subset: Vec<TupleRef> = Vec::with_capacity(size);
    loop {
        subset.clear();
        subset.extend(idx.iter().map(|&i| candidates[i]));
        if prov.killed_by_set(&subset) >= k {
            return Some(subset);
        }
        if !next_combination(&mut idx, n) {
            return None;
        }
    }
}

/// The parallel size-`size` stage: one partition per first-element
/// index, dynamically scheduled over the pool, reduced to the feasible
/// subset of the lowest partition — exactly the subset
/// [`search_size_sequential`] would return (see the module docs).
fn search_size_parallel(
    pool: &adp_runtime::ThreadPool,
    prov: &ProvenanceIndex,
    candidates: &[TupleRef],
    size: usize,
    k: u64,
) -> Option<Vec<TupleRef>> {
    debug_assert!(size >= 2);
    let n = candidates.len();
    let partitions = n - size + 1;
    // Lowest partition index with a feasible subset so far. Partitions
    // above it abort: they lose the index-ordered reduce regardless.
    let winner = AtomicUsize::new(usize::MAX);
    let per_partition = pool.par_indexed(partitions, |first| {
        if winner.load(Ordering::Relaxed) < first {
            return None;
        }
        // Suffix combinations from candidates[first+1..], lexicographic.
        // `next_combination` never decreases idx[0], so the suffix stays
        // strictly above `first` without a dedicated lower bound.
        let mut idx: Vec<usize> = (first + 1..first + size).collect();
        let mut subset: Vec<TupleRef> = Vec::with_capacity(size);
        let mut probes: u32 = 0;
        loop {
            subset.clear();
            subset.push(candidates[first]);
            subset.extend(idx.iter().map(|&i| candidates[i]));
            if prov.killed_by_set(&subset) >= k {
                winner.fetch_min(first, Ordering::Relaxed);
                return Some(subset);
            }
            probes = probes.wrapping_add(1);
            if probes.is_multiple_of(256) && winner.load(Ordering::Relaxed) < first {
                return None;
            }
            if !next_combination(&mut idx, n) {
                return None;
            }
        }
    });
    per_partition.into_iter().flatten().next()
}

/// Advances `idx` to the next size-|idx| combination of `0..n` in
/// lexicographic order; returns `false` when exhausted.
fn next_combination(idx: &mut [usize], n: usize) -> bool {
    let size = idx.len();
    let mut i = size;
    while i > 0 {
        i -= 1;
        if idx[i] < n - size + i {
            idx[i] += 1;
            for j in i + 1..size {
                idx[j] = idx[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut r: u128 = 1;
    for i in 0..k {
        r = r.saturating_mul(n - i) / (i + 1);
    }
    r
}

#[cfg(test)]
// Pins the legacy v1 entry points; the fluent path is differentially
// tested against them.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use adp_engine::schema::attrs;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("R3", attrs(&["B"]), &[&[1], &[2]]);
        db
    }

    #[test]
    fn brute_force_on_qpath() {
        // Q(A,B): outputs (1,1),(1,2),(2,1). k=2: deleting R1(1) removes 2.
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let (cost, sol) = brute_force(&q, &db(), 2, &BruteForceOptions::default()).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(sol.len(), 1);
        // k=3: need 2 deletions (e.g. both R1 tuples).
        let (cost, _) = brute_force(&q, &db(), 3, &BruteForceOptions::default()).unwrap();
        assert_eq!(cost, 2);
    }

    #[test]
    fn endogenous_restriction_matches_unrestricted() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        for k in 1..=3 {
            let a = brute_force(&q, &db(), k, &BruteForceOptions::default()).unwrap();
            let b = brute_force(
                &q,
                &db(),
                k,
                &BruteForceOptions {
                    endogenous_only: false,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(a.0, b.0, "k={k}");
        }
    }

    #[test]
    fn k_bounds_checked() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        assert!(matches!(
            brute_force(&q, &db(), 0, &BruteForceOptions::default()),
            Err(SolveError::KZero)
        ));
        assert!(matches!(
            brute_force(&q, &db(), 99, &BruteForceOptions::default()),
            Err(SolveError::KTooLarge { .. })
        ));
    }

    #[test]
    fn binomial_sanity() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
    }

    /// The parallel size-stage must return the exact subset the
    /// sequential scan returns — same tuples, same order — for every
    /// (size, k) it can face, including infeasible stages (both None).
    #[test]
    fn parallel_stage_is_byte_identical_to_sequential_stage() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let db = db();
        let eval = evaluate(&db, q.atoms(), q.head());
        let prov = ProvenanceIndex::new(&eval);
        let candidates: Vec<TupleRef> = q
            .atoms()
            .iter()
            .enumerate()
            .flat_map(|(atom, schema)| {
                (0..db.expect(schema.name()).len() as u32).map(move |i| TupleRef::new(atom, i))
            })
            .collect();
        let pool = adp_runtime::ThreadPool::new(4);
        let total = eval.output_count();
        for size in 2..=candidates.len().min(5) {
            for k in 1..=total + 1 {
                let seq = search_size_sequential(&prov, &candidates, size, k);
                let par = search_size_parallel(&pool, &prov, &candidates, size, k);
                assert_eq!(seq, par, "size={size} k={k}");
            }
        }
    }
}
