//! The `BruteForce` baseline (paper §8): enumerate deletion sets in
//! increasing size until one removes at least `k` outputs.
//!
//! The paper's implementation issued one SQL query per subset (up to
//! `2^500`); ours evaluates candidate sets against an in-memory
//! [`ProvenanceIndex`], with the same search order (increasing size,
//! first feasible set wins), so the *answers* coincide while probes are
//! micro-seconds. Restricting candidates to endogenous relations is sound
//! by Lemma 13 and matches the optimized baseline.

use super::prepared::PreparedQuery;
use crate::analysis::roles::endogenous_atoms;
use crate::error::SolveError;
use crate::query::Query;
use adp_engine::database::Database;
use adp_engine::join::{evaluate, EvalResult};
use adp_engine::provenance::{ProvenanceIndex, TupleRef};

/// Exhaustive-search options.
#[derive(Clone, Copy, Debug)]
pub struct BruteForceOptions {
    /// Only consider deletions from endogenous relations (Lemma 13).
    pub endogenous_only: bool,
    /// Abort if the number of candidate sets at some size exceeds this.
    pub max_subsets: u128,
}

impl Default for BruteForceOptions {
    fn default() -> Self {
        BruteForceOptions {
            endogenous_only: true,
            max_subsets: 500_000_000,
        }
    }
}

/// Finds a minimum deletion set removing at least `k` outputs by
/// exhaustive search. Exact but exponential — use on small instances.
pub fn brute_force(
    query: &Query,
    db: &Database,
    k: u64,
    opts: &BruteForceOptions,
) -> Result<(u64, Vec<TupleRef>), SolveError> {
    let eval = evaluate(db, query.atoms(), query.head());
    brute_force_with_eval(query, db, &eval, k, opts)
}

/// [`brute_force`] against a [`PreparedQuery`]: the cached plan and
/// evaluation are reused, so repeated baseline probes (one per `k` in a
/// sweep) never re-join.
pub fn brute_force_prepared(
    prep: &PreparedQuery,
    k: u64,
    opts: &BruteForceOptions,
) -> Result<(u64, Vec<TupleRef>), SolveError> {
    let eval = prep.eval();
    brute_force_with_eval(prep.query(), prep.database(), &eval, k, opts)
}

fn brute_force_with_eval(
    query: &Query,
    db: &Database,
    eval: &EvalResult,
    k: u64,
    opts: &BruteForceOptions,
) -> Result<(u64, Vec<TupleRef>), SolveError> {
    if k == 0 {
        return Err(SolveError::KZero);
    }
    let total = eval.output_count();
    if k > total {
        return Err(SolveError::KTooLarge {
            k,
            available: total,
        });
    }
    let prov = ProvenanceIndex::new(eval);

    let endo = endogenous_atoms(query);
    let mut candidates: Vec<TupleRef> = Vec::new();
    for (atom, schema) in query.atoms().iter().enumerate() {
        if opts.endogenous_only && !endo[atom] {
            continue;
        }
        let rel = db.expect(schema.name());
        for idx in 0..rel.len() as u32 {
            candidates.push(TupleRef::new(atom, idx));
        }
    }

    let n = candidates.len();
    let mut subset: Vec<TupleRef> = Vec::new();
    for size in 1..=n {
        let combos = binomial(n as u128, size as u128);
        if combos > opts.max_subsets {
            return Err(SolveError::BudgetExceeded(format!(
                "brute force would enumerate {combos} subsets of size {size}"
            )));
        }
        // enumerate size-combinations in lexicographic order
        let mut idx: Vec<usize> = (0..size).collect();
        loop {
            subset.clear();
            subset.extend(idx.iter().map(|&i| candidates[i]));
            if prov.killed_by_set(&subset) >= k {
                return Ok((size as u64, subset));
            }
            if !next_combination(&mut idx, n) {
                break;
            }
        }
    }
    unreachable!("deleting all candidate tuples removes every output");
}

/// Advances `idx` to the next size-|idx| combination of `0..n` in
/// lexicographic order; returns `false` when exhausted.
fn next_combination(idx: &mut [usize], n: usize) -> bool {
    let size = idx.len();
    let mut i = size;
    while i > 0 {
        i -= 1;
        if idx[i] < n - size + i {
            idx[i] += 1;
            for j in i + 1..size {
                idx[j] = idx[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut r: u128 = 1;
    for i in 0..k {
        r = r.saturating_mul(n - i) / (i + 1);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use adp_engine::schema::attrs;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("R3", attrs(&["B"]), &[&[1], &[2]]);
        db
    }

    #[test]
    fn brute_force_on_qpath() {
        // Q(A,B): outputs (1,1),(1,2),(2,1). k=2: deleting R1(1) removes 2.
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let (cost, sol) = brute_force(&q, &db(), 2, &BruteForceOptions::default()).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(sol.len(), 1);
        // k=3: need 2 deletions (e.g. both R1 tuples).
        let (cost, _) = brute_force(&q, &db(), 3, &BruteForceOptions::default()).unwrap();
        assert_eq!(cost, 2);
    }

    #[test]
    fn endogenous_restriction_matches_unrestricted() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        for k in 1..=3 {
            let a = brute_force(&q, &db(), k, &BruteForceOptions::default()).unwrap();
            let b = brute_force(
                &q,
                &db(),
                k,
                &BruteForceOptions {
                    endogenous_only: false,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(a.0, b.0, "k={k}");
        }
    }

    #[test]
    fn k_bounds_checked() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        assert!(matches!(
            brute_force(&q, &db(), 0, &BruteForceOptions::default()),
            Err(SolveError::KZero)
        ));
        assert!(matches!(
            brute_force(&q, &db(), 99, &BruteForceOptions::default()),
            Err(SolveError::KTooLarge { .. })
        ));
    }

    #[test]
    fn binomial_sanity() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
    }
}
