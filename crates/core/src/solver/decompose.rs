//! The Decompose case (paper §7.3, Algorithm 5): disconnected queries.
//!
//! The results of the connected subqueries join by cross product, so
//! removing `k_i` outputs from component `i` removes
//! `∏ m_i − ∏ (m_i − k_i)` outputs overall. Three combination strategies
//! are implemented, matching the Figure 29 ablation:
//!
//! * [`DecomposeStrategy::NaiveFull`] — enumerate every `(k_1..k_s)`
//!   vector at once ("full partitions");
//! * [`DecomposeStrategy::NaivePairs`] — fold components two at a time
//!   with a dense double loop ("two partitions");
//! * [`DecomposeStrategy::ImprovedDp`] — the paper's improved DP,
//!   iterating only over profile breakpoints;
//! * [`DecomposeStrategy::Auto`] — improved DP when the dense table fits,
//!   otherwise a lazy sparse pair combination whose arithmetic runs in
//!   `O(B₁ log B₂)` per query (this is what lets counting scale to huge
//!   cross products).

use super::solved::{
    cross_removed, required_right, DpNode, Extractor, PairNode, Repr, Solved, Step,
};
use super::view::View;
use super::{profile::CostProfile, AdpOptions, DecomposeStrategy, Mode};
use crate::error::SolveError;

pub(crate) fn solve_decompose(
    view: &View,
    cap: u64,
    opts: &AdpOptions,
) -> Result<Solved, SolveError> {
    let comps = view.query.connected_components();
    debug_assert!(comps.len() > 1);
    let mut children = Vec::with_capacity(comps.len());
    for comp in &comps {
        let sub = view.subview(comp);
        let child = super::solve(&sub, cap, opts)?;
        if child.total_outputs == 0 {
            return Ok(Solved::empty()); // empty component => empty product
        }
        children.push(child);
    }
    combine_product(children, cap, opts)
}

/// Combines children whose outputs join by **cross product**.
pub(crate) fn combine_product(
    children: Vec<Solved>,
    cap: u64,
    opts: &AdpOptions,
) -> Result<Solved, SolveError> {
    debug_assert!(children.iter().all(|c| c.total_outputs > 0));
    let total = children
        .iter()
        .fold(1u128, |acc, c| acc.saturating_mul(c.total_outputs as u128));
    let total = u64::try_from(total).unwrap_or(u64::MAX);
    let cap = cap.min(total);

    // A deadline-truncated child makes the whole combination best-so-far.
    let truncated = children.iter().any(|c| c.truncated);
    let solved = match opts.decompose {
        DecomposeStrategy::NaiveFull => naive_full(children, cap, total)?,
        DecomposeStrategy::NaivePairs => naive_pairs(children, cap, total, opts)?,
        DecomposeStrategy::ImprovedDp => improved_dp(children, cap, total, opts)?,
        DecomposeStrategy::Auto => {
            // Two components: the lazy pair answers min-cost queries in
            // O(B₁ log B₂) — strictly better than any dense table. More
            // components: dense DP while it fits (nested pairs would
            // materialize cross-product profiles), lazy pairs otherwise.
            if children.len() == 2 {
                lazy_pairs(children)
            } else {
                let width = cap + 1;
                let fits = width <= opts.dense_limit
                    && (opts.mode == Mode::Count
                        || width.saturating_mul(children.len() as u64) <= opts.dense_limit);
                if fits {
                    improved_dp(children, cap, total, opts)?
                } else {
                    lazy_pairs(children)
                }
            }
        }
    };
    Ok(solved.with_truncated(truncated))
}

/// Lazy sparse combination: fold into nested [`PairNode`]s. Queries are
/// answered on demand; nothing dense is materialized.
fn lazy_pairs(children: Vec<Solved>) -> Solved {
    let exact = children.iter().all(|c| c.exact);
    let truncated = children.iter().any(|c| c.truncated);
    let mut iter = children.into_iter();
    // adp-lint: allow(panic-path) -- callers split a decomposable query
    // into ≥ 2 components before folding.
    let mut acc = iter.next().expect("at least two children");
    for right in iter {
        let total =
            u64::try_from((acc.total_outputs as u128).saturating_mul(right.total_outputs as u128))
                .unwrap_or(u64::MAX);
        acc = Solved {
            repr: Repr::Pair(Box::new(PairNode { left: acc, right })),
            exact,
            truncated,
            total_outputs: total,
        };
    }
    acc
}

/// The improved DP (Algorithm 5 with breakpoint transitions): processes
/// components left to right; `Opt[j]` = min deletions to remove ≥ `j`
/// outputs from the prefix product.
fn improved_dp(
    children: Vec<Solved>,
    cap: u64,
    total: u64,
    opts: &AdpOptions,
) -> Result<Solved, SolveError> {
    let exact = children.iter().all(|c| c.exact);
    let width = (cap + 1) as usize;
    let track = opts.mode == Mode::Report;
    const UNREACHED: u64 = u64::MAX;

    // Layer 0: the first child's own profile.
    let first_pts = children[0].points(opts.pair_points_limit)?;
    let mut opt: Vec<u64> = vec![UNREACHED; width];
    opt[0] = 0;
    let mut choices: Vec<Vec<(u64, u64)>> = Vec::new();
    let mut first_choice = if track {
        vec![(UNREACHED, 0); width]
    } else {
        Vec::new()
    };
    if track {
        first_choice[0] = (0, 0);
    }
    for &(c, r) in &first_pts {
        for j in 1..=(r.min(cap)) as usize {
            if c < opt[j] {
                opt[j] = c;
                if track {
                    first_choice[j] = (j as u64, 0);
                }
            }
        }
    }
    if track {
        choices.push(first_choice);
    }

    // Subsequent layers.
    let mut prefix_total = children[0].total_outputs;
    for child in children.iter().skip(1) {
        let m_i = child.total_outputs;
        let pts = super::solved::with_origin(child.points(opts.pair_points_limit)?);
        let mut next: Vec<u64> = vec![UNREACHED; width];
        let mut choice = if track {
            vec![(UNREACHED, 0); width]
        } else {
            Vec::new()
        };
        for j in 0..width {
            if j == 0 {
                next[0] = 0;
                if track {
                    choice[0] = (0, 0);
                }
                continue;
            }
            for &(c, r) in &pts {
                // minimal prefix removal x given child removal r
                let Some(x) = required_right(r, j as u64, m_i, prefix_total) else {
                    continue;
                };
                if x as usize >= width || opt[x as usize] == UNREACHED {
                    continue;
                }
                let cand = opt[x as usize].saturating_add(c);
                if cand < next[j] {
                    next[j] = cand;
                    if track {
                        choice[j] = (r, x);
                    }
                }
            }
        }
        opt = next;
        if track {
            choices.push(choice);
        }
        prefix_total =
            u64::try_from((prefix_total as u128).saturating_mul(m_i as u128)).unwrap_or(u64::MAX);
    }

    let profile = CostProfile::from_pairs((1..width).filter_map(|j| {
        let c = opt[j];
        (c != UNREACHED).then_some((c, j as u64))
    }));
    Ok(Solved::eager(
        profile,
        Extractor::Dp(DpNode {
            children,
            choice: choices,
        }),
        exact,
        total,
    ))
}

/// Ablation: enumerate all `(k_1..k_s)` vectors for the single target
/// `cap` ("full partitions" in Figure 29). Exponential in `s`.
fn naive_full(children: Vec<Solved>, cap: u64, total: u64) -> Result<Solved, SolveError> {
    let exact = children.iter().all(|c| c.exact);
    let limits: Vec<u64> = children
        .iter()
        .map(|c| c.max_removable().min(cap))
        .collect();
    let space: u128 = limits.iter().map(|&l| (l + 1) as u128).product();
    if space > 200_000_000 {
        return Err(SolveError::BudgetExceeded(format!(
            "naive-full enumeration over {space} vectors"
        )));
    }
    let totals: Vec<u64> = children.iter().map(|c| c.total_outputs).collect();

    let mut best: Option<(u64, Vec<u64>)> = None;
    let mut ks: Vec<u64> = vec![0; children.len()];
    loop {
        // removal of the whole vector
        let mut removed_prefix = 0u64;
        let mut prefix_m = 1u64;
        for (i, &k) in ks.iter().enumerate() {
            removed_prefix = cross_removed(removed_prefix, k, prefix_m, totals[i]);
            prefix_m = u64::try_from((prefix_m as u128).saturating_mul(totals[i] as u128))
                .unwrap_or(u64::MAX);
        }
        if removed_prefix >= cap {
            let mut cost = 0u64;
            let mut feasible = true;
            for (i, &k) in ks.iter().enumerate() {
                match children[i].min_cost(k)? {
                    Some(c) => cost += c,
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible && best.as_ref().map(|(b, _)| cost < *b).unwrap_or(true) {
                best = Some((cost, ks.clone()));
            }
        }
        // odometer increment
        let mut i = 0;
        loop {
            if i == ks.len() {
                break;
            }
            ks[i] += 1;
            if ks[i] <= limits[i] {
                break;
            }
            ks[i] = 0;
            i += 1;
        }
        if i == ks.len() {
            break;
        }
    }
    // adp-lint: allow(panic-path) -- the enumeration includes taking
    // every component's full budget, which meets any cap ≤ total.
    let (cost, ks) = best.expect("cap ≤ total is always feasible");
    let mut tuples = Vec::new();
    for (i, &k) in ks.iter().enumerate() {
        tuples.extend(children[i].extract(k)?);
    }
    Ok(Solved::eager(
        CostProfile::single(cost, cap),
        Extractor::Steps(vec![Step {
            tuples,
            removed_cum: cap,
            cost_cum: cost,
        }]),
        exact,
        total,
    ))
}

/// Ablation: fold two components at a time with a dense double loop over
/// `(k_1, k_2)` ("two partitions" in Figure 29). `O(cap²)` per merge and
/// per budget — matches the unoptimized recurrence the paper compares
/// against.
fn naive_pairs(
    children: Vec<Solved>,
    cap: u64,
    total: u64,
    opts: &AdpOptions,
) -> Result<Solved, SolveError> {
    let exact = children.iter().all(|c| c.exact);
    let width = (cap + 1) as usize;
    if (cap + 1).saturating_mul(cap + 1) > opts.dense_limit.saturating_mul(64) {
        return Err(SolveError::BudgetExceeded(format!(
            "naive-pairs double loop over {width}² states"
        )));
    }
    const UNREACHED: u64 = u64::MAX;

    // dense cost vector of the running prefix
    let mut prefix_cost: Vec<u64> = vec![UNREACHED; width];
    for (j, slot) in prefix_cost.iter_mut().enumerate() {
        if children[0].max_removable() >= j as u64 {
            if let Some(c) = children[0].min_cost(j as u64)? {
                *slot = c;
            }
        }
    }
    let track = opts.mode == Mode::Report;
    let mut choices: Vec<Vec<(u64, u64)>> = Vec::new();
    if track {
        let mut c0 = vec![(UNREACHED, 0); width];
        for (j, item) in c0.iter_mut().enumerate() {
            if prefix_cost[j] != UNREACHED {
                *item = (j as u64, 0);
            }
        }
        choices.push(c0);
    }

    let mut prefix_total = children[0].total_outputs;
    for child in children.iter().skip(1) {
        let m_i = child.total_outputs;
        let mut next: Vec<u64> = vec![UNREACHED; width];
        let mut choice = if track {
            vec![(UNREACHED, 0); width]
        } else {
            Vec::new()
        };
        for j in 0..width {
            for k1 in 0..width as u64 {
                if prefix_cost[k1 as usize] == UNREACHED {
                    continue;
                }
                for k2 in 0..=child.max_removable().min(cap) {
                    if cross_removed(k1, k2, prefix_total, m_i) < j as u64 {
                        continue;
                    }
                    let Some(c2) = child.min_cost(k2)? else {
                        continue;
                    };
                    let cand = prefix_cost[k1 as usize].saturating_add(c2);
                    if cand < next[j] {
                        next[j] = cand;
                        if track {
                            choice[j] = (k2, k1);
                        }
                    }
                }
            }
        }
        prefix_cost = next;
        if track {
            choices.push(choice);
        }
        prefix_total =
            u64::try_from((prefix_total as u128).saturating_mul(m_i as u128)).unwrap_or(u64::MAX);
    }

    let profile = CostProfile::from_pairs((1..width).filter_map(|j| {
        let c = prefix_cost[j];
        (c != UNREACHED).then_some((c, j as u64))
    }));
    Ok(Solved::eager(
        profile,
        Extractor::Dp(DpNode {
            children,
            choice: choices,
        }),
        exact,
        total,
    ))
}

#[cfg(test)]
// Pins the legacy v1 entry points; the fluent v2 path is
// differentially tested against them.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use crate::solver::{compute_adp, AdpOptions};
    use adp_engine::database::Database;
    use adp_engine::schema::attrs;

    /// Q(A,B) :- R(A), S(B): pure cross product, |Q| = |R|·|S|.
    fn cross_db(na: u64, nb: u64) -> Database {
        let mut db = Database::new();
        let ra: Vec<Vec<u64>> = (0..na).map(|i| vec![i]).collect();
        let rb: Vec<Vec<u64>> = (0..nb).map(|i| vec![i]).collect();
        let mut r = adp_engine::relation::RelationInstance::new(
            adp_engine::schema::RelationSchema::new("R", attrs(&["A"])),
        );
        r.extend(ra);
        let mut s = adp_engine::relation::RelationInstance::new(
            adp_engine::schema::RelationSchema::new("S", attrs(&["B"])),
        );
        s.extend(rb);
        db.add(r);
        db.add(s);
        db
    }

    fn strategies() -> Vec<DecomposeStrategy> {
        vec![
            DecomposeStrategy::Auto,
            DecomposeStrategy::NaiveFull,
            DecomposeStrategy::NaivePairs,
            DecomposeStrategy::ImprovedDp,
        ]
    }

    #[test]
    fn cross_product_adp_brute_checkable() {
        // |R| = 3, |S| = 4, |Q| = 12. Removing k outputs optimally:
        // deleting a of R and b of S removes 4a + 3b − ab at cost a + b.
        let q = parse_query("Q(A,B) :- R(A), S(B)").unwrap();
        let db = cross_db(3, 4);
        // exhaustive ground truth
        let mut truth = [u64::MAX; 13];
        for a in 0..=3u64 {
            for b in 0..=4u64 {
                let removed = 4 * a + 3 * b - a * b;
                for k in 0..=removed.min(12) {
                    truth[k as usize] = truth[k as usize].min(a + b);
                }
            }
        }
        for strategy in strategies() {
            for k in 1..=12u64 {
                let out = compute_adp(
                    &q,
                    &db,
                    k,
                    &AdpOptions {
                        decompose: strategy,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(out.cost, truth[k as usize], "{strategy:?} k={k}");
                assert!(out.exact);
                // verify feasibility of the reported solution
                let sol = out.solution.unwrap();
                assert_eq!(sol.len() as u64, out.cost, "{strategy:?} k={k}");
            }
        }
    }

    #[test]
    fn three_components() {
        let q = parse_query("Q(A,B,C) :- R(A), S(B), T(C)").unwrap();
        let mut db = cross_db(2, 2);
        db.add_relation("T", attrs(&["C"]), &[&[0], &[1]]);
        // |Q| = 8; removing all = delete a whole relation (2 tuples).
        for strategy in strategies() {
            let out = compute_adp(
                &q,
                &db,
                8,
                &AdpOptions {
                    decompose: strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(out.cost, 2, "{strategy:?}");
        }
        // k=4: delete one tuple of any relation removes exactly 4.
        for strategy in strategies() {
            let out = compute_adp(
                &q,
                &db,
                4,
                &AdpOptions {
                    decompose: strategy,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(out.cost, 1, "{strategy:?}");
        }
    }

    #[test]
    fn sparse_path_matches_dense() {
        let q = parse_query("Q(A,B) :- R(A), S(B)").unwrap();
        let db = cross_db(5, 7);
        for k in [1, 5, 12, 20, 34, 35] {
            let dense = compute_adp(&q, &db, k, &AdpOptions::default()).unwrap();
            let sparse = compute_adp(
                &q,
                &db,
                k,
                &AdpOptions {
                    dense_limit: 1, // force the lazy pair path
                    mode: super::super::Mode::Report,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(dense.cost, sparse.cost, "k={k}");
            assert_eq!(sparse.solution.unwrap().len() as u64, sparse.cost);
        }
    }

    #[test]
    fn empty_component_empties_product() {
        let q = parse_query("Q(A,B) :- R(A), S(B)").unwrap();
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1]]);
        db.add_relation("S", attrs(&["B"]), &[]);
        // An empty component empties the cross product: zero outputs,
        // so the answer is the empty deletion set at cost 0.
        let out = compute_adp(&q, &db, 1, &AdpOptions::default()).unwrap();
        assert_eq!(out.output_count, 0);
        assert_eq!(out.cost, 0);
        assert_eq!(out.solution.as_deref(), Some(&[][..]));
    }
}
