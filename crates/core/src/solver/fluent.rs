//! The fluent v2 solve API: one builder for every way to run ADP.
//!
//! The v1 surface grew one free function per scenario —
//! `compute_adp`, `compute_adp_arc`, `compute_adp_with_policy`,
//! `compute_resilience`, `brute_force`, `brute_force_prepared` — each
//! with its own parameter order and its own slice of the option space.
//! [`Solve`] replaces the zoo with one builder:
//!
//! ```
//! use adp_core::query::parse_query;
//! use adp_core::solver::Solve;
//! use adp_engine::database::Database;
//! use adp_engine::schema::attrs;
//!
//! let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
//! let mut db = Database::new();
//! db.add_relation("R1", attrs(&["A"]), &[&[1], &[2]]);
//! db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 1], &[1, 2], &[2, 1]]);
//! db.add_relation("R3", attrs(&["B"]), &[&[1], &[2]]);
//!
//! let report = Solve::new(&q, &db).k(2).run().unwrap();
//! assert_eq!(report.cost(), 1);
//! println!("{:?} via {}", report.explain.branch, report.explain.solver);
//! ```
//!
//! Every configuration is **byte-identical** to the v1 function it
//! replaces (the `api_v2_differential` proptest suite pins it); the
//! additions are ergonomic only: a typed target, deadline/policy/brute
//! switches on one object, and a [`Report`] that carries an explain
//! trace ([`Explain`]) next to the outcome — which dichotomy branch the
//! root dispatch took, which solver family answered, and where the
//! microseconds went.

use super::brute::{brute_force_with_eval, BruteForceOptions};
use super::policy::{compute_with_policy_impl, DeletionPolicy};
use super::prepared::PreparedQuery;
use super::{AdpOptions, AdpOutcome, Mode};
use crate::analysis::{is_ptime, roles::singleton_atom};
use crate::error::SolveError;
use crate::query::Query;
use adp_engine::database::Database;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The root dispatch branch of `ComputeADP` (Algorithm 2) a solve went
/// through — the paper's dichotomy cases, plus the non-recursive
/// front doors (policy, brute force).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Branch {
    /// Exhaustive subset search ([`Solve::brute_force`]).
    BruteForce,
    /// Policy-restricted solve (frozen relations, §9 extension).
    Policy,
    /// Boolean base case: resilience via linearization + min-cut (§7.1).
    Boolean,
    /// The benchmark hook jumped straight to the greedy leaf
    /// ([`AdpOptions::force_greedy`]).
    ForcedGreedy,
    /// Singleton base case (§7.2, Algorithm 3).
    Singleton,
    /// Universal-attribute partition + DP (§7.3, Algorithm 4).
    Universe,
    /// Disconnected query: per-component solve + cross-product DP
    /// (§7.3, Algorithm 5).
    Decompose,
    /// NP-hard leaf: greedy heuristics over the materialized join
    /// (§7.4, Algorithms 6/7).
    Greedy,
}

impl Branch {
    /// The branch the root dispatch of [`super::solve`] takes for this
    /// query under these options — derived from the same checks, in the
    /// same order, as the dispatcher itself.
    fn of(query: &Query, opts: &AdpOptions) -> Branch {
        if query.is_boolean() {
            Branch::Boolean
        } else if opts.force_greedy {
            Branch::ForcedGreedy
        } else if !opts.skip_singleton && singleton_atom(query).is_some() {
            Branch::Singleton
        } else if !query.universal_attrs().is_empty() {
            Branch::Universe
        } else if query.connected_components().len() > 1 {
            Branch::Decompose
        } else {
            Branch::Greedy
        }
    }
}

/// The explain trace carried by every [`Report`]: which path answered
/// and where the time went. Assembled from stats the solver already
/// tracks — requesting it costs nothing extra.
#[derive(Clone, Copy, Debug)]
pub struct Explain {
    /// Root dispatch branch of the dichotomy (Algorithm 2).
    pub branch: Branch,
    /// Solver family that produced the answer: `"exact"` (poly-time
    /// shape ran to optimality), `"greedy"`, `"drastic-greedy"`,
    /// `"brute-force"`, or `"trivial"` (nothing to remove). The same
    /// labels the serving layer reports in
    /// [`RequestStats::solver`](https://docs.rs/adp-service).
    pub solver: &'static str,
    /// The structural dichotomy's verdict for the query (Theorem 2):
    /// `true` means the exact polynomial algorithm applies.
    pub ptime: bool,
    /// Microseconds spent compiling the plan (zero when reusing a
    /// [`PreparedQuery`] via [`Solve::prepared`]).
    pub plan_micros: u64,
    /// Microseconds spent solving, including the one-time root
    /// evaluation on a fresh plan.
    pub solve_micros: u64,
}

/// A solved ADP instance: the outcome plus its [`Explain`] trace.
#[derive(Clone, Debug)]
pub struct Report {
    /// The solver outcome: cost, achieved removal, deletion set,
    /// exactness and truncation flags — exactly what the v1 functions
    /// returned.
    pub outcome: AdpOutcome,
    /// Which path answered and where the time went.
    pub explain: Explain,
}

impl Report {
    /// Minimum deletions found (heuristic upper bound on hard shapes).
    pub fn cost(&self) -> u64 {
        self.outcome.cost
    }

    /// The deletion set, if the solve ran in report mode.
    pub fn deletion_set(&self) -> Option<&[adp_engine::provenance::TupleRef]> {
        self.outcome.solution.as_deref()
    }
}

/// How the builder reaches the database.
enum Db<'a> {
    Borrowed(&'a Database),
    Shared(Arc<Database>),
    Prepared(&'a PreparedQuery),
}

/// A fluent solve: query + database + target + switches, then
/// [`run`](Solve::run). See the module docs for the v1 ↔ v2 mapping.
pub struct Solve<'a> {
    query: &'a Query,
    db: Db<'a>,
    k: Option<u64>,
    resilience: bool,
    policy: Option<DeletionPolicy>,
    opts: AdpOptions,
    brute: Option<BruteForceOptions>,
}

impl<'a> Solve<'a> {
    /// A solve of `query` over `db`. The database is cloned into shared
    /// ownership at [`run`](Solve::run) time (exactly what
    /// `compute_adp` did); use [`shared`](Solve::shared) or
    /// [`prepared`](Solve::prepared) to avoid the clone.
    pub fn new(query: &'a Query, db: &'a Database) -> Self {
        Self::with_db(query, Db::Borrowed(db))
    }

    /// A solve of `query` over a shared database (no clone) — the v2
    /// form of `compute_adp_arc`.
    pub fn shared(query: &'a Query, db: Arc<Database>) -> Self {
        Self::with_db(query, Db::Shared(db))
    }

    /// A solve against an already-compiled [`PreparedQuery`]: the plan,
    /// indexes, and root evaluation are reused, and the report's
    /// `plan_micros` is zero.
    pub fn prepared(prep: &'a PreparedQuery) -> Self {
        Self::with_db(prep.query(), Db::Prepared(prep))
    }

    fn with_db(query: &'a Query, db: Db<'a>) -> Self {
        Solve {
            query,
            db,
            k: None,
            resilience: false,
            policy: None,
            opts: AdpOptions::default(),
            brute: None,
        }
    }

    /// Target: remove at least `k` outputs (the paper's `ADP(Q, D, k)`).
    /// Exactly one of [`k`](Solve::k) and [`resilience`](Solve::resilience)
    /// must be set; like v1, `k = 0` (or no target at all) is rejected
    /// with [`SolveError::KZero`] and `k > |Q(D)|` with
    /// [`SolveError::KTooLarge`].
    pub fn k(mut self, k: u64) -> Self {
        self.k = Some(k);
        self.resilience = false;
        self
    }

    /// Target: empty the result entirely (`k = |Q(D)|`) — the v2 form of
    /// `compute_resilience`. An already-empty result is answered with a
    /// trivial zero-cost report instead of v1's `None`.
    pub fn resilience(mut self) -> Self {
        self.resilience = true;
        self.k = None;
        self
    }

    /// Restricts deletions to non-frozen relations — the v2 form of
    /// `compute_adp_with_policy`. An unrestricted policy behaves exactly
    /// like no policy. Ignored by [`brute_force`](Solve::brute_force).
    pub fn policy(mut self, policy: DeletionPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Replaces the whole option block (mode, strategies, limits).
    pub fn opts(mut self, opts: AdpOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Counting vs. reporting mode ([`AdpOptions::mode`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.opts.mode = mode;
        self
    }

    /// Counting-only: skip materializing the deletion set.
    pub fn counting(self) -> Self {
        self.mode(Mode::Count)
    }

    /// Wall-clock deadline for the greedy rounds
    /// ([`AdpOptions::deadline`]): past it, the best-so-far deletion set
    /// is returned with [`AdpOutcome::truncated`] set.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.opts.deadline = Some(deadline);
        self
    }

    /// [`deadline`](Solve::deadline) as a budget from now.
    pub fn budget(self, budget: Duration) -> Self {
        // adp-lint: allow(wall-clock) -- deadline plumbing: converts a
        // budget to an absolute deadline; never read during solving.
        self.deadline(Instant::now() + budget)
    }

    /// Exhaustive-search baseline instead of the dichotomy solver — the
    /// v2 form of `brute_force`/`brute_force_prepared`. Exact but
    /// exponential; the deletion policy is ignored (the baseline only
    /// knows the endogenous-candidates restriction in
    /// [`BruteForceOptions`]).
    pub fn brute_force(self) -> Self {
        self.brute_force_opts(BruteForceOptions::default())
    }

    /// [`brute_force`](Solve::brute_force) with explicit search options.
    pub fn brute_force_opts(mut self, opts: BruteForceOptions) -> Self {
        self.brute = Some(opts);
        self
    }

    /// Runs the solve and assembles the [`Report`].
    pub fn run(self) -> Result<Report, SolveError> {
        let ptime = is_ptime(self.query);

        // Policy front door: byte-identical to `compute_adp_with_policy`
        // (which never used the planned root path), so it bypasses the
        // prepared plumbing below. Brute force ignores the policy.
        if self.brute.is_none() {
            if let Some(policy) = self.policy.as_ref().filter(|p| !p.frozen().is_empty()) {
                let db: &Database = match &self.db {
                    Db::Borrowed(db) => db,
                    Db::Shared(db) => db,
                    Db::Prepared(prep) => prep.database(),
                };
                let k = match self.k {
                    Some(k) => k,
                    None if self.resilience => {
                        // `|Q(D)|` for the resilience target: reuse the
                        // handle's cached evaluation when there is one;
                        // otherwise compile once (sharing the Arc, not
                        // cloning the data, when the caller already
                        // shares ownership).
                        let total = match &self.db {
                            Db::Prepared(prep) => prep.output_count(),
                            Db::Shared(db) => {
                                PreparedQuery::new(self.query.clone(), Arc::clone(db))
                                    .output_count()
                            }
                            Db::Borrowed(db) => {
                                PreparedQuery::new(self.query.clone(), Arc::new((*db).clone()))
                                    .output_count()
                            }
                        };
                        if total == 0 {
                            return Ok(trivial_report(Branch::Policy, &self.opts, ptime));
                        }
                        total
                    }
                    None => 0,
                };
                // adp-lint: allow(wall-clock) -- explain-trace timing
                // only; the measured duration never feeds a decision.
                let solve_start = Instant::now();
                let outcome = compute_with_policy_impl(self.query, db, k, policy, &self.opts)?;
                let solve_micros = solve_start.elapsed().as_micros() as u64;
                // The policy path has no drastic variant: non-boolean
                // queries always run the policy-aware greedy, boolean
                // ones the exact min-cut.
                let solver = if outcome.output_count == 0 {
                    "trivial"
                } else if outcome.exact {
                    "exact"
                } else {
                    "greedy"
                };
                return Ok(Report {
                    outcome,
                    explain: Explain {
                        branch: Branch::Policy,
                        solver,
                        ptime,
                        plan_micros: 0,
                        solve_micros,
                    },
                });
            }
        }

        // Compile (or reuse) the plan.
        // adp-lint: allow(wall-clock) -- explain-trace timing only; the
        // measured duration never feeds a decision.
        let plan_start = Instant::now();
        let owned;
        let (prep, plan_micros): (&PreparedQuery, u64) = match &self.db {
            Db::Prepared(prep) => (*prep, 0),
            Db::Borrowed(db) => {
                owned = PreparedQuery::new(self.query.clone(), Arc::new((*db).clone()));
                (&owned, plan_start.elapsed().as_micros() as u64)
            }
            Db::Shared(db) => {
                owned = PreparedQuery::new(self.query.clone(), Arc::clone(db));
                (&owned, plan_start.elapsed().as_micros() as u64)
            }
        };

        // Resolve the target. No target behaves like k = 0 (KZero), as
        // the v1 functions rejected it.
        let k = match self.k {
            Some(k) => k,
            None if self.resilience => {
                let total = prep.output_count();
                if total == 0 {
                    return Ok(trivial_report(
                        Branch::of(self.query, &self.opts),
                        &self.opts,
                        ptime,
                    ));
                }
                total
            }
            None => 0,
        };

        // adp-lint: allow(wall-clock) -- explain-trace timing only; the
        // measured duration never feeds a decision.
        let solve_start = Instant::now();
        if let Some(bf_opts) = self.brute {
            let eval = prep.eval();
            let (cost, solution) =
                brute_force_with_eval(self.query, prep.database(), &eval, k, &bf_opts)?;
            let achieved = prep.removed_outputs(&solution);
            let outcome = AdpOutcome {
                cost,
                achieved,
                exact: true,
                truncated: false,
                output_count: eval.output_count(),
                solution: (self.opts.mode == Mode::Report).then_some(solution),
            };
            let solve_micros = solve_start.elapsed().as_micros() as u64;
            return Ok(Report {
                outcome,
                explain: Explain {
                    branch: Branch::BruteForce,
                    solver: "brute-force",
                    ptime,
                    plan_micros,
                    solve_micros,
                },
            });
        }

        let outcome = prep.solve(k, &self.opts)?;
        let solve_micros = solve_start.elapsed().as_micros() as u64;
        let solver = solver_label(&outcome, &self.opts, self.query);
        Ok(Report {
            outcome,
            explain: Explain {
                branch: Branch::of(self.query, &self.opts),
                solver,
                ptime,
                plan_micros,
                solve_micros,
            },
        })
    }
}

/// The solver-family label for a dichotomy-path outcome (same labels as
/// the serving layer's per-request stats).
fn solver_label(outcome: &AdpOutcome, opts: &AdpOptions, query: &Query) -> &'static str {
    if outcome.output_count == 0 {
        "trivial"
    } else if outcome.exact {
        "exact"
    } else if opts.use_drastic && query.is_full() {
        "drastic-greedy"
    } else {
        "greedy"
    }
}

/// The zero-output resilience answer: nothing to remove, empty set at
/// cost 0 (v1 returned `None` here). `branch` names the front door
/// that was actually taken (the policy path passes [`Branch::Policy`]
/// so the branch field never flips with the data).
fn trivial_report(branch: Branch, opts: &AdpOptions, ptime: bool) -> Report {
    Report {
        outcome: AdpOutcome {
            cost: 0,
            achieved: 0,
            exact: true,
            truncated: false,
            output_count: 0,
            solution: (opts.mode == Mode::Report).then(Vec::new),
        },
        explain: Explain {
            branch,
            solver: "trivial",
            ptime,
            plan_micros: 0,
            solve_micros: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use adp_engine::schema::attrs;

    fn chain_db() -> Database {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("R3", attrs(&["B"]), &[&[1], &[2]]);
        db
    }

    #[test]
    #[allow(deprecated)]
    fn fluent_matches_legacy_compute_adp() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let db = chain_db();
        for k in 1..=3u64 {
            let v2 = Solve::new(&q, &db).k(k).run().unwrap();
            let v1 = super::super::compute_adp(&q, &db, k, &AdpOptions::default()).unwrap();
            assert_eq!(v2.outcome.cost, v1.cost, "k={k}");
            assert_eq!(v2.outcome.solution, v1.solution, "k={k}");
            assert_eq!(v2.outcome.achieved, v1.achieved, "k={k}");
            assert_eq!(v2.explain.branch, Branch::Greedy);
            assert!(!v2.explain.ptime);
        }
    }

    #[test]
    fn missing_target_is_kzero_like_v1() {
        let q = parse_query("Q(A) :- R1(A)").unwrap();
        let db = chain_db();
        assert!(matches!(Solve::new(&q, &db).run(), Err(SolveError::KZero)));
        assert!(matches!(
            Solve::new(&q, &db).k(0).run(),
            Err(SolveError::KZero)
        ));
        assert!(matches!(
            Solve::new(&q, &db).k(99).run(),
            Err(SolveError::KTooLarge { .. })
        ));
    }

    #[test]
    #[allow(deprecated)]
    fn resilience_matches_legacy_and_handles_empty() {
        let q = parse_query("Q() :- R1(A), R2(A,B), R3(B)").unwrap();
        let db = chain_db();
        let v2 = Solve::new(&q, &db).resilience().run().unwrap();
        let v1 = super::super::compute_resilience(&q, &db, &AdpOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(v2.outcome.cost, v1.cost);
        assert_eq!(v2.outcome.solution, v1.solution);
        assert_eq!(v2.explain.branch, Branch::Boolean);
        assert_eq!(v2.explain.solver, "exact");

        // Empty result: v1 returned None; v2 reports the trivial answer.
        let q2 = parse_query("Q(A) :- R1(A), R9(A)").unwrap();
        let mut db2 = Database::new();
        db2.add_relation("R1", attrs(&["A"]), &[&[1]]);
        db2.add_relation("R9", attrs(&["A"]), &[&[2]]);
        let r = Solve::new(&q2, &db2).resilience().run().unwrap();
        assert_eq!(r.outcome.cost, 0);
        assert_eq!(r.outcome.output_count, 0);
        assert_eq!(r.explain.solver, "trivial");
        assert_eq!(r.deletion_set(), Some(&[][..]));
    }

    #[test]
    #[allow(deprecated)]
    fn policy_matches_legacy() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let db = chain_db();
        let policy = DeletionPolicy::unrestricted().freeze("R1");
        for k in 1..=3u64 {
            let v2 = Solve::new(&q, &db)
                .k(k)
                .policy(policy.clone())
                .run()
                .unwrap();
            let v1 =
                super::super::compute_adp_with_policy(&q, &db, k, &policy, &AdpOptions::default())
                    .unwrap();
            assert_eq!(v2.outcome.cost, v1.cost, "k={k}");
            assert_eq!(v2.outcome.solution, v1.solution, "k={k}");
            assert_eq!(v2.explain.branch, Branch::Policy);
        }
        // An unrestricted policy is a no-op, not the policy code path.
        let r = Solve::new(&q, &db)
            .k(1)
            .policy(DeletionPolicy::unrestricted())
            .run()
            .unwrap();
        assert_eq!(r.explain.branch, Branch::Greedy);
    }

    #[test]
    #[allow(deprecated)]
    fn brute_force_matches_legacy() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let db = chain_db();
        for k in 1..=3u64 {
            let v2 = Solve::new(&q, &db).k(k).brute_force().run().unwrap();
            let (cost, sol) =
                super::super::brute::brute_force(&q, &db, k, &BruteForceOptions::default())
                    .unwrap();
            assert_eq!(v2.outcome.cost, cost, "k={k}");
            assert_eq!(v2.outcome.solution.as_deref(), Some(&sol[..]), "k={k}");
            assert!(v2.outcome.achieved >= k, "k={k}");
            assert_eq!(v2.explain.branch, Branch::BruteForce);
            assert_eq!(v2.explain.solver, "brute-force");
        }
    }

    #[test]
    fn prepared_reuse_reports_zero_plan_micros() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let prep = PreparedQuery::new(q.clone(), Arc::new(chain_db()));
        let a = Solve::prepared(&prep).k(1).run().unwrap();
        let b = Solve::prepared(&prep).k(1).run().unwrap();
        assert_eq!(a.explain.plan_micros, 0);
        assert_eq!(a.outcome.solution, b.outcome.solution);
    }

    #[test]
    fn branch_mirrors_the_dispatcher() {
        let cases = [
            ("Q() :- R(A)", Branch::Boolean),
            ("Q(A,B) :- R(A), S(A,B)", Branch::Singleton),
            ("Q(A,B) :- R(A,B), S(A,C)", Branch::Universe),
            ("Q(A,B) :- R(A), S(B)", Branch::Decompose),
            ("Q(A,B) :- R(A), S(A,B), T(B)", Branch::Greedy),
        ];
        for (text, branch) in cases {
            let q = parse_query(text).unwrap();
            assert_eq!(Branch::of(&q, &AdpOptions::default()), branch, "{text}");
        }
        let q = parse_query("Q(A,B) :- R(A), S(A,B)").unwrap();
        let forced = AdpOptions {
            force_greedy: true,
            ..Default::default()
        };
        assert_eq!(Branch::of(&q, &forced), Branch::ForcedGreedy);
        let skip = AdpOptions {
            skip_singleton: true,
            ..Default::default()
        };
        assert_eq!(Branch::of(&q, &skip), Branch::Universe);
    }

    #[test]
    fn deadline_sugar_truncates() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let db = chain_db();
        let r = Solve::new(&q, &db)
            .k(3)
            .opts(AdpOptions {
                force_greedy: true,
                ..Default::default()
            })
            .deadline(Instant::now())
            .run()
            .unwrap();
        assert!(r.outcome.truncated);
        assert!(r.outcome.achieved >= 1, "first round always runs");
    }
}
