//! Greedy heuristics for NP-hard leaves (paper §7.4).
//!
//! * `solve_greedy` — `GreedyForCQ` (Algorithm 6): repeatedly delete
//!   the endogenous tuple removing the most remaining outputs. On full
//!   CQs this is the classic `O(log k)`-approximate partial-set-cover
//!   greedy (Theorem 5); with projections it is a heuristic.
//! * `solve_drastic` — `DrasticGreedyForFullCQ` (Algorithm 7): compute
//!   profits once per endogenous relation, then delete a prefix of one
//!   relation only. Much faster, full CQs only.

use super::profile::CostProfile;
use super::solved::{Extractor, Solved, Step};
use super::view::View;
use crate::analysis::roles::endogenous_atoms;
use crate::error::SolveError;
use adp_engine::join::EvalResult;
use adp_engine::provenance::{ProvenanceIndex, TupleRef};

/// `GreedyForCQ` (Algorithm 6). The view's query must be connected and
/// non-boolean... in fact any query works; it is simply not optimal.
pub(crate) fn solve_greedy(view: &View, eval: &EvalResult, cap: u64) -> Result<Solved, SolveError> {
    let deletable = vec![true; view.query.atom_count()];
    solve_greedy_filtered(view, eval, cap, &deletable)
}

/// [`solve_greedy`] restricted to deletable atoms (deletion policies,
/// paper §9 future work). Without a policy, candidates are the
/// endogenous atoms (Lemma 13); with frozen atoms the endogenous
/// restriction is no longer sound (the Lemma-13 swap may land in a
/// frozen relation), so every deletable atom becomes a candidate. The
/// loop stops early if no candidate remains.
pub(crate) fn solve_greedy_filtered(
    view: &View,
    eval: &EvalResult,
    cap: u64,
    deletable: &[bool],
) -> Result<Solved, SolveError> {
    let mut prov = ProvenanceIndex::new(eval);
    let total = eval.output_count();
    let policy_active = deletable.iter().any(|&d| !d);
    let endo: Vec<bool> = endogenous_atoms(&view.query)
        .into_iter()
        .zip(deletable)
        .map(|(e, &d)| if policy_active { d } else { e })
        .collect();
    let cap = cap.min(total);

    let mut steps: Vec<Step> = Vec::new();
    let (mut removed, mut cost) = (0u64, 0u64);
    while removed < cap && prov.live_outputs() > 0 {
        // Profit of each endogenous tuple under the current deletions.
        let profits = prov.profits();
        let mut best: Option<(u64, usize, u32)> = None; // (profit, atom, idx)
        for (atom, map) in profits.iter().enumerate() {
            if !endo[atom] {
                continue;
            }
            for (&idx, &p) in map {
                if p == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bp, ba, bi)) => {
                        (p, std::cmp::Reverse((atom, idx))) > (bp, std::cmp::Reverse((ba, bi)))
                    }
                };
                if better {
                    best = Some((p, atom, idx));
                }
            }
        }
        let (atom, idx) = match best {
            Some((_, a, i)) => (a, i),
            None => {
                // No sole killer exists: make progress by deleting the
                // endogenous tuple on the most live witnesses.
                let counts = prov.live_counts();
                let mut pick: Option<(u64, usize, u32)> = None;
                for (atom, map) in counts.iter().enumerate() {
                    if !endo[atom] {
                        continue;
                    }
                    for (&idx, &c) in map {
                        let better = match pick {
                            None => true,
                            Some((bc, ba, bi)) => {
                                (c, std::cmp::Reverse((atom, idx)))
                                    > (bc, std::cmp::Reverse((ba, bi)))
                            }
                        };
                        if better {
                            pick = Some((c, atom, idx));
                        }
                    }
                }
                match pick {
                    Some((_, a, i)) => (a, i),
                    None => break, // no deletable candidate remains
                }
            }
        };
        let died = prov.kill(TupleRef::new(atom, idx));
        removed += died;
        cost += 1;
        steps.push(Step {
            tuples: vec![view.to_original(atom, idx)],
            removed_cum: removed,
            cost_cum: cost,
        });
    }

    let profile = CostProfile::from_pairs(steps.iter().map(|s| (s.cost_cum, s.removed_cum)));
    Ok(Solved::eager(
        profile,
        Extractor::Steps(steps),
        false,
        total,
    ))
}

/// `DrasticGreedyForFullCQ` (Algorithm 7). Requires a full CQ: witnesses
/// and outputs coincide, so profits within one relation are additive.
pub(crate) fn solve_drastic(
    view: &View,
    eval: &EvalResult,
    cap: u64,
) -> Result<Solved, SolveError> {
    assert!(
        view.query.is_full(),
        "DrasticGreedyForFullCQ requires a full CQ (paper §7.4)"
    );
    let prov = ProvenanceIndex::new(eval);
    let total = eval.output_count();
    let cap = cap.min(total);
    let endo = endogenous_atoms(&view.query);
    let counts = prov.live_counts(); // witness count per tuple = profit

    // For each endogenous relation: sort by profit, find the prefix
    // reaching the cap; pick the relation with the smallest prefix.
    // (prefix length needed, atom, profit-sorted tuple order)
    type Candidate = (usize, usize, Vec<(u32, u64)>);
    let mut best: Option<Candidate> = None;
    for (atom, map) in counts.iter().enumerate() {
        if !endo[atom] {
            continue;
        }
        let mut order: Vec<(u32, u64)> = map.iter().map(|(&i, &c)| (i, c)).collect();
        order.sort_by_key(|&(i, c)| (std::cmp::Reverse(c), i));
        let mut cum = 0u64;
        let mut needed = order.len();
        for (pos, &(_, c)) in order.iter().enumerate() {
            cum += c;
            if cum >= cap {
                needed = pos + 1;
                break;
            }
        }
        if cum < cap {
            continue; // cannot reach the cap inside this relation
        }
        if best.as_ref().map(|(n, _, _)| needed < *n).unwrap_or(true) {
            best = Some((needed, atom, order));
        }
    }
    let Some((_, atom, order)) = best else {
        return Ok(Solved::empty());
    };

    let mut steps = Vec::new();
    let (mut removed, mut cost) = (0u64, 0u64);
    for (idx, profit) in order {
        removed += profit;
        cost += 1;
        steps.push(Step {
            tuples: vec![view.to_original(atom, idx)],
            removed_cum: removed,
            cost_cum: cost,
        });
        if removed >= cap {
            break;
        }
    }
    let profile = CostProfile::from_pairs(steps.iter().map(|s| (s.cost_cum, s.removed_cum)));
    Ok(Solved::eager(
        profile,
        Extractor::Steps(steps),
        false,
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use adp_engine::database::Database;
    use adp_engine::join::evaluate;
    use adp_engine::schema::attrs;
    use std::rc::Rc;

    fn chain_db() -> Database {
        let mut db = Database::new();
        db.add_relation("S", attrs(&["NK", "SK"]), &[&[1, 1], &[2, 2]]);
        db.add_relation("PS", attrs(&["SK", "PK"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("L", attrs(&["OK", "PK"]), &[&[7, 1], &[8, 2]]);
        db
    }

    #[test]
    fn greedy_is_feasible_and_monotone() {
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let view = View::root(q.clone(), Rc::new(chain_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let total = eval.output_count();
        let s = solve_greedy(&view, &eval, total).unwrap();
        assert_eq!(s.total_outputs, total);
        assert_eq!(s.max_removable(), total, "greedy can always finish");
        assert!(!s.exact);
        // costs are monotone in m
        let mut last = 0;
        for m in 1..=total {
            let c = s.min_cost(m).unwrap().unwrap();
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn greedy_picks_high_profit_tuples_first() {
        // One S tuple covers 2 witnesses, the other 1. Removing 2 outputs
        // should cost 1 (the high-profit tuple), not 2.
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let view = View::root(q.clone(), Rc::new(chain_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let s = solve_greedy(&view, &eval, 2).unwrap();
        assert_eq!(s.min_cost(2).unwrap(), Some(1));
    }

    #[test]
    fn greedy_handles_projection_without_sole_killers() {
        // Q(A) with two witnesses per output disagreeing on every atom:
        // no sole killer initially.
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A", "B"]), &[&[1, 1], &[1, 2]]);
        db.add_relation("S", attrs(&["B"]), &[&[1], &[2]]);
        let q = parse_query("Q(A) :- R(A,B), S(B)").unwrap();
        let view = View::root(q.clone(), Rc::new(db));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let s = solve_greedy(&view, &eval, 1).unwrap();
        // output a=1 needs both branches cut: cost 2
        assert_eq!(s.min_cost(1).unwrap(), Some(2));
    }

    #[test]
    fn drastic_stays_in_one_relation() {
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let view = View::root(q.clone(), Rc::new(chain_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let s = solve_drastic(&view, &eval, 3).unwrap();
        let sol = s.extract(3).unwrap();
        let atoms: std::collections::HashSet<usize> = sol.iter().map(|t| t.atom).collect();
        assert_eq!(atoms.len(), 1, "drastic deletes from a single relation");
        assert!(!s.exact);
    }

    #[test]
    fn drastic_matches_greedy_on_disjoint_profits() {
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let view = View::root(q.clone(), Rc::new(chain_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let g = solve_greedy(&view, &eval, 2).unwrap();
        let d = solve_drastic(&view, &eval, 2).unwrap();
        assert_eq!(
            g.min_cost(2).unwrap(),
            d.min_cost(2).unwrap(),
            "both remove 2 outputs with 1 supplier tuple"
        );
    }

    #[test]
    #[should_panic(expected = "full CQ")]
    fn drastic_rejects_projections() {
        let q = parse_query("Q(NK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let view = View::root(q.clone(), Rc::new(chain_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let _ = solve_drastic(&view, &eval, 1);
    }
}
