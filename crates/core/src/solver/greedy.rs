//! Greedy heuristics for NP-hard leaves (paper §7.4).
//!
//! * `solve_greedy` — `GreedyForCQ` (Algorithm 6): repeatedly delete
//!   the endogenous tuple removing the most remaining outputs. On full
//!   CQs this is the classic `O(log k)`-approximate partial-set-cover
//!   greedy (Theorem 5); with projections it is a heuristic.
//! * `solve_drastic` — `DrasticGreedyForFullCQ` (Algorithm 7): compute
//!   profits once per endogenous relation, then delete a prefix of one
//!   relation only. Much faster, full CQs only.
//!
//! ## Parallel candidate scoring
//!
//! Each greedy round spends almost all of its time scoring candidates —
//! one pass over every live witness ([`ProvenanceIndex::profits`] /
//! [`ProvenanceIndex::live_counts`]). When the global
//! [`adp_runtime`] pool has more than one worker, the pass is split
//! into contiguous output/witness ranges scored in parallel and merged
//! by summation. Profits are additive over any partition of the
//! outputs, so the merged maps are *equal* (not just equivalent) to the
//! sequential ones, and the winning candidate — selected by the total
//! order `(profit, Reverse((atom, idx)))` — is byte-identical to the
//! sequential pick. Small instances (fewer than
//! [`PAR_SCORING_MIN_WITNESSES`] live witnesses) stay on the sequential
//! path; the fan-out would cost more than the scan.

use super::profile::CostProfile;
use super::solved::{Extractor, Solved, Step};
use super::view::View;
use super::AdpOptions;
use crate::analysis::roles::endogenous_atoms;
use crate::error::SolveError;
use adp_engine::join::EvalResult;
use adp_engine::provenance::{ProvenanceIndex, TupleRef};
use adp_runtime::ThreadPool;
use std::collections::HashMap;

/// Minimum live-witness count before a greedy round fans its scoring
/// pass out across the pool.
pub const PAR_SCORING_MIN_WITNESSES: u64 = 1024;

/// Sums per-range scoring maps into the full map. Addition is
/// commutative and associative and ranges are disjoint, so the result
/// equals the sequential single-pass map regardless of scheduling.
fn merge_score_maps(n_atoms: usize, parts: Vec<Vec<HashMap<u32, u64>>>) -> Vec<HashMap<u32, u64>> {
    let mut acc: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n_atoms];
    for part in parts {
        // adp-lint: allow(unordered-iter) -- merging disjoint partial
        // sums by `+=`; addition commutes, so order cannot show.
        for (atom, map) in part.into_iter().enumerate() {
            for (t, c) in map {
                *acc[atom].entry(t).or_insert(0) += c;
            }
        }
    }
    acc
}

/// `profits()` with the witness scan fanned out over `pool` (when
/// present and worth it). Returns exactly the sequential maps.
fn scored_profits(prov: &ProvenanceIndex, pool: Option<&ThreadPool>) -> Vec<HashMap<u32, u64>> {
    scored(prov, pool, prov.output_slots(), |lo, hi| {
        prov.profits_range(lo, hi)
    })
}

/// `live_counts()` with the witness scan fanned out over `pool`.
fn scored_live_counts(prov: &ProvenanceIndex, pool: Option<&ThreadPool>) -> Vec<HashMap<u32, u64>> {
    scored(prov, pool, prov.witness_slots(), |lo, hi| {
        prov.live_counts_range(lo, hi)
    })
}

/// Shared fan-out shell of the two scoring passes: splits `0..slots`
/// into per-worker ranges, scores them via `range_fn`, and merges by
/// summation — or falls back to the single-pass `range_fn(0, slots)`
/// when the pool is absent or the instance is below the witness
/// threshold. Both passes go through here, so threshold and chunking
/// tuning can never diverge between them.
fn scored<F>(
    prov: &ProvenanceIndex,
    pool: Option<&ThreadPool>,
    slots: usize,
    range_fn: F,
) -> Vec<HashMap<u32, u64>>
where
    F: Fn(usize, usize) -> Vec<HashMap<u32, u64>> + Sync,
{
    match pool {
        Some(pool)
            if pool.threads() > 1
                && prov.live_witnesses() >= PAR_SCORING_MIN_WITNESSES
                && slots > 1 =>
        {
            let chunk = slots.div_ceil(pool.threads() * 2).max(1);
            let parts = pool.par_indexed(slots.div_ceil(chunk), |i| {
                range_fn(i * chunk, ((i + 1) * chunk).min(slots))
            });
            merge_score_maps(prov.atom_count(), parts)
        }
        _ => range_fn(0, slots),
    }
}

/// `GreedyForCQ` (Algorithm 6). The view's query must be connected and
/// non-boolean... in fact any query works; it is simply not optimal.
/// Unless `opts.sequential`, candidate scoring uses the global pool;
/// unless `opts.full_reeval`, rounds run on the incremental
/// [`DeltaProvenance`] instead of full rescans. All four combinations
/// return byte-identical results.
pub(crate) fn solve_greedy(
    view: &View,
    eval: &EvalResult,
    cap: u64,
    opts: &AdpOptions,
) -> Result<Solved, SolveError> {
    let deletable = vec![true; view.query.atom_count()];
    solve_greedy_filtered(view, eval, cap, &deletable, opts)
}

/// [`solve_greedy`] restricted to deletable atoms (deletion policies,
/// paper §9 future work). Without a policy, candidates are the
/// endogenous atoms (Lemma 13); with frozen atoms the endogenous
/// restriction is no longer sound (the Lemma-13 swap may land in a
/// frozen relation), so every deletable atom becomes a candidate. The
/// loop stops early if no candidate remains.
pub(crate) fn solve_greedy_filtered(
    view: &View,
    eval: &EvalResult,
    cap: u64,
    deletable: &[bool],
    opts: &AdpOptions,
) -> Result<Solved, SolveError> {
    let total = eval.output_count();
    let policy_active = deletable.iter().any(|&d| !d);
    let endo: Vec<bool> = endogenous_atoms(&view.query)
        .into_iter()
        .zip(deletable)
        .map(|(e, &d)| if policy_active { d } else { e })
        .collect();
    let cap = cap.min(total);
    let (steps, truncated) = if opts.full_reeval {
        rescan_rounds(view, eval, cap, &endo, !opts.sequential, opts.deadline)?
    } else {
        delta_rounds(view, eval, cap, &endo, !opts.sequential, opts.deadline)?
    };
    let profile = CostProfile::from_pairs(steps.iter().map(|s| (s.cost_cum, s.removed_cum)));
    Ok(Solved::eager(profile, Extractor::Steps(steps), false, total).with_truncated(truncated))
}

/// True if `deadline` has passed and at least one round already ran.
/// The first round is exempt: an expired budget still yields one unit
/// of progress, so a truncated response is never an empty shrug when
/// something removable exists.
fn deadline_expired(deadline: Option<std::time::Instant>, rounds_done: usize) -> bool {
    // adp-lint: allow(wall-clock) -- this IS the deadline plumbing: the
    // one sanctioned read, feeding only the documented truncation path.
    rounds_done > 0 && deadline.is_some_and(|d| std::time::Instant::now() >= d)
}

/// Incremental greedy rounds: scores are maintained by the
/// [`DeltaProvenance`](adp_engine::delta::DeltaProvenance) across
/// deletions, so each round costs `O(Δ)` in the affected witnesses plus
/// a logarithmic argmax — instead of a full pass over every live
/// witness. The candidate order is the same `(score, Reverse((atom,
/// idx)))` total order as the rescan path, so the deletion sequence is
/// byte-identical.
fn delta_rounds(
    view: &View,
    eval: &EvalResult,
    cap: u64,
    endo: &[bool],
    parallel: bool,
    deadline: Option<std::time::Instant>,
) -> Result<(Vec<Step>, bool), SolveError> {
    let mut prov = view.delta_provenance(eval, parallel)?;
    prov.enable_selection(endo.to_vec());
    let mut steps: Vec<Step> = Vec::new();
    let (mut removed, mut cost) = (0u64, 0u64);
    while removed < cap && prov.live_outputs() > 0 {
        if deadline_expired(deadline, steps.len()) {
            return Ok((steps, true));
        }
        // Best sole killer; when none exists, the tuple on the most live
        // witnesses — exactly the rescan path's picks.
        let picked = prov
            .best_profit_candidate()
            .or_else(|| prov.best_count_candidate());
        let Some((_, atom, idx)) = picked else {
            break; // no deletable candidate remains
        };
        let died = prov.delete(TupleRef::new(atom, idx));
        removed += died;
        cost += 1;
        steps.push(Step {
            tuples: vec![view.to_original(atom, idx)],
            removed_cum: removed,
            cost_cum: cost,
        });
    }
    Ok((steps, false))
}

/// The pre-delta greedy rounds: one full scoring pass over every live
/// witness per round (fanned over the pool when allowed). Kept as the
/// differential oracle behind `AdpOptions::full_reeval`.
fn rescan_rounds(
    view: &View,
    eval: &EvalResult,
    cap: u64,
    endo: &[bool],
    parallel: bool,
    deadline: Option<std::time::Instant>,
) -> Result<(Vec<Step>, bool), SolveError> {
    let pool = if parallel {
        let p = adp_runtime::global();
        (p.threads() > 1).then_some(p)
    } else {
        None
    };
    let mut prov = ProvenanceIndex::try_new(eval)?;

    let mut steps: Vec<Step> = Vec::new();
    let (mut removed, mut cost) = (0u64, 0u64);
    while removed < cap && prov.live_outputs() > 0 {
        if deadline_expired(deadline, steps.len()) {
            return Ok((steps, true));
        }
        // Profit of each endogenous tuple under the current deletions.
        let profits = scored_profits(&prov, pool);
        let mut best: Option<(u64, usize, u32)> = None; // (profit, atom, idx)
        for (atom, map) in profits.iter().enumerate() {
            if !endo[atom] {
                continue;
            }
            for (&idx, &p) in map {
                if p == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bp, ba, bi)) => {
                        (p, std::cmp::Reverse((atom, idx))) > (bp, std::cmp::Reverse((ba, bi)))
                    }
                };
                if better {
                    best = Some((p, atom, idx));
                }
            }
        }
        let (atom, idx) = match best {
            Some((_, a, i)) => (a, i),
            None => {
                // No sole killer exists: make progress by deleting the
                // endogenous tuple on the most live witnesses.
                let counts = scored_live_counts(&prov, pool);
                let mut pick: Option<(u64, usize, u32)> = None;
                for (atom, map) in counts.iter().enumerate() {
                    if !endo[atom] {
                        continue;
                    }
                    for (&idx, &c) in map {
                        let better = match pick {
                            None => true,
                            Some((bc, ba, bi)) => {
                                (c, std::cmp::Reverse((atom, idx)))
                                    > (bc, std::cmp::Reverse((ba, bi)))
                            }
                        };
                        if better {
                            pick = Some((c, atom, idx));
                        }
                    }
                }
                match pick {
                    Some((_, a, i)) => (a, i),
                    None => break, // no deletable candidate remains
                }
            }
        };
        let died = prov.kill(TupleRef::new(atom, idx));
        removed += died;
        cost += 1;
        steps.push(Step {
            tuples: vec![view.to_original(atom, idx)],
            removed_cum: removed,
            cost_cum: cost,
        });
    }
    Ok((steps, false))
}

/// `DrasticGreedyForFullCQ` (Algorithm 7). Requires a full CQ: witnesses
/// and outputs coincide, so profits within one relation are additive.
pub(crate) fn solve_drastic(
    view: &View,
    eval: &EvalResult,
    cap: u64,
) -> Result<Solved, SolveError> {
    assert!(
        view.query.is_full(),
        "DrasticGreedyForFullCQ requires a full CQ (paper §7.4)"
    );
    let prov = ProvenanceIndex::try_new(eval)?;
    let total = eval.output_count();
    let cap = cap.min(total);
    let endo = endogenous_atoms(&view.query);
    let counts = prov.live_counts(); // witness count per tuple = profit

    // For each endogenous relation: sort by profit, find the prefix
    // reaching the cap; pick the relation with the smallest prefix.
    // (prefix length needed, atom, profit-sorted tuple order)
    type Candidate = (usize, usize, Vec<(u32, u64)>);
    let mut best: Option<Candidate> = None;
    for (atom, map) in counts.iter().enumerate() {
        if !endo[atom] {
            continue;
        }
        let mut order: Vec<(u32, u64)> = map.iter().map(|(&i, &c)| (i, c)).collect();
        order.sort_by_key(|&(i, c)| (std::cmp::Reverse(c), i));
        let mut cum = 0u64;
        let mut needed = order.len();
        for (pos, &(_, c)) in order.iter().enumerate() {
            cum += c;
            if cum >= cap {
                needed = pos + 1;
                break;
            }
        }
        if cum < cap {
            continue; // cannot reach the cap inside this relation
        }
        if best.as_ref().map(|(n, _, _)| needed < *n).unwrap_or(true) {
            best = Some((needed, atom, order));
        }
    }
    let Some((_, atom, order)) = best else {
        return Ok(Solved::empty());
    };

    let mut steps = Vec::new();
    let (mut removed, mut cost) = (0u64, 0u64);
    for (idx, profit) in order {
        removed += profit;
        cost += 1;
        steps.push(Step {
            tuples: vec![view.to_original(atom, idx)],
            removed_cum: removed,
            cost_cum: cost,
        });
        if removed >= cap {
            break;
        }
    }
    let profile = CostProfile::from_pairs(steps.iter().map(|s| (s.cost_cum, s.removed_cum)));
    Ok(Solved::eager(
        profile,
        Extractor::Steps(steps),
        false,
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use adp_engine::database::Database;
    use adp_engine::join::evaluate;
    use adp_engine::schema::attrs;
    use std::sync::Arc;

    fn chain_db() -> Database {
        let mut db = Database::new();
        db.add_relation("S", attrs(&["NK", "SK"]), &[&[1, 1], &[2, 2]]);
        db.add_relation("PS", attrs(&["SK", "PK"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("L", attrs(&["OK", "PK"]), &[&[7, 1], &[8, 2]]);
        db
    }

    /// Sequential solver options (delta rounds, no pool).
    fn seq_opts() -> AdpOptions {
        AdpOptions {
            sequential: true,
            ..Default::default()
        }
    }

    #[test]
    fn greedy_is_feasible_and_monotone() {
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let view = View::root(q.clone(), Arc::new(chain_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let total = eval.output_count();
        let s = solve_greedy(&view, &eval, total, &seq_opts()).unwrap();
        assert_eq!(s.total_outputs, total);
        assert_eq!(s.max_removable(), total, "greedy can always finish");
        assert!(!s.exact);
        // costs are monotone in m
        let mut last = 0;
        for m in 1..=total {
            let c = s.min_cost(m).unwrap().unwrap();
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn greedy_picks_high_profit_tuples_first() {
        // One S tuple covers 2 witnesses, the other 1. Removing 2 outputs
        // should cost 1 (the high-profit tuple), not 2.
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let view = View::root(q.clone(), Arc::new(chain_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let s = solve_greedy(&view, &eval, 2, &seq_opts()).unwrap();
        assert_eq!(s.min_cost(2).unwrap(), Some(1));
    }

    #[test]
    fn greedy_handles_projection_without_sole_killers() {
        // Q(A) with two witnesses per output disagreeing on every atom:
        // no sole killer initially.
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A", "B"]), &[&[1, 1], &[1, 2]]);
        db.add_relation("S", attrs(&["B"]), &[&[1], &[2]]);
        let q = parse_query("Q(A) :- R(A,B), S(B)").unwrap();
        let view = View::root(q.clone(), Arc::new(db));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let s = solve_greedy(&view, &eval, 1, &seq_opts()).unwrap();
        // output a=1 needs both branches cut: cost 2
        assert_eq!(s.min_cost(1).unwrap(), Some(2));
    }

    #[test]
    fn drastic_stays_in_one_relation() {
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let view = View::root(q.clone(), Arc::new(chain_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let s = solve_drastic(&view, &eval, 3).unwrap();
        let sol = s.extract(3).unwrap();
        let atoms: std::collections::HashSet<usize> = sol.iter().map(|t| t.atom).collect();
        assert_eq!(atoms.len(), 1, "drastic deletes from a single relation");
        assert!(!s.exact);
    }

    #[test]
    fn drastic_matches_greedy_on_disjoint_profits() {
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let view = View::root(q.clone(), Arc::new(chain_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let g = solve_greedy(&view, &eval, 2, &seq_opts()).unwrap();
        let d = solve_drastic(&view, &eval, 2).unwrap();
        assert_eq!(
            g.min_cost(2).unwrap(),
            d.min_cost(2).unwrap(),
            "both remove 2 outputs with 1 supplier tuple"
        );
    }

    #[test]
    #[should_panic(expected = "full CQ")]
    fn drastic_rejects_projections() {
        let q = parse_query("Q(NK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let view = View::root(q.clone(), Arc::new(chain_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let _ = solve_drastic(&view, &eval, 1);
    }

    /// A chain instance large enough to cross
    /// [`PAR_SCORING_MIN_WITNESSES`]: the full 64×64 grid on R2.
    fn grid_db() -> Database {
        let dom = 64u64;
        let mut db = Database::new();
        let r1: Vec<Vec<u64>> = (0..dom).map(|a| vec![a]).collect();
        let r3 = r1.clone();
        let r2: Vec<Vec<u64>> = (0..dom * dom).map(|i| vec![i % dom, i / dom]).collect();
        fn rows(v: &[Vec<u64>]) -> Vec<&[u64]> {
            v.iter().map(|t| t.as_slice()).collect()
        }
        db.add_relation("R1", attrs(&["A"]), &rows(&r1));
        db.add_relation("R2", attrs(&["A", "B"]), &rows(&r2));
        db.add_relation("R3", attrs(&["B"]), &rows(&r3));
        db
    }

    #[test]
    fn parallel_scoring_equals_sequential_maps() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let view = View::root(q.clone(), Arc::new(grid_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let mut prov = ProvenanceIndex::new(&eval);
        assert!(prov.live_witnesses() >= PAR_SCORING_MIN_WITNESSES);
        // Kill a few tuples so the deletion state is non-trivial.
        prov.kill(TupleRef::new(1, 0));
        prov.kill(TupleRef::new(0, 3));
        let pool = ThreadPool::new(4);
        assert_eq!(scored_profits(&prov, Some(&pool)), prov.profits());
        assert_eq!(scored_live_counts(&prov, Some(&pool)), prov.live_counts());
    }

    #[test]
    fn tiny_instances_stay_on_the_sequential_scan() {
        // Below the witness threshold the pooled scorer must not fan out
        // (and trivially matches the sequential maps).
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let view = View::root(q.clone(), Arc::new(chain_db()));
        let eval = evaluate(&view.db, q.atoms(), q.head());
        let prov = ProvenanceIndex::new(&eval);
        assert!(prov.live_witnesses() < PAR_SCORING_MIN_WITNESSES);
        let pool = ThreadPool::new(4);
        assert_eq!(scored_profits(&prov, Some(&pool)), prov.profits());
        assert_eq!(scored_live_counts(&prov, Some(&pool)), prov.live_counts());
    }
}
