//! Incremental re-solve of a prepared statement's greedy state.
//!
//! Every pull-style solve — [`PreparedQuery::solve`], the service text
//! path, the fluent builder — starts from a *pristine* scored
//! [`DeltaProvenance`] template: after an epoch bump the template is
//! rebuilt from a fresh join of the new snapshot, and each greedy run
//! clones it before deleting anything. That is the right contract for
//! one-shot requests, but a subscriber watching a statement across a
//! stream of delete/restore batches pays a full re-join + re-score per
//! epoch for state the delta layer could have maintained in `O(Δ)`.
//!
//! [`IncrementalGreedy`] is the push-side counterpart: one **long-lived**
//! scored delta state, advanced across epochs by
//! [`apply_deletes`](IncrementalGreedy::apply_deletes) /
//! [`apply_restores`](IncrementalGreedy::apply_restores) (which also
//! report the output liveness transitions — the SSP weight rule's
//! 1→0 / 0→1 crossings), and re-solved in place by
//! [`solve`](IncrementalGreedy::solve): greedy rounds run **on** the
//! maintained state and are rolled back afterwards through the delta
//! layer's reversible deletions, so no template clone and no re-join
//! ever happens. Each re-solve costs `O(cost · Δ_round)` — proportional
//! to the picks it makes, not to the instance.
//!
//! ## Equivalence contract
//!
//! A solve on the maintained state is **pick-for-pick identical** to a
//! fresh greedy solve (`force_greedy`, Algorithm 6) of the same query
//! over the residual database `D − S`: live witnesses, profits, and
//! live-counts agree by the delta layer's differential invariants, and
//! the `(score, Reverse((atom, idx)))` total order is preserved because
//! dense re-indexing of a filtered relation keeps the relative order of
//! surviving tuples. Costs and achieved removals are therefore equal,
//! and deletion sets correspond coordinate-wise under the re-indexing
//! map. The `subscription_differential` suite pins this after every
//! random interleaved batch.
//!
//! Boolean queries are out of scope: their fresh path dispatches to the
//! min-cut solver, not the greedy leaf, so a maintained greedy state
//! would diverge from it. Callers gate on
//! [`Query::is_boolean`](crate::query::Query::is_boolean).
//!
//! [`PreparedQuery::solve`]: super::PreparedQuery::solve
//! [`DeltaProvenance`]: adp_engine::delta::DeltaProvenance

use super::prepared::build_delta_provenance;
use crate::analysis::roles::endogenous_atoms;
use crate::query::Query;
use adp_engine::delta::DeltaProvenance;
use adp_engine::error::AdpError;
use adp_engine::join::EvalResult;
use adp_engine::provenance::TupleRef;

/// One greedy solve answered from the maintained state: the same
/// numbers a fresh `force_greedy` [`AdpOutcome`](super::AdpOutcome)
/// would report for the residual database, with the deletion set in the
/// *maintained* (base) coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncrementalSolve {
    /// Tuples deleted by the greedy rounds (`= deletions.len()`).
    pub cost: u64,
    /// Outputs the deletion set removes (≥ the requested `k`, except
    /// when the candidate pool ran dry first).
    pub achieved: u64,
    /// The deletion set, sorted by `(atom, index)` — the order
    /// `AdpOutcome::solution` reports.
    pub deletions: Vec<TupleRef>,
}

/// A long-lived greedy solver state over one query evaluation: scored
/// delta provenance plus the endogenous candidate mask, advanced across
/// epochs instead of rebuilt per solve. See the module docs.
#[derive(Clone, Debug)]
pub struct IncrementalGreedy {
    delta: DeltaProvenance,
}

impl IncrementalGreedy {
    /// Builds the maintained state over `eval` (the query's root
    /// evaluation): one scored [`DeltaProvenance`] with candidate
    /// selection enabled on the query's endogenous atoms — exactly the
    /// state a fresh greedy solve would derive, kept alive. `parallel`
    /// lets the one-time scoring pass fan out over the global
    /// [`adp_runtime`] pool; the installed scores are equal either way.
    pub fn new(query: &Query, eval: &EvalResult, parallel: bool) -> Result<Self, AdpError> {
        let mut delta = build_delta_provenance(eval, parallel)?;
        delta.enable_selection(endogenous_atoms(query));
        Ok(IncrementalGreedy { delta })
    }

    /// `|Q(D − S)|` for the current maintained deletion state.
    pub fn live_outputs(&self) -> u64 {
        self.delta.live_outputs()
    }

    /// `|Q(D)|` before any deletion.
    pub fn total_outputs(&self) -> u64 {
        self.delta.total_outputs()
    }

    /// Is the tuple currently deleted in the maintained state?
    pub fn is_deleted(&self, t: TupleRef) -> bool {
        self.delta.is_deleted(t)
    }

    /// Advances the state through a deletion batch, returning the ids
    /// of the outputs that died (their last live witness went away) —
    /// sorted, each at most once. `O(Δ)` in the affected witnesses.
    pub fn apply_deletes(&mut self, batch: &[TupleRef]) -> Vec<u32> {
        self.delta.delete_batch_transitions(batch)
    }

    /// Advances the state through a restore batch, returning the ids of
    /// the outputs that revived — the mirror of
    /// [`apply_deletes`](Self::apply_deletes).
    pub fn apply_restores(&mut self, batch: &[TupleRef]) -> Vec<u32> {
        self.delta.restore_batch_transitions(batch)
    }

    /// Greedy-solves `ADP(Q, D − S, k)` **on** the maintained state and
    /// rolls the picks back, leaving the state exactly as it was: the
    /// delta layer's refcounted deletions are symmetric, so a
    /// delete-then-restore round trip is an identity on every maintained
    /// map (pinned by the engine's `restore_round_trips_to_initial_state`
    /// test). `k` is clamped to the live output count; `k = 0` (or a
    /// dead view) answers trivially with the empty set.
    pub fn solve(&mut self, k: u64) -> IncrementalSolve {
        let cap = k.min(self.delta.live_outputs());
        let mut picked: Vec<TupleRef> = Vec::new();
        let mut removed = 0u64;
        while removed < cap && self.delta.live_outputs() > 0 {
            // Best sole killer, else the tuple on the most live
            // witnesses — the same candidate order as `delta_rounds`.
            let pick = self
                .delta
                .best_profit_candidate()
                .or_else(|| self.delta.best_count_candidate());
            let Some((_, atom, idx)) = pick else {
                break; // no deletable candidate remains
            };
            let t = TupleRef::new(atom, idx);
            removed += self.delta.delete(t);
            picked.push(t);
        }
        let cost = picked.len() as u64;
        self.delta.restore_batch(&picked);
        picked.sort_unstable();
        IncrementalSolve {
            cost,
            achieved: removed,
            deletions: picked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use crate::solver::{AdpOptions, PreparedQuery};
    use adp_engine::database::Database;
    use adp_engine::schema::attrs;
    use std::sync::Arc;

    fn chain_db() -> Database {
        let mut db = Database::new();
        db.add_relation("S", attrs(&["NK", "SK"]), &[&[1, 1], &[2, 2]]);
        db.add_relation(
            "PS",
            attrs(&["SK", "PK"]),
            &[&[1, 1], &[1, 2], &[2, 1], &[2, 3]],
        );
        db.add_relation("L", attrs(&["OK", "PK"]), &[&[7, 1], &[8, 2], &[9, 3]]);
        db
    }

    const Q: &str = "Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)";

    fn greedy_opts() -> AdpOptions {
        AdpOptions {
            force_greedy: true,
            sequential: true,
            ..Default::default()
        }
    }

    /// Fresh greedy solve of the residual database `base − deleted`,
    /// with the solution mapped back to base coordinates through the
    /// dense re-indexing (filtering preserves relative order).
    fn fresh_residual_solve(
        query_text: &str,
        base: &Database,
        deleted: &[TupleRef],
        k: u64,
    ) -> (u64, u64, Vec<TupleRef>) {
        let q = parse_query(query_text).unwrap();
        let mut db = Database::new();
        let mut back: Vec<Vec<u32>> = Vec::new();
        for (slot, rel) in base.relations().iter().enumerate() {
            // Atom index == relation slot for these self-join-free
            // fixtures, so a TupleRef's atom names the slot directly.
            let dead: Vec<u32> = deleted
                .iter()
                .filter(|t| t.atom == slot)
                .map(|t| t.index)
                .collect();
            let (filtered, map) = rel.filter_by_index(|i| !dead.contains(&i));
            db.add(filtered);
            back.push(map);
        }
        let prep = PreparedQuery::new(q, Arc::new(db));
        let out = prep.solve(k, &greedy_opts()).unwrap();
        let mut solution: Vec<TupleRef> = out
            .solution
            .unwrap()
            .into_iter()
            .map(|t| TupleRef::new(t.atom, back[t.atom][t.index as usize]))
            .collect();
        solution.sort_unstable();
        (out.cost, out.achieved, solution)
    }

    #[test]
    fn maintained_solve_matches_fresh_greedy_at_every_epoch() {
        let base = chain_db();
        let q = parse_query(Q).unwrap();
        let prep = PreparedQuery::new(q.clone(), Arc::new(base.clone()));
        let mut inc = IncrementalGreedy::new(&q, &prep.eval(), false).unwrap();

        // A little stream: delete two tuples, then restore one.
        let stream: &[(&[TupleRef], bool)] = &[
            (&[TupleRef::new(1, 0)], true),
            (&[TupleRef::new(2, 2), TupleRef::new(0, 0)], true),
            (&[TupleRef::new(1, 0)], false),
        ];
        let mut deleted: Vec<TupleRef> = Vec::new();
        for &(batch, delete) in stream {
            if delete {
                inc.apply_deletes(batch);
                deleted.extend_from_slice(batch);
            } else {
                inc.apply_restores(batch);
                deleted.retain(|t| !batch.contains(t));
            }
            for k in 1..=inc.live_outputs() {
                let got = inc.solve(k);
                let (cost, achieved, solution) = fresh_residual_solve(Q, &base, &deleted, k);
                assert_eq!(got.cost, cost, "cost diverged at k={k}");
                assert_eq!(got.achieved, achieved, "achieved diverged at k={k}");
                assert_eq!(got.deletions, solution, "deletion set diverged at k={k}");
            }
        }
    }

    #[test]
    fn solve_rolls_back_to_the_exact_pre_solve_state() {
        let base = chain_db();
        let q = parse_query(Q).unwrap();
        let prep = PreparedQuery::new(q.clone(), Arc::new(base));
        let mut inc = IncrementalGreedy::new(&q, &prep.eval(), false).unwrap();
        inc.apply_deletes(&[TupleRef::new(1, 1)]);
        let live_before = inc.live_outputs();
        let first = inc.solve(3);
        assert!(first.cost > 0);
        assert_eq!(inc.live_outputs(), live_before, "solve must not consume");
        assert!(!inc.is_deleted(first.deletions[0]));
        // Determinism: the same solve again answers identically.
        assert_eq!(inc.solve(3), first);
    }

    #[test]
    fn transitions_report_liveness_flips_and_k_clamps() {
        let base = chain_db();
        let q = parse_query(Q).unwrap();
        let prep = PreparedQuery::new(q.clone(), Arc::new(base));
        let mut inc = IncrementalGreedy::new(&q, &prep.eval(), false).unwrap();
        let total = inc.total_outputs();
        assert_eq!(inc.live_outputs(), total);
        // Full CQ: every witness is an output, so killing one S tuple
        // loses exactly its witnesses.
        let lost = inc.apply_deletes(&[TupleRef::new(0, 0)]);
        assert_eq!(lost.len() as u64, total - inc.live_outputs());
        let gained = inc.apply_restores(&[TupleRef::new(0, 0)]);
        assert_eq!(gained, lost);
        // k beyond the live count clamps to full deletion; k = 0 is
        // trivially the empty set.
        let full = inc.solve(total + 100);
        assert_eq!(full.achieved, total);
        let nothing = inc.solve(0);
        assert_eq!((nothing.cost, nothing.achieved), (0, 0));
        assert!(nothing.deletions.is_empty());
    }
}
