//! `ComputeADP` (paper §7, Algorithm 2): the unified poly-time algorithm.
//!
//! The solver recursively dispatches on the query shape, in the paper's
//! order:
//!
//! 1. **Boolean** query → resilience via linearization + min-cut (§7.1);
//! 2. **Singleton** query → sort-based direct algorithm (§7.2, Alg. 3);
//! 3. **Universal attribute** present → partition + DP (§7.3, Alg. 4);
//! 4. **Disconnected** query → per-component solve + cross-product DP
//!    (§7.3, Alg. 5);
//! 5. otherwise → greedy heuristics (§7.4, Alg. 6/7) — the query is
//!    NP-hard here (Lemma 4), so the result is marked inexact.
//!
//! For poly-time queries the result is optimal; for NP-hard queries it is
//! a feasible heuristic solution, exactly as in the paper.

pub mod boolean;
pub mod brute;
pub mod decompose;
pub mod fluent;
pub mod greedy;
pub mod incremental;
pub mod policy;
pub mod prepared;
pub mod profile;
pub mod singleton;
pub mod solved;
pub mod universe;
pub mod verify;
pub mod view;

use crate::analysis::roles::singleton_atom;
use crate::error::SolveError;
use crate::query::Query;
use adp_engine::database::Database;
use adp_engine::provenance::TupleRef;
use std::sync::Arc;

#[allow(deprecated)]
pub use self::compute_resilience as resilience;
pub use fluent::{Branch, Explain, Report, Solve};
pub use incremental::{IncrementalGreedy, IncrementalSolve};
#[allow(deprecated)]
pub use policy::compute_adp_with_policy;
pub use policy::DeletionPolicy;
pub use prepared::{PlannedEval, PreparedQuery};
pub use profile::{CostProfile, ProfilePoint};
pub use solved::Solved;
pub use verify::{apply_deletions, removed_outputs};
pub use view::View;

/// Counting vs. reporting (paper §8, "Reporting vs. counting versions").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Only compute the minimum number of deletions.
    Count,
    /// Also materialize the deletion set (needs DP choice tables).
    Report,
}

/// Strategy for combining connected components (§7.3 and Figure 29).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecomposeStrategy {
    /// Dense improved DP when it fits, lazy sparse combination otherwise.
    Auto,
    /// Ablation: enumerate all `(k1..ks)` vectors at once ("full
    /// partitions" in Figure 29). Exponential in the component count.
    NaiveFull,
    /// Ablation: fold components two at a time with a dense double loop
    /// ("two partitions" in Figure 29).
    NaivePairs,
    /// Force the dense improved DP.
    ImprovedDp,
}

/// Strategy for handling universal attributes (§7.3 and Figure 28).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UniverseStrategy {
    /// Remove all universal attributes as one combined attribute.
    Combined,
    /// Ablation: remove universal attributes one at a time.
    OneByOne,
}

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct AdpOptions {
    /// Counting or reporting.
    pub mode: Mode,
    /// Component-combination strategy.
    pub decompose: DecomposeStrategy,
    /// Universal-attribute strategy.
    pub universe: UniverseStrategy,
    /// Ablation: skip the Singleton base case (forces the Universe path
    /// on singleton queries, as in Figure 28's unoptimized variants).
    pub skip_singleton: bool,
    /// Benchmark hook: jump straight to the greedy leaf (Algorithm 2
    /// line 5) even on poly-time queries, as the paper does when
    /// measuring `Greedy`/`Drastic` on easy instances (§8.2, Figure 8).
    pub force_greedy: bool,
    /// Use `DrasticGreedyForFullCQ` instead of `GreedyForCQ` at NP-hard
    /// leaves when the leaf query is a full CQ (Algorithm 7).
    pub use_drastic: bool,
    /// Maximum number of dense DP cells before giving up with
    /// [`SolveError::BudgetExceeded`].
    pub dense_limit: u64,
    /// Maximum cross-product profile points when materializing lazy
    /// decompositions.
    pub pair_points_limit: u64,
    /// Force the single-threaded code paths even when the global
    /// [`adp_runtime`] pool has multiple workers. Parallel and
    /// sequential runs return **byte-identical** results (the
    /// differential tests enforce it); this switch exists for those
    /// tests and for apples-to-apples benchmarking, not for
    /// correctness.
    pub sequential: bool,
    /// Opt out of the incremental delta maintenance layer
    /// ([`adp_engine::delta`]) and pay a full scoring rescan per greedy
    /// round instead — the pre-delta code path, kept as the
    /// differential oracle. Delta and full-re-evaluation runs return
    /// **byte-identical** results (enforced by the `delta_differential`
    /// proptest suite and the `greedy_rounds_{masked,delta}` bench
    /// pair); this switch exists for those checks and for
    /// benchmarking, not for correctness.
    pub full_reeval: bool,
    /// Wall-clock budget for the greedy rounds (the only open-ended
    /// loop in the solver): once the instant passes, the current
    /// best-so-far deletion set is returned with
    /// [`AdpOutcome::truncated`] set instead of running to the target.
    /// The first round always runs, so a truncated answer still makes
    /// progress whenever anything is removable. Exact (poly-time) paths
    /// and the single-pass drastic heuristic ignore the deadline.
    /// `None` (the default) never truncates.
    ///
    /// Note that where a deadline fires depends on wall-clock speed, so
    /// truncated results are **not** byte-identical across the
    /// delta/full-re-evaluation or sequential/parallel variants — this
    /// knob is for serving-layer latency bounds, not for the
    /// differential suites.
    pub deadline: Option<std::time::Instant>,
}

impl Default for AdpOptions {
    fn default() -> Self {
        AdpOptions {
            mode: Mode::Report,
            decompose: DecomposeStrategy::Auto,
            universe: UniverseStrategy::Combined,
            skip_singleton: false,
            force_greedy: false,
            use_drastic: false,
            dense_limit: 16_000_000,
            pair_points_limit: 4_000_000,
            sequential: false,
            full_reeval: false,
            deadline: None,
        }
    }
}

impl AdpOptions {
    /// Counting-only configuration.
    pub fn counting() -> Self {
        AdpOptions {
            mode: Mode::Count,
            ..Default::default()
        }
    }
}

/// Result of an ADP computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdpOutcome {
    /// Minimum number of input tuples to delete (heuristic upper bound on
    /// NP-hard queries).
    pub cost: u64,
    /// Outputs actually removed by the chosen deletion set (≥ k).
    pub achieved: u64,
    /// True if the answer is provably optimal (poly-time query shape).
    pub exact: bool,
    /// True if a wall-clock deadline ([`AdpOptions::deadline`]) expired
    /// somewhere during solving: the answer is budget-limited, not a
    /// finished run. At a greedy leaf this means `cost`/`achieved`/
    /// `solution` are the best-so-far deletion set with
    /// `achieved < k`; in combined shapes (e.g. a multi-component
    /// boolean query) the reported set may reach the target while a
    /// truncated sibling component — possibly cheaper — went
    /// unexplored, so the flag stays visible either way (and `exact` is
    /// false).
    pub truncated: bool,
    /// `|Q(D)|`.
    pub output_count: u64,
    /// The deletion set in original-database coordinates (report mode).
    pub solution: Option<Vec<TupleRef>>,
}

/// Solves `ADP(Q, D, k)`: remove at least `k` output tuples from `Q(D)`
/// by deleting the fewest input tuples (Definition 1).
#[deprecated(
    since = "0.3.0",
    note = "use the fluent v2 API: `Solve::new(query, db).k(k).run()` \
            (byte-identical; the report adds an explain trace)"
)]
pub fn compute_adp(
    query: &Query,
    db: &Database,
    k: u64,
    opts: &AdpOptions,
) -> Result<AdpOutcome, SolveError> {
    PreparedQuery::new(query.clone(), Arc::new(db.clone())).solve(k, opts)
}

/// [`compute_adp`] without cloning the database (shared ownership; the
/// `Arc` makes the instance shareable with [`adp_runtime`] workers).
///
/// One-shot convenience over [`PreparedQuery`]: callers solving the same
/// `(Q, D)` pair for several `k` values or option sets should hold a
/// `PreparedQuery` so the plan, indexes, and root evaluation are reused.
#[deprecated(
    since = "0.3.0",
    note = "use the fluent v2 API: `Solve::shared(query, db).k(k).run()` \
            (byte-identical; the report adds an explain trace)"
)]
pub fn compute_adp_arc(
    query: &Query,
    db: Arc<Database>,
    k: u64,
    opts: &AdpOptions,
) -> Result<AdpOutcome, SolveError> {
    PreparedQuery::new(query.clone(), db).solve(k, opts)
}

/// Shared implementation behind [`PreparedQuery::solve`] and
/// [`compute_adp_arc`].
pub(crate) fn solve_prepared(
    prep: &PreparedQuery,
    k: u64,
    opts: &AdpOptions,
) -> Result<AdpOutcome, SolveError> {
    if k == 0 {
        return Err(SolveError::KZero);
    }
    let view = prep.root_view();
    let solved = solve(&view, k, opts)?;
    if solved.total_outputs == 0 {
        // Degenerate instance: the query is unsatisfiable (empty join or
        // empty relation), so there is nothing to remove — the empty
        // deletion set at cost 0 is the (vacuously optimal) answer.
        return Ok(AdpOutcome {
            cost: 0,
            achieved: 0,
            exact: true,
            truncated: false,
            output_count: 0,
            solution: (opts.mode == Mode::Report).then(Vec::new),
        });
    }
    if k > solved.total_outputs {
        return Err(SolveError::KTooLarge {
            k,
            available: solved.total_outputs,
        });
    }
    let Some(cost) = solved.min_cost(k)? else {
        if solved.truncated {
            // The deadline expired before the greedy rounds reached k:
            // answer with the best-so-far deletion set instead of an
            // error (paper-style anytime behavior for serving layers).
            return truncated_outcome(&solved, opts);
        }
        // The profile stops short of k (possible when a policy or an
        // exhausted candidate pool truncated a heuristic profile);
        // surface it instead of panicking.
        return Err(SolveError::Infeasible {
            k,
            removable: solved.max_removable(),
        });
    };
    let solution = match opts.mode {
        Mode::Report => Some({
            let mut s = solved.extract(k)?;
            s.sort_unstable();
            s.dedup();
            s
        }),
        Mode::Count => None,
    };
    // `achieved` is the removal at the chosen profile point.
    let achieved = best_achieved(&solved, k, cost)?;
    Ok(AdpOutcome {
        cost,
        achieved,
        exact: solved.exact,
        truncated: solved.truncated,
        output_count: solved.total_outputs,
        solution,
    })
}

/// Builds the best-so-far [`AdpOutcome`] for a deadline-truncated
/// [`Solved`] whose profile stopped short of the requested target:
/// everything the expired greedy rounds managed to remove, at the cost
/// they paid. Shared by the prepared, policy, and selection front ends
/// so truncation semantics cannot drift between them.
pub(crate) fn truncated_outcome(
    solved: &Solved,
    opts: &AdpOptions,
) -> Result<AdpOutcome, SolveError> {
    debug_assert!(solved.truncated);
    let achieved = solved.max_removable();
    let cost = solved.min_cost(achieved)?.unwrap_or(0);
    let solution = match opts.mode {
        Mode::Report => Some({
            let mut s = solved.extract(achieved)?;
            s.sort_unstable();
            s.dedup();
            s
        }),
        Mode::Count => None,
    };
    Ok(AdpOutcome {
        cost,
        achieved,
        exact: false,
        truncated: true,
        output_count: solved.total_outputs,
        solution,
    })
}

fn best_achieved(solved: &Solved, k: u64, _cost: u64) -> Result<u64, SolveError> {
    // The point chosen by min_cost(k) removes at least k.
    Ok(match &solved.repr {
        solved::Repr::Eager { profile, .. } => profile
            .points()
            .iter()
            .find(|p| p.removed >= k)
            .map(|p| p.removed)
            .unwrap_or(k),
        solved::Repr::Pair(_) => k,
    })
}

/// `|Q(D)|` for a view, decomposing by connected components so that
/// cross products are counted, never materialized.
pub(crate) fn count_outputs(view: &View) -> u64 {
    let comps = view.query.connected_components();
    if comps.len() == 1 {
        return view.eval().output_count();
    }
    let mut total: u128 = 1;
    for comp in comps {
        let sub = view.subview(&comp);
        total = total.saturating_mul(count_outputs(&sub) as u128);
        if total == 0 {
            return 0;
        }
    }
    u64::try_from(total).unwrap_or(u64::MAX)
}

/// Convenience wrapper for the **resilience** problem (Freire et al.,
/// used by the paper as the `k = |Q(D)|` / boolean special case): the
/// minimum number of deletions making `Q(D)` empty. Exact for triad-free
/// boolean shapes and all poly-time queries; a heuristic upper bound
/// otherwise. Returns `None` when `Q(D)` is already empty.
#[deprecated(
    since = "0.3.0",
    note = "use the fluent v2 API: `Solve::new(query, db).resilience().run()` \
            (byte-identical on non-empty results; an empty result is a \
            trivial zero-cost report instead of `None`)"
)]
pub fn compute_resilience(
    query: &Query,
    db: &Database,
    opts: &AdpOptions,
) -> Result<Option<AdpOutcome>, SolveError> {
    let prep = PreparedQuery::new(query.clone(), Arc::new(db.clone()));
    let total = prep.output_count();
    if total == 0 {
        return Ok(None);
    }
    prep.solve(total, opts).map(Some)
}

/// The recursive dispatcher (Algorithm 2). `cap` bounds how many output
/// removals the caller will ever request from this subinstance.
pub(crate) fn solve(view: &View, cap: u64, opts: &AdpOptions) -> Result<Solved, SolveError> {
    let q = &view.query;

    // Line 1: boolean base case.
    if q.is_boolean() {
        return boolean::solve_boolean(view, opts);
    }

    // Benchmark hook (§8.2): measure the heuristics on easy queries.
    if opts.force_greedy {
        let eval = view.eval();
        if eval.output_count() == 0 {
            return Ok(Solved::empty());
        }
        return if opts.use_drastic && q.is_full() {
            greedy::solve_drastic(view, &eval, cap)
        } else {
            greedy::solve_greedy(view, &eval, cap, opts)
        };
    }

    // Line 2: singleton base case.
    if !opts.skip_singleton {
        if let Some(i) = singleton_atom(q) {
            return singleton::solve_singleton(view, i, cap);
        }
    }

    // Line 3: universal attributes.
    if !q.universal_attrs().is_empty() {
        return universe::solve_universe(view, cap, opts);
    }

    // Line 4: disconnected query.
    if q.connected_components().len() > 1 {
        return decompose::solve_decompose(view, cap, opts);
    }

    // Line 5: NP-hard leaf — greedy heuristics over the materialized join.
    let eval = view.eval();
    if eval.output_count() == 0 {
        return Ok(Solved::empty());
    }
    if opts.use_drastic && q.is_full() {
        greedy::solve_drastic(view, &eval, cap)
    } else {
        greedy::solve_greedy(view, &eval, cap, opts)
    }
}

#[cfg(test)]
// The tests deliberately pin the legacy v1 entry points (the fluent v2
// API is differentially tested against them in `fluent` and in
// `tests/api_v2_differential.rs`).
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::analysis::is_ptime;
    use crate::query::parse_query;
    use crate::solver::brute::{brute_force, BruteForceOptions};
    use adp_engine::schema::attrs;

    /// Figure 1 database.
    fn figure1() -> Database {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[2, 2], &[3, 3]]);
        db.add_relation(
            "R2",
            attrs(&["B", "C"]),
            &[&[1, 1], &[2, 2], &[2, 3], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1], &[2, 3], &[3, 3]]);
        db
    }

    #[test]
    fn paper_running_example_adp_q1_k2() {
        // §3.2: ADP(Q1, D, 2) returns the single tuple R3(c3, e3).
        let q = parse_query("Q1(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)").unwrap();
        let db = figure1();
        let out = compute_adp(&q, &db, 2, &AdpOptions::default()).unwrap();
        assert_eq!(out.output_count, 4);
        assert_eq!(out.cost, 1, "a single tuple removes two outputs");
        let sol = out.solution.unwrap();
        assert_eq!(sol.len(), 1);
        // R3(c3,e3) is the paper's answer; R1(a2,b2) is equally optimal.
        assert!(verify::removed_outputs(&q, &db, &sol) >= 2);
    }

    #[test]
    fn k_equals_output_count_is_resilience_like() {
        let q = parse_query("Q1(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)").unwrap();
        let db = figure1();
        let out = compute_adp(&q, &db, 4, &AdpOptions::default()).unwrap();
        let sol = out.solution.unwrap();
        assert_eq!(verify::removed_outputs(&q, &db, &sol), 4);
        assert_eq!(sol.len() as u64, out.cost);
    }

    #[test]
    fn resilience_wrapper() {
        // boolean chain: resilience = min cut = 1 here
        let q = parse_query("Q() :- R1(A), R2(A,B), R3(B)").unwrap();
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1]]);
        db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 1], &[1, 2]]);
        db.add_relation("R3", attrs(&["B"]), &[&[1], &[2]]);
        let out = compute_resilience(&q, &db, &AdpOptions::default())
            .unwrap()
            .unwrap();
        assert_eq!(out.cost, 1);
        assert!(out.exact);
        // empty result => None
        let q2 = parse_query("Q() :- R1(A), R4(A)").unwrap();
        let mut db2 = Database::new();
        db2.add_relation("R1", attrs(&["A"]), &[&[1]]);
        db2.add_relation("R4", attrs(&["A"]), &[&[2]]);
        assert!(compute_resilience(&q2, &db2, &AdpOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn k_bounds() {
        let q = parse_query("Q(A) :- R(A)").unwrap();
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1]]);
        assert!(matches!(
            compute_adp(&q, &db, 0, &AdpOptions::default()),
            Err(SolveError::KZero)
        ));
        assert!(matches!(
            compute_adp(&q, &db, 2, &AdpOptions::default()),
            Err(SolveError::KTooLarge { .. })
        ));
    }

    /// Regression (degenerate instances): an unsatisfiable query used to
    /// bubble up as `KTooLarge` (and crashed the bench harness, whose
    /// `k_for_ratio` clamp always requests k ≥ 1). Zero-output instances
    /// must instead return the empty deletion set at cost 0 — there is
    /// nothing to remove.
    #[test]
    fn unsatisfiable_query_returns_empty_solution_at_cost_zero() {
        // Non-empty relations whose join is empty.
        let q = parse_query("Q(A) :- R(A), S(A)").unwrap();
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("S", attrs(&["A"]), &[&[7], &[8]]);
        for opts in [
            AdpOptions::default(),
            AdpOptions::counting(),
            AdpOptions {
                force_greedy: true,
                ..Default::default()
            },
        ] {
            let out = compute_adp(&q, &db, 3, &opts).unwrap();
            assert_eq!(out.cost, 0);
            assert_eq!(out.achieved, 0);
            assert_eq!(out.output_count, 0);
            assert!(out.exact);
            match opts.mode {
                Mode::Report => assert_eq!(out.solution.as_deref(), Some(&[][..])),
                Mode::Count => assert!(out.solution.is_none()),
            }
        }
    }

    /// Regression (degenerate instances): same contract when a body
    /// relation is entirely empty, across the solver shapes that used to
    /// reach `ProvenanceIndex`/profile code on zero-witness evaluations.
    #[test]
    fn empty_relation_returns_empty_solution_at_cost_zero() {
        for text in [
            "Q(A,B) :- R(A), S(A,B)",           // singleton
            "Q(A,B) :- R(A), S(B)",             // decompose
            "Q() :- R(A), S(A,B)",              // boolean
            "Q(A,B,C) :- R(A), S(A,B), T(B,C)", // hard leaf
        ] {
            let q = parse_query(text).unwrap();
            let mut db = Database::new();
            for atom in q.atoms() {
                let mut inst = adp_engine::relation::RelationInstance::new(atom.clone());
                if atom.name() != "S" {
                    inst.insert(&vec![1; atom.arity()]);
                }
                db.add(inst); // S stays empty
            }
            let out = compute_adp(&q, &db, 1, &AdpOptions::default())
                .unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(out.cost, 0, "{text}");
            assert_eq!(out.solution.as_deref(), Some(&[][..]), "{text}");
            let greedy = compute_adp(
                &q,
                &db,
                2,
                &AdpOptions {
                    force_greedy: true,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("{text} (greedy): {e}"));
            assert_eq!(greedy.cost, 0, "{text} (greedy)");
        }
    }

    /// Satellite (deadline edge case): a budget that expires mid-greedy
    /// returns the best-so-far deletion set with the truncation flag,
    /// never an `Infeasible` error — and the first round always runs, so
    /// a truncated answer still removes something when possible.
    #[test]
    fn expired_deadline_truncates_greedy_with_best_so_far() {
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let mut db = Database::new();
        db.add_relation("S", attrs(&["NK", "SK"]), &[&[1, 1], &[2, 2]]);
        db.add_relation("PS", attrs(&["SK", "PK"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("L", attrs(&["OK", "PK"]), &[&[7, 1], &[8, 2]]);
        let total = 3;
        for full_reeval in [false, true] {
            let opts = AdpOptions {
                force_greedy: true,
                full_reeval,
                // Already in the past by the time the loop checks it.
                deadline: Some(std::time::Instant::now()),
                ..Default::default()
            };
            let out = compute_adp(&q, &db, total, &opts).unwrap();
            assert!(out.truncated, "full_reeval={full_reeval}");
            assert!(!out.exact);
            assert_eq!(out.output_count, total);
            assert!(
                out.achieved >= 1 && out.achieved < total,
                "one round must run, but not all: achieved={} (full_reeval={full_reeval})",
                out.achieved
            );
            let sol = out.solution.unwrap();
            assert_eq!(sol.len() as u64, out.cost);
            assert_eq!(
                verify::removed_outputs(&q, &db, &sol),
                out.achieved,
                "best-so-far set must actually remove `achieved` outputs"
            );
        }
    }

    /// A deadline far in the future never truncates and returns exactly
    /// the unbudgeted result.
    #[test]
    fn distant_deadline_is_a_no_op() {
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let mut db = Database::new();
        db.add_relation("S", attrs(&["NK", "SK"]), &[&[1, 1], &[2, 2]]);
        db.add_relation("PS", attrs(&["SK", "PK"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("L", attrs(&["OK", "PK"]), &[&[7, 1], &[8, 2]]);
        let base = AdpOptions {
            force_greedy: true,
            ..Default::default()
        };
        let with_deadline = AdpOptions {
            deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(3600)),
            ..base.clone()
        };
        let a = compute_adp(&q, &db, 3, &base).unwrap();
        let b = compute_adp(&q, &db, 3, &with_deadline).unwrap();
        assert!(!b.truncated);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.achieved, b.achieved);
        assert_eq!(a.solution, b.solution);
    }

    #[test]
    fn counting_mode_skips_solutions() {
        let q = parse_query("Q(A) :- R(A)").unwrap();
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        let out = compute_adp(&q, &db, 1, &AdpOptions::counting()).unwrap();
        assert_eq!(out.cost, 1);
        assert!(out.solution.is_none());
    }

    /// A tiny deterministic instance generator: values in [0, dom).
    fn random_db(q: &Query, sizes: &[usize], dom: u64, seed: &mut u64) -> Database {
        let mut next = move || {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*seed >> 33) % dom
        };
        let mut db = Database::new();
        for (atom, &n) in q.atoms().iter().zip(sizes) {
            let mut inst = adp_engine::relation::RelationInstance::new(atom.clone());
            for _ in 0..n {
                let t: Vec<u64> = (0..atom.arity()).map(|_| next()).collect();
                inst.insert(&t);
            }
            db.add(inst);
        }
        db
    }

    /// Differential test: on poly-time queries `compute_adp` must equal
    /// the brute-force optimum for every feasible k; on NP-hard queries
    /// it must be feasible and ≥ the optimum.
    #[test]
    fn matches_brute_force_on_random_instances() {
        let catalogue = [
            // easy queries exercising each exact path
            "Q(A,B) :- R1(A), R2(A,B)",         // singleton case 1
            "Q(A) :- R1(A,B), R2(A,B,C)",       // singleton case 2
            "Q(A,B) :- R1(A,B), R2(A,B)",       // universe → boolean
            "Q(A,B) :- R1(A), R2(B)",           // decompose
            "Q() :- R1(A), R2(A,B), R3(B)",     // boolean min-cut
            "Q() :- R1(A,B), R2(B,C), R3(C,E)", // boolean chain
            "Q(A) :- R1(A,B), R2(A,B)",         // universal + boolean chain
            "Q(A1,B1,A2) :- R11(A1), R12(A1,B1), R21(A2)", // mixed decompose
            // hard queries (heuristic: feasibility + upper bound only)
            "Q(A,B) :- R1(A), R2(A,B), R3(B)",
            "Q(A) :- R2(A,B), R3(B)",
            "Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)",
        ];
        let mut seed = 42u64;
        for text in catalogue {
            let q = parse_query(text).unwrap();
            let ptime = is_ptime(&q);
            for trial in 0..3 {
                let sizes = vec![3 + trial; q.atom_count()];
                let db = random_db(&q, &sizes, 3, &mut seed);
                let total = count_outputs(&View::root(q.clone(), Arc::new(db.clone())));
                if total == 0 {
                    continue;
                }
                for k in 1..=total.min(6) {
                    let out = compute_adp(&q, &db, k, &AdpOptions::default())
                        .unwrap_or_else(|e| panic!("{text} k={k}: {e}"));
                    let sol = out.solution.clone().unwrap();
                    let removed = verify::removed_outputs(&q, &db, &sol);
                    assert!(removed >= k, "{text} k={k}: infeasible solution");
                    assert!(
                        sol.len() as u64 <= out.cost,
                        "{text} k={k}: solution larger than reported cost"
                    );
                    let (opt, _) = brute_force(&q, &db, k, &BruteForceOptions::default()).unwrap();
                    if ptime {
                        assert!(out.exact, "{text} k={k} should be exact");
                        assert_eq!(out.cost, opt, "{text} k={k}: not optimal");
                    } else {
                        assert!(out.cost >= opt, "{text} k={k}: beat the optimum?!");
                    }
                }
            }
        }
    }
}
