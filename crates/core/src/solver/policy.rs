//! Deletion policies: restricting which relations may lose tuples.
//!
//! The paper's future-work section (§9) proposes "a scenario where only a
//! subset of input tuples can be removed, and the remaining input tuples
//! cannot be deleted". This module implements the relation-granularity
//! version of that extension:
//!
//! * frozen relations behave like exogenous atoms — the boolean min-cut
//!   assigns their tuples infinite capacity (exact), and the greedy
//!   heuristics never pick them;
//! * non-boolean queries under a policy are solved with the greedy
//!   heuristic (the dichotomy of the unrestricted problem does not carry
//!   over, so exactness is not claimed);
//! * infeasibility (the removable outputs fall short of `k`) is reported
//!   as [`SolveError::Infeasible`].

use super::greedy::solve_greedy_filtered;
use super::view::View;
use super::{boolean, AdpOptions, AdpOutcome, Mode};
use crate::error::SolveError;
use crate::query::Query;
use adp_engine::database::Database;
use std::sync::Arc;

/// A deletion policy: which relations are **frozen** (undeletable).
#[derive(Clone, Debug, Default)]
pub struct DeletionPolicy {
    frozen: Vec<String>,
}

impl DeletionPolicy {
    /// No restrictions.
    pub fn unrestricted() -> Self {
        Self::default()
    }

    /// Freezes a relation: its tuples can never be deleted.
    pub fn freeze(mut self, relation: &str) -> Self {
        if !self.frozen.iter().any(|r| r == relation) {
            self.frozen.push(relation.to_owned());
        }
        self
    }

    /// Is the relation frozen?
    pub fn is_frozen(&self, relation: &str) -> bool {
        self.frozen.iter().any(|r| r == relation)
    }

    /// The frozen relation names.
    pub fn frozen(&self) -> &[String] {
        &self.frozen
    }

    /// Per-atom deletability mask for a query (true = deletable).
    pub fn deletable_atoms(&self, query: &Query) -> Vec<bool> {
        query
            .atoms()
            .iter()
            .map(|a| !self.is_frozen(a.name()))
            .collect()
    }
}

/// Solves `ADP(Q, D, k)` under a deletion policy. Boolean queries are
/// solved exactly (min-cut with infinite capacities on frozen atoms);
/// non-boolean queries use the policy-aware greedy heuristic.
#[deprecated(
    since = "0.3.0",
    note = "use the fluent v2 API: `Solve::new(query, db).k(k).policy(policy).run()` \
            (byte-identical; the report adds an explain trace)"
)]
pub fn compute_adp_with_policy(
    query: &Query,
    db: &Database,
    k: u64,
    policy: &DeletionPolicy,
    opts: &AdpOptions,
) -> Result<AdpOutcome, SolveError> {
    compute_with_policy_impl(query, db, k, policy, opts)
}

/// Shared implementation behind [`compute_adp_with_policy`] and the
/// fluent [`Solve::policy`](super::Solve::policy) path, so the two
/// front doors cannot drift.
pub(crate) fn compute_with_policy_impl(
    query: &Query,
    db: &Database,
    k: u64,
    policy: &DeletionPolicy,
    opts: &AdpOptions,
) -> Result<AdpOutcome, SolveError> {
    if k == 0 {
        return Err(SolveError::KZero);
    }
    if policy.frozen().is_empty() {
        return super::prepared::PreparedQuery::new(query.clone(), Arc::new(db.clone()))
            .solve(k, opts);
    }
    let view = View::root(query.clone(), Arc::new(db.clone()));
    let deletable = policy.deletable_atoms(query);
    if deletable.iter().all(|&d| !d) {
        // nothing may be deleted at all
        let total = super::count_outputs(&view);
        if k > total {
            return Err(SolveError::KTooLarge {
                k,
                available: total,
            });
        }
        return Err(SolveError::Infeasible { k, removable: 0 });
    }

    let solved = if query.is_boolean() {
        boolean::solve_boolean_with_policy(&view, opts, &deletable)?
    } else {
        let eval = view.eval();
        solve_greedy_filtered(&view, &eval, k, &deletable, opts)?
    };
    if k > solved.total_outputs {
        return Err(SolveError::KTooLarge {
            k,
            available: solved.total_outputs,
        });
    }
    let Some(cost) = solved.min_cost(k)? else {
        if solved.truncated {
            return super::truncated_outcome(&solved, opts);
        }
        return Err(SolveError::Infeasible {
            k,
            removable: solved.max_removable(),
        });
    };
    let solution = match opts.mode {
        Mode::Report => Some({
            let mut s = solved.extract(k)?;
            s.sort_unstable();
            s.dedup();
            s
        }),
        Mode::Count => None,
    };
    Ok(AdpOutcome {
        cost,
        achieved: k,
        exact: solved.exact,
        truncated: solved.truncated,
        output_count: solved.total_outputs,
        solution,
    })
}

#[cfg(test)]
// Pins the legacy v1 entry point; the fluent path is differentially
// tested against it.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use adp_engine::schema::attrs;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("R3", attrs(&["B"]), &[&[1], &[2]]);
        db
    }

    #[test]
    fn unrestricted_policy_delegates() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let out = compute_adp_with_policy(
            &q,
            &db(),
            2,
            &DeletionPolicy::unrestricted(),
            &AdpOptions::default(),
        )
        .unwrap();
        assert_eq!(out.cost, 1);
    }

    #[test]
    fn frozen_relations_never_appear_in_solutions() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let policy = DeletionPolicy::unrestricted().freeze("R1");
        for k in 1..=3 {
            let out =
                compute_adp_with_policy(&q, &db(), k, &policy, &AdpOptions::default()).unwrap();
            for t in out.solution.unwrap() {
                assert_ne!(t.atom, 0, "frozen R1 must not be touched (k={k})");
            }
        }
    }

    #[test]
    fn boolean_with_frozen_endogenous_atom_is_exact() {
        // Q() :- R1(A), R2(A,B), R3(B): freezing R3 forces the cut to R1
        // (or R2); the min-cut stays exact.
        let q = parse_query("Q() :- R1(A), R2(A,B), R3(B)").unwrap();
        let policy = DeletionPolicy::unrestricted().freeze("R3");
        let out = compute_adp_with_policy(&q, &db(), 1, &policy, &AdpOptions::default()).unwrap();
        assert!(out.exact);
        assert_eq!(out.cost, 2, "both R1 values must go");
        for t in out.solution.unwrap() {
            assert_ne!(t.atom, 2);
        }
    }

    #[test]
    fn all_frozen_is_infeasible() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let policy = DeletionPolicy::unrestricted()
            .freeze("R1")
            .freeze("R2")
            .freeze("R3");
        assert!(matches!(
            compute_adp_with_policy(&q, &db(), 1, &policy, &AdpOptions::default()),
            Err(SolveError::Infeasible { .. })
        ));
    }

    #[test]
    fn policy_mask() {
        let q = parse_query("Q(A,B) :- R1(A), R2(A,B), R3(B)").unwrap();
        let policy = DeletionPolicy::unrestricted().freeze("R2");
        assert_eq!(policy.deletable_atoms(&q), vec![true, false, true]);
        assert!(policy.is_frozen("R2"));
        assert!(!policy.is_frozen("R1"));
    }
}
