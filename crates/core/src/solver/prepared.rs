//! Plan-once/execute-many entry points for repeated ADP solving.
//!
//! The paper's workloads solve the *same* `(Q, D)` pair many times: once
//! per removal ratio ρ, once per solver variant in the ablations, and
//! once more to verify each reported deletion set. Before this module
//! every one of those calls re-resolved names, re-derived the join
//! order, rebuilt every hash index, and re-ran the join.
//!
//! [`PreparedQuery`] compiles the query once against a shared database
//! and caches the three reusable artifacts behind an `Arc`:
//!
//! * the [`QueryPlan`] (join order, dense-id binding slots),
//! * the [`JoinIndexes`] (per-atom hash indexes over the full input),
//! * the root [`EvalResult`] (witnesses + outputs + incidence).
//!
//! [`PreparedQuery::solve`] then behaves exactly like
//! [`compute_adp_arc`](super::compute_adp_arc) — which is now a thin
//! wrapper over it — except that every solve after the first starts from
//! the cached evaluation, and
//! [`PreparedQuery::removed_outputs`] verifies deletion sets by masked
//! re-execution ([`AliveMask`]) instead of rebuilding the database.
//!
//! Everything is **`Send + Sync`** (shared ownership via `Arc`, lazy
//! caches via [`OnceLock`]), so one compiled plan can be shared
//! read-only by every worker of an [`adp_runtime::ThreadPool`]: the
//! parallel ρ-sweeps in `adp-bench` and the parallel inner loops in
//! [`brute`](super::brute) and [`greedy`](super::greedy) all borrow the
//! same `PreparedQuery`. A compile-time assertion in the test module
//! keeps the bound from regressing.

use super::view::View;
use super::{AdpOptions, AdpOutcome};
use crate::error::SolveError;
use crate::query::Query;
use adp_engine::database::Database;
use adp_engine::delta::DeltaProvenance;
use adp_engine::error::AdpError;
use adp_engine::join::EvalResult;
use adp_engine::plan::{AliveMask, JoinIndexes, QueryPlan};
use adp_engine::provenance::{ProvenanceIndex, TupleRef};
use std::sync::{Arc, OnceLock};

/// Builds a scored [`DeltaProvenance`] for an evaluation, fanning the
/// initial scoring pass out over the global [`adp_runtime`] pool (the
/// same range-partitioned scoring the parallel greedy rescan used)
/// when `parallel` is set and the instance is large enough. Disjoint
/// output ranges contribute additively, so the installed scores are
/// equal to the sequential build's.
pub(crate) fn build_delta_provenance(
    eval: &EvalResult,
    parallel: bool,
) -> Result<DeltaProvenance, AdpError> {
    let mut delta = DeltaProvenance::new_unscored(eval)?;
    let slots = delta.output_slots();
    let pool = adp_runtime::global();
    if parallel
        && pool.threads() > 1
        && eval.witness_count() >= super::greedy::PAR_SCORING_MIN_WITNESSES
        && slots > 1
    {
        let chunk = slots.div_ceil(pool.threads() * 2).max(1);
        let parts = pool.par_indexed(slots.div_ceil(chunk), |i| {
            delta.score_range(i * chunk, ((i + 1) * chunk).min(slots))
        });
        delta.install_scores(parts);
    } else {
        let scores = delta.score_range(0, slots);
        delta.install_scores(vec![scores]);
    }
    Ok(delta)
}

/// A compiled query plan plus lazily built, cached indexes and
/// evaluation result, all against one shared database. `Send + Sync`:
/// the caches are [`OnceLock`]s, so concurrent workers race benignly on
/// first use and share afterwards.
pub struct PlannedEval {
    db: Arc<Database>,
    plan: QueryPlan,
    indexes: OnceLock<Arc<JoinIndexes>>,
    eval: OnceLock<Arc<EvalResult>>,
    /// Pristine (all-alive) provenance over the root evaluation, for
    /// O(Δ) set verification (`killed_by_set`) and participating-tuple
    /// lookups without rebuilding the postings per solve.
    prov: OnceLock<Result<Arc<ProvenanceIndex>, AdpError>>,
    /// Pristine scored delta index; greedy solves clone it (an O(n)
    /// memcpy) instead of re-deriving postings + scores per solve.
    delta: OnceLock<Result<Arc<DeltaProvenance>, AdpError>>,
}

impl PlannedEval {
    /// Compiles the plan for `query` over `db`. No data is scanned until
    /// the first evaluation.
    pub fn new(query: &Query, db: Arc<Database>) -> Self {
        let plan = QueryPlan::new(&db, query.atoms(), query.head());
        PlannedEval {
            db,
            plan,
            indexes: OnceLock::new(),
            eval: OnceLock::new(),
            prov: OnceLock::new(),
            delta: OnceLock::new(),
        }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The shared database the plan was compiled against.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    fn indexes(&self) -> Arc<JoinIndexes> {
        Arc::clone(
            self.indexes
                .get_or_init(|| Arc::new(self.plan.build_indexes(&self.db))),
        )
    }

    /// The full evaluation `Q(D)`, computed once and cached.
    pub fn eval(&self) -> Arc<EvalResult> {
        Arc::clone(self.eval.get_or_init(|| {
            if self
                .plan
                .rels()
                .iter()
                .any(|&r| self.db.relation_by_id(r).is_empty())
            {
                // Skip the index build: the result is empty regardless.
                Arc::new(self.plan.execute_once(&self.db))
            } else {
                // Distinct OnceLock from `self.eval`, so no re-entrancy.
                let indexes = self.indexes();
                Arc::new(self.plan.execute(&self.db, &indexes))
            }
        }))
    }

    /// `Q(D − S)` for the deletion state `mask`, reusing the cached plan
    /// and indexes. Witness indices stay in original coordinates.
    pub fn eval_masked(&self, mask: &AliveMask) -> EvalResult {
        self.plan.execute_masked(&self.db, &self.indexes(), mask)
    }

    /// The pristine provenance index over the root evaluation, computed
    /// once and shared. Used for `O(Δ)` deletion-set verification and
    /// participating-tuple lookups.
    pub fn provenance(&self) -> Result<Arc<ProvenanceIndex>, AdpError> {
        self.prov
            .get_or_init(|| ProvenanceIndex::try_new(&self.eval()).map(Arc::new))
            .clone()
    }

    /// The pristine scored [`DeltaProvenance`] template, computed once
    /// and cloned by each incremental solve. The first builder decides
    /// whether the one-time scoring pass may fan out over the global
    /// pool (`parallel`); either way the installed scores are equal, so
    /// later callers share the cached template regardless of their own
    /// flag.
    pub fn delta_template(&self, parallel: bool) -> Result<Arc<DeltaProvenance>, AdpError> {
        self.delta
            .get_or_init(|| build_delta_provenance(&self.eval(), parallel).map(Arc::new))
            .clone()
    }

    /// An all-alive mask shaped for this plan's atoms.
    pub fn fresh_mask(&self, query: &Query) -> AliveMask {
        AliveMask::all_alive(&self.db, query.atoms())
    }
}

/// A query compiled once against a shared database, ready to be solved
/// for any `k` (and any option set) without re-planning, re-indexing, or
/// re-joining — from any thread.
pub struct PreparedQuery {
    query: Query,
    db: Arc<Database>,
    planned: Arc<PlannedEval>,
}

impl PreparedQuery {
    /// Compiles `query` against `db`. Panics (like
    /// [`evaluate`](adp_engine::join::evaluate)) if a body relation is
    /// missing from the database or its attribute set disagrees.
    pub fn new(query: Query, db: Arc<Database>) -> Self {
        let planned = Arc::new(PlannedEval::new(&query, Arc::clone(&db)));
        PreparedQuery { query, db, planned }
    }

    /// The prepared query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The shared database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The compiled plan (join order, dense-id slots).
    pub fn plan(&self) -> &QueryPlan {
        self.planned.plan()
    }

    /// The cached root evaluation `Q(D)`.
    pub fn eval(&self) -> Arc<EvalResult> {
        self.planned.eval()
    }

    /// `|Q(D)|`, counted component-wise so cross products of
    /// disconnected queries are never materialized.
    pub fn output_count(&self) -> u64 {
        super::count_outputs(&self.root_view())
    }

    /// Solves `ADP(Q, D, k)`, reusing the cached plan, indexes, and
    /// evaluation across calls. Semantically identical to
    /// [`compute_adp_arc`](super::compute_adp_arc).
    pub fn solve(&self, k: u64, opts: &AdpOptions) -> Result<AdpOutcome, SolveError> {
        super::solve_prepared(self, k, opts)
    }

    /// Number of outputs removed by deleting `deletions`:
    /// `|Q(D)| − |Q(D − S)|`, answered in `O(Δ)` from the cached
    /// provenance postings (`killed_by_set`) — no re-join at all. Falls
    /// back to [`removed_outputs_masked`](Self::removed_outputs_masked)
    /// if the instance is too large to index.
    pub fn removed_outputs(&self, deletions: &[TupleRef]) -> u64 {
        if deletions.is_empty() {
            return 0;
        }
        match self.planned.provenance() {
            Ok(prov) => prov.killed_by_set(deletions),
            Err(_) => self.removed_outputs_masked(deletions),
        }
    }

    /// [`removed_outputs`](Self::removed_outputs) by masked re-execution
    /// of the cached plan — the full re-evaluation oracle the delta path
    /// is differentially tested against.
    pub fn removed_outputs_masked(&self, deletions: &[TupleRef]) -> u64 {
        let before = self.eval().output_count();
        if deletions.is_empty() {
            return 0;
        }
        let mut mask = self.planned.fresh_mask(&self.query);
        mask.kill_all(deletions);
        before - self.planned.eval_masked(&mask).output_count()
    }

    /// Re-binds the already-parsed query to a fresh database snapshot,
    /// compiling a new plan (and new lazy caches) against `db` while the
    /// original `PreparedQuery` stays fully usable against its own
    /// snapshot. This is the epoch-advance path for services and
    /// statements: parsing is skipped, and because each epoch snapshot
    /// shares its sealed segments by `Arc`, the per-segment join indexes
    /// cached inside those segments are reused by the new binding's
    /// `JoinIndexes` — only overlay-dependent state is rebuilt.
    pub fn rebind(&self, db: Arc<Database>) -> PreparedQuery {
        PreparedQuery::new(self.query.clone(), db)
    }

    /// The root solver view, carrying the shared evaluation cache.
    pub(crate) fn root_view(&self) -> View {
        View::root_planned(
            self.query.clone(),
            Arc::clone(&self.db),
            Arc::clone(&self.planned),
        )
    }
}

#[cfg(test)]
// Pins the legacy v1 entry points; the fluent v2 path is
// differentially tested against them.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use crate::solver::{removed_outputs, AdpOptions};
    use adp_engine::schema::attrs;

    /// Satellite requirement of the `Send + Sync` migration: the shared
    /// solver types must stay shareable across threads. This fails to
    /// *compile* if an `Rc`/`RefCell` sneaks back into them.
    #[test]
    fn prepared_types_are_send_and_sync() {
        fn _assert<T: Send + Sync>() {}
        _assert::<PreparedQuery>();
        _assert::<PlannedEval>();
        _assert::<View>();
        _assert::<Database>();
        _assert::<QueryPlan>();
        _assert::<JoinIndexes>();
        _assert::<EvalResult>();
        _assert::<AdpOptions>();
        _assert::<AdpOutcome>();
    }

    fn figure1() -> Database {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[2, 2], &[3, 3]]);
        db.add_relation(
            "R2",
            attrs(&["B", "C"]),
            &[&[1, 1], &[2, 2], &[2, 3], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1], &[2, 3], &[3, 3]]);
        db
    }

    #[test]
    fn solve_matches_compute_adp_across_k() {
        let q = parse_query("Q1(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)").unwrap();
        let db = Arc::new(figure1());
        let prep = PreparedQuery::new(q.clone(), Arc::clone(&db));
        assert_eq!(prep.output_count(), 4);
        for k in 1..=4 {
            let a = prep.solve(k, &AdpOptions::default()).unwrap();
            let b = super::super::compute_adp_arc(&q, Arc::clone(&db), k, &AdpOptions::default())
                .unwrap();
            assert_eq!(a.cost, b.cost, "k={k}");
            assert_eq!(a.output_count, b.output_count);
            assert_eq!(a.exact, b.exact);
        }
    }

    #[test]
    fn eval_is_cached_across_solves() {
        let q = parse_query("Q(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap();
        let mut db = Database::new();
        db.add_relation("S", attrs(&["NK", "SK"]), &[&[1, 1], &[2, 2]]);
        db.add_relation("PS", attrs(&["SK", "PK"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("L", attrs(&["OK", "PK"]), &[&[7, 1], &[8, 2]]);
        let prep = PreparedQuery::new(q, Arc::new(db));
        let e1 = prep.eval();
        prep.solve(1, &AdpOptions::counting()).unwrap();
        let e2 = prep.eval();
        assert!(Arc::ptr_eq(&e1, &e2), "evaluation must be computed once");
    }

    #[test]
    fn eval_is_computed_once_under_concurrent_first_use() {
        let q = parse_query("Q1(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)").unwrap();
        let prep = PreparedQuery::new(q, Arc::new(figure1()));
        let pool = adp_runtime::ThreadPool::new(4);
        let evals = pool.par_indexed(16, |_| prep.eval());
        for e in &evals {
            assert!(
                Arc::ptr_eq(e, &evals[0]),
                "all threads must observe the same cached evaluation"
            );
        }
        assert_eq!(evals[0].output_count(), 4);
    }

    #[test]
    fn masked_removed_outputs_matches_rebuild_verifier() {
        let q = parse_query("Q2(A,E) :- R1(A,B), R2(B,C), R3(C,E)").unwrap();
        let db = Arc::new(figure1());
        let prep = PreparedQuery::new(q.clone(), Arc::clone(&db));
        for atom in 0..3usize {
            for idx in 0..db.relations()[atom].len() as u32 {
                let dels = vec![TupleRef::new(atom, idx)];
                assert_eq!(
                    prep.removed_outputs(&dels),
                    removed_outputs(&q, &db, &dels),
                    "atom {atom} idx {idx}"
                );
            }
        }
        assert_eq!(prep.removed_outputs(&[]), 0);
    }

    #[test]
    fn disconnected_queries_count_without_materializing() {
        let q = parse_query("Q(A,B) :- R(A), S(B)").unwrap();
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("S", attrs(&["B"]), &[&[10], &[20], &[30]]);
        let prep = PreparedQuery::new(q, Arc::new(db));
        assert_eq!(prep.output_count(), 6);
        let out = prep.solve(6, &AdpOptions::default()).unwrap();
        assert!(out.exact);
    }

    #[test]
    fn rebind_tracks_the_new_snapshot_without_disturbing_the_old() {
        let q = parse_query("Q1(A,B,C,E) :- R1(A,B), R2(B,C), R3(C,E)").unwrap();
        let mut base = figure1();
        base.seal_all(2);
        let old = Arc::new(base);
        let prep = PreparedQuery::new(q, Arc::clone(&old));
        assert_eq!(prep.output_count(), 4);

        // Next epoch: O(Δ) overlay clone, tombstone one R2 tuple.
        let mut next = (*old).clone();
        let rel = next.rel_id("R2").unwrap();
        let stable = next.relation_by_id(rel).stable_id_at(1);
        assert!(next.relation_mut_by_id(rel).delete_stable(stable));
        let next = Arc::new(next);

        let rebound = prep.rebind(Arc::clone(&next));
        assert!(Arc::ptr_eq(rebound.database(), &next));
        let fresh = PreparedQuery::new(rebound.query().clone(), next);
        assert_eq!(rebound.output_count(), fresh.output_count());
        assert_eq!(rebound.eval().outputs, fresh.eval().outputs);
        // The original binding still answers over its own epoch.
        assert_eq!(prep.output_count(), 4);
    }

    #[test]
    fn empty_instance_short_circuits() {
        let q = parse_query("Q(A) :- R(A), S(A)").unwrap();
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1]]);
        db.add_relation("S", attrs(&["A"]), &[]);
        let prep = PreparedQuery::new(q, Arc::new(db));
        assert_eq!(prep.output_count(), 0);
        assert_eq!(prep.eval().output_count(), 0);
    }
}
