//! Cost profiles: the currency exchanged between ADP sub-solvers.
//!
//! A [`CostProfile`] is the Pareto frontier of "spend `c` input-tuple
//! deletions, remove up to `r` output tuples". Every exact sub-solver
//! (Boolean, Singleton, the Universe/Decompose DPs) produces one; the
//! dynamic programs of §7.3 consume them. Representing the frontier by
//! its breakpoints — instead of a dense array indexed by `k` — is what
//! keeps the counting version scalable: the number of breakpoints is
//! bounded by the number of input tuples, not by `|Q(D)|`.

/// A Pareto-optimal point: spending `cost` deletions removes up to
/// `removed` outputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfilePoint {
    /// Number of input tuples deleted.
    pub cost: u64,
    /// Maximum number of output tuples removable at this cost.
    pub removed: u64,
}

/// A monotone step function `cost ↦ max removable outputs`, stored as its
/// Pareto breakpoints (strictly increasing in both coordinates). The
/// point `(0, 0)` is implicit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostProfile {
    points: Vec<ProfilePoint>,
}

impl CostProfile {
    /// The profile of a query with nothing removable.
    pub fn empty() -> Self {
        CostProfile { points: Vec::new() }
    }

    /// A single-point profile (e.g. boolean resilience: `cost` deletions
    /// remove the one output).
    pub fn single(cost: u64, removed: u64) -> Self {
        if removed == 0 {
            return Self::empty();
        }
        CostProfile {
            points: vec![ProfilePoint { cost, removed }],
        }
    }

    /// Builds a profile from arbitrary `(cost, removed)` pairs, keeping
    /// only Pareto-optimal points.
    pub fn from_pairs<I: IntoIterator<Item = (u64, u64)>>(pairs: I) -> Self {
        let mut pts: Vec<ProfilePoint> = pairs
            .into_iter()
            .filter(|&(_, r)| r > 0)
            .map(|(cost, removed)| ProfilePoint { cost, removed })
            .collect();
        pts.sort_by_key(|p| (p.cost, std::cmp::Reverse(p.removed)));
        let mut out: Vec<ProfilePoint> = Vec::with_capacity(pts.len());
        for p in pts {
            match out.last() {
                Some(last) if p.removed <= last.removed => {} // dominated
                Some(last) if p.cost == last.cost => {
                    // same cost, more removed: replace
                    let i = out.len() - 1;
                    out[i] = p;
                }
                _ => out.push(p),
            }
        }
        CostProfile { points: out }
    }

    /// The Pareto breakpoints (excluding the implicit `(0,0)`).
    pub fn points(&self) -> &[ProfilePoint] {
        &self.points
    }

    /// Breakpoints including the implicit origin.
    pub fn points_with_origin(&self) -> impl Iterator<Item = ProfilePoint> + '_ {
        std::iter::once(ProfilePoint {
            cost: 0,
            removed: 0,
        })
        .chain(self.points.iter().copied())
    }

    /// Maximum removable outputs at any cost.
    pub fn total_removable(&self) -> u64 {
        self.points.last().map(|p| p.removed).unwrap_or(0)
    }

    /// Minimum cost to remove at least `m` outputs (`Some(0)` for `m=0`),
    /// or `None` if `m` exceeds [`Self::total_removable`].
    pub fn min_cost(&self, m: u64) -> Option<u64> {
        if m == 0 {
            return Some(0);
        }
        // first point with removed >= m
        let idx = self.points.partition_point(|p| p.removed < m);
        self.points.get(idx).map(|p| p.cost)
    }

    /// Maximum outputs removable with budget `cost`.
    pub fn max_removed(&self, cost: u64) -> u64 {
        let idx = self.points.partition_point(|p| p.cost <= cost);
        if idx == 0 {
            0
        } else {
            self.points[idx - 1].removed
        }
    }

    /// Clamps the `removed` coordinate at `cap`, dropping points that
    /// become dominated. Used to keep DP state spaces bounded by `k`.
    pub fn clamp_removed(&self, cap: u64) -> CostProfile {
        CostProfile::from_pairs(self.points.iter().map(|p| (p.cost, p.removed.min(cap))))
    }

    /// Number of breakpoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing is removable.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Checks the strict-monotonicity invariant (for tests).
    pub fn is_valid(&self) -> bool {
        self.points
            .windows(2)
            .all(|w| w[0].cost < w[1].cost && w[0].removed < w[1].removed)
            && self.points.iter().all(|p| p.removed > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile() {
        let p = CostProfile::empty();
        assert_eq!(p.total_removable(), 0);
        assert_eq!(p.min_cost(0), Some(0));
        assert_eq!(p.min_cost(1), None);
        assert_eq!(p.max_removed(100), 0);
        assert!(p.is_valid());
    }

    #[test]
    fn from_pairs_keeps_pareto_frontier() {
        let p = CostProfile::from_pairs(vec![(3, 5), (1, 2), (2, 2), (4, 4), (3, 6)]);
        // (2,2) dominated by (1,2); (4,4) dominated by (3,6); (3,5) by (3,6)
        assert_eq!(
            p.points(),
            &[
                ProfilePoint {
                    cost: 1,
                    removed: 2
                },
                ProfilePoint {
                    cost: 3,
                    removed: 6
                },
            ]
        );
        assert!(p.is_valid());
    }

    #[test]
    fn min_cost_queries() {
        let p = CostProfile::from_pairs(vec![(1, 2), (3, 6), (7, 10)]);
        assert_eq!(p.min_cost(1), Some(1));
        assert_eq!(p.min_cost(2), Some(1));
        assert_eq!(p.min_cost(3), Some(3));
        assert_eq!(p.min_cost(6), Some(3));
        assert_eq!(p.min_cost(7), Some(7));
        assert_eq!(p.min_cost(10), Some(7));
        assert_eq!(p.min_cost(11), None);
    }

    #[test]
    fn max_removed_queries() {
        let p = CostProfile::from_pairs(vec![(1, 2), (3, 6)]);
        assert_eq!(p.max_removed(0), 0);
        assert_eq!(p.max_removed(1), 2);
        assert_eq!(p.max_removed(2), 2);
        assert_eq!(p.max_removed(3), 6);
        assert_eq!(p.max_removed(99), 6);
    }

    #[test]
    fn clamp_removes_dominated_tails() {
        let p = CostProfile::from_pairs(vec![(1, 2), (3, 6), (7, 10)]);
        let c = p.clamp_removed(6);
        assert_eq!(c.total_removable(), 6);
        assert_eq!(c.len(), 2);
        assert!(c.is_valid());
    }

    #[test]
    fn zero_removed_points_dropped() {
        let p = CostProfile::from_pairs(vec![(5, 0)]);
        assert!(p.is_empty());
    }

    #[test]
    fn single_constructor() {
        let p = CostProfile::single(4, 1);
        assert_eq!(p.min_cost(1), Some(4));
        assert!(CostProfile::single(4, 0).is_empty());
    }
}
