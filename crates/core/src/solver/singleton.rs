//! The Singleton base case (paper §7.2, Definition 10, Algorithm 3).
//!
//! A singleton query has an atom `Ri` whose attributes are contained in
//! every other atom, with `attr(Ri) ⊆ head(Q)` or `head(Q) ⊆ attr(Ri)`.
//! Both cases reduce to sorting:
//!
//! * **Case 1** (`attr(Ri) ⊆ head`): each `Ri` tuple "owns" a disjoint
//!   set of outputs (its *profit*); delete tuples by decreasing profit.
//! * **Case 2** (`head ⊆ attr(Ri)`): after dangling-tuple removal, each
//!   output has a *cost* — the number of `Ri` tuples projecting onto it;
//!   delete outputs by increasing cost.

use super::profile::CostProfile;
use super::solved::{Extractor, Solved, Step};
use super::view::View;
use crate::error::SolveError;
use adp_engine::value::Value;
use std::collections::HashMap;

/// Solves a singleton query with witness atom `ri`.
pub(crate) fn solve_singleton(view: &View, ri: usize, cap: u64) -> Result<Solved, SolveError> {
    let q = &view.query;
    let atom = &q.atoms()[ri];
    let head = q.head();

    // Vacuum witness atom: deleting its single tuple removes everything.
    if atom.is_vacuum() {
        let total = super::count_outputs(view);
        if total == 0 {
            return Ok(Solved::empty());
        }
        return Ok(Solved::eager(
            CostProfile::single(1, total),
            Extractor::Steps(vec![Step {
                tuples: vec![view.to_original(ri, 0)],
                removed_cum: total,
                cost_cum: 1,
            }]),
            true,
            total,
        ));
    }

    // Non-vacuum singleton queries are connected: evaluate once, via
    // the view's (possibly cached) plan.
    let eval = view.eval();
    let total = eval.output_count();
    if total == 0 {
        return Ok(Solved::empty());
    }
    let case1 = atom.attrs().iter().all(|a| head.contains(a));
    let steps = if case1 {
        case1_steps(view, ri, &eval, cap)
    } else {
        // Non-dangling Ri tuples come from the (possibly cached) pristine
        // provenance: planned root views share one postings build across
        // every solve instead of re-deriving it here.
        let participating = view.pristine_provenance(&eval)?.participating_tuples();
        case2_steps(view, ri, cap, &participating[ri])
    };
    let profile = CostProfile::from_pairs(steps.iter().map(|s| (s.cost_cum, s.removed_cum)));
    Ok(Solved::eager(profile, Extractor::Steps(steps), true, total))
}

/// Case 1: sort `Ri` tuples by decreasing profit (outputs owned).
fn case1_steps(view: &View, ri: usize, eval: &adp_engine::join::EvalResult, cap: u64) -> Vec<Step> {
    let q = &view.query;
    let atom = &q.atoms()[ri];
    // adp-lint: allow(panic-path) -- documented panicking lookup; the
    // view's atoms were validated against the database at construction.
    let rel = view.db.expect(atom.name());
    // positions of attr(Ri) within the head (outputs are head-ordered)
    let head = q.head();
    let positions: Vec<usize> = atom
        .attrs()
        .iter()
        .map(|a| {
            head.iter()
                .position(|h| h == a)
                // adp-lint: allow(panic-path) -- case 1 applies only when
                // attr(Ri) ⊆ head; the dispatcher checked that.
                .expect("case 1: attr ⊆ head")
        })
        .collect();
    // order attr values as in the relation's own schema for index lookups
    let schema_order: Vec<usize> = rel
        .schema()
        .attrs()
        .iter()
        .map(|a| {
            atom.attrs()
                .iter()
                .position(|x| x == a)
                // adp-lint: allow(panic-path) -- both orderings enumerate
                // the same attribute set of atom Ri.
                .expect("schemas share attrs")
        })
        .collect();

    let mut profit: HashMap<u32, u64> = HashMap::new();
    for out in &eval.outputs {
        let projected: Vec<Value> = positions.iter().map(|&p| out[p]).collect();
        let keyed: Vec<Value> = schema_order.iter().map(|&i| projected[i]).collect();
        let idx = rel
            .index_of(&keyed)
            // adp-lint: allow(panic-path) -- join semantics: each output
            // row is witnessed by a real Ri tuple it projects back onto.
            .expect("every output projects onto an existing Ri tuple");
        *profit.entry(idx).or_insert(0) += 1;
    }
    // adp-lint: allow(unordered-iter) -- collected then immediately
    // sorted on a total key; hash order never escapes.
    let mut order: Vec<(u32, u64)> = profit.into_iter().collect();
    order.sort_by_key(|&(idx, p)| (std::cmp::Reverse(p), idx));

    let mut steps = Vec::new();
    let (mut removed, mut cost) = (0u64, 0u64);
    for (idx, p) in order {
        removed += p;
        cost += 1;
        steps.push(Step {
            tuples: vec![view.to_original(ri, idx)],
            removed_cum: removed,
            cost_cum: cost,
        });
        if removed >= cap {
            break;
        }
    }
    steps
}

/// Case 2: group the non-dangling `Ri` tuples (`participating`) by
/// output; sort outputs by increasing group size.
fn case2_steps(view: &View, ri: usize, cap: u64, participating: &[u32]) -> Vec<Step> {
    let q = &view.query;
    let atom = &q.atoms()[ri];
    // adp-lint: allow(panic-path) -- documented panicking lookup; the
    // view's atoms were validated against the database at construction.
    let rel = view.db.expect(atom.name());
    let head = q.head().to_vec();

    let mut groups: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
    for &idx in participating {
        groups.entry(rel.project(idx, &head)).or_default().push(idx);
    }
    // adp-lint: allow(unordered-iter) -- collected then immediately
    // sorted on a total key; hash order never escapes.
    let mut order: Vec<(Vec<u32>, Vec<Value>)> = groups.into_iter().map(|(k, v)| (v, k)).collect();
    order.sort_by(|a, b| (a.0.len(), &a.1).cmp(&(b.0.len(), &b.1)));

    let mut steps = Vec::new();
    let (mut removed, mut cost) = (0u64, 0u64);
    for (tuples, _) in order {
        removed += 1;
        cost += tuples.len() as u64;
        steps.push(Step {
            tuples: tuples
                .into_iter()
                .map(|idx| view.to_original(ri, idx))
                .collect(),
            removed_cum: removed,
            cost_cum: cost,
        });
        if removed >= cap {
            break;
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::roles::singleton_atom;
    use crate::query::parse_query;
    use adp_engine::database::Database;
    use adp_engine::provenance::TupleRef;
    use adp_engine::schema::attrs;
    use std::sync::Arc;

    fn solve(qtext: &str, db: Database, cap: u64) -> Solved {
        let q = parse_query(qtext).unwrap();
        let ri = singleton_atom(&q).expect("test query must be singleton");
        let view = View::root(q, Arc::new(db));
        solve_singleton(&view, ri, cap).unwrap()
    }

    #[test]
    fn case1_greedy_by_profit() {
        // Q6(A,B) :- R1(A), R2(A,B): A=1 has 3 outputs, A=2 has 1.
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation(
            "R2",
            attrs(&["A", "B"]),
            &[&[1, 1], &[1, 2], &[1, 3], &[2, 9]],
        );
        let s = solve("Q(A,B) :- R1(A), R2(A,B)", db, 4);
        assert_eq!(s.total_outputs, 4);
        assert!(s.exact);
        // removing 1 output: cheapest is one R1 tuple (profit sorted: 3
        // first). k=1..3 cost 1; k=4 cost 2.
        assert_eq!(s.min_cost(1).unwrap(), Some(1));
        assert_eq!(s.min_cost(3).unwrap(), Some(1));
        assert_eq!(s.min_cost(4).unwrap(), Some(2));
        let sol = s.extract(3).unwrap();
        assert_eq!(sol, vec![TupleRef::new(0, 0)], "the A=1 tuple");
    }

    #[test]
    fn case2_cheapest_outputs_first() {
        // Q(A) :- R1(A,B), R2(A,B,C): head {A} ⊆ attr(R1); R1 minimal.
        // Output a=1 backed by 1 R1-tuple, a=2 by 2, a=3 dangling-free 3.
        let mut db = Database::new();
        db.add_relation(
            "R1",
            attrs(&["A", "B"]),
            &[&[1, 1], &[2, 1], &[2, 2], &[3, 1], &[3, 2], &[3, 3]],
        );
        db.add_relation(
            "R2",
            attrs(&["A", "B", "C"]),
            &[
                &[1, 1, 0],
                &[2, 1, 0],
                &[2, 2, 0],
                &[3, 1, 0],
                &[3, 2, 0],
                &[3, 3, 0],
            ],
        );
        let s = solve("Q(A) :- R1(A,B), R2(A,B,C)", db, 3);
        assert_eq!(s.total_outputs, 3);
        assert_eq!(s.min_cost(1).unwrap(), Some(1)); // kill a=1
        assert_eq!(s.min_cost(2).unwrap(), Some(3)); // + a=2
        assert_eq!(s.min_cost(3).unwrap(), Some(6)); // + a=3
        let sol = s.extract(2).unwrap();
        assert_eq!(sol.len(), 3);
    }

    #[test]
    fn case2_ignores_dangling_tuples() {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[1, 9]]); // (1,9) dangles
        db.add_relation("R2", attrs(&["A", "B", "C"]), &[&[1, 1, 0]]);
        let s = solve("Q(A) :- R1(A,B), R2(A,B,C)", db, 1);
        assert_eq!(
            s.min_cost(1).unwrap(),
            Some(1),
            "dangling tuple not counted"
        );
    }

    #[test]
    fn vacuum_singleton_removes_everything_with_one_tuple() {
        let mut db = Database::new();
        db.add_relation("V", vec![], &[&[]]);
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2], &[3]]);
        let q = parse_query("Q(A) :- V(), R(A)").unwrap();
        let ri = singleton_atom(&q).unwrap();
        assert_eq!(q.atoms()[ri].name(), "V");
        let view = View::root(q, Arc::new(db));
        let s = solve_singleton(&view, ri, 2).unwrap();
        assert_eq!(s.total_outputs, 3);
        assert_eq!(s.min_cost(2).unwrap(), Some(1));
        assert_eq!(s.extract(2).unwrap(), vec![TupleRef::new(0, 0)]);
    }

    #[test]
    fn empty_instance_is_empty_profile() {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[]);
        db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 1]]);
        let s = solve("Q(A,B) :- R1(A), R2(A,B)", db, 1);
        assert_eq!(s.total_outputs, 0);
        assert!(s.max_removable() == 0);
    }

    #[test]
    fn cap_truncates_work_but_not_correctness() {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[2], &[3]]);
        db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 1], &[2, 1], &[3, 1]]);
        let s = solve("Q(A,B) :- R1(A), R2(A,B)", db, 1);
        // with cap 1 the profile stops early but must cover m=1
        assert_eq!(s.min_cost(1).unwrap(), Some(1));
    }
}
