//! The result object exchanged between sub-solvers: a cost profile plus
//! enough structure to extract an actual deletion set for any target.

use super::profile::CostProfile;
use crate::error::SolveError;
use adp_engine::provenance::TupleRef;

/// Result of solving one (sub)instance.
#[derive(Clone, Debug)]
pub struct Solved {
    pub(crate) repr: Repr,
    /// Is the profile exact (vs. a heuristic upper bound)?
    pub exact: bool,
    /// True if a per-request deadline ([`AdpOptions::deadline`]) expired
    /// before the greedy rounds reached the caller's cap: the profile is
    /// a valid best-so-far prefix, not the full heuristic profile.
    ///
    /// [`AdpOptions::deadline`]: super::AdpOptions::deadline
    pub truncated: bool,
    /// `|Q(D)|` for this subinstance (used by `Decompose`'s cross-product
    /// arithmetic; may be larger than the profile's removable range when
    /// a cap was applied).
    pub total_outputs: u64,
}

#[derive(Clone, Debug)]
pub(crate) enum Repr {
    /// A materialized profile plus an extractor.
    Eager {
        profile: CostProfile,
        extract: Extractor,
    },
    /// A lazy cross-product combination of two children (sparse
    /// `Decompose`, §7.3): removal arithmetic is evaluated on demand.
    Pair(Box<PairNode>),
}

/// Extraction strategies for Eager results.
#[derive(Clone, Debug)]
pub(crate) enum Extractor {
    /// No tuples to delete (empty result).
    Empty,
    /// Prefix extraction: take the shortest prefix of `steps` whose
    /// cumulative removal reaches the target.
    Steps(Vec<Step>),
    /// Dynamic-program extraction (Universe / dense Decompose): walk the
    /// layered choice table backwards, delegating to child extractors.
    Dp(DpNode),
}

/// One prefix step: deleting `tuples` (in addition to all earlier steps)
/// brings cumulative removal to `removed_cum` at cumulative cost
/// `cost_cum`.
#[derive(Clone, Debug)]
pub(crate) struct Step {
    pub tuples: Vec<TupleRef>,
    pub removed_cum: u64,
    pub cost_cum: u64,
}

/// Choice tables of a layered DP over children.
#[derive(Clone, Debug)]
pub(crate) struct DpNode {
    pub children: Vec<Solved>,
    /// `choice[i][j]` = (outputs removed from child `i`, previous budget
    /// index) on the optimal path for `Opt[i][j]`. `u64::MAX` marks
    /// unreachable states. Empty in counting mode.
    pub choice: Vec<Vec<(u64, u64)>>,
}

/// Lazy two-way cross-product combination.
#[derive(Clone, Debug)]
pub(crate) struct PairNode {
    pub left: Solved,
    pub right: Solved,
}

impl Solved {
    pub(crate) fn eager(
        profile: CostProfile,
        extract: Extractor,
        exact: bool,
        total_outputs: u64,
    ) -> Self {
        Solved {
            repr: Repr::Eager { profile, extract },
            exact,
            truncated: false,
            total_outputs,
        }
    }

    /// Marks (ORs in) deadline truncation, e.g. when combining children
    /// of which one was cut short.
    pub(crate) fn with_truncated(mut self, truncated: bool) -> Self {
        self.truncated |= truncated;
        self
    }

    /// An empty result (nothing removable).
    pub(crate) fn empty() -> Self {
        Solved::eager(CostProfile::empty(), Extractor::Empty, true, 0)
    }

    /// Maximum removable outputs.
    pub fn max_removable(&self) -> u64 {
        match &self.repr {
            Repr::Eager { profile, .. } => profile.total_removable(),
            Repr::Pair(p) => {
                // removal is monotone in both children
                let (ml, mr) = (p.left.total_outputs, p.right.total_outputs);
                let (rl, rr) = (p.left.max_removable(), p.right.max_removable());
                cross_removed(rl, rr, ml, mr)
            }
        }
    }

    /// Minimum cost to remove at least `m` outputs.
    pub fn min_cost(&self, m: u64) -> Result<Option<u64>, SolveError> {
        match &self.repr {
            Repr::Eager { profile, .. } => Ok(profile.min_cost(m)),
            Repr::Pair(p) => Ok(p.search(m)?.map(|(c, _, _)| c)),
        }
    }

    /// The Pareto points of this result, materializing lazy pairs (guarded
    /// by `points_limit`).
    pub(crate) fn points(&self, points_limit: u64) -> Result<Vec<(u64, u64)>, SolveError> {
        match &self.repr {
            Repr::Eager { profile, .. } => Ok(profile
                .points()
                .iter()
                .map(|p| (p.cost, p.removed))
                .collect()),
            Repr::Pair(p) => {
                let lp = with_origin(p.left.points(points_limit)?);
                let rp = with_origin(p.right.points(points_limit)?);
                let n = (lp.len() as u64).saturating_mul(rp.len() as u64);
                if n > points_limit {
                    return Err(SolveError::BudgetExceeded(format!(
                        "materializing a cross-product profile needs {n} point pairs \
                         (limit {points_limit})"
                    )));
                }
                let (ml, mr) = (p.left.total_outputs, p.right.total_outputs);
                let mut pairs = Vec::with_capacity(lp.len() * rp.len());
                for &(c1, r1) in &lp {
                    for &(c2, r2) in &rp {
                        pairs.push((c1 + c2, cross_removed(r1, r2, ml, mr)));
                    }
                }
                Ok(CostProfile::from_pairs(pairs)
                    .points()
                    .iter()
                    .map(|p| (p.cost, p.removed))
                    .collect())
            }
        }
    }

    /// Extracts a deletion set removing at least `m` outputs. Requires the
    /// result to have been computed in report mode (DP choice tables
    /// present) and `m ≤ max_removable()`.
    pub fn extract(&self, m: u64) -> Result<Vec<TupleRef>, SolveError> {
        if m == 0 {
            return Ok(Vec::new());
        }
        match &self.repr {
            Repr::Eager { extract, .. } => match extract {
                Extractor::Empty => Ok(Vec::new()),
                Extractor::Steps(steps) => {
                    let mut out = Vec::new();
                    for s in steps {
                        out.extend(s.tuples.iter().copied());
                        if s.removed_cum >= m {
                            return Ok(out);
                        }
                    }
                    Err(SolveError::KTooLarge {
                        k: m,
                        available: steps.last().map(|s| s.removed_cum).unwrap_or(0),
                    })
                }
                Extractor::Dp(dp) => {
                    if dp.choice.is_empty() {
                        return Err(SolveError::BudgetExceeded(
                            "solution extraction requires report mode".into(),
                        ));
                    }
                    let mut out = Vec::new();
                    let mut j = m;
                    for i in (0..dp.children.len()).rev() {
                        let (mi, jprev) = dp.choice[i][j as usize];
                        assert_ne!(mi, u64::MAX, "extracting an unreachable DP state");
                        out.extend(dp.children[i].extract(mi)?);
                        j = jprev;
                    }
                    assert_eq!(j, 0);
                    Ok(out)
                }
            },
            Repr::Pair(p) => {
                let (_, r1, r2) = p.search(m)?.ok_or(SolveError::KTooLarge {
                    k: m,
                    available: self.max_removable(),
                })?;
                let mut out = p.left.extract(r1)?;
                out.extend(p.right.extract(r2)?);
                Ok(out)
            }
        }
    }
}

impl PairNode {
    /// Finds the optimal split for removing at least `m` outputs from the
    /// cross product: returns `(cost, removed_left, removed_right)`.
    fn search(&self, m: u64) -> Result<Option<(u64, u64, u64)>, SolveError> {
        if m == 0 {
            return Ok(Some((0, 0, 0)));
        }
        let (ml, mr) = (self.left.total_outputs, self.right.total_outputs);
        // Enumerate the left child's Pareto points; for each, the minimal
        // right-side removal follows from the cross-product arithmetic
        // k1·m_r + k2·m_l − k1·k2 ≥ m (Algorithm 5).
        let left_points = with_origin(self.left.points(u64::MAX)?);
        let mut best: Option<(u64, u64, u64)> = None;
        for &(c1, r1) in &left_points {
            let Some(r2) = required_right(r1, m, ml, mr) else {
                continue;
            };
            if r2 > self.right.max_removable() {
                continue;
            }
            let Some(c2) = self.right.min_cost(r2)? else {
                continue;
            };
            let cost = c1 + c2;
            if best.map(|(b, _, _)| cost < b).unwrap_or(true) {
                best = Some((cost, r1, r2));
            }
        }
        Ok(best)
    }
}

/// Outputs removed from a cross product when `r1` of `m1` left outputs and
/// `r2` of `m2` right outputs are removed:
/// `m1·m2 − (m1−r1)(m2−r2) = r1·m2 + r2·m1 − r1·r2` (paper §4.1).
pub(crate) fn cross_removed(r1: u64, r2: u64, m1: u64, m2: u64) -> u64 {
    let total = (m1 as u128) * (m2 as u128);
    let left = (m1 - r1.min(m1)) as u128;
    let right = (m2 - r2.min(m2)) as u128;
    let removed = total - left * right;
    u64::try_from(removed).unwrap_or(u64::MAX)
}

/// Minimal `r2` such that removing (`r1`, `r2`) from an `m1 × m2` cross
/// product removes at least `m` outputs; `None` if no `r2 ≤ m2` works.
pub(crate) fn required_right(r1: u64, m: u64, m1: u64, m2: u64) -> Option<u64> {
    let r1 = r1.min(m1);
    let covered = (r1 as u128) * (m2 as u128);
    if covered >= m as u128 {
        return Some(0);
    }
    let slack = m1 - r1;
    if slack == 0 {
        // r1 = m1 and still short: m exceeds this product's total
        return None;
    }
    let need = m as u128 - covered;
    let r2 = need.div_ceil(slack as u128);
    if r2 <= m2 as u128 {
        Some(r2 as u64)
    } else {
        None
    }
}

pub(crate) fn with_origin(points: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    let mut v = Vec::with_capacity(points.len() + 1);
    v.push((0, 0));
    v.extend(points);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steps_solved(pairs: &[(u64, u64)], total: u64) -> Solved {
        // each step deletes one synthetic tuple
        let steps: Vec<Step> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(c, r))| Step {
                tuples: vec![TupleRef::new(0, i as u32)],
                removed_cum: r,
                cost_cum: c,
            })
            .collect();
        let profile = CostProfile::from_pairs(pairs.iter().copied());
        Solved::eager(profile, Extractor::Steps(steps), true, total)
    }

    #[test]
    fn cross_removed_arithmetic() {
        assert_eq!(cross_removed(0, 0, 3, 4), 0);
        assert_eq!(cross_removed(3, 0, 3, 4), 12);
        assert_eq!(cross_removed(1, 1, 3, 4), 4 + 3 - 1);
        assert_eq!(cross_removed(3, 4, 3, 4), 12);
    }

    #[test]
    fn required_right_inverts_cross_removed() {
        for m1 in 1..=5u64 {
            for m2 in 1..=5u64 {
                for r1 in 0..=m1 {
                    for m in 1..=m1 * m2 {
                        if let Some(r2) = required_right(r1, m, m1, m2) {
                            assert!(cross_removed(r1, r2, m1, m2) >= m);
                            if r2 > 0 {
                                assert!(cross_removed(r1, r2 - 1, m1, m2) < m);
                            }
                        } else {
                            assert!(cross_removed(r1, m2, m1, m2) < m);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pair_min_cost_matches_brute_force() {
        // left: 1 tuple removes 1 of 2 outputs, 2 tuples remove both
        let left = steps_solved(&[(1, 1), (2, 2)], 2);
        // right: 1 tuple removes 2 of 3 outputs, 3 tuples remove all 3
        let right = steps_solved(&[(1, 2), (3, 3)], 3);
        let pair = Solved {
            repr: Repr::Pair(Box::new(PairNode {
                left: left.clone(),
                right: right.clone(),
            })),
            exact: true,
            truncated: false,
            total_outputs: 6,
        };
        // brute force over (r1, r2) splits
        for m in 0..=6u64 {
            let mut best: Option<u64> = None;
            for r1 in 0..=2u64 {
                for r2 in 0..=3u64 {
                    if cross_removed(r1, r2, 2, 3) >= m {
                        let c = left.min_cost(r1).unwrap().unwrap()
                            + right.min_cost(r2).unwrap().unwrap();
                        best = Some(best.map(|b: u64| b.min(c)).unwrap_or(c));
                    }
                }
            }
            assert_eq!(pair.min_cost(m).unwrap(), best, "m={m}");
        }
    }

    #[test]
    fn pair_extract_is_feasible() {
        let left = steps_solved(&[(1, 1), (2, 2)], 2);
        let right = steps_solved(&[(1, 2), (3, 3)], 3);
        let pair = Solved {
            repr: Repr::Pair(Box::new(PairNode { left, right })),
            exact: true,
            truncated: false,
            total_outputs: 6,
        };
        let sol = pair.extract(4).unwrap();
        let cost = pair.min_cost(4).unwrap().unwrap();
        assert_eq!(sol.len() as u64, cost);
    }

    #[test]
    fn steps_extract_prefix() {
        let s = steps_solved(&[(1, 2), (2, 5)], 5);
        assert!(s.extract(0).unwrap().is_empty());
        assert_eq!(s.extract(2).unwrap().len(), 1);
        assert_eq!(s.extract(3).unwrap().len(), 2);
        assert!(s.extract(6).is_err());
    }

    #[test]
    fn pair_points_materialize() {
        let left = steps_solved(&[(1, 1), (2, 2)], 2);
        let right = steps_solved(&[(1, 2), (3, 3)], 3);
        let pair = Solved {
            repr: Repr::Pair(Box::new(PairNode { left, right })),
            exact: true,
            truncated: false,
            total_outputs: 6,
        };
        let pts = pair.points(1000).unwrap();
        // frontier must be consistent with min_cost
        for &(c, r) in &pts {
            assert_eq!(pair.min_cost(r).unwrap(), Some(c));
        }
        assert!(pair.points(2).is_err(), "limit enforced");
    }
}
