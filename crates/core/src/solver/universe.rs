//! The Universe case (paper §7.3, Algorithm 4): universal attributes.
//!
//! A universal attribute `A` (output attribute in every atom) partitions
//! both the input and the output by its value: deleting a tuple only
//! affects the sub-instance sharing its `A` value. `ADP(Q, D, k)` becomes
//! a knapsack-style DP over the per-group `ADP(Q^{-A}, D_a, ·)` profiles.
//!
//! Following the paper's optimization (Figure 28), all universal
//! attributes are removed as one combined attribute by default; the
//! one-at-a-time ablation is available through
//! [`UniverseStrategy::OneByOne`](super::UniverseStrategy).

use super::solved::{DpNode, Extractor, Solved};
use super::view::View;
use super::{profile::CostProfile, AdpOptions, Mode, UniverseStrategy};
use crate::error::SolveError;
use adp_engine::database::Database;
use adp_engine::relation::RelationInstance;
use adp_engine::schema::Attr;
use adp_engine::value::Value;
use std::collections::HashMap;

pub(crate) fn solve_universe(
    view: &View,
    cap: u64,
    opts: &AdpOptions,
) -> Result<Solved, SolveError> {
    let q = &view.query;
    let universal = q.universal_attrs();
    debug_assert!(!universal.is_empty());
    let used: Vec<Attr> = match opts.universe {
        UniverseStrategy::Combined => universal,
        UniverseStrategy::OneByOne => vec![universal[0].clone()],
    };
    let residual = q.without_attrs(&used);

    // Partition every relation by its projection onto the combined
    // universal attribute; only keys present in *every* relation can
    // produce outputs.
    let atoms = q.atoms();
    let mut partitions: Vec<HashMap<Vec<Value>, Vec<u32>>> = Vec::with_capacity(atoms.len());
    for atom in atoms {
        // adp-lint: allow(panic-path) -- documented panicking lookup;
        // the view's atoms were validated at construction.
        let rel = view.db.expect(atom.name());
        let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for idx in rel.indices() {
            map.entry(rel.project(idx, &used)).or_default().push(idx);
        }
        partitions.push(map);
    }
    // adp-lint: allow(unordered-iter) -- keys are collected, filtered
    // and sorted just below; hash order never escapes.
    let mut keys: Vec<Vec<Value>> = partitions[0]
        .keys()
        .filter(|k| partitions.iter().all(|p| p.contains_key(*k)))
        .cloned()
        .collect();
    keys.sort();

    // Solve each group recursively on the projected sub-instance.
    let mut children: Vec<Solved> = Vec::with_capacity(keys.len());
    for key in &keys {
        let mut db = Database::new();
        let mut maps: Vec<Option<Vec<u32>>> = Vec::with_capacity(atoms.len());
        for (ai, atom) in atoms.iter().enumerate() {
            // adp-lint: allow(panic-path) -- same validated-atoms
            // contract as above.
            let rel = view.db.expect(atom.name());
            let kept_attrs: Vec<Attr> = atom
                .attrs()
                .iter()
                .filter(|a| !used.contains(a))
                .cloned()
                .collect();
            let mut inst = RelationInstance::new(residual.atoms()[ai].clone());
            let mut back = Vec::new();
            for &idx in &partitions[ai][key] {
                let t = rel.project(idx, &kept_attrs);
                let new_idx = inst.insert(&t);
                debug_assert_eq!(
                    new_idx as usize,
                    back.len(),
                    "projection is injective within a group"
                );
                back.push(idx);
            }
            db.add(inst);
            maps.push(Some(back));
        }
        let gview = view.rebased(residual.clone(), db, maps);
        let child = super::solve(&gview, cap, opts)?;
        if child.total_outputs > 0 {
            children.push(child);
        }
    }

    combine_disjoint(children, cap, opts)
}

/// Combines children whose outputs are **disjoint unions** (universal
/// partition): removing `m_i` from each child removes `Σ m_i` in total.
/// Dense DP over the budget `0..=cap`.
pub(crate) fn combine_disjoint(
    children: Vec<Solved>,
    cap: u64,
    opts: &AdpOptions,
) -> Result<Solved, SolveError> {
    let total: u64 = children
        .iter()
        .map(|c| c.total_outputs)
        .fold(0u64, |a, b| a.saturating_add(b));
    if children.is_empty() || total == 0 {
        return Ok(Solved::empty());
    }
    let exact = children.iter().all(|c| c.exact);
    let cap = cap.min(total);
    let width = cap + 1;
    let track_choices = opts.mode == Mode::Report;
    if width > opts.dense_limit
        || (track_choices && width.saturating_mul(children.len() as u64) > opts.dense_limit)
    {
        return Err(SolveError::BudgetExceeded(format!(
            "universe DP needs {} cells over {} groups",
            width,
            children.len()
        )));
    }

    const UNREACHED: u64 = u64::MAX;
    let mut opt: Vec<u64> = vec![UNREACHED; width as usize];
    opt[0] = 0;
    let mut choices: Vec<Vec<(u64, u64)>> = Vec::new();
    for child in &children {
        let pts = child.points(opts.pair_points_limit)?;
        let mut next: Vec<u64> = vec![UNREACHED; width as usize];
        let mut choice: Vec<(u64, u64)> = if track_choices {
            vec![(UNREACHED, 0); width as usize]
        } else {
            Vec::new()
        };
        for j in 0..width {
            // option: take nothing from this child
            if opt[j as usize] != UNREACHED {
                next[j as usize] = opt[j as usize];
                if track_choices {
                    choice[j as usize] = (0, j);
                }
            }
        }
        for &(c, r) in &pts {
            for j in 0..width {
                let prev = j.saturating_sub(r);
                if opt[prev as usize] == UNREACHED {
                    continue;
                }
                let cand = opt[prev as usize] + c;
                if cand < next[j as usize] {
                    next[j as usize] = cand;
                    if track_choices {
                        choice[j as usize] = (r.min(j), prev);
                    }
                }
            }
        }
        opt = next;
        if track_choices {
            choices.push(choice);
        }
    }

    let profile = CostProfile::from_pairs((1..width).filter_map(|j| {
        let c = opt[j as usize];
        (c != UNREACHED).then_some((c, j))
    }));
    let truncated = children.iter().any(|c| c.truncated);
    Ok(Solved::eager(
        profile,
        Extractor::Dp(DpNode {
            children,
            choice: choices,
        }),
        exact,
        total,
    )
    .with_truncated(truncated))
}

#[cfg(test)]
// Pins the legacy v1 entry points; the fluent v2 path is
// differentially tested against them.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use crate::solver::{compute_adp, AdpOptions};
    use adp_engine::schema::attrs;

    /// Q(A,B) :- R1(A,B), R2(A,B) with A universal: groups are A-values.
    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            "R1",
            attrs(&["A", "B"]),
            &[&[1, 1], &[1, 2], &[2, 1], &[3, 1]],
        );
        db.add_relation(
            "R2",
            attrs(&["A", "B"]),
            &[&[1, 1], &[1, 2], &[2, 1], &[3, 1]],
        );
        db
    }

    #[test]
    fn universe_partitions_and_recombines() {
        // After removing the universal {A,B} both relations' residuals
        // are vacuum; each (A,B) group is a singleton output of cost 1.
        let q = parse_query("Q(A,B) :- R1(A,B), R2(A,B)").unwrap();
        let out = compute_adp(&q, &db(), 2, &AdpOptions::default()).unwrap();
        assert_eq!(out.output_count, 4);
        assert!(out.exact);
        assert_eq!(out.cost, 2, "two groups must be hit");
        assert_eq!(out.solution.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn one_by_one_matches_combined() {
        let q = parse_query("Q(A,B) :- R1(A,B), R2(A,B)").unwrap();
        for k in 1..=4 {
            let combined = compute_adp(&q, &db(), k, &AdpOptions::default()).unwrap();
            let one_by_one = compute_adp(
                &q,
                &db(),
                k,
                &AdpOptions {
                    universe: UniverseStrategy::OneByOne,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(combined.cost, one_by_one.cost, "k={k}");
        }
    }

    #[test]
    fn uneven_groups_prefer_cheap_high_yield() {
        // A=1 has 3 outputs removable at cost 1 via R1's B-side? Build a
        // clearer case: Q(A) :- R1(A,B), R2(A):
        //   A universal; residual R1(B), R2() per group.
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        db.add_relation("R2", attrs(&["A"]), &[&[1], &[2]]);
        let q = parse_query("Q(A) :- R1(A,B), R2(A)").unwrap();
        // |Q(D)| = 2 (a=1, a=2). k=1: cost 1 (delete R2(2) or R2(1)).
        let out = compute_adp(&q, &db, 1, &AdpOptions::default()).unwrap();
        assert_eq!(out.output_count, 2);
        assert_eq!(out.cost, 1);
        assert!(out.exact);
        // k=2: both groups; group a=1 needs 1 (R2(1)), group a=2 needs 1.
        let out = compute_adp(&q, &db, 2, &AdpOptions::default()).unwrap();
        assert_eq!(out.cost, 2);
    }
}
