//! Solution verification: apply a deletion set and measure its effect.
//!
//! Used by the test suite (every reported solution must actually remove
//! ≥ k outputs) and by the experiment harness when reporting quality.

use crate::query::Query;
use adp_engine::database::Database;
use adp_engine::plan::{AliveMask, QueryPlan};
use adp_engine::provenance::TupleRef;
use adp_engine::relation::RelationInstance;

/// Returns a copy of `db` with the given tuples (in query-atom
/// coordinates) deleted.
pub fn apply_deletions(query: &Query, db: &Database, deletions: &[TupleRef]) -> Database {
    let mut out = Database::new();
    for (atom, schema) in query.atoms().iter().enumerate() {
        // adp-lint: allow(panic-path) -- documented panicking lookup;
        // verification replays a query already validated against db.
        let rel = db.expect(schema.name());
        let dead: std::collections::HashSet<u32> = deletions
            .iter()
            .filter(|t| t.atom == atom)
            .map(|t| t.index)
            .collect();
        let mut inst = RelationInstance::new(rel.schema().clone());
        for idx in rel.indices() {
            if !dead.contains(&idx) {
                inst.insert(&rel.tuple_vec(idx));
            }
        }
        out.add(inst);
    }
    out
}

/// Number of outputs removed by deleting `deletions` from `db`:
/// `|Q(D)| − |Q(D − S)|`.
///
/// Plans the query once and measures the "after" state by masked
/// re-execution of the same plan and indexes — no database copy is
/// built. (Callers holding a
/// [`PreparedQuery`](super::prepared::PreparedQuery) get the same
/// measurement with the plan, indexes, *and* before-state cached.)
pub fn removed_outputs(query: &Query, db: &Database, deletions: &[TupleRef]) -> u64 {
    if deletions.is_empty() {
        return 0;
    }
    let plan = QueryPlan::new(db, query.atoms(), query.head());
    if plan.rels().iter().any(|&r| db.relation_by_id(r).is_empty()) {
        return 0;
    }
    let indexes = plan.build_indexes(db);
    let before = plan.execute(db, &indexes).output_count();
    let mut mask = AliveMask::all_alive(db, query.atoms());
    mask.kill_all(deletions);
    let after = plan.execute_masked(db, &indexes, &mask).output_count();
    before - after
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use adp_engine::schema::attrs;

    #[test]
    fn apply_and_measure() {
        let q = parse_query("Q(A,B) :- R(A), S(A,B)").unwrap();
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("S", attrs(&["A", "B"]), &[&[1, 1], &[1, 2], &[2, 1]]);
        // deleting R(1) removes outputs (1,1) and (1,2)
        let removed = removed_outputs(&q, &db, &[TupleRef::new(0, 0)]);
        assert_eq!(removed, 2);
        // empty deletion removes nothing
        assert_eq!(removed_outputs(&q, &db, &[]), 0);
    }

    #[test]
    fn deletions_respect_atom_coordinates() {
        let q = parse_query("Q(A,B) :- R(A), S(A,B)").unwrap();
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("S", attrs(&["A", "B"]), &[&[1, 1], &[2, 9]]);
        // index 0 of atom 1 is S(1,1), not R(1)
        let removed = removed_outputs(&q, &db, &[TupleRef::new(1, 0)]);
        assert_eq!(removed, 1);
        let after = apply_deletions(&q, &db, &[TupleRef::new(1, 0)]);
        assert_eq!(after.expect("R").len(), 2);
        assert_eq!(after.expect("S").len(), 1);
    }
}
