//! Views: a (sub)query plus a transformed database, with bookkeeping that
//! maps every tuple back to the **original** database.
//!
//! The `ComputeADP` recursion transforms its input — dropping universal
//! attributes, filtering partitions, selecting connected components,
//! applying selection predicates — and solutions must nevertheless be
//! reported against the caller's database. A [`View`] carries:
//!
//! * `atom_map[i]`  — the original atom index behind view atom `i`,
//! * `tuple_map[i]` — per view atom, new-tuple-index → original-tuple-index
//!   (`None` = identity).
//!
//! All transformations used by the solver are tuple-injective (partition
//! groups share a universal-attribute value before projection; selections
//! fix the selected attributes), so the maps stay simple vectors.

use super::prepared::{build_delta_provenance, PlannedEval};
use crate::error::SolveError;
use crate::query::Query;
use adp_engine::database::Database;
use adp_engine::delta::DeltaProvenance;
use adp_engine::join::{evaluate, EvalResult};
use adp_engine::provenance::{ProvenanceIndex, TupleRef};
use std::sync::Arc;

/// A query over a transformed database with provenance back to the
/// original database.
#[derive(Clone)]
pub struct View {
    /// The (sub)query evaluated by this view.
    pub query: Query,
    /// The database the view's query runs against.
    pub db: Arc<Database>,
    /// View atom index → original atom index.
    pub atom_map: Vec<usize>,
    /// Per view atom: new tuple index → original tuple index (`None` =
    /// identity).
    pub tuple_map: Vec<Option<Vec<u32>>>,
    /// Shared plan/index/eval cache for exactly this (query, db) pair.
    /// Carried only by root views built from a
    /// [`PreparedQuery`](super::prepared::PreparedQuery); derived views
    /// run over transformed databases, so they drop it.
    planned: Option<Arc<PlannedEval>>,
}

impl View {
    /// The root view: the user's query over the user's database.
    pub fn root(query: Query, db: Arc<Database>) -> Self {
        let n = query.atom_count();
        View {
            query,
            db,
            atom_map: (0..n).collect(),
            tuple_map: vec![None; n],
            planned: None,
        }
    }

    /// A root view carrying a shared evaluation cache (plan-once /
    /// execute-many). `planned` must have been compiled for exactly
    /// `(query, db)`.
    pub(crate) fn root_planned(query: Query, db: Arc<Database>, planned: Arc<PlannedEval>) -> Self {
        let n = query.atom_count();
        View {
            query,
            db,
            atom_map: (0..n).collect(),
            tuple_map: vec![None; n],
            planned: Some(planned),
        }
    }

    /// Evaluates the view's query over its database. Root views built
    /// from a `PreparedQuery` return the cached evaluation (computing it
    /// at most once); derived views compile-and-run a fresh plan.
    pub fn eval(&self) -> Arc<EvalResult> {
        match &self.planned {
            Some(p) => p.eval(),
            None => Arc::new(evaluate(&self.db, self.query.atoms(), self.query.head())),
        }
    }

    /// A mutable, scored [`DeltaProvenance`] over `eval` (this view's
    /// already-computed evaluation) for one incremental solve. Root
    /// views built from a
    /// [`PreparedQuery`](super::prepared::PreparedQuery) clone the
    /// planned template (postings and scores are derived at most once
    /// per prepared query); derived views build one from the passed
    /// evaluation — never re-joining — fanning the scoring pass over
    /// the pool when `parallel` allows.
    pub(crate) fn delta_provenance(
        &self,
        eval: &EvalResult,
        parallel: bool,
    ) -> Result<DeltaProvenance, SolveError> {
        match &self.planned {
            Some(p) => Ok(p.delta_template(parallel)?.as_ref().clone()),
            None => Ok(build_delta_provenance(eval, parallel)?),
        }
    }

    /// The pristine (all-alive) provenance index over `eval` (this
    /// view's already-computed evaluation), shared via the planned
    /// cache for root views.
    pub(crate) fn pristine_provenance(
        &self,
        eval: &EvalResult,
    ) -> Result<Arc<ProvenanceIndex>, SolveError> {
        match &self.planned {
            Some(p) => Ok(p.provenance()?),
            None => Ok(Arc::new(ProvenanceIndex::try_new(eval)?)),
        }
    }

    /// Translates a view-local tuple reference into original coordinates.
    pub fn to_original(&self, atom: usize, index: u32) -> TupleRef {
        let orig_atom = self.atom_map[atom];
        let orig_index = match &self.tuple_map[atom] {
            None => index,
            Some(map) => map[index as usize],
        };
        TupleRef::new(orig_atom, orig_index)
    }

    /// Derives a view over a subset of atoms (connected components). The
    /// database is shared; tuple maps are inherited.
    pub fn subview(&self, atom_indices: &[usize]) -> View {
        View {
            query: self.query.subquery(atom_indices),
            db: Arc::clone(&self.db),
            atom_map: atom_indices.iter().map(|&i| self.atom_map[i]).collect(),
            tuple_map: atom_indices
                .iter()
                .map(|&i| self.tuple_map[i].clone())
                .collect(),
            planned: None,
        }
    }

    /// Derives a view with a new database and fresh per-atom tuple maps
    /// (new index → index in *this* view's db); composes them with this
    /// view's maps so the result again points at the original database.
    pub fn rebased(&self, query: Query, db: Database, new_maps: Vec<Option<Vec<u32>>>) -> View {
        assert_eq!(new_maps.len(), self.tuple_map.len());
        let tuple_map = new_maps
            .into_iter()
            .zip(&self.tuple_map)
            .map(|(new, old)| match (new, old) {
                (None, old) => old.clone(),
                (Some(n), None) => Some(n),
                (Some(n), Some(o)) => Some(n.iter().map(|&i| o[i as usize]).collect()),
            })
            .collect();
        View {
            query,
            db: Arc::new(db),
            atom_map: self.atom_map.clone(),
            tuple_map,
            planned: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use adp_engine::schema::attrs;

    fn setup() -> View {
        let q = parse_query("Q(A,B) :- R(A), S(A,B)").unwrap();
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2], &[3]]);
        db.add_relation("S", attrs(&["A", "B"]), &[&[1, 5], &[2, 6]]);
        View::root(q, Arc::new(db))
    }

    #[test]
    fn root_is_identity() {
        let v = setup();
        assert_eq!(v.to_original(1, 1), TupleRef::new(1, 1));
    }

    #[test]
    fn subview_remaps_atoms() {
        let v = setup();
        let s = v.subview(&[1]);
        assert_eq!(s.query.atoms()[0].name(), "S");
        assert_eq!(s.to_original(0, 0), TupleRef::new(1, 0));
    }

    #[test]
    fn rebased_composes_tuple_maps() {
        let v = setup();
        // filter R to indices [1,2] of the original
        let mut db2 = Database::new();
        db2.add_relation("R", attrs(&["A"]), &[&[2], &[3]]);
        db2.add_relation("S", attrs(&["A", "B"]), &[&[1, 5], &[2, 6]]);
        let q = v.query.clone();
        let v2 = v.rebased(q, db2, vec![Some(vec![1, 2]), None]);
        assert_eq!(v2.to_original(0, 0), TupleRef::new(0, 1));
        assert_eq!(v2.to_original(0, 1), TupleRef::new(0, 2));
        // compose once more: filter again
        let mut db3 = Database::new();
        db3.add_relation("R", attrs(&["A"]), &[&[3]]);
        db3.add_relation("S", attrs(&["A", "B"]), &[&[2, 6]]);
        let q = v2.query.clone();
        let v3 = v2.rebased(q, db3, vec![Some(vec![1]), Some(vec![1])]);
        assert_eq!(v3.to_original(0, 0), TupleRef::new(0, 2));
        assert_eq!(v3.to_original(1, 0), TupleRef::new(1, 1));
    }
}
