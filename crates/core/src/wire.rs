//! Hand-rolled binary (de)serialization for the network front door.
//!
//! The workspace's no-external-deps discipline rules out serde, so the
//! wire layer is built from three small pieces that live here — next to
//! the types they encode — instead of in `adp-server`, so any future
//! front door (a different protocol, a replication log) reuses the same
//! byte layout and the solver types can never drift from their encoding
//! unnoticed:
//!
//! * primitive little-endian writers ([`put_u32`], [`put_str`], …) and
//!   a bounds-checked [`WireReader`] whose every accessor returns a
//!   typed [`WireError`] instead of panicking or truncating;
//! * a [`crc32`] (IEEE, reflected) used by both the protocol's frame
//!   trailer and the persistence layer's record checksums;
//! * encode/decode hooks for the solver's response surface:
//!   [`TupleRef`] deletion sets ([`put_tuple_refs`] / [`get_tuple_refs`])
//!   and the full [`AdpOutcome`] ([`put_outcome`] / [`get_outcome`]).
//!
//! Layout conventions, shared by every user: integers are little-endian;
//! strings and lists are `u32`-length-prefixed; options are a `u8`
//! presence tag followed by the value. Decoding is strict — trailing
//! bytes, short buffers, and invalid tags all surface as [`WireError`] —
//! so a corrupted or truncated frame can never be half-read into a
//! plausible value.

use crate::solver::AdpOutcome;
use adp_engine::provenance::TupleRef;
use std::fmt;

/// Decoding failures: what was expected, and where the buffer fell
/// short or held an invalid tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value at `offset` could be read.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Byte offset the read started at.
        offset: usize,
    },
    /// A tag byte held a value outside its enum's range.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length prefix or count does not fit the remaining buffer (or
    /// the platform's `usize`), so the value it guards cannot exist.
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The claimed length.
        len: u64,
    },
    /// A string field held invalid UTF-8.
    BadUtf8 {
        /// What was being decoded.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, offset } => {
                write!(f, "wire: buffer truncated reading {what} at byte {offset}")
            }
            WireError::BadTag { what, tag } => {
                write!(f, "wire: invalid tag {tag} for {what}")
            }
            WireError::BadLength { what, len } => {
                write!(f, "wire: implausible length {len} for {what}")
            }
            WireError::BadUtf8 { what } => write!(f, "wire: invalid UTF-8 in {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Writers. Infallible except for lengths, which must fit their u32
// prefix — oversized values are a caller bug surfaced as a typed error
// by `len_u32`, never a silent `as` truncation.
// ---------------------------------------------------------------------

/// Converts a collection length to its `u32` wire prefix, or a typed
/// error when it cannot be represented (no `as` truncation).
pub fn len_u32(what: &'static str, len: usize) -> Result<u32, WireError> {
    u32::try_from(len).map_err(|_| WireError::BadLength {
        what,
        len: len as u64,
    })
}

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (round-trips NaN
/// payloads byte-exactly).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a `bool` as one byte (0 or 1).
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, v: &str) -> Result<(), WireError> {
    put_u32(buf, len_u32("string", v.len())?);
    buf.extend_from_slice(v.as_bytes());
    Ok(())
}

/// Appends a `u32`-length-prefixed byte blob.
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) -> Result<(), WireError> {
    put_u32(buf, len_u32("byte blob", v.len())?);
    buf.extend_from_slice(v);
    Ok(())
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

/// Bounds-checked sequential reader over a received byte buffer. Every
/// accessor advances the cursor and fails typed instead of panicking.
#[derive(Clone, Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset (for error reporting by callers).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Fails unless the buffer was consumed exactly — strict decoders
    /// call this last so trailing garbage is never silently accepted.
    pub fn finish(self, what: &'static str) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::BadLength {
                what,
                len: self.remaining() as u64,
            })
        }
    }

    fn take(&mut self, what: &'static str, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::BadLength {
            what,
            len: n as u64,
        })?;
        if end > self.buf.len() {
            return Err(WireError::Truncated {
                what,
                offset: self.pos,
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(what, 1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(what, 2)?;
        // adp-lint note: infallible — take() returned exactly 2 bytes.
        let mut a = [0u8; 2];
        a.copy_from_slice(b);
        Ok(u16::from_le_bytes(a))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(what, 4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(what, 8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self, what: &'static str) -> Result<i64, WireError> {
        let b = self.take(what, 8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(i64::from_le_bytes(a))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Reads a `bool` byte, rejecting anything but 0 or 1.
    pub fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what, tag }),
        }
    }

    /// Reads a `u32` list/collection count, pre-validating it against
    /// the bytes actually remaining (`min_item_bytes` per element) so a
    /// corrupted count cannot trigger a huge allocation.
    pub fn count(&mut self, what: &'static str, min_item_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        if n.checked_mul(min_item_bytes.max(1))
            .is_none_or(|need| need > self.remaining())
        {
            return Err(WireError::BadLength {
                what,
                len: n as u64,
            });
        }
        Ok(n)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let n = self.count(what, 1)?;
        let b = self.take(what, n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadUtf8 { what })
    }

    /// Reads a `u32`-length-prefixed byte blob.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let n = self.count(what, 1)?;
        self.take(what, n)
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected — the zlib polynomial). Table-driven;
// the table is computed once at first use.
// ---------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            // adp-lint: allow(truncating-cast) -- i ranges over 0..256, far below u32::MAX.
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE, reflected) of `bytes` — the checksum guarding protocol
/// frames and persistence records against truncation and bit flips.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Solver-surface hooks.
// ---------------------------------------------------------------------

/// Encodes a deletion set: count, then `(atom: u32, index: u32)` pairs.
pub fn put_tuple_refs(buf: &mut Vec<u8>, refs: &[TupleRef]) -> Result<(), WireError> {
    put_u32(buf, len_u32("deletion set", refs.len())?);
    for t in refs {
        put_u32(buf, len_u32("tuple-ref atom", t.atom)?);
        put_u32(buf, t.index);
    }
    Ok(())
}

/// Decodes a deletion set written by [`put_tuple_refs`].
pub fn get_tuple_refs(r: &mut WireReader<'_>) -> Result<Vec<TupleRef>, WireError> {
    let n = r.count("deletion set", 8)?;
    let mut refs = Vec::with_capacity(n);
    for _ in 0..n {
        let atom = r.u32("tuple-ref atom")? as usize;
        let index = r.u32("tuple-ref index")?;
        refs.push(TupleRef::new(atom, index));
    }
    Ok(refs)
}

/// Encodes a full [`AdpOutcome`]: the solver's entire answer surface,
/// so a remote client sees byte-for-byte what an in-process caller
/// would.
pub fn put_outcome(buf: &mut Vec<u8>, out: &AdpOutcome) -> Result<(), WireError> {
    put_u64(buf, out.cost);
    put_u64(buf, out.achieved);
    put_bool(buf, out.exact);
    put_bool(buf, out.truncated);
    put_u64(buf, out.output_count);
    match &out.solution {
        None => put_u8(buf, 0),
        Some(refs) => {
            put_u8(buf, 1);
            put_tuple_refs(buf, refs)?;
        }
    }
    Ok(())
}

/// Decodes an [`AdpOutcome`] written by [`put_outcome`].
pub fn get_outcome(r: &mut WireReader<'_>) -> Result<AdpOutcome, WireError> {
    let cost = r.u64("outcome cost")?;
    let achieved = r.u64("outcome achieved")?;
    let exact = r.bool("outcome exact")?;
    let truncated = r.bool("outcome truncated")?;
    let output_count = r.u64("outcome output_count")?;
    let solution = match r.u8("outcome solution tag")? {
        0 => None,
        1 => Some(get_tuple_refs(r)?),
        tag => {
            return Err(WireError::BadTag {
                what: "outcome solution tag",
                tag,
            })
        }
    };
    Ok(AdpOutcome {
        cost,
        achieved,
        exact,
        truncated,
        output_count,
        solution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, 0.25);
        put_bool(&mut buf, true);
        put_str(&mut buf, "héllo").unwrap();
        put_bytes(&mut buf, &[1, 2, 3]).unwrap();

        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 0xBEEF);
        assert_eq!(r.u32("c").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(r.i64("e").unwrap(), -42);
        assert_eq!(r.f64("f").unwrap(), 0.25);
        assert!(r.bool("g").unwrap());
        assert_eq!(r.str("h").unwrap(), "héllo");
        assert_eq!(r.bytes("i").unwrap(), &[1, 2, 3]);
        r.finish("tail").unwrap();
    }

    #[test]
    fn truncated_buffers_fail_typed_at_every_accessor() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 9);
        let mut r = WireReader::new(&buf[..5]);
        assert_eq!(
            r.u64("value"),
            Err(WireError::Truncated {
                what: "value",
                offset: 0
            })
        );
        // A count that claims more elements than bytes remain.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1000);
        let mut r = WireReader::new(&buf);
        assert!(matches!(
            r.count("list", 8),
            Err(WireError::BadLength { len: 1000, .. })
        ));
    }

    #[test]
    fn strict_decoding_rejects_trailing_bytes_and_bad_tags() {
        let mut buf = Vec::new();
        put_bool(&mut buf, false);
        put_u8(&mut buf, 3);
        let mut r = WireReader::new(&buf);
        assert!(!r.bool("flag").unwrap());
        assert!(r.clone().finish("frame").is_err());
        assert_eq!(
            r.bool("flag"),
            Err(WireError::BadTag {
                what: "flag",
                tag: 3
            })
        );
    }

    #[test]
    fn bad_utf8_is_typed() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.str("name"), Err(WireError::BadUtf8 { what: "name" }));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vectors (zlib's crc32).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"epoch snapshot payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn outcome_round_trips_both_solution_variants() {
        for solution in [
            None,
            Some(vec![]),
            Some(vec![TupleRef::new(0, 3), TupleRef::new(2, u32::MAX)]),
        ] {
            let out = AdpOutcome {
                cost: 11,
                achieved: 12,
                exact: true,
                truncated: false,
                output_count: 99,
                solution,
            };
            let mut buf = Vec::new();
            put_outcome(&mut buf, &out).unwrap();
            let mut r = WireReader::new(&buf);
            let got = get_outcome(&mut r).unwrap();
            r.finish("outcome").unwrap();
            assert_eq!(got, out);
        }
    }

    #[test]
    fn outcome_decode_rejects_corruption() {
        let out = AdpOutcome {
            cost: 1,
            achieved: 1,
            exact: false,
            truncated: true,
            output_count: 2,
            solution: Some(vec![TupleRef::new(1, 2)]),
        };
        let mut buf = Vec::new();
        put_outcome(&mut buf, &out).unwrap();
        // Truncate anywhere: always a typed error, never a panic.
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            assert!(get_outcome(&mut r).is_err(), "cut at {cut} decoded");
        }
        // Corrupt the solution tag.
        let tag_pos = 8 + 8 + 1 + 1 + 8;
        let mut bad = buf.clone();
        bad[tag_pos] = 9;
        let mut r = WireReader::new(&bad);
        assert!(matches!(
            get_outcome(&mut r),
            Err(WireError::BadTag { tag: 9, .. })
        ));
    }
}
