//! Planted-circle social graph, standing in for the SNAP Facebook
//! ego-network around user 414 (paper §8.1: 7 circles, 150 nodes, 3386
//! edges, bi-directed, edges dealt into `R1..R4` by rank mod 4).
//!
//! The generator plants `circles` communities with dense intra-circle
//! connectivity and sparse inter-circle edges, reproducing the degree
//! skew and clustering the experiments exercise, then splits the
//! bi-directed edge list round-robin into four binary relations.

use adp_engine::database::Database;
use adp_engine::relation::RelationInstance;
use adp_engine::schema::{attrs, RelationSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the ego-network generator.
#[derive(Clone, Debug)]
pub struct EgoConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of planted circles.
    pub circles: usize,
    /// Target number of undirected edges (before bi-direction).
    pub edges: usize,
    /// Probability an edge is intra-circle.
    pub intra_share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EgoConfig {
    /// Matches the paper's network 414: 150 nodes, 7 circles, 3386
    /// directed (bi-directed) edges ⇒ 1693 undirected.
    fn default() -> Self {
        EgoConfig {
            nodes: 150,
            circles: 7,
            edges: 1693,
            intra_share: 0.85,
            seed: 414,
        }
    }
}

/// Generates the four-relation edge database `R1..R4` (attributes depend
/// on the query; relations are created over generic endpoints `(X, Y)`
/// and queries bind them positionally, as the paper's `Q2..Q5` do).
///
/// Returns the database plus the undirected edge list.
pub fn ego_network(cfg: &EgoConfig) -> (Database, Vec<(u64, u64)>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let circle_of: Vec<usize> = (0..cfg.nodes).map(|i| i % cfg.circles).collect();
    let mut edges: Vec<(u64, u64)> = Vec::with_capacity(cfg.edges);
    let mut seen = std::collections::HashSet::new();
    let mut attempts = 0usize;
    while edges.len() < cfg.edges && attempts < cfg.edges * 50 {
        attempts += 1;
        let u = rng.gen_range(0..cfg.nodes);
        let v = if rng.gen_bool(cfg.intra_share) {
            // intra-circle partner
            let c = circle_of[u];
            let members: Vec<usize> = (0..cfg.nodes)
                .filter(|&x| circle_of[x] == c && x != u)
                .collect();
            if members.is_empty() {
                continue;
            }
            members[rng.gen_range(0..members.len())]
        } else {
            rng.gen_range(0..cfg.nodes)
        };
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push((key.0 as u64, key.1 as u64));
        }
    }

    // Bi-direct and deal into R1..R4 by rank mod 4 (paper §8.1).
    let mut directed: Vec<(u64, u64)> = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in &edges {
        directed.push((u, v));
        directed.push((v, u));
    }
    let mut db = Database::new();
    // Generic endpoint names; queries rename positionally.
    let names = ["R1", "R2", "R3", "R4"];
    let attr_pairs = [["A", "B"], ["B", "C"], ["C", "D"], ["D", "E"]];
    let mut rels: Vec<RelationInstance> = names
        .iter()
        .zip(attr_pairs.iter())
        .map(|(n, ab)| RelationInstance::new(RelationSchema::new(n, attrs(ab))))
        .collect();
    for (rank, &(u, v)) in directed.iter().enumerate() {
        rels[rank % 4].insert(&[u, v]);
    }
    for r in rels {
        db.add(r);
    }
    (db, edges)
}

/// Rebuilds the four edge relations with custom names/attributes so they
/// match a specific query's atoms (e.g. `Q5` needs `R1(A,E), R2(B,E),
/// R3(C,E)`).
pub fn ego_database_for(edges: &[(u64, u64)], schemas: &[RelationSchema]) -> Database {
    let mut directed: Vec<(u64, u64)> = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in edges {
        directed.push((u, v));
        directed.push((v, u));
    }
    let mut db = Database::new();
    let mut rels: Vec<RelationInstance> = schemas
        .iter()
        .map(|s| {
            assert_eq!(s.arity(), 2, "edge relations are binary");
            RelationInstance::new(s.clone())
        })
        .collect();
    let n = rels.len();
    for (rank, &(u, v)) in directed.iter().enumerate() {
        rels[rank % n].insert(&[u, v]);
    }
    for r in rels {
        db.add(r);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_scale() {
        let (db, edges) = ego_network(&EgoConfig::default());
        assert!(edges.len() >= 1500, "enough edges: {}", edges.len());
        let total: usize = db.total_tuples();
        // bi-directed: about 2 × edges across 4 relations
        assert!(total >= edges.len() * 2 - 8);
        for name in ["R1", "R2", "R3", "R4"] {
            assert!(db.expect(name).len() > 100);
        }
    }

    #[test]
    fn deterministic() {
        let (a, ea) = ego_network(&EgoConfig::default());
        let (b, eb) = ego_network(&EgoConfig::default());
        assert_eq!(ea, eb);
        assert_eq!(a.expect("R1").to_rows(), b.expect("R1").to_rows());
    }

    #[test]
    fn no_self_loops() {
        let (_, edges) = ego_network(&EgoConfig::default());
        assert!(edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn custom_schemas() {
        let (_, edges) = ego_network(&EgoConfig {
            nodes: 30,
            circles: 3,
            edges: 60,
            ..Default::default()
        });
        let schemas = vec![
            RelationSchema::new("R1", attrs(&["A", "E"])),
            RelationSchema::new("R2", attrs(&["B", "E"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ];
        let db = ego_database_for(&edges, &schemas);
        assert_eq!(db.relations().len(), 3);
        assert!(db.total_tuples() > 0);
    }
}
