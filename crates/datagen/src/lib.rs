//! # adp-datagen
//!
//! Deterministic workload generators reproducing the paper's evaluation
//! datasets (§8.1):
//!
//! * [`tpch`] — a TPC-H-shaped Supplier/PartSupp/LineItem chain (we
//!   cannot ship `dbgen` output, so a seeded synthetic generator
//!   reproduces the schema and foreign-key fan-out);
//! * [`ego`] — a planted-circle social graph standing in for the SNAP
//!   Facebook ego-network 414 (150 nodes, 3386 edges, 7 circles), with
//!   bi-directed edges dealt into `R1..R4` by rank mod 4;
//! * [`zipf`] — the §8.4 synthetic data: `R2(A,B)` with Zipf(α) degrees
//!   on `A`, uniform on `B`, `0.2·N` distinct values per side;
//! * [`uniform`] — the §8.5 synthetic data for `Q7`/`Q8`: uniform random
//!   tuples over small integer domains.
//!
//! Every generator takes an explicit seed; identical seeds give identical
//! databases on every platform.

#![forbid(unsafe_code)]

pub mod ego;
pub mod queries;
pub mod tpch;
pub mod uniform;
pub mod zipf;

pub use ego::ego_network;
pub use tpch::tpch_chain;
pub use uniform::uniform_db;
pub use zipf::zipf_pair;
