//! The paper's evaluation queries (§8.1), ready-parsed.

use adp_core::query::{parse_query, Query};

/// `Q1(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)` — TPC-H chain
/// (NP-hard without selection).
pub fn q1() -> Query {
    parse_query("Q1(NK,SK,PK,OK) :- S(NK,SK), PS(SK,PK), L(OK,PK)").unwrap()
}

/// `Q2(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)` — length-3 path.
pub fn q2() -> Query {
    parse_query("Q2(A,B,C,D) :- R1(A,B), R2(B,C), R3(C,D)").unwrap()
}

/// `Q3(A,B,C) :- R1(A,B), R2(B,C), R3(C,A)` — triangle.
pub fn q3() -> Query {
    parse_query("Q3(A,B,C) :- R1(A,B), R2(B,C), R3(C,A)").unwrap()
}

/// `Q4(A,C,E,G) :- R1(A,B), R2(B,C), R3(E,F), R4(F,G)` — two 2-paths.
pub fn q4() -> Query {
    parse_query("Q4(A,C,E,G) :- R1(A,B), R2(B,C), R3(E,F), R4(F,G)").unwrap()
}

/// `Q5(A,B,C) :- R1(A,E), R2(B,E), R3(C,E)` — common friend.
pub fn q5() -> Query {
    parse_query("Q5(A,B,C) :- R1(A,E), R2(B,E), R3(C,E)").unwrap()
}

/// `Q6(A,B) :- R1(A), R2(A,B)` — poly-time singleton (§8.4).
pub fn q6() -> Query {
    parse_query("Q6(A,B) :- R1(A), R2(A,B)").unwrap()
}

/// `Q_path(A,B) :- R1(A), R2(A,B), R3(B)` — NP-hard core (§8.4).
pub fn qpath() -> Query {
    parse_query("Qpath(A,B) :- R1(A), R2(A,B), R3(B)").unwrap()
}

/// `Q7` — singleton query with three universal attributes (§8.5).
pub fn q7() -> Query {
    parse_query("Q7(A,B,C,D,E,F,G) :- R1(A,B,C), R2(A,B,C,D,E), R3(A,B,C,D,G), R4(A,B,C,F)")
        .unwrap()
}

/// `Q8` — disconnected query with three easy components (§8.5).
pub fn q8() -> Query {
    parse_query(
        "Q8(A1,B1,A2,B2,A3,B3) :- R11(A1), R12(A1,B1), R21(A2), R22(A2,B2), R31(A3), R32(A3,B3)",
    )
    .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_core::analysis::is_ptime;

    #[test]
    fn hardness_matches_paper() {
        // §8.1: Q1..Q5 and Qpath are NP-hard; Q6, Q7, Q8 are poly-time.
        for (q, hard) in [
            (q1(), true),
            (q2(), true),
            (q3(), true),
            (q4(), true),
            (q5(), true),
            (qpath(), true),
            (q6(), false),
            (q7(), false),
            (q8(), false),
        ] {
            assert_eq!(is_ptime(&q), !hard, "{q}");
        }
    }
}
