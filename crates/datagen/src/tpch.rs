//! TPC-H-shaped chain workload (paper §8.1).
//!
//! Schema: `Supplier(NK, SK)`, `PartSupp(SK, PK)`, `LineItem(OK, PK)` —
//! the three-relation chain behind the paper's `Q1`. The generator
//! reproduces the shape the paper's experiments depend on: a supplier
//! pool, parts supplied by multiple suppliers, and line items referencing
//! parts with a configurable hot part (for the `σ PK = hot` experiments).

use adp_engine::database::Database;
use adp_engine::schema::attrs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the TPC-H-like chain generator.
#[derive(Clone, Debug)]
pub struct TpchConfig {
    /// Total tuples across the three relations (roughly evenly split).
    pub total_tuples: usize,
    /// Number of distinct parts.
    pub parts: usize,
    /// Number of distinct suppliers.
    pub suppliers: usize,
    /// Number of distinct nations.
    pub nations: usize,
    /// Fraction (0..=1) of PartSupp/LineItem rows pinned to the hot part
    /// (`PK = 0`), used by the selection experiments.
    pub hot_part_share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TpchConfig {
    /// A laptop-scale default mirroring the paper's proportions.
    pub fn scaled(total_tuples: usize, seed: u64) -> Self {
        TpchConfig {
            total_tuples,
            parts: (total_tuples / 10).max(4),
            suppliers: (total_tuples / 6).max(4),
            nations: 25,
            hot_part_share: 0.02,
            seed,
        }
    }
}

/// Generates the Supplier/PartSupp/LineItem chain database.
///
/// Rows stream straight into the columnar relation stores — no
/// intermediate `Vec<Tuple>` is materialized, so a 10M-row instance
/// costs the columns themselves plus one scratch row. Relations reserve
/// their final capacity up front.
pub fn tpch_chain(cfg: &TpchConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_each = (cfg.total_tuples / 3).max(1);
    let mut db = Database::new();

    db.create(adp_engine::schema::RelationSchema::new(
        "S",
        attrs(&["NK", "SK"]),
    ));
    db.create(adp_engine::schema::RelationSchema::new(
        "PS",
        attrs(&["SK", "PK"]),
    ));
    db.create(adp_engine::schema::RelationSchema::new(
        "L",
        attrs(&["OK", "PK"]),
    ));
    for name in ["S", "PS", "L"] {
        db.relation_mut(name).unwrap().reserve(n_each);
    }

    // RNG draw order matches the original batch generator (all S rows,
    // then PS, then L), so seeds keep producing identical databases.
    let s = db.relation_mut("S").unwrap();
    for sk in 0..n_each as u64 {
        let sk = sk % cfg.suppliers as u64;
        let nk = rng.gen_range(0..cfg.nations as u64);
        s.insert(&[nk, sk]);
    }
    let ps = db.relation_mut("PS").unwrap();
    for _ in 0..n_each {
        let sk = rng.gen_range(0..cfg.suppliers as u64);
        let pk = if rng.gen_bool(cfg.hot_part_share) {
            0
        } else {
            rng.gen_range(0..cfg.parts as u64)
        };
        ps.insert(&[sk, pk]);
    }
    let l = db.relation_mut("L").unwrap();
    for ok in 0..n_each as u64 {
        let pk = if rng.gen_bool(cfg.hot_part_share) {
            0
        } else {
            rng.gen_range(0..cfg.parts as u64)
        };
        l.insert(&[ok, pk]);
    }
    db
}

/// Generates the *post-selection* workload of §8.2: `N` surviving tuples
/// after `σ PK = 0` (every PartSupp/LineItem row references the hot
/// part). The paper's Figure 7–9 x-axis "input size" is exactly this
/// survivor count.
pub fn tpch_selected(n: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_each = (n / 3).max(1);
    let suppliers = (n_each / 2).max(2);
    let nations = 25u64;
    let mut db = Database::new();
    db.create(adp_engine::schema::RelationSchema::new(
        "S",
        attrs(&["NK", "SK"]),
    ));
    db.create(adp_engine::schema::RelationSchema::new(
        "PS",
        attrs(&["SK", "PK"]),
    ));
    db.create(adp_engine::schema::RelationSchema::new(
        "L",
        attrs(&["OK", "PK"]),
    ));
    for sk in 0..n_each as u64 {
        let sk = sk % suppliers as u64;
        db.insert("S", &[rng.gen_range(0..nations), sk]);
    }
    for sk in 0..n_each as u64 {
        db.insert("PS", &[sk % suppliers as u64, 0]);
    }
    for ok in 0..n_each as u64 {
        db.insert("L", &[ok, 0]);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selected_is_all_hot() {
        let db = tpch_selected(300, 3);
        assert!(db.expect("PS").iter().all(|t| t[1] == 0));
        assert!(db.expect("L").iter().all(|t| t[1] == 0));
        assert_eq!(db.expect("L").len(), 100);
    }

    #[test]
    fn deterministic() {
        let cfg = TpchConfig::scaled(300, 7);
        let a = tpch_chain(&cfg);
        let b = tpch_chain(&cfg);
        for name in ["S", "PS", "L"] {
            assert_eq!(a.expect(name).to_rows(), b.expect(name).to_rows());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = tpch_chain(&TpchConfig::scaled(300, 1));
        let b = tpch_chain(&TpchConfig::scaled(300, 2));
        assert_ne!(a.expect("PS").to_rows(), b.expect("PS").to_rows());
    }

    #[test]
    fn hot_part_is_present() {
        let cfg = TpchConfig {
            hot_part_share: 0.5,
            ..TpchConfig::scaled(600, 3)
        };
        let db = tpch_chain(&cfg);
        let hot = db.expect("PS").iter().filter(|t| t[1] == 0).count();
        assert!(hot > 50, "hot part should dominate: {hot}");
    }

    #[test]
    fn sizes_roughly_even() {
        let db = tpch_chain(&TpchConfig::scaled(900, 5));
        // dedup can shrink relations slightly
        assert!(db.expect("S").len() <= 300);
        assert!(db.expect("L").len() == 300);
        assert!(db.total_tuples() > 600);
    }
}
