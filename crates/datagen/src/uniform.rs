//! Uniform random data over small integer domains (paper §8.5).
//!
//! The optimization experiments (`Q7`, `Q8`) use "each tuple randomly
//! generated with a combination of integers between 1 and 100".

use adp_engine::database::Database;
use adp_engine::relation::RelationInstance;
use adp_engine::schema::RelationSchema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fills one relation instance per schema with `sizes[i]` uniform random
/// tuples over `1..=domain`.
pub fn uniform_db(schemas: &[RelationSchema], sizes: &[usize], domain: u64, seed: u64) -> Database {
    assert_eq!(schemas.len(), sizes.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for (schema, &n) in schemas.iter().zip(sizes) {
        let mut inst = RelationInstance::new(schema.clone());
        // `insert` dedups; keep drawing until the target size (or the
        // domain is exhausted).
        let capacity = (domain as u128).pow(schema.arity() as u32);
        let target = (n as u128).min(capacity) as usize;
        let mut guard = 0usize;
        while inst.len() < target && guard < n * 100 {
            guard += 1;
            let t: Vec<u64> = (0..schema.arity())
                .map(|_| rng.gen_range(1..=domain))
                .collect();
            inst.insert(&t);
        }
        db.add(inst);
    }
    db
}

/// Convenience: build a uniform database directly from a query's atoms.
pub fn uniform_db_for_query(
    query: &adp_core::query::Query,
    sizes: &[usize],
    domain: u64,
    seed: u64,
) -> Database {
    uniform_db(query.atoms(), sizes, domain, seed)
}

/// Q7 workload (§8.5) with a *shared key pool*: the paper draws each
/// relation's tuples uniformly over 1..=100, which makes the 3-attribute
/// join key `(A,B,C)` almost never match across four relations. To keep
/// `Q7(D)` non-trivial we draw the `(A,B,C)` prefix from a common pool of
/// `shared_keys` combinations and the remaining attributes uniformly —
/// the same optimization-ablation workload shape at joinable density
/// (substitution documented in DESIGN.md).
pub fn correlated_q7(
    query: &adp_core::query::Query,
    tuples_per_relation: usize,
    shared_keys: usize,
    domain: u64,
    seed: u64,
) -> Database {
    use adp_engine::schema::Attr;
    let mut rng = StdRng::seed_from_u64(seed);
    let pool: Vec<[u64; 3]> = (0..shared_keys)
        .map(|_| {
            [
                rng.gen_range(1..=domain),
                rng.gen_range(1..=domain),
                rng.gen_range(1..=domain),
            ]
        })
        .collect();
    let key_attrs = ["A", "B", "C"].map(Attr::new);
    let mut db = Database::new();
    for schema in query.atoms() {
        let mut inst = RelationInstance::new(schema.clone());
        let mut guard = 0;
        while inst.len() < tuples_per_relation && guard < tuples_per_relation * 100 {
            guard += 1;
            let key = pool[rng.gen_range(0..pool.len())];
            let t: Vec<u64> = schema
                .attrs()
                .iter()
                .map(|a| match key_attrs.iter().position(|k| k == a) {
                    Some(i) => key[i],
                    None => rng.gen_range(1..=domain),
                })
                .collect();
            inst.insert(&t);
        }
        db.add(inst);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use adp_engine::schema::attrs;

    #[test]
    fn exact_sizes_when_domain_allows() {
        let schemas = vec![
            RelationSchema::new("R", attrs(&["A", "B"])),
            RelationSchema::new("S", attrs(&["B", "C"])),
        ];
        let db = uniform_db(&schemas, &[50, 80], 100, 11);
        assert_eq!(db.expect("R").len(), 50);
        assert_eq!(db.expect("S").len(), 80);
    }

    #[test]
    fn domain_caps_size() {
        let schemas = vec![RelationSchema::new("R", attrs(&["A"]))];
        let db = uniform_db(&schemas, &[1000], 10, 1);
        assert_eq!(db.expect("R").len(), 10, "only 10 distinct unary tuples");
    }

    #[test]
    fn values_in_range() {
        let schemas = vec![RelationSchema::new("R", attrs(&["A", "B"]))];
        let db = uniform_db(&schemas, &[200], 7, 5);
        for t in db.expect("R").iter() {
            assert!(t.iter().all(|v| (1..=7).contains(&v)));
        }
    }

    #[test]
    fn query_driven_construction() {
        let q = adp_core::query::parse_query("Q(A,B) :- R(A), S(A,B)").unwrap();
        let db = uniform_db_for_query(&q, &[20, 30], 50, 2);
        assert_eq!(db.expect("R").len(), 20);
        assert_eq!(db.expect("S").len(), 30);
    }
}
