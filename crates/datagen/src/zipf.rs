//! Zipfian synthetic data (paper §8.4).
//!
//! Generates the relations behind `Q6(A,B) :- R1(A), R2(A,B)` and
//! `Q_path(A,B) :- R1(A), R2(A,B), R3(B)`: `R2` has `N` tuples whose `A`
//! degrees follow Zipf(α) over `0.2·N` distinct values, `B` uniform over
//! `0.2·N` values; `R1`/`R3` enumerate the distinct values.

use adp_engine::database::Database;
use adp_engine::schema::{attrs, RelationSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Zipf generator.
#[derive(Clone, Debug)]
pub struct ZipfConfig {
    /// Number of `R2` tuples (`N`).
    pub n: usize,
    /// Zipf skew parameter α (0 = uniform).
    pub alpha: f64,
    /// Distinct-value fraction for each side (paper: 0.2).
    pub distinct_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Include the `R3(B)` relation (for `Q_path`); `Q6` omits it.
    pub with_r3: bool,
}

impl ZipfConfig {
    /// Paper defaults: 0.2·N distinct values per side.
    pub fn new(n: usize, alpha: f64, seed: u64, with_r3: bool) -> Self {
        ZipfConfig {
            n,
            alpha,
            distinct_fraction: 0.2,
            seed,
            with_r3,
        }
    }
}

/// Samples an index in `0..n` with probability proportional to
/// `(i+1)^{-alpha}`, via an inverse-CDF table.
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with skew `alpha`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for c in cdf.iter_mut() {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws a rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Generates the Zipfian database: `R1(A)`, `R2(A,B)` and optionally
/// `R3(B)`.
pub fn zipf_pair(cfg: &ZipfConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let distinct = ((cfg.n as f64 * cfg.distinct_fraction) as usize).max(2);
    let zipf = ZipfSampler::new(distinct, cfg.alpha);

    let mut db = Database::new();
    db.create(RelationSchema::new("R1", attrs(&["A"])));
    db.create(RelationSchema::new("R2", attrs(&["A", "B"])));
    if cfg.with_r3 {
        db.create(RelationSchema::new("R3", attrs(&["B"])));
    }
    for a in 0..distinct as u64 {
        db.insert("R1", &[a]);
    }
    if cfg.with_r3 {
        for b in 0..distinct as u64 {
            db.insert("R3", &[b]);
        }
    }
    for _ in 0..cfg.n {
        let a = zipf.sample(&mut rng) as u64;
        let b = rng.gen_range(0..distinct as u64);
        db.insert("R2", &[a, b]);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let db = zipf_pair(&ZipfConfig::new(5000, 0.0, 1, true));
        let r2 = db.expect("R2");
        let distinct = db.expect("R1").len() as u64;
        let mut degree = vec![0u64; distinct as usize];
        for t in r2.iter() {
            degree[t[0] as usize] += 1;
        }
        let max = *degree.iter().max().unwrap();
        let min = *degree.iter().min().unwrap();
        assert!(max < min * 10 + 20, "uniform-ish degrees: {min}..{max}");
    }

    #[test]
    fn high_alpha_skews_hard() {
        let db = zipf_pair(&ZipfConfig::new(5000, 1.5, 1, false));
        let r2 = db.expect("R2");
        let head = r2.iter().filter(|t| t[0] == 0).count();
        assert!(
            head > r2.len() / 5,
            "rank-0 should dominate under α=1.5: {head}/{}",
            r2.len()
        );
    }

    #[test]
    fn with_r3_toggle() {
        assert!(zipf_pair(&ZipfConfig::new(100, 0.5, 2, true))
            .relation("R3")
            .is_some());
        assert!(zipf_pair(&ZipfConfig::new(100, 0.5, 2, false))
            .relation("R3")
            .is_none());
    }

    #[test]
    fn deterministic() {
        let a = zipf_pair(&ZipfConfig::new(500, 1.0, 9, true));
        let b = zipf_pair(&ZipfConfig::new(500, 1.0, 9, true));
        assert_eq!(a.expect("R2").to_rows(), b.expect("R2").to_rows());
    }

    #[test]
    fn sampler_distribution_monotone() {
        let s = ZipfSampler::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u64; 10];
        for _ in 0..20000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[1] > counts[9]);
    }
}
