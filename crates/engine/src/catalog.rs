//! Dense identifiers for attributes and relations.
//!
//! The plan-once/execute-many evaluation path ([`crate::plan`]) never
//! touches a `String` during execution: every attribute and relation
//! name is resolved to a dense `u32` id exactly once, at plan-build
//! time, through the [`Catalog`] a [`crate::Database`] maintains as
//! relations are registered.

use crate::schema::Attr;
use std::collections::HashMap;

/// Dense id of an attribute within one database's catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

/// Dense id of a relation within one database (its registration slot).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The relation's slot as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AttrId {
    /// The attribute's id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional attribute-name ↔ dense-id map owned by a `Database`.
///
/// Ids are assigned in first-registration order and never change, so a
/// `Vec` indexed by [`AttrId`] is a valid dense map over a database's
/// attribute space.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    ids: HashMap<Attr, AttrId>,
    attrs: Vec<Attr>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an attribute, returning its stable dense id.
    pub fn intern_attr(&mut self, attr: &Attr) -> AttrId {
        if let Some(&id) = self.ids.get(attr) {
            return id;
        }
        let id = AttrId(crate::ids::dense_id(self.attrs.len(), "attribute ids"));
        self.attrs.push(attr.clone());
        self.ids.insert(attr.clone(), id);
        id
    }

    /// Looks an attribute up without inserting.
    pub fn attr_id(&self, attr: &Attr) -> Option<AttrId> {
        self.ids.get(attr).copied()
    }

    /// Reverse lookup: the attribute behind a dense id.
    pub fn attr(&self, id: AttrId) -> &Attr {
        &self.attrs[id.index()]
    }

    /// Number of distinct attributes registered.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attr;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut c = Catalog::new();
        let a = c.intern_attr(&attr("A"));
        let b = c.intern_attr(&attr("B"));
        assert_eq!(a, AttrId(0));
        assert_eq!(b, AttrId(1));
        assert_eq!(c.intern_attr(&attr("A")), a);
        assert_eq!(c.attr_count(), 2);
        assert_eq!(c.attr(a), &attr("A"));
        assert_eq!(c.attr_id(&attr("B")), Some(b));
        assert_eq!(c.attr_id(&attr("Z")), None);
    }
}
