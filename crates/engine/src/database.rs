//! A database: a collection of named relation instances plus the
//! [`Catalog`] resolving attribute/relation names to dense ids for the
//! plan-once/execute-many evaluation path ([`crate::plan`]).

use crate::catalog::{AttrId, Catalog, RelId};
use crate::relation::RelationInstance;
use crate::schema::{Attr, RelationSchema};
use crate::value::Value;
use std::collections::HashMap;

/// An in-memory database instance `D`.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: Vec<RelationInstance>,
    by_name: HashMap<String, usize>,
    catalog: Catalog,
    /// Per relation slot: schema attributes as dense catalog ids, in
    /// schema (tuple) order.
    resolved: Vec<Vec<AttrId>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an empty relation with the given schema, returning its slot.
    /// Panics if the name is already taken.
    pub fn create(&mut self, schema: RelationSchema) -> usize {
        self.add(RelationInstance::new(schema))
    }

    /// Adds a pre-built relation instance.
    pub fn add(&mut self, rel: RelationInstance) -> usize {
        assert!(
            !self.by_name.contains_key(rel.name()),
            "relation {} already exists",
            rel.name()
        );
        let slot = self.relations.len();
        self.by_name.insert(rel.name().to_owned(), slot);
        self.resolved.push(
            rel.schema()
                .attrs()
                .iter()
                .map(|a| self.catalog.intern_attr(a))
                .collect(),
        );
        self.relations.push(rel);
        slot
    }

    /// The name/id catalog backing the planned evaluation path.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Dense id of a relation, if registered.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).map(|&i| RelId(i as u32))
    }

    /// The relation behind a dense id.
    pub fn relation_by_id(&self, id: RelId) -> &RelationInstance {
        &self.relations[id.index()]
    }

    /// A relation's schema attributes as dense catalog ids, in schema
    /// (tuple-position) order.
    pub fn resolved_attrs(&self, id: RelId) -> &[AttrId] {
        &self.resolved[id.index()]
    }

    /// Convenience: create a relation and fill it with tuples.
    pub fn add_relation(&mut self, name: &str, attrs: Vec<Attr>, tuples: &[&[Value]]) -> usize {
        let slot = self.create(RelationSchema::new(name, attrs));
        for t in tuples {
            self.relations[slot].insert(t);
        }
        slot
    }

    /// Looks a relation up by name.
    pub fn relation(&self, name: &str) -> Option<&RelationInstance> {
        self.by_name.get(name).map(|&i| &self.relations[i])
    }

    /// Mutable lookup by name.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut RelationInstance> {
        let i = *self.by_name.get(name)?;
        Some(&mut self.relations[i])
    }

    /// Looks a relation up by name, panicking with a clear message if absent.
    pub fn expect(&self, name: &str) -> &RelationInstance {
        self.relation(name)
            .unwrap_or_else(|| panic!("relation {name} not in database"))
    }

    /// All relations in insertion order.
    pub fn relations(&self) -> &[RelationInstance] {
        &self.relations
    }

    /// Names of all relations, in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.iter().map(|r| r.name())
    }

    /// Total number of stored tuples across all relations (`|D|`).
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Inserts a tuple into a named relation, creating nothing: the
    /// relation must exist. Returns the tuple index.
    pub fn insert(&mut self, name: &str, tuple: &[Value]) -> u32 {
        self.relation_mut(name)
            .unwrap_or_else(|| panic!("relation {name} not in database"))
            .insert(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attrs;

    #[test]
    fn create_insert_lookup() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A", "B"]), &[&[1, 2], &[3, 4]]);
        assert_eq!(db.expect("R").len(), 2);
        assert_eq!(db.total_tuples(), 2);
        assert!(db.relation("S").is_none());
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[]);
        db.add_relation("R", attrs(&["B"]), &[]);
    }

    #[test]
    fn insert_by_name() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[]);
        let idx = db.insert("R", &[7]);
        assert_eq!(idx, 0);
        assert_eq!(db.expect("R").tuple(0), &[7]);
    }

    #[test]
    fn names_in_insertion_order() {
        let mut db = Database::new();
        db.add_relation("S", attrs(&["A"]), &[]);
        db.add_relation("R", attrs(&["B"]), &[]);
        let names: Vec<_> = db.names().collect();
        assert_eq!(names, vec!["S", "R"]);
    }

    #[test]
    fn catalog_resolves_names_to_dense_ids() {
        use crate::catalog::{AttrId, RelId};
        use crate::schema::attr;
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A", "B"]), &[&[1, 2]]);
        db.add_relation("S", attrs(&["B", "C"]), &[]);
        let r = db.rel_id("R").unwrap();
        let s = db.rel_id("S").unwrap();
        assert_eq!((r, s), (RelId(0), RelId(1)));
        assert!(db.rel_id("T").is_none());
        assert_eq!(db.relation_by_id(r).name(), "R");
        // shared attribute B has one id in both schemas
        assert_eq!(db.resolved_attrs(r), &[AttrId(0), AttrId(1)]);
        assert_eq!(db.resolved_attrs(s)[0], AttrId(1));
        assert_eq!(db.catalog().attr(AttrId(2)), &attr("C"));
        assert_eq!(db.catalog().attr_count(), 3);
    }
}
