//! A database: a collection of named relation instances plus the
//! [`Catalog`] resolving attribute/relation names to dense ids for the
//! plan-once/execute-many evaluation path ([`crate::plan`]).

use crate::catalog::{AttrId, Catalog, RelId};
use crate::error::AdpError;
use crate::relation::RelationInstance;
use crate::schema::{Attr, RelationSchema};
use crate::value::Value;
use std::collections::HashMap;

/// An in-memory database instance `D`.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: Vec<RelationInstance>,
    by_name: HashMap<String, usize>,
    catalog: Catalog,
    /// Per relation slot: schema attributes as dense catalog ids, in
    /// schema (tuple) order.
    resolved: Vec<Vec<AttrId>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an empty relation with the given schema, returning its slot.
    /// Panics if the name is already taken; use
    /// [`try_add`](Self::try_add) for a typed error instead.
    pub fn create(&mut self, schema: RelationSchema) -> usize {
        self.add(RelationInstance::new(schema))
    }

    /// Adds a pre-built relation instance. Panics if the name is already
    /// taken; use [`try_add`](Self::try_add) for a typed error instead.
    pub fn add(&mut self, rel: RelationInstance) -> usize {
        // adp-lint: allow(panic-path) -- documented panicking convenience
        // wrapper; try_add is the checked API.
        self.try_add(rel).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`add`](Self::add) with a typed error: rejects a second relation
    /// under an existing name as [`AdpError::DuplicateRelation`] instead
    /// of panicking. On error the database is unchanged.
    pub fn try_add(&mut self, rel: RelationInstance) -> Result<usize, AdpError> {
        if self.by_name.contains_key(rel.name()) {
            return Err(AdpError::DuplicateRelation(rel.name().to_owned()));
        }
        let slot = self.relations.len();
        self.by_name.insert(rel.name().to_owned(), slot);
        self.resolved.push(
            rel.schema()
                .attrs()
                .iter()
                .map(|a| self.catalog.intern_attr(a))
                .collect(),
        );
        self.relations.push(rel);
        Ok(slot)
    }

    /// The name/id catalog backing the planned evaluation path.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Dense id of a relation, if registered.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name
            .get(name)
            .map(|&i| RelId(crate::ids::dense_id(i, "relation ids")))
    }

    /// The relation behind a dense id.
    pub fn relation_by_id(&self, id: RelId) -> &RelationInstance {
        &self.relations[id.index()]
    }

    /// Mutable access to the relation behind a dense id — the epoch
    /// mutation path (`delete_stable` / `restore_stable` on a cloned
    /// snapshot) addresses relations by slot, never by name.
    pub fn relation_mut_by_id(&mut self, id: RelId) -> &mut RelationInstance {
        &mut self.relations[id.index()]
    }

    /// Seals every relation's tail into immutable segments of at most
    /// `target_rows` rows (see
    /// [`RelationInstance::seal`]). After this, cloning the database
    /// shares all column data by `Arc` and a Δ-tuple mutation batch
    /// costs O(Δ), not O(n).
    pub fn seal_all(&mut self, target_rows: usize) {
        for r in &mut self.relations {
            r.seal(target_rows);
        }
    }

    /// Physically compacts every relation segment whose tombstone ratio
    /// reaches `tombstone_pct` percent; returns segments compacted (see
    /// [`RelationInstance::maybe_compact`]).
    pub fn maybe_compact_all(&mut self, tombstone_pct: u32) -> usize {
        self.relations
            .iter_mut()
            .map(|r| r.maybe_compact(tombstone_pct))
            .sum()
    }

    /// A relation's schema attributes as dense catalog ids, in schema
    /// (tuple-position) order.
    pub fn resolved_attrs(&self, id: RelId) -> &[AttrId] {
        &self.resolved[id.index()]
    }

    /// Convenience: create a relation and fill it with tuples. Panics on
    /// a duplicate relation name or an arity-mismatched tuple; use
    /// [`try_add_relation`](Self::try_add_relation) for typed errors.
    pub fn add_relation(&mut self, name: &str, attrs: Vec<Attr>, tuples: &[&[Value]]) -> usize {
        self.try_add_relation(name, attrs, tuples)
            // adp-lint: allow(panic-path) -- documented panicking
            // convenience wrapper; try_add_relation is the checked API.
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`add_relation`](Self::add_relation) with typed errors: a taken
    /// name is [`AdpError::DuplicateRelation`], a repeated schema
    /// attribute is [`AdpError::DuplicateAttr`], a tuple whose length
    /// disagrees with the schema is [`AdpError::ArityMismatch`]. The
    /// whole batch is validated before anything is registered, so on
    /// error the database is unchanged — no half-filled relation is left
    /// behind.
    pub fn try_add_relation(
        &mut self,
        name: &str,
        attrs: Vec<Attr>,
        tuples: &[&[Value]],
    ) -> Result<usize, AdpError> {
        if self.by_name.contains_key(name) {
            return Err(AdpError::DuplicateRelation(name.to_owned()));
        }
        // Pre-check what `RelationSchema::new` would panic on, so the
        // typed front door never crashes on untrusted schemas.
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(AdpError::DuplicateAttr {
                    relation: name.to_owned(),
                    attr: a.to_string(),
                });
            }
        }
        let mut rel = RelationInstance::new(RelationSchema::new(name, attrs));
        for t in tuples {
            rel.try_insert(t)?;
        }
        self.try_add(rel)
    }

    /// Looks a relation up by name.
    pub fn relation(&self, name: &str) -> Option<&RelationInstance> {
        self.by_name.get(name).map(|&i| &self.relations[i])
    }

    /// Mutable lookup by name.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut RelationInstance> {
        let i = *self.by_name.get(name)?;
        Some(&mut self.relations[i])
    }

    /// Looks a relation up by name, panicking with a clear message if absent.
    pub fn expect(&self, name: &str) -> &RelationInstance {
        self.relation(name)
            // adp-lint: allow(panic-path) -- documented panicking lookup;
            // `relation` is the Option-returning API.
            .unwrap_or_else(|| panic!("relation {name} not in database"))
    }

    /// All relations in insertion order.
    pub fn relations(&self) -> &[RelationInstance] {
        &self.relations
    }

    /// Mutable access to every relation, in slot order — the batch
    /// mutation path addresses relations by slot.
    pub fn relations_mut(&mut self) -> &mut [RelationInstance] {
        &mut self.relations
    }

    /// Names of all relations, in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.iter().map(|r| r.name())
    }

    /// Total number of stored tuples across all relations (`|D|`).
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Inserts a tuple into a named relation, creating nothing: the
    /// relation must exist. Returns the tuple index.
    pub fn insert(&mut self, name: &str, tuple: &[Value]) -> u32 {
        self.relation_mut(name)
            // adp-lint: allow(panic-path) -- documented panicking insert;
            // relation_mut is the Option-returning API.
            .unwrap_or_else(|| panic!("relation {name} not in database"))
            .insert(tuple)
    }

    /// Storage accounting across all relations: per-relation tuple
    /// count, interned-symbol count, and approximate resident bytes of
    /// the columnar store. Surfaced by the scale harness so BENCH output
    /// records how much memory a paper-size instance actually costs.
    pub fn memory_report(&self) -> MemoryReport {
        let relations: Vec<RelationMemory> = self
            .relations
            .iter()
            .map(|r| RelationMemory {
                name: r.name().to_owned(),
                tuples: r.len(),
                arity: r.schema().arity(),
                symbols: r.symbol_count(),
                segments: r.segment_count(),
                tombstones: r.tombstone_count(),
                approx_bytes: r.approx_bytes(),
            })
            .collect();
        MemoryReport {
            total_tuples: relations.iter().map(|r| r.tuples).sum(),
            total_symbols: relations.iter().map(|r| r.symbols).sum(),
            total_bytes: relations.iter().map(|r| r.approx_bytes).sum(),
            relations,
        }
    }
}

/// One relation's storage footprint (see [`Database::memory_report`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationMemory {
    /// Relation name.
    pub name: String,
    /// Stored (deduplicated) tuple count.
    pub tuples: usize,
    /// Schema arity.
    pub arity: usize,
    /// Distinct values interned by this relation.
    pub symbols: usize,
    /// Sealed immutable segments backing this relation (0 until
    /// [`crate::relation::RelationInstance::seal`]).
    pub segments: usize,
    /// Tombstoned rows across all overlays (segments + tail).
    pub tombstones: usize,
    /// Approximate resident bytes: symbol columns + interner + dedup
    /// tables + overlays + cached segment indexes
    /// ([`crate::relation::RelationInstance::approx_bytes`]).
    pub approx_bytes: usize,
}

/// Database-wide storage accounting (see [`Database::memory_report`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryReport {
    /// Per-relation breakdown, in insertion order.
    pub relations: Vec<RelationMemory>,
    /// Sum of stored tuples.
    pub total_tuples: usize,
    /// Sum of interned symbols.
    pub total_symbols: usize,
    /// Sum of approximate resident bytes.
    pub total_bytes: usize,
}

impl MemoryReport {
    /// Average stored bytes per tuple, 0.0 for an empty database.
    pub fn bytes_per_tuple(&self) -> f64 {
        if self.total_tuples == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.total_tuples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attrs;

    #[test]
    fn create_insert_lookup() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A", "B"]), &[&[1, 2], &[3, 4]]);
        assert_eq!(db.expect("R").len(), 2);
        assert_eq!(db.total_tuples(), 2);
        assert!(db.relation("S").is_none());
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[]);
        db.add_relation("R", attrs(&["B"]), &[]);
    }

    /// Regression (typed construction): a duplicate relation name is a
    /// typed `DuplicateRelation`, an arity-mismatched tuple a typed
    /// `ArityMismatch` — and a failed batch leaves the database exactly
    /// as it was (no half-registered relation, no shifted slots).
    #[test]
    fn try_add_relation_rejects_bad_batches_atomically() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1]]);
        assert_eq!(
            db.try_add_relation("R", attrs(&["B"]), &[]),
            Err(AdpError::DuplicateRelation("R".into()))
        );
        assert_eq!(
            db.try_add_relation("S", attrs(&["A", "B"]), &[&[1, 2], &[3]]),
            Err(AdpError::ArityMismatch {
                relation: "S".into(),
                expected: 2,
                got: 1,
            })
        );
        // A repeated schema attribute is a typed error too, not the
        // RelationSchema::new panic.
        assert_eq!(
            db.try_add_relation("S", attrs(&["A", "A"]), &[]),
            Err(AdpError::DuplicateAttr {
                relation: "S".into(),
                attr: "A".into(),
            })
        );
        // Atomicity: the failed "S" batch must not have registered the
        // relation (a later, valid registration still works) or bumped
        // any slot.
        assert!(db.relation("S").is_none());
        assert_eq!(db.relations().len(), 1);
        let slot = db
            .try_add_relation("S", attrs(&["A", "B"]), &[&[1, 2]])
            .unwrap();
        assert_eq!(slot, 1);
        assert_eq!(db.expect("S").len(), 1);
    }

    #[test]
    fn try_insert_is_the_typed_insert() {
        let mut r = RelationInstance::new(RelationSchema::new("R", attrs(&["A", "B"])));
        assert_eq!(r.try_insert(&[1, 2]), Ok(0));
        assert_eq!(r.try_insert(&[1, 2]), Ok(0), "dedup keeps the index");
        assert_eq!(
            r.try_insert(&[1]),
            Err(AdpError::ArityMismatch {
                relation: "R".into(),
                expected: 2,
                got: 1,
            })
        );
        assert_eq!(r.len(), 1, "rejected tuple must not be stored");
    }

    #[test]
    fn insert_by_name() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[]);
        let idx = db.insert("R", &[7]);
        assert_eq!(idx, 0);
        assert_eq!(db.expect("R").tuple(0), &[7]);
    }

    #[test]
    fn names_in_insertion_order() {
        let mut db = Database::new();
        db.add_relation("S", attrs(&["A"]), &[]);
        db.add_relation("R", attrs(&["B"]), &[]);
        let names: Vec<_> = db.names().collect();
        assert_eq!(names, vec!["S", "R"]);
    }

    #[test]
    fn memory_report_accounts_for_columnar_storage() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A", "B"]), &[&[1, 2], &[3, 2], &[1, 2]]);
        db.add_relation("S", attrs(&["C"]), &[&[9]]);
        let report = db.memory_report();
        assert_eq!(report.relations.len(), 2);
        let r = &report.relations[0];
        assert_eq!((r.name.as_str(), r.tuples, r.arity), ("R", 2, 2));
        assert_eq!(r.symbols, 3, "values 1, 2, 3 interned once each");
        assert_eq!(report.total_tuples, 3);
        assert_eq!(report.total_symbols, 4);
        assert_eq!(
            report.total_bytes,
            report
                .relations
                .iter()
                .map(|r| r.approx_bytes)
                .sum::<usize>()
        );
        assert!(report.bytes_per_tuple() > 0.0);
        assert_eq!(Database::new().memory_report().bytes_per_tuple(), 0.0);
    }

    #[test]
    fn seal_all_keeps_views_and_reports_segments() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A", "B"]), &[&[1, 2], &[3, 2], &[5, 6]]);
        db.add_relation("S", attrs(&["C"]), &[&[9]]);
        let rows_before = db.expect("R").to_rows();
        db.seal_all(2);
        assert_eq!(db.expect("R").to_rows(), rows_before);
        assert_eq!(db.expect("R").segment_count(), 2);
        let r = db.rel_id("R").unwrap();
        assert!(db.relation_mut_by_id(r).delete_stable(1));
        assert_eq!(db.total_tuples(), 3);
        let report = db.memory_report();
        assert_eq!(report.relations[0].segments, 2);
        assert_eq!(report.relations[0].tombstones, 1);
        assert_eq!(report.relations[0].tuples, 2);
        // Compaction drops the tombstone and shrinks the accounting.
        let bytes_before = db.expect("R").approx_bytes();
        assert_eq!(db.maybe_compact_all(50), 1);
        assert_eq!(db.memory_report().relations[0].tombstones, 0);
        assert!(db.expect("R").approx_bytes() <= bytes_before);
        assert_eq!(db.expect("R").to_rows(), vec![vec![1, 2], vec![5, 6]]);
    }

    #[test]
    fn catalog_resolves_names_to_dense_ids() {
        use crate::catalog::{AttrId, RelId};
        use crate::schema::attr;
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A", "B"]), &[&[1, 2]]);
        db.add_relation("S", attrs(&["B", "C"]), &[]);
        let r = db.rel_id("R").unwrap();
        let s = db.rel_id("S").unwrap();
        assert_eq!((r, s), (RelId(0), RelId(1)));
        assert!(db.rel_id("T").is_none());
        assert_eq!(db.relation_by_id(r).name(), "R");
        // shared attribute B has one id in both schemas
        assert_eq!(db.resolved_attrs(r), &[AttrId(0), AttrId(1)]);
        assert_eq!(db.resolved_attrs(s)[0], AttrId(1));
        assert_eq!(db.catalog().attr(AttrId(2)), &attr("C"));
        assert_eq!(db.catalog().attr_count(), 3);
    }
}
