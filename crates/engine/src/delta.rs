//! Incremental delta maintenance of witnesses, outputs, and scores.
//!
//! The ADP solvers are iterative: each greedy round, boolean fallback
//! round, and streaming deletion batch changes only a handful of input
//! tuples, yet the pre-delta code paths re-derived the full scoring
//! state — a pass over *every* live witness per round
//! ([`ProvenanceIndex::profits`](crate::provenance::ProvenanceIndex::profits))
//! — or re-ran the masked join. [`DeltaProvenance`] keeps all of that
//! state **live** instead, updating it in time proportional to the
//! witnesses actually affected by a batch:
//!
//! * witness liveness, via a per-witness *dead-tuple refcount* — unlike
//!   [`ProvenanceIndex`](crate::provenance::ProvenanceIndex), deletions
//!   can be **undone** ([`restore_batch`](DeltaProvenance::restore_batch)),
//!   which is what solver backtracking and streaming re-insertions need;
//! * per-output live-witness counts and the global `|Q(D − S)|`;
//! * the *profit* map (sole killers per output, maintained through a
//!   cached per-output agreement vector) and the *live-count* map — the
//!   two scores every greedy round reads;
//! * optionally ([`enable_selection`](DeltaProvenance::enable_selection))
//!   two ordered candidate sets over the scores, so the greedy argmax —
//!   under the same `(score, Reverse((atom, idx)))` total order as the
//!   full-scan path — is an `O(log n)` lookup instead of a map scan.
//!
//! A deletion batch of Δ tuples costs `O(Σ_{w affected} p + Σ_{o
//! touched} |witnesses(o)| · p)` plus logarithmic selector updates:
//! `O(Δ)` in the affected incidence, independent of `|Q(D)|`.
//!
//! The initial scoring pass is the one full-scan the structure ever
//! pays. It is exposed range-wise ([`score_range`](DeltaProvenance::score_range) /
//! [`install_scores`](DeltaProvenance::install_scores)) so callers with
//! a thread pool can fan it out over disjoint output ranges — the same
//! partitioning contract as
//! [`ProvenanceIndex::profits_range`](crate::provenance::ProvenanceIndex::profits_range).
//!
//! Every maintained quantity is differentially testable against the
//! masked full re-evaluation oracle
//! ([`QueryPlan::execute_masked`](crate::plan::QueryPlan::execute_masked));
//! the workspace proptest suite does exactly that after every batch.

use crate::error::AdpError;
use crate::join::EvalResult;
use crate::provenance::TupleRef;
use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Candidate key ordered like the greedy pick: highest score first,
/// then smallest `(atom, idx)`. The set's maximum element is the round
/// winner.
type Candidate = (u64, Reverse<(usize, u32)>);

/// Ordered candidate sets over the maintained scores, restricted to the
/// atoms a solver may delete from.
#[derive(Clone, Debug)]
struct Selector {
    selectable: Vec<bool>,
    by_profit: BTreeSet<Candidate>,
    by_count: BTreeSet<Candidate>,
}

/// Partial scores over one output range, produced by
/// [`DeltaProvenance::score_range`] and merged by
/// [`DeltaProvenance::install_scores`]. Contributions are additive
/// across any partition of `0..output_slots()`.
#[derive(Clone, Debug, Default)]
pub struct RangeScores {
    profits: Vec<HashMap<u32, u64>>,
    counts: Vec<HashMap<u32, u64>>,
    /// (output id, agreement vector) for live outputs in the range.
    agreed: Vec<(u32, Box<[Option<u32>]>)>,
}

/// Incidence structure over an [`EvalResult`] with **incremental**
/// deletion/re-insertion semantics and live-maintained scores.
#[derive(Clone, Debug)]
pub struct DeltaProvenance {
    /// witness → tuple index per atom (query-atom order).
    witness_tuples: Vec<Box<[u32]>>,
    witness_output: Vec<u32>,
    /// witness → number of its input tuples currently deleted. Alive
    /// iff 0; the refcount is what makes deletion reversible.
    witness_dead: Vec<u32>,
    /// output → live witness count.
    output_live: Vec<u32>,
    output_witnesses: Vec<Vec<u32>>,
    /// per atom: tuple index → witnesses containing it.
    tuple_witnesses: Vec<HashMap<u32, Vec<u32>>>,
    /// per atom: currently deleted tuple indices (including tuples on
    /// no witness, so delete/restore stay symmetric).
    deleted: Vec<HashSet<u32>>,
    live_outputs: u64,
    live_witnesses: u64,
    total_outputs: u64,
    n_atoms: usize,
    /// Maintained profit map (sole killers), no zero entries — equal to
    /// `ProvenanceIndex::profits()` at every deletion state.
    profits: Vec<HashMap<u32, u64>>,
    /// Maintained live-witness counts, no zero entries — equal to
    /// `ProvenanceIndex::live_counts()` at every deletion state.
    counts: Vec<HashMap<u32, u64>>,
    /// output → cached agreement vector (its current profit
    /// contribution); `None` for dead outputs.
    agreed: Vec<Option<Box<[Option<u32>]>>>,
    scored: bool,
    selector: Option<Selector>,
}

impl DeltaProvenance {
    /// Builds the index and scores it sequentially. Fails with
    /// [`AdpError::TooManyWitnesses`] instead of truncating witness ids.
    pub fn try_new(result: &EvalResult) -> Result<Self, AdpError> {
        let mut d = Self::new_unscored(result)?;
        let scores = d.score_range(0, d.output_slots());
        d.install_scores(vec![scores]);
        Ok(d)
    }

    /// [`try_new`](Self::try_new) with an injected witness-id cap, for
    /// testing the overflow guard without materializing 4B witnesses.
    pub fn try_new_with_cap(result: &EvalResult, cap: u64) -> Result<Self, AdpError> {
        let mut d = Self::new_unscored_capped(result, cap)?;
        let scores = d.score_range(0, d.output_slots());
        d.install_scores(vec![scores]);
        Ok(d)
    }

    /// Builds the incidence structure without the initial scoring pass.
    /// Callers with a thread pool fan [`score_range`](Self::score_range)
    /// out over output ranges and then [`install_scores`](Self::install_scores);
    /// mutation is rejected until scores are installed.
    pub fn new_unscored(result: &EvalResult) -> Result<Self, AdpError> {
        Self::new_unscored_capped(result, u32::MAX as u64)
    }

    fn new_unscored_capped(result: &EvalResult, cap: u64) -> Result<Self, AdpError> {
        let witnesses = result.witnesses.len() as u64;
        if witnesses > cap {
            return Err(AdpError::TooManyWitnesses { witnesses, cap });
        }
        let n_atoms = result.atom_names.len();
        let mut tuple_witnesses: Vec<HashMap<u32, Vec<u32>>> = vec![HashMap::new(); n_atoms];
        for (wid, w) in result.witnesses.iter().enumerate() {
            for (atom, &t) in w.tuples.iter().enumerate() {
                // adp-lint: allow(truncating-cast) -- wid enumerates
                // result.witnesses, cap-checked by try_new_with_cap above.
                tuple_witnesses[atom].entry(t).or_default().push(wid as u32);
            }
        }
        Ok(DeltaProvenance {
            witness_tuples: result.witnesses.iter().map(|w| w.tuples.clone()).collect(),
            witness_output: result.witness_output.clone(),
            witness_dead: vec![0; result.witnesses.len()],
            output_live: result
                .output_witnesses
                .iter()
                // adp-lint: allow(truncating-cast) -- per-output witness
                // lists are subsets of the cap-checked witness set.
                .map(|ws| ws.len() as u32)
                .collect(),
            output_witnesses: result.output_witnesses.clone(),
            tuple_witnesses,
            deleted: vec![HashSet::new(); n_atoms],
            live_outputs: result.outputs.len() as u64,
            live_witnesses: result.witnesses.len() as u64,
            total_outputs: result.outputs.len() as u64,
            n_atoms,
            profits: vec![HashMap::new(); n_atoms],
            counts: vec![HashMap::new(); n_atoms],
            agreed: vec![None; result.outputs.len()],
            scored: false,
            selector: None,
        })
    }

    /// Number of atoms in the underlying query.
    pub fn atom_count(&self) -> usize {
        self.n_atoms
    }

    /// Output slots (live or dead); [`score_range`](Self::score_range)
    /// ranges partition `0..output_slots()`.
    pub fn output_slots(&self) -> usize {
        self.output_witnesses.len()
    }

    /// Witness slots (live or dead).
    pub fn witness_slots(&self) -> usize {
        self.witness_tuples.len()
    }

    /// Outputs still alive: `|Q(D − S)|` for the current deletion set.
    pub fn live_outputs(&self) -> u64 {
        self.live_outputs
    }

    /// Witnesses still alive.
    pub fn live_witnesses(&self) -> u64 {
        self.live_witnesses
    }

    /// `|Q(D)|` before any deletion.
    pub fn total_outputs(&self) -> u64 {
        self.total_outputs
    }

    /// Outputs removed by the current deletion set.
    pub fn removed_outputs(&self) -> u64 {
        self.total_outputs - self.live_outputs
    }

    /// Is the tuple currently deleted?
    pub fn is_deleted(&self, t: TupleRef) -> bool {
        self.deleted[t.atom].contains(&t.index)
    }

    /// The input tuples participating in at least one witness (dead or
    /// alive), per atom, sorted.
    pub fn participating_tuples(&self) -> Vec<Vec<u32>> {
        self.tuple_witnesses
            .iter()
            .map(|m| {
                let mut v: Vec<u32> = m.keys().copied().collect();
                v.sort_unstable();
                v
            })
            .collect()
    }

    /// Computes profit/count/agreement contributions of the outputs in
    /// `lo..hi` under the **current** witness liveness. Pure; disjoint
    /// ranges may be scored from multiple threads and merged with
    /// [`install_scores`](Self::install_scores).
    pub fn score_range(&self, lo: usize, hi: usize) -> RangeScores {
        let mut scores = RangeScores {
            profits: vec![HashMap::new(); self.n_atoms],
            counts: vec![HashMap::new(); self.n_atoms],
            agreed: Vec::new(),
        };
        for out in lo..hi {
            if self.output_live[out] == 0 {
                continue;
            }
            // Every witness belongs to exactly one output, so per-output
            // iteration partitions the witness set too.
            for &w in &self.output_witnesses[out] {
                if self.witness_dead[w as usize] != 0 {
                    continue;
                }
                for (atom, &t) in self.witness_tuples[w as usize].iter().enumerate() {
                    *scores.counts[atom].entry(t).or_insert(0) += 1;
                }
            }
            if let Some(a) = self.compute_agreement(out) {
                for (atom, slot) in a.iter().enumerate() {
                    if let Some(t) = slot {
                        *scores.profits[atom].entry(*t).or_insert(0) += 1;
                    }
                }
                // adp-lint: allow(truncating-cast) -- out indexes
                // result.outputs; outputs never outnumber the cap-checked
                // witnesses (every output has at least one witness).
                scores.agreed.push((out as u32, a));
            }
        }
        scores
    }

    /// Installs the merged scores of a full partition of
    /// `0..output_slots()`. Must be called exactly once, before any
    /// mutation or selection.
    pub fn install_scores(&mut self, parts: Vec<RangeScores>) {
        assert!(!self.scored, "scores already installed");
        assert!(self.selector.is_none());
        for part in parts {
            for (atom, map) in part.profits.into_iter().enumerate() {
                // adp-lint: allow(unordered-iter) -- merging partial sums
                // by `+=`; addition commutes, so order cannot show.
                for (t, c) in map {
                    *self.profits[atom].entry(t).or_insert(0) += c;
                }
            }
            for (atom, map) in part.counts.into_iter().enumerate() {
                // adp-lint: allow(unordered-iter) -- merging partial sums
                // by `+=`; addition commutes, so order cannot show.
                for (t, c) in map {
                    *self.counts[atom].entry(t).or_insert(0) += c;
                }
            }
            for (out, a) in part.agreed {
                debug_assert!(self.agreed[out as usize].is_none());
                self.agreed[out as usize] = Some(a);
            }
        }
        self.scored = true;
    }

    /// The maintained profit maps (`ProvenanceIndex::profits()` at the
    /// current deletion state), one per atom. No zero entries.
    pub fn profits(&self) -> &[HashMap<u32, u64>] {
        assert!(self.scored, "scores not installed");
        &self.profits
    }

    /// The maintained live-count maps (`ProvenanceIndex::live_counts()`
    /// at the current deletion state), one per atom. No zero entries.
    pub fn live_counts(&self) -> &[HashMap<u32, u64>] {
        assert!(self.scored, "scores not installed");
        &self.counts
    }

    /// Builds the ordered candidate sets over the atoms in `selectable`,
    /// turning [`best_profit_candidate`](Self::best_profit_candidate) /
    /// [`best_count_candidate`](Self::best_count_candidate) into
    /// `O(log n)` lookups that stay current across batches.
    pub fn enable_selection(&mut self, selectable: Vec<bool>) {
        assert!(self.scored, "scores not installed");
        assert_eq!(selectable.len(), self.n_atoms);
        let mut sel = Selector {
            selectable,
            by_profit: BTreeSet::new(),
            by_count: BTreeSet::new(),
        };
        for (atom, map) in self.profits.iter().enumerate() {
            if sel.selectable[atom] {
                sel.by_profit
                    // adp-lint: allow(unordered-iter) -- feeds a BTreeSet;
                    // the selector's order is the set's total order.
                    .extend(map.iter().map(|(&i, &p)| (p, Reverse((atom, i)))));
            }
        }
        for (atom, map) in self.counts.iter().enumerate() {
            if sel.selectable[atom] {
                sel.by_count
                    // adp-lint: allow(unordered-iter) -- feeds a BTreeSet;
                    // the selector's order is the set's total order.
                    .extend(map.iter().map(|(&i, &c)| (c, Reverse((atom, i)))));
            }
        }
        self.selector = Some(sel);
    }

    /// The selectable tuple with the highest profit, ties broken toward
    /// the smallest `(atom, idx)` — exactly the full-scan greedy pick.
    pub fn best_profit_candidate(&self) -> Option<(u64, usize, u32)> {
        // adp-lint: allow(panic-path) -- documented precondition: callers
        // enable selection first; misuse is a programming error.
        let sel = self.selector.as_ref().expect("selection not enabled");
        sel.by_profit
            .iter()
            .next_back()
            .map(|&(p, Reverse((atom, idx)))| (p, atom, idx))
    }

    /// The selectable tuple on the most live witnesses (the greedy
    /// tie-breaker round), same total order.
    pub fn best_count_candidate(&self) -> Option<(u64, usize, u32)> {
        // adp-lint: allow(panic-path) -- documented precondition: callers
        // enable selection first; misuse is a programming error.
        let sel = self.selector.as_ref().expect("selection not enabled");
        sel.by_count
            .iter()
            .next_back()
            .map(|&(c, Reverse((atom, idx)))| (c, atom, idx))
    }

    /// Deletes one tuple. Returns the number of outputs that died.
    pub fn delete(&mut self, t: TupleRef) -> u64 {
        self.delete_batch(&[t])
    }

    /// Restores one tuple. Returns the number of outputs revived.
    pub fn restore(&mut self, t: TupleRef) -> u64 {
        self.restore_batch(&[t])
    }

    /// Deletes a batch of tuples (already-deleted members are ignored).
    /// Returns the number of outputs that died. Cost is proportional to
    /// the affected witnesses, not to `|Q(D)|`.
    pub fn delete_batch(&mut self, batch: &[TupleRef]) -> u64 {
        self.delete_batch_sink(batch, None)
    }

    /// [`delete_batch`](Self::delete_batch), additionally reporting
    /// *which* outputs died: the ids whose live-witness count crossed
    /// 1→0 during this batch, sorted ascending. An output appears at
    /// most once (liveness only decreases within a deletion batch).
    /// This is the transition set an incremental-view subscriber needs:
    /// outputs merely losing redundant witnesses are not reported.
    pub fn delete_batch_transitions(&mut self, batch: &[TupleRef]) -> Vec<u32> {
        let mut died = Vec::new();
        self.delete_batch_sink(batch, Some(&mut died));
        died.sort_unstable();
        died
    }

    fn delete_batch_sink(&mut self, batch: &[TupleRef], mut sink: Option<&mut Vec<u32>>) -> u64 {
        assert!(self.scored, "scores not installed");
        let mut touched: Vec<u32> = Vec::new();
        let mut died = 0u64;
        for &t in batch {
            if !self.deleted[t.atom].insert(t.index) {
                continue;
            }
            let Some(ws) = self.tuple_witnesses[t.atom].get(&t.index).cloned() else {
                continue;
            };
            for w in ws {
                let wd = &mut self.witness_dead[w as usize];
                *wd += 1;
                if *wd != 1 {
                    continue; // was already dead through another tuple
                }
                self.live_witnesses -= 1;
                let tuples = self.witness_tuples[w as usize].clone();
                for (atom, &tt) in tuples.iter().enumerate() {
                    self.count_sub(atom, tt);
                }
                let out = self.witness_output[w as usize];
                let live = &mut self.output_live[out as usize];
                *live -= 1;
                if *live == 0 {
                    self.live_outputs -= 1;
                    died += 1;
                    if let Some(s) = sink.as_deref_mut() {
                        s.push(out);
                    }
                }
                touched.push(out);
            }
        }
        self.rescore_touched(touched);
        died
    }

    /// Restores a batch of tuples (members not currently deleted are
    /// ignored). Returns the number of outputs revived.
    pub fn restore_batch(&mut self, batch: &[TupleRef]) -> u64 {
        self.restore_batch_sink(batch, None)
    }

    /// [`restore_batch`](Self::restore_batch), additionally reporting
    /// *which* outputs revived: the ids whose live-witness count crossed
    /// 0→1 during this batch, sorted ascending — the mirror of
    /// [`delete_batch_transitions`](Self::delete_batch_transitions).
    pub fn restore_batch_transitions(&mut self, batch: &[TupleRef]) -> Vec<u32> {
        let mut revived = Vec::new();
        self.restore_batch_sink(batch, Some(&mut revived));
        revived.sort_unstable();
        revived
    }

    fn restore_batch_sink(&mut self, batch: &[TupleRef], mut sink: Option<&mut Vec<u32>>) -> u64 {
        assert!(self.scored, "scores not installed");
        let mut touched: Vec<u32> = Vec::new();
        let mut revived = 0u64;
        for &t in batch {
            if !self.deleted[t.atom].remove(&t.index) {
                continue;
            }
            let Some(ws) = self.tuple_witnesses[t.atom].get(&t.index).cloned() else {
                continue;
            };
            for w in ws {
                let wd = &mut self.witness_dead[w as usize];
                *wd -= 1;
                if *wd != 0 {
                    continue; // still dead through another tuple
                }
                self.live_witnesses += 1;
                let tuples = self.witness_tuples[w as usize].clone();
                for (atom, &tt) in tuples.iter().enumerate() {
                    self.count_add(atom, tt);
                }
                let out = self.witness_output[w as usize];
                let live = &mut self.output_live[out as usize];
                *live += 1;
                if *live == 1 {
                    self.live_outputs += 1;
                    revived += 1;
                    if let Some(s) = sink.as_deref_mut() {
                        s.push(out);
                    }
                }
                touched.push(out);
            }
        }
        self.rescore_touched(touched);
        revived
    }

    /// Re-derives the profit contribution of every output whose witness
    /// set changed in this batch.
    fn rescore_touched(&mut self, mut touched: Vec<u32>) {
        touched.sort_unstable();
        touched.dedup();
        for out in touched {
            self.rescore_output(out as usize);
        }
    }

    fn rescore_output(&mut self, out: usize) {
        if let Some(old) = self.agreed[out].take() {
            for (atom, slot) in old.iter().enumerate() {
                if let Some(t) = slot {
                    self.profit_sub(atom, *t);
                }
            }
        }
        let fresh = if self.output_live[out] == 0 {
            None
        } else {
            self.compute_agreement(out)
        };
        if let Some(a) = &fresh {
            for (atom, slot) in a.iter().enumerate() {
                if let Some(t) = slot {
                    self.profit_add(atom, *t);
                }
            }
        }
        self.agreed[out] = fresh;
    }

    /// Per-atom sole killers of one output: the tuple all its live
    /// witnesses agree on, if any. `None` when no witness is alive.
    fn compute_agreement(&self, out: usize) -> Option<Box<[Option<u32>]>> {
        let mut agreed: Option<Box<[Option<u32>]>> = None;
        for &w in &self.output_witnesses[out] {
            let w = w as usize;
            if self.witness_dead[w] != 0 {
                continue;
            }
            let tuples = &self.witness_tuples[w];
            match agreed.as_mut() {
                None => agreed = Some(tuples.iter().map(|&t| Some(t)).collect()),
                Some(a) => {
                    for (atom, slot) in a.iter_mut().enumerate() {
                        if let Some(t) = *slot {
                            if t != tuples[atom] {
                                *slot = None;
                            }
                        }
                    }
                }
            }
        }
        agreed
    }

    fn profit_add(&mut self, atom: usize, idx: u32) {
        let e = self.profits[atom].entry(idx).or_insert(0);
        let old = *e;
        *e += 1;
        let new = *e;
        if let Some(sel) = &mut self.selector {
            sel.changed(Score::Profit, atom, idx, old, new);
        }
    }

    fn profit_sub(&mut self, atom: usize, idx: u32) {
        let e = self.profits[atom]
            .get_mut(&idx)
            // adp-lint: allow(panic-path) -- incidence-structure
            // invariant: a profit is only subtracted where it was added;
            // a miss means the index is corrupt and must not limp on.
            .expect("profit underflow: contribution was never added");
        let old = *e;
        *e -= 1;
        let new = *e;
        if new == 0 {
            self.profits[atom].remove(&idx);
        }
        if let Some(sel) = &mut self.selector {
            sel.changed(Score::Profit, atom, idx, old, new);
        }
    }

    fn count_add(&mut self, atom: usize, idx: u32) {
        let e = self.counts[atom].entry(idx).or_insert(0);
        let old = *e;
        *e += 1;
        let new = *e;
        if let Some(sel) = &mut self.selector {
            sel.changed(Score::Count, atom, idx, old, new);
        }
    }

    fn count_sub(&mut self, atom: usize, idx: u32) {
        let e = self.counts[atom]
            .get_mut(&idx)
            // adp-lint: allow(panic-path) -- incidence-structure
            // invariant: a count is only subtracted where it was added;
            // a miss means the index is corrupt and must not limp on.
            .expect("count underflow: witness was never counted");
        let old = *e;
        *e -= 1;
        let new = *e;
        if new == 0 {
            self.counts[atom].remove(&idx);
        }
        if let Some(sel) = &mut self.selector {
            sel.changed(Score::Count, atom, idx, old, new);
        }
    }
}

#[derive(Clone, Copy)]
enum Score {
    Profit,
    Count,
}

impl Selector {
    fn changed(&mut self, which: Score, atom: usize, idx: u32, old: u64, new: u64) {
        if !self.selectable[atom] {
            return;
        }
        let set = match which {
            Score::Profit => &mut self.by_profit,
            Score::Count => &mut self.by_count,
        };
        if old > 0 {
            set.remove(&(old, Reverse((atom, idx))));
        }
        if new > 0 {
            set.insert((new, Reverse((atom, idx))));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::join::evaluate;
    use crate::provenance::ProvenanceIndex;
    use crate::schema::{attrs, RelationSchema};

    /// Figure 1 database with Q2(A,E) (projection query).
    fn q2_eval() -> (Database, EvalResult) {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[2, 2], &[3, 3]]);
        db.add_relation(
            "R2",
            attrs(&["B", "C"]),
            &[&[1, 1], &[2, 2], &[2, 3], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1], &[2, 3], &[3, 3]]);
        let atoms = vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ];
        let r = evaluate(&db, &atoms, &attrs(&["A", "E"]));
        (db, r)
    }

    /// Trimmed-map equality with a fresh `ProvenanceIndex` after the
    /// same kill sequence: the maintained scores must be *equal*, not
    /// just equivalent.
    fn assert_scores_match(d: &DeltaProvenance, p: &ProvenanceIndex) {
        assert_eq!(d.profits(), &p.profits()[..], "profit maps diverged");
        assert_eq!(d.live_counts(), &p.live_counts()[..], "count maps diverged");
        assert_eq!(d.live_outputs(), p.live_outputs());
        assert_eq!(d.live_witnesses(), p.live_witnesses());
    }

    #[test]
    fn initial_scores_equal_provenance_index() {
        let (_, eval) = q2_eval();
        let d = DeltaProvenance::try_new(&eval).unwrap();
        let p = ProvenanceIndex::new(&eval);
        assert_scores_match(&d, &p);
        assert_eq!(d.total_outputs(), 3);
        assert_eq!(d.removed_outputs(), 0);
    }

    #[test]
    fn delete_matches_provenance_kill() {
        let (db, eval) = q2_eval();
        let mut d = DeltaProvenance::try_new(&eval).unwrap();
        let mut p = ProvenanceIndex::new(&eval);
        let b2c2 = db.expect("R2").index_of(&[2, 2]).unwrap();
        let t = TupleRef::new(1, b2c2);
        assert_eq!(d.delete(t), p.kill(t));
        assert_scores_match(&d, &p);
        assert!(d.is_deleted(t));
        // Killing the now-sole witness path removes both outputs of a2/a3.
        let c3e3 = db.expect("R3").index_of(&[3, 3]).unwrap();
        let t2 = TupleRef::new(2, c3e3);
        assert_eq!(d.delete(t2), p.kill(t2));
        assert_scores_match(&d, &p);
    }

    #[test]
    fn restore_round_trips_to_initial_state() {
        let (_, eval) = q2_eval();
        let pristine = DeltaProvenance::try_new(&eval).unwrap();
        let mut d = pristine.clone();
        let batch = [
            TupleRef::new(0, 0),
            TupleRef::new(1, 1),
            TupleRef::new(2, 2),
        ];
        let died = d.delete_batch(&batch);
        assert!(died > 0);
        assert_eq!(d.restore_batch(&batch), died);
        assert_eq!(d.profits(), pristine.profits());
        assert_eq!(d.live_counts(), pristine.live_counts());
        assert_eq!(d.live_outputs(), pristine.live_outputs());
        assert_eq!(d.live_witnesses(), pristine.live_witnesses());
        assert_eq!(d.removed_outputs(), 0);
    }

    #[test]
    fn overlapping_deletes_are_refcounted() {
        let (db, eval) = q2_eval();
        let mut d = DeltaProvenance::try_new(&eval).unwrap();
        // Both tuples sit on the (a1,e1) witness; restoring only one of
        // them must keep the witness dead.
        let a1b1 = TupleRef::new(0, db.expect("R1").index_of(&[1, 1]).unwrap());
        let b1c1 = TupleRef::new(1, db.expect("R2").index_of(&[1, 1]).unwrap());
        assert_eq!(d.delete_batch(&[a1b1, b1c1]), 1);
        assert_eq!(d.restore(b1c1), 0, "witness still dead through R1");
        assert_eq!(d.live_outputs(), 2);
        assert_eq!(d.restore(a1b1), 1, "last deleted tuple revives it");
        assert_eq!(d.live_outputs(), 3);
    }

    /// The transition variants must report exactly the outputs whose
    /// live-witness count crossed 1→0 (delete) / 0→1 (restore) — the SSP
    /// weight rule — and leave the state identical to the count-only
    /// batch operations.
    #[test]
    fn batch_transitions_name_the_outputs_that_crossed() {
        let (_, eval) = q2_eval();
        let mut by_count = DeltaProvenance::try_new(&eval).unwrap();
        let mut by_trans = by_count.clone();
        let batch = [
            TupleRef::new(0, 0),
            TupleRef::new(1, 1),
            TupleRef::new(2, 2),
        ];
        let died = by_count.delete_batch(&batch);
        let lost = by_trans.delete_batch_transitions(&batch);
        assert_eq!(lost.len() as u64, died, "one id per 1→0 transition");
        assert!(lost.windows(2).all(|w| w[0] < w[1]), "sorted, no dupes");
        assert_eq!(by_trans.live_outputs(), by_count.live_outputs());
        assert_eq!(by_trans.profits(), by_count.profits());
        // Restoring reports the same outputs coming back.
        let revived = by_count.restore_batch(&batch);
        let gained = by_trans.restore_batch_transitions(&batch);
        assert_eq!(gained.len() as u64, revived);
        assert_eq!(gained, lost, "exactly the dead outputs revive");
        assert_eq!(by_trans.removed_outputs(), 0);
    }

    /// An output losing a redundant witness (live count 2→1) must not
    /// appear in the transition set — only true liveness flips count.
    #[test]
    fn redundant_witness_loss_is_not_a_transition() {
        let (db, eval) = q2_eval();
        let mut d = DeltaProvenance::try_new(&eval).unwrap();
        // R2(2,2) sits on one of output (a2,e3)'s two witnesses: the
        // output survives through R2(2,3).
        let b2c2 = db.expect("R2").index_of(&[2, 2]).unwrap();
        let lost = d.delete_batch_transitions(&[TupleRef::new(1, b2c2)]);
        assert!(lost.is_empty(), "output still live via its other witness");
        assert_eq!(d.live_outputs(), 3);
        // Cutting the second path is the actual 1→0 transition.
        let b2c3 = db.expect("R2").index_of(&[2, 3]).unwrap();
        let lost = d.delete_batch_transitions(&[TupleRef::new(1, b2c3)]);
        assert_eq!(lost.len(), 1);
    }

    #[test]
    fn duplicate_and_unknown_tuples_are_ignored() {
        let (_, eval) = q2_eval();
        let mut d = DeltaProvenance::try_new(&eval).unwrap();
        let t = TupleRef::new(0, 0);
        let died = d.delete(t);
        assert_eq!(d.delete(t), 0, "double delete is a no-op");
        assert_eq!(d.restore(TupleRef::new(0, 99)), 0, "unknown tuple");
        assert_eq!(d.restore(t), died);
        assert_eq!(d.restore(t), 0, "double restore is a no-op");
    }

    #[test]
    fn selection_tracks_the_full_scan_argmax() {
        let (_, eval) = q2_eval();
        let mut d = DeltaProvenance::try_new(&eval).unwrap();
        d.enable_selection(vec![true; 3]);
        let mut p = ProvenanceIndex::new(&eval);
        loop {
            // Reference pick: full scan of the fresh index's maps.
            let scan_best = |maps: &[HashMap<u32, u64>]| {
                let mut best: Option<(u64, usize, u32)> = None;
                for (atom, map) in maps.iter().enumerate() {
                    for (&idx, &s) in map {
                        let better = match best {
                            None => true,
                            Some((bs, ba, bi)) => {
                                (s, Reverse((atom, idx))) > (bs, Reverse((ba, bi)))
                            }
                        };
                        if better {
                            best = Some((s, atom, idx));
                        }
                    }
                }
                best
            };
            assert_eq!(d.best_profit_candidate(), scan_best(&p.profits()));
            assert_eq!(d.best_count_candidate(), scan_best(&p.live_counts()));
            let Some((_, atom, idx)) = d.best_profit_candidate() else {
                break;
            };
            let t = TupleRef::new(atom, idx);
            assert_eq!(d.delete(t), p.kill(t));
        }
        assert_eq!(d.live_outputs(), 0);
    }

    #[test]
    fn selection_respects_the_selectable_mask() {
        let (_, eval) = q2_eval();
        let mut d = DeltaProvenance::try_new(&eval).unwrap();
        d.enable_selection(vec![false, true, false]);
        while let Some((_, atom, idx)) = d
            .best_profit_candidate()
            .or_else(|| d.best_count_candidate())
        {
            assert_eq!(atom, 1, "only R2 is selectable");
            d.delete(TupleRef::new(atom, idx));
        }
        // R2 alone cannot be fully... it can: all witnesses pass through R2.
        assert_eq!(d.live_outputs(), 0);
    }

    #[test]
    fn range_scoring_partitions_match_sequential_install() {
        let (_, eval) = q2_eval();
        let seq = DeltaProvenance::try_new(&eval).unwrap();
        for chunk in 1..=seq.output_slots() {
            let mut par = DeltaProvenance::new_unscored(&eval).unwrap();
            let parts: Vec<RangeScores> = (0..par.output_slots())
                .step_by(chunk)
                .map(|lo| par.score_range(lo, (lo + chunk).min(par.output_slots())))
                .collect();
            par.install_scores(parts);
            assert_eq!(par.profits(), seq.profits(), "chunk={chunk}");
            assert_eq!(par.live_counts(), seq.live_counts(), "chunk={chunk}");
        }
    }

    #[test]
    fn witness_cap_guard_surfaces_too_many_witnesses() {
        let (_, eval) = q2_eval();
        let err = DeltaProvenance::try_new_with_cap(&eval, 3).unwrap_err();
        assert_eq!(
            err,
            AdpError::TooManyWitnesses {
                witnesses: 4,
                cap: 3
            }
        );
        assert!(err.to_string().contains("4 witnesses"));
        assert!(DeltaProvenance::try_new_with_cap(&eval, 4).is_ok());
    }

    #[test]
    fn empty_evaluation_is_harmless() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1]]);
        db.add_relation("S", attrs(&["A"]), &[]);
        let atoms = vec![
            RelationSchema::new("R", attrs(&["A"])),
            RelationSchema::new("S", attrs(&["A"])),
        ];
        let eval = evaluate(&db, &atoms, &attrs(&["A"]));
        let mut d = DeltaProvenance::try_new(&eval).unwrap();
        assert_eq!(d.live_outputs(), 0);
        assert_eq!(d.delete(TupleRef::new(0, 0)), 0);
        assert_eq!(d.restore(TupleRef::new(0, 0)), 0);
        d.enable_selection(vec![true; 2]);
        assert_eq!(d.best_profit_candidate(), None);
        assert_eq!(d.best_count_candidate(), None);
    }
}
