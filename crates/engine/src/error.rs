//! Engine-level errors.
//!
//! The engine stores witness ids as dense `u32`s (a witness is one
//! full-join row; instances large enough to overflow that space cannot
//! be represented without corrupting the incidence structure). Building
//! a provenance or delta index over such a result surfaces
//! [`AdpError::TooManyWitnesses`] instead of silently truncating ids.
//!
//! [`AdpError::Overloaded`] is the shared admission-control error:
//! bounded execution layers (the `adp-service` request queue) shed load
//! with it instead of blocking callers forever. It lives here — the
//! lowest layer every crate already depends on — so any layer can
//! type-match one overload error without new dependency edges.
//!
//! [`AdpError::ArityMismatch`] and [`AdpError::DuplicateRelation`] are
//! the typed database-construction errors behind
//! [`Database::try_add_relation`](crate::database::Database::try_add_relation):
//! the panicking convenience constructors route through the same checks,
//! so the lax paths can never silently accept malformed input.

use std::fmt;

/// Errors raised by the engine's index-building layers and by bounded
/// execution layers built on top of them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdpError {
    /// The evaluation produced more witnesses than the dense `u32` id
    /// space (or an injected test cap) can address. Proceeding would
    /// alias distinct witnesses onto one id and corrupt every
    /// profit/live-count the solvers read.
    TooManyWitnesses {
        /// Witnesses in the evaluation result.
        witnesses: u64,
        /// Maximum representable witness count.
        cap: u64,
    },
    /// A bounded admission queue is full: the request was shed instead
    /// of queued, so callers never block behind an unbounded backlog.
    /// Retry later or raise the limit.
    Overloaded {
        /// Requests already admitted and not yet finished.
        in_flight: u64,
        /// The admission bound that was hit.
        limit: u64,
    },
    /// A tuple's arity disagrees with its relation's schema. Storing it
    /// would desynchronize every positional structure built on top
    /// (projections, join slots, provenance coordinates).
    ArityMismatch {
        /// The relation the tuple was headed for.
        relation: String,
        /// The schema's arity.
        expected: usize,
        /// The offending tuple's length.
        got: usize,
    },
    /// A relation with this name is already registered. Relation names
    /// key the catalog's dense ids and the query atoms, so a second
    /// registration would silently shadow (or corrupt) the first.
    DuplicateRelation(String),
    /// An attribute repeats within one relation schema (e.g. `R(A,A)`),
    /// which natural-join semantics cannot represent.
    DuplicateAttr {
        /// The relation whose schema repeats the attribute.
        relation: String,
        /// The repeated attribute.
        attr: String,
    },
    /// A relation's dense `u32` id space is exhausted: the store cannot
    /// accept another tuple (or intern another distinct value) without
    /// aliasing ids. `u32::MAX` itself is reserved as the dedup-table
    /// sentinel, so the usable space is `0..u32::MAX`.
    RelationFull {
        /// The relation whose store is full.
        relation: String,
        /// Which id space overflowed (`"tuple ids"` or `"symbols"`).
        what: &'static str,
    },
}

impl fmt::Display for AdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdpError::TooManyWitnesses { witnesses, cap } => write!(
                f,
                "evaluation has {witnesses} witnesses but witness ids only address {cap}; \
                 refusing to build a corrupt provenance index"
            ),
            AdpError::Overloaded { in_flight, limit } => write!(
                f,
                "overloaded: {in_flight} request(s) in flight at admission limit {limit}; \
                 the request was shed, not queued"
            ),
            AdpError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch inserting into {relation}: schema has {expected} \
                 attribute(s), tuple has {got}"
            ),
            AdpError::DuplicateRelation(name) => {
                write!(f, "relation {name} already exists")
            }
            AdpError::DuplicateAttr { relation, attr } => {
                write!(f, "duplicate attribute {attr} in relation {relation}")
            }
            AdpError::RelationFull { relation, what } => write!(
                f,
                "relation {relation} exhausted its dense u32 {what} space; \
                 refusing to alias ids"
            ),
        }
    }
}

impl std::error::Error for AdpError {}
