//! Engine-level errors.
//!
//! The engine stores witness ids as dense `u32`s (a witness is one
//! full-join row; instances large enough to overflow that space cannot
//! be represented without corrupting the incidence structure). Building
//! a provenance or delta index over such a result surfaces
//! [`AdpError::TooManyWitnesses`] instead of silently truncating ids.

use std::fmt;

/// Errors raised by the engine's index-building layers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdpError {
    /// The evaluation produced more witnesses than the dense `u32` id
    /// space (or an injected test cap) can address. Proceeding would
    /// alias distinct witnesses onto one id and corrupt every
    /// profit/live-count the solvers read.
    TooManyWitnesses {
        /// Witnesses in the evaluation result.
        witnesses: u64,
        /// Maximum representable witness count.
        cap: u64,
    },
}

impl fmt::Display for AdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdpError::TooManyWitnesses { witnesses, cap } => write!(
                f,
                "evaluation has {witnesses} witnesses but witness ids only address {cap}; \
                 refusing to build a corrupt provenance index"
            ),
        }
    }
}

impl std::error::Error for AdpError {}
