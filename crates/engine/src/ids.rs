//! Checked allocation of dense `u32` ids.
//!
//! The engine addresses everything — tuples, witnesses, join outputs —
//! with dense `u32` ids. Tuple ids are capacity-checked at the storage
//! layer ([`crate::error::AdpError::RelationFull`]); witness and output
//! ids are minted while a join materializes, where there is no `Result`
//! channel back to the caller (results are cached behind `OnceLock`s and
//! shared by reference). [`dense_id`] is the single checked gate those
//! paths allocate through: on the day a join legitimately produces
//! 2^32 rows it aborts loudly with the overflow diagnosed, instead of
//! the historical failure mode of a `len() as u32` silently wrapping
//! and aliasing distinct witnesses onto one id.

/// The next dense id for a collection currently holding `len` items.
///
/// Effectively `len as u32`, but checked: overflow diverges through a
/// cold panic naming `what`, so it can never corrupt an incidence
/// structure. Use this for every "my index in this growing vector is my
/// id" allocation outside the (typed-error) relation store.
#[inline]
pub fn dense_id(len: usize, what: &'static str) -> u32 {
    match u32::try_from(len) {
        Ok(id) => id,
        Err(_) => id_space_exhausted(what),
    }
}

/// Out-of-line divergence so the check inlines to a compare-and-branch.
#[cold]
#[inline(never)]
fn id_space_exhausted(what: &'static str) -> ! {
    // adp-lint: allow(panic-path) -- the one documented abort for dense
    // id exhaustion on cached, no-Result-channel join paths.
    panic!("dense u32 id space exhausted allocating {what} (2^32 ids in use)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_id_is_identity_in_range() {
        assert_eq!(dense_id(0, "witness ids"), 0);
        assert_eq!(dense_id(u32::MAX as usize, "witness ids"), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "dense u32 id space exhausted allocating witness ids")]
    fn dense_id_panics_past_u32() {
        dense_id(u32::MAX as usize + 1, "witness ids");
    }
}
