//! Multiway natural join with witness provenance.
//!
//! Evaluating a conjunctive query body over a [`Database`] produces:
//!
//! * the set of *witnesses* — full-join rows, each identified by the input
//!   tuple it uses in every atom (this is the provenance the ADP
//!   algorithms consume),
//! * the distinct *outputs* — projections of witnesses onto the head
//!   attributes (`Q(D)` with set semantics),
//! * the incidence between the two.
//!
//! The executor is a classic left-deep backtracking hash join. Atoms are
//! ordered greedily (smallest relation first, preferring atoms connected
//! to the already-bound attributes) and each non-leading atom gets a hash
//! index on its bound attributes.

use crate::database::Database;
use crate::schema::{Attr, RelationSchema};
use crate::value::Value;
use std::collections::HashMap;

/// One full-join row: the index of the participating tuple in every atom,
/// in *query atom order* (not join order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// `tuples[i]` is the tuple index within the relation of atom `i`.
    pub tuples: Box<[u32]>,
}

/// Result of evaluating a conjunctive query body.
#[derive(Clone, Debug, Default)]
pub struct EvalResult {
    /// Relation name per atom, in query order.
    pub atom_names: Vec<String>,
    /// Head attributes the outputs are projected on.
    pub head: Vec<Attr>,
    /// All witnesses (full-join rows).
    pub witnesses: Vec<Witness>,
    /// Distinct output tuples (projections of witnesses on `head`).
    pub outputs: Vec<Box<[Value]>>,
    /// For each witness, the output it projects to.
    pub witness_output: Vec<u32>,
    /// For each output, the witnesses projecting to it.
    pub output_witnesses: Vec<Vec<u32>>,
}

impl EvalResult {
    /// `|Q(D)|` — the number of distinct output tuples.
    pub fn output_count(&self) -> u64 {
        self.outputs.len() as u64
    }

    /// Number of full-join rows.
    pub fn witness_count(&self) -> u64 {
        self.witnesses.len() as u64
    }
}

/// Evaluates the conjunctive body `atoms` over `db`, projecting on `head`.
///
/// Every atom's relation must exist in `db` with the same attribute set.
/// `head` must be a subset of the body attributes. An empty `head` gives
/// boolean semantics: at most one output, the empty tuple.
pub fn evaluate(db: &Database, atoms: &[RelationSchema], head: &[Attr]) -> EvalResult {
    assert!(!atoms.is_empty(), "cannot evaluate a query with no atoms");
    let instances: Vec<_> = atoms
        .iter()
        .map(|a| {
            let inst = db.expect(a.name());
            let mut want: Vec<&Attr> = a.attrs().iter().collect();
            let mut have: Vec<&Attr> = inst.schema().attrs().iter().collect();
            want.sort();
            have.sort();
            assert_eq!(
                want, have,
                "schema mismatch for {}: query says {:?}, database says {:?}",
                a.name(),
                a,
                inst.schema()
            );
            inst
        })
        .collect();

    let mut result = EvalResult {
        atom_names: atoms.iter().map(|a| a.name().to_owned()).collect(),
        head: head.to_vec(),
        ..Default::default()
    };

    // Empty relation anywhere => empty result.
    if instances.iter().any(|r| r.is_empty()) {
        return result;
    }

    let order = join_order(atoms, &instances.iter().map(|r| r.len()).collect::<Vec<_>>());

    // Attribute slots: dense positions in the binding array, assigned in
    // first-seen order along the join order.
    let mut slot_of: HashMap<Attr, usize> = HashMap::new();
    // For each atom (join order): (bound attr positions within the atom,
    // their binding slots) and (free attr positions, their new slots).
    struct Step {
        atom: usize,
        bound_pos: Vec<usize>,
        bound_slot: Vec<usize>,
        free_pos: Vec<usize>,
        free_slot: Vec<usize>,
        /// tuples grouped by bound-attr key (None for the leading atom)
        index: Option<HashMap<Vec<Value>, Vec<u32>>>,
    }
    let mut steps: Vec<Step> = Vec::with_capacity(order.len());
    for &ai in &order {
        let schema = &atoms[ai];
        let inst = instances[ai];
        let mut bound_pos = Vec::new();
        let mut bound_slot = Vec::new();
        let mut free_pos = Vec::new();
        let mut free_slot = Vec::new();
        for (pos, a) in schema.attrs().iter().enumerate() {
            // positions are w.r.t. the *instance* schema ordering
            let ipos = inst.schema().position(a).expect("checked above");
            if let Some(&s) = slot_of.get(a) {
                bound_pos.push(ipos);
                bound_slot.push(s);
            } else {
                let s = slot_of.len();
                slot_of.insert(a.clone(), s);
                free_pos.push(ipos);
                free_slot.push(s);
            }
            let _ = pos;
        }
        let index = if steps.is_empty() {
            None
        } else {
            let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
            for idx in 0..inst.len() as u32 {
                let t = inst.tuple(idx);
                let key: Vec<Value> = bound_pos.iter().map(|&p| t[p]).collect();
                map.entry(key).or_default().push(idx);
            }
            Some(map)
        };
        steps.push(Step {
            atom: ai,
            bound_pos,
            bound_slot,
            free_pos,
            free_slot,
            index,
        });
    }

    let head_slots: Vec<usize> = head
        .iter()
        .map(|a| {
            *slot_of
                .get(a)
                .unwrap_or_else(|| panic!("head attribute {a} not in query body"))
        })
        .collect();

    let mut binding: Vec<Value> = vec![0; slot_of.len()];
    let mut chosen: Vec<u32> = vec![0; atoms.len()];
    let mut output_dedup: HashMap<Box<[Value]>, u32> = HashMap::new();

    // Iterative backtracking over the join order.
    // frame state: candidate list + cursor per depth.
    let mut cand: Vec<Vec<u32>> = vec![Vec::new(); steps.len()];
    let mut cursor: Vec<usize> = vec![0; steps.len()];
    let mut depth: usize = 0;
    cand[0] = (0..instances[steps[0].atom].len() as u32).collect();
    cursor[0] = 0;

    loop {
        if cursor[depth] >= cand[depth].len() {
            if depth == 0 {
                break;
            }
            depth -= 1;
            continue;
        }
        let step = &steps[depth];
        let inst = instances[step.atom];
        let idx = cand[depth][cursor[depth]];
        cursor[depth] += 1;
        let t = inst.tuple(idx);
        // bound attrs are guaranteed to match (candidates filtered by index
        // or depth==0 with no bound attrs — except depth==0 never has bound).
        for (i, &p) in step.free_pos.iter().enumerate() {
            binding[step.free_slot[i]] = t[p];
        }
        debug_assert!(step
            .bound_pos
            .iter()
            .zip(&step.bound_slot)
            .all(|(&p, &s)| t[p] == binding[s]));
        chosen[step.atom] = idx;

        if depth + 1 == steps.len() {
            // Complete witness.
            let w = Witness {
                tuples: chosen.clone().into_boxed_slice(),
            };
            let out_key: Box<[Value]> = head_slots.iter().map(|&s| binding[s]).collect();
            let next_id = output_dedup.len() as u32;
            let out_id = *output_dedup.entry(out_key.clone()).or_insert(next_id);
            if out_id == next_id {
                result.outputs.push(out_key);
                result.output_witnesses.push(Vec::new());
            }
            let wid = result.witnesses.len() as u32;
            result.witnesses.push(w);
            result.witness_output.push(out_id);
            result.output_witnesses[out_id as usize].push(wid);
            continue;
        }

        // Descend.
        let next = &steps[depth + 1];
        let key: Vec<Value> = next.bound_slot.iter().map(|&s| binding[s]).collect();
        let matches = next
            .index
            .as_ref()
            .expect("non-leading steps have indexes")
            .get(&key);
        match matches {
            Some(list) => {
                depth += 1;
                cand[depth] = list.clone();
                cursor[depth] = 0;
            }
            None => continue,
        }
    }

    result
}

/// Greedy join order: smallest relation first, then repeatedly the
/// smallest atom sharing an attribute with the bound set (falling back to
/// the smallest remaining atom for disconnected queries).
fn join_order(atoms: &[RelationSchema], sizes: &[usize]) -> Vec<usize> {
    let n = atoms.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound: Vec<Attr> = Vec::new();

    let first = *remaining
        .iter()
        .min_by_key(|&&i| (sizes[i], i))
        .expect("non-empty");
    remaining.retain(|&i| i != first);
    bound.extend(atoms[first].attrs().iter().cloned());
    order.push(first);

    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| atoms[i].attrs().iter().any(|a| bound.contains(a)))
            .collect();
        let pool = if connected.is_empty() {
            &remaining
        } else {
            &connected
        };
        let next = *pool.iter().min_by_key(|&&i| (sizes[i], i)).unwrap();
        remaining.retain(|&i| i != next);
        for a in atoms[next].attrs() {
            if !bound.contains(a) {
                bound.push(a.clone());
            }
        }
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{attrs, RelationSchema};

    /// The running example from Figure 1 of the paper.
    fn figure1_db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            "R1",
            attrs(&["A", "B"]),
            &[&[1, 1], &[2, 2], &[3, 3]], // (a1,b1),(a2,b2),(a3,b3)
        );
        db.add_relation(
            "R2",
            attrs(&["B", "C"]),
            &[&[1, 1], &[2, 2], &[2, 3], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1], &[2, 3], &[3, 3]]);
        db
    }

    fn figure1_atoms() -> Vec<RelationSchema> {
        vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ]
    }

    #[test]
    fn full_join_matches_figure1_q1() {
        let db = figure1_db();
        let r = evaluate(&db, &figure1_atoms(), &attrs(&["A", "B", "C", "E"]));
        // Q1(D) has 4 tuples in the paper.
        assert_eq!(r.output_count(), 4);
        assert_eq!(r.witness_count(), 4);
        let mut outs: Vec<Vec<Value>> = r.outputs.iter().map(|o| o.to_vec()).collect();
        outs.sort();
        assert_eq!(
            outs,
            vec![
                vec![1, 1, 1, 1],
                vec![2, 2, 2, 3],
                vec![2, 2, 3, 3],
                vec![3, 3, 3, 3],
            ]
        );
    }

    #[test]
    fn projection_matches_figure1_q2() {
        let db = figure1_db();
        let r = evaluate(&db, &figure1_atoms(), &attrs(&["A", "E"]));
        // Q2(D) = {(a1,e1),(a2,e3),(a3,e3)} — 3 distinct outputs, 4 witnesses.
        assert_eq!(r.output_count(), 3);
        assert_eq!(r.witness_count(), 4);
        // a2 output has two witnesses (through c2 and c3).
        let a2 = r
            .outputs
            .iter()
            .position(|o| o.as_ref() == [2, 3])
            .expect("a2,e3 present");
        assert_eq!(r.output_witnesses[a2].len(), 2);
    }

    #[test]
    fn boolean_head_gives_single_output() {
        let db = figure1_db();
        let r = evaluate(&db, &figure1_atoms(), &[]);
        assert_eq!(r.output_count(), 1);
        assert_eq!(r.witness_count(), 4);
        assert!(r.outputs[0].is_empty());
    }

    #[test]
    fn empty_relation_empties_result() {
        let mut db = figure1_db();
        db.relation_mut("R2").unwrap(); // keep borrowck happy
        let mut db2 = Database::new();
        db2.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1]]);
        db2.add_relation("R2", attrs(&["B", "C"]), &[]);
        db2.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1]]);
        let r = evaluate(&db2, &figure1_atoms(), &attrs(&["A"]));
        assert_eq!(r.output_count(), 0);
        let _ = db;
    }

    #[test]
    fn witnesses_reference_query_atom_order() {
        let db = figure1_db();
        let r = evaluate(&db, &figure1_atoms(), &attrs(&["A"]));
        for w in &r.witnesses {
            assert_eq!(w.tuples.len(), 3);
            // every witness joins: R1[t0].B == R2[t1].B etc.
            let t0 = db.expect("R1").tuple(w.tuples[0]);
            let t1 = db.expect("R2").tuple(w.tuples[1]);
            let t2 = db.expect("R3").tuple(w.tuples[2]);
            assert_eq!(t0[1], t1[0]);
            assert_eq!(t1[1], t2[0]);
        }
    }

    #[test]
    fn cross_product_for_disconnected_query() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("S", attrs(&["B"]), &[&[10], &[20], &[30]]);
        let atoms = vec![
            RelationSchema::new("R", attrs(&["A"])),
            RelationSchema::new("S", attrs(&["B"])),
        ];
        let r = evaluate(&db, &atoms, &attrs(&["A", "B"]));
        assert_eq!(r.output_count(), 6);
    }

    #[test]
    fn vacuum_atom_joins_trivially() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("V", vec![], &[&[]]);
        let atoms = vec![
            RelationSchema::new("R", attrs(&["A"])),
            RelationSchema::new("V", vec![]),
        ];
        let r = evaluate(&db, &atoms, &attrs(&["A"]));
        assert_eq!(r.output_count(), 2);
    }
}
