//! Multiway natural join with witness provenance.
//!
//! Evaluating a conjunctive query body over a [`Database`] produces:
//!
//! * the set of *witnesses* — full-join rows, each identified by the input
//!   tuple it uses in every atom (this is the provenance the ADP
//!   algorithms consume),
//! * the distinct *outputs* — projections of witnesses onto the head
//!   attributes (`Q(D)` with set semantics),
//! * the incidence between the two.
//!
//! The executor is a classic left-deep backtracking hash join, compiled
//! and run by [`crate::plan`]: atoms are ordered greedily (smallest
//! relation first, preferring atoms connected to the already-bound
//! attributes) and each non-leading atom gets a hash index on its bound
//! attributes. [`evaluate`] is the one-shot convenience wrapper —
//! callers that re-evaluate the same query should hold a
//! [`QueryPlan`] and its cached
//! [`JoinIndexes`](crate::plan::JoinIndexes) instead.

use crate::database::Database;
use crate::plan::QueryPlan;
use crate::schema::{Attr, RelationSchema};
use crate::value::Value;

/// One full-join row: the index of the participating tuple in every atom,
/// in *query atom order* (not join order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// `tuples[i]` is the tuple index within the relation of atom `i`.
    pub tuples: Box<[u32]>,
}

/// Result of evaluating a conjunctive query body.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalResult {
    /// Relation name per atom, in query order.
    pub atom_names: Vec<String>,
    /// Head attributes the outputs are projected on.
    pub head: Vec<Attr>,
    /// All witnesses (full-join rows).
    pub witnesses: Vec<Witness>,
    /// Distinct output tuples (projections of witnesses on `head`).
    pub outputs: Vec<Box<[Value]>>,
    /// For each witness, the output it projects to.
    pub witness_output: Vec<u32>,
    /// For each output, the witnesses projecting to it.
    pub output_witnesses: Vec<Vec<u32>>,
}

impl EvalResult {
    /// `|Q(D)|` — the number of distinct output tuples.
    pub fn output_count(&self) -> u64 {
        self.outputs.len() as u64
    }

    /// Number of full-join rows.
    pub fn witness_count(&self) -> u64 {
        self.witnesses.len() as u64
    }
}

/// Evaluates the conjunctive body `atoms` over `db`, projecting on `head`.
///
/// Every atom's relation must exist in `db` with the same attribute set.
/// `head` must be a subset of the body attributes. An empty `head` gives
/// boolean semantics: at most one output, the empty tuple.
///
/// One-shot convenience: compiles a [`QueryPlan`] and executes it once.
/// Callers that evaluate the same query repeatedly should build the plan
/// themselves and reuse its indexes (see [`crate::plan`]).
pub fn evaluate(db: &Database, atoms: &[RelationSchema], head: &[Attr]) -> EvalResult {
    QueryPlan::new(db, atoms, head).execute_once(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{attrs, RelationSchema};

    /// The running example from Figure 1 of the paper.
    fn figure1_db() -> Database {
        let mut db = Database::new();
        db.add_relation(
            "R1",
            attrs(&["A", "B"]),
            &[&[1, 1], &[2, 2], &[3, 3]], // (a1,b1),(a2,b2),(a3,b3)
        );
        db.add_relation(
            "R2",
            attrs(&["B", "C"]),
            &[&[1, 1], &[2, 2], &[2, 3], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1], &[2, 3], &[3, 3]]);
        db
    }

    fn figure1_atoms() -> Vec<RelationSchema> {
        vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ]
    }

    #[test]
    fn full_join_matches_figure1_q1() {
        let db = figure1_db();
        let r = evaluate(&db, &figure1_atoms(), &attrs(&["A", "B", "C", "E"]));
        // Q1(D) has 4 tuples in the paper.
        assert_eq!(r.output_count(), 4);
        assert_eq!(r.witness_count(), 4);
        let mut outs: Vec<Vec<Value>> = r.outputs.iter().map(|o| o.to_vec()).collect();
        outs.sort();
        assert_eq!(
            outs,
            vec![
                vec![1, 1, 1, 1],
                vec![2, 2, 2, 3],
                vec![2, 2, 3, 3],
                vec![3, 3, 3, 3],
            ]
        );
    }

    #[test]
    fn projection_matches_figure1_q2() {
        let db = figure1_db();
        let r = evaluate(&db, &figure1_atoms(), &attrs(&["A", "E"]));
        // Q2(D) = {(a1,e1),(a2,e3),(a3,e3)} — 3 distinct outputs, 4 witnesses.
        assert_eq!(r.output_count(), 3);
        assert_eq!(r.witness_count(), 4);
        // a2 output has two witnesses (through c2 and c3).
        let a2 = r
            .outputs
            .iter()
            .position(|o| o.as_ref() == [2, 3])
            .expect("a2,e3 present");
        assert_eq!(r.output_witnesses[a2].len(), 2);
    }

    #[test]
    fn boolean_head_gives_single_output() {
        let db = figure1_db();
        let r = evaluate(&db, &figure1_atoms(), &[]);
        assert_eq!(r.output_count(), 1);
        assert_eq!(r.witness_count(), 4);
        assert!(r.outputs[0].is_empty());
    }

    #[test]
    fn empty_relation_empties_result() {
        let mut db = figure1_db();
        db.relation_mut("R2").unwrap(); // keep borrowck happy
        let mut db2 = Database::new();
        db2.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1]]);
        db2.add_relation("R2", attrs(&["B", "C"]), &[]);
        db2.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1]]);
        let r = evaluate(&db2, &figure1_atoms(), &attrs(&["A"]));
        assert_eq!(r.output_count(), 0);
        let _ = db;
    }

    #[test]
    fn witnesses_reference_query_atom_order() {
        let db = figure1_db();
        let r = evaluate(&db, &figure1_atoms(), &attrs(&["A"]));
        for w in &r.witnesses {
            assert_eq!(w.tuples.len(), 3);
            // every witness joins: R1[t0].B == R2[t1].B etc.
            let t0 = db.expect("R1").tuple(w.tuples[0]);
            let t1 = db.expect("R2").tuple(w.tuples[1]);
            let t2 = db.expect("R3").tuple(w.tuples[2]);
            assert_eq!(t0[1], t1[0]);
            assert_eq!(t1[1], t2[0]);
        }
    }

    #[test]
    fn cross_product_for_disconnected_query() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("S", attrs(&["B"]), &[&[10], &[20], &[30]]);
        let atoms = vec![
            RelationSchema::new("R", attrs(&["A"])),
            RelationSchema::new("S", attrs(&["B"])),
        ];
        let r = evaluate(&db, &atoms, &attrs(&["A", "B"]));
        assert_eq!(r.output_count(), 6);
    }

    #[test]
    fn vacuum_atom_joins_trivially() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("V", vec![], &[&[]]);
        let atoms = vec![
            RelationSchema::new("R", attrs(&["A"])),
            RelationSchema::new("V", vec![]),
        ];
        let r = evaluate(&db, &atoms, &attrs(&["A"]));
        assert_eq!(r.output_count(), 2);
    }
}
