//! # adp-engine
//!
//! In-memory relational substrate for the Aggregated Deletion Propagation
//! (ADP) library. The VLDB 2020 paper executes its algorithms over
//! PostgreSQL; this crate provides the equivalent capabilities as a pure
//! in-memory engine:
//!
//! * [`value`] — the dense integer [`Value`] type plus an
//!   [`Interner`] for symbolic data,
//! * [`schema`] — attributes and relation schemas,
//! * [`catalog`] — dense [`AttrId`]/[`RelId`] resolution of names, so
//!   nothing string-keyed survives into execution,
//! * [`relation`] / [`database`] — tuple storage,
//! * [`plan`] — compiled [`QueryPlan`]s: join order and index specs
//!   computed once, indexes cached in [`JoinIndexes`], re-evaluation
//!   under [`AliveMask`] deletion states without rebuilds,
//! * [`join`] — multiway natural join with *witness* (full-join row)
//!   provenance and distinct head projection (one-shot wrapper over
//!   [`plan`]),
//! * [`provenance`] — the witness/output/input incidence structure with
//!   `kill` semantics used by the greedy ADP heuristics,
//! * [`semijoin`] — GYO ear decomposition and a Yannakakis-style full
//!   reducer for dangling-tuple removal.
//!
//! The engine is deliberately small but complete: every operation the
//! paper issues as a SQL query (full join, distinct projection counting,
//! per-tuple "profit" computation, dangling tuple removal) has a
//! first-class, tested counterpart here.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod database;
pub mod delta;
pub mod error;
pub mod ids;
pub mod join;
pub mod naive;
pub mod plan;
pub mod provenance;
pub mod relation;
pub mod schema;
pub mod semijoin;
pub mod value;

pub use catalog::{AttrId, Catalog, RelId};
pub use database::Database;
pub use delta::DeltaProvenance;
pub use error::AdpError;
pub use join::{evaluate, EvalResult, Witness};
pub use plan::{AliveMask, JoinIndexes, QueryPlan};
pub use provenance::{ProvenanceIndex, TupleRef};
pub use relation::RelationInstance;
pub use schema::{Attr, RelationSchema};
pub use value::{Interner, Value};
