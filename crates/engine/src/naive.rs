//! A nested-loop reference executor.
//!
//! Deliberately brute-force: enumerate the full cartesian product of all
//! atoms and filter on shared attributes. Exponentially slower than
//! [`crate::join::evaluate`] but obviously correct — used to
//! differentially test the hash-join executor (and available to callers
//! who want a second opinion on tiny instances).

use crate::database::Database;
use crate::join::{EvalResult, Witness};
use crate::relation::RelationInstance;
use crate::schema::{Attr, RelationSchema};
use crate::value::Value;
use std::collections::HashMap;

/// Name resolution done once up front, so the loops themselves are
/// string-free (mirroring the planned executor it differentially tests).
struct Resolved<'a> {
    instances: Vec<&'a RelationInstance>,
    /// Per atom, per tuple position: the shared binding slot.
    slots: Vec<Vec<usize>>,
    /// Per atom, per tuple position: does this occurrence bind the slot
    /// (first occurrence in atom order) or check it?
    binds: Vec<Vec<bool>>,
    /// Per head attribute: `(atom, position)` supplying its value.
    head_source: Vec<(usize, usize)>,
    n_slots: usize,
}

fn resolve<'a>(db: &'a Database, atoms: &[RelationSchema], head: &[Attr]) -> Resolved<'a> {
    let catalog = db.catalog();
    let instances: Vec<&RelationInstance> = atoms
        .iter()
        .map(|a| {
            db.rel_id(a.name())
                .map(|id| db.relation_by_id(id))
                // adp-lint: allow(panic-path) -- the naive oracle shares
                // compile's documented contract: atoms must name
                // registered relations.
                .unwrap_or_else(|| panic!("relation {} not in database", a.name()))
        })
        .collect();
    // Slot per attribute id, assigned in first-seen (atom, position) order.
    let mut slot_of: Vec<Option<usize>> = vec![None; catalog.attr_count()];
    let mut n_slots = 0usize;
    let mut slots = Vec::with_capacity(atoms.len());
    let mut binds = Vec::with_capacity(atoms.len());
    for atom in atoms {
        // adp-lint: allow(panic-path) -- every atom resolved two loops
        // above; a miss here is an internal inconsistency.
        let rel = db.rel_id(atom.name()).expect("resolved above");
        let mut atom_slots = Vec::new();
        let mut atom_binds = Vec::new();
        for &aid in db.resolved_attrs(rel) {
            match slot_of[aid.index()] {
                Some(s) => {
                    atom_slots.push(s);
                    atom_binds.push(false);
                }
                None => {
                    slot_of[aid.index()] = Some(n_slots);
                    atom_slots.push(n_slots);
                    atom_binds.push(true);
                    n_slots += 1;
                }
            }
        }
        slots.push(atom_slots);
        binds.push(atom_binds);
    }
    let head_source: Vec<(usize, usize)> = head
        .iter()
        .map(|a| {
            let aid = catalog.attr_id(a);
            atoms
                .iter()
                .enumerate()
                .find_map(|(i, s)| {
                    // adp-lint: allow(panic-path) -- every atom resolved
                    // at function entry; a miss is internal inconsistency.
                    let rel = db.rel_id(s.name()).expect("resolved above");
                    db.resolved_attrs(rel)
                        .iter()
                        .position(|x| Some(*x) == aid)
                        .map(|p| (i, p))
                })
                // adp-lint: allow(panic-path) -- same documented contract
                // as QueryPlan::compile: head attributes occur in the body.
                .expect("head attr occurs in the body")
        })
        .collect();
    Resolved {
        instances,
        slots,
        binds,
        head_source,
        n_slots,
    }
}

/// Evaluates the body by nested loops. Same contract as
/// [`crate::join::evaluate`]; witness/output order may differ, contents
/// are identical up to reordering.
pub fn evaluate_nested_loop(db: &Database, atoms: &[RelationSchema], head: &[Attr]) -> EvalResult {
    assert!(!atoms.is_empty(), "cannot evaluate a query with no atoms");
    let resolved = resolve(db, atoms, head);

    let mut result = EvalResult {
        atom_names: atoms.iter().map(|a| a.name().to_owned()).collect(),
        head: head.to_vec(),
        ..Default::default()
    };
    if resolved.instances.iter().any(|r| r.is_empty()) {
        return result;
    }

    let mut output_dedup: HashMap<Box<[Value]>, u32> = HashMap::new();
    let mut chosen = vec![0u32; atoms.len()];
    let mut binding = vec![0 as Value; resolved.n_slots];
    nested(
        &resolved,
        0,
        &mut chosen,
        &mut binding,
        &mut result,
        &mut output_dedup,
    );
    result
}

fn nested(
    r: &Resolved<'_>,
    depth: usize,
    chosen: &mut [u32],
    binding: &mut [Value],
    result: &mut EvalResult,
    output_dedup: &mut HashMap<Box<[Value]>, u32>,
) {
    if depth == r.instances.len() {
        if !consistent(r, chosen, binding) {
            return;
        }
        // project the (consistent) assignment onto the head
        let out_key: Box<[Value]> = r
            .head_source
            .iter()
            .map(|&(i, pos)| r.instances[i].tuple(chosen[i])[pos])
            .collect();
        let next_id = crate::ids::dense_id(output_dedup.len(), "output ids");
        let out_id = *output_dedup.entry(out_key.clone()).or_insert(next_id);
        if out_id == next_id {
            result.outputs.push(out_key);
            result.output_witnesses.push(Vec::new());
        }
        let wid = crate::ids::dense_id(result.witnesses.len(), "witness ids");
        result.witnesses.push(Witness {
            tuples: chosen.to_vec().into_boxed_slice(),
        });
        result.witness_output.push(out_id);
        result.output_witnesses[out_id as usize].push(wid);
        return;
    }
    for idx in r.instances[depth].indices() {
        chosen[depth] = idx;
        nested(r, depth + 1, chosen, binding, result, output_dedup);
    }
}

/// Do the chosen tuples agree on every shared attribute?
fn consistent(r: &Resolved<'_>, chosen: &[u32], binding: &mut [Value]) -> bool {
    for (i, inst) in r.instances.iter().enumerate() {
        let t = inst.tuple(chosen[i]);
        for (pos, (&slot, &first)) in r.slots[i].iter().zip(&r.binds[i]).enumerate() {
            if first {
                binding[slot] = t[pos];
            } else if binding[slot] != t[pos] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::evaluate;
    use crate::schema::attrs;

    fn sorted_outputs(r: &EvalResult) -> Vec<Vec<Value>> {
        let mut v: Vec<Vec<Value>> = r.outputs.iter().map(|o| o.to_vec()).collect();
        v.sort();
        v
    }

    fn sorted_witnesses(r: &EvalResult) -> Vec<Vec<u32>> {
        let mut v: Vec<Vec<u32>> = r.witnesses.iter().map(|w| w.tuples.to_vec()).collect();
        v.sort();
        v
    }

    #[test]
    fn agrees_with_hash_join_on_chain() {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[2, 2], &[3, 3]]);
        db.add_relation(
            "R2",
            attrs(&["B", "C"]),
            &[&[1, 1], &[2, 2], &[2, 3], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1], &[2, 3], &[3, 3]]);
        let atoms = vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ];
        for head in [attrs(&["A", "E"]), attrs(&["A", "B", "C", "E"]), vec![]] {
            let a = evaluate(&db, &atoms, &head);
            let b = evaluate_nested_loop(&db, &atoms, &head);
            assert_eq!(sorted_outputs(&a), sorted_outputs(&b));
            assert_eq!(sorted_witnesses(&a), sorted_witnesses(&b));
        }
    }

    #[test]
    fn agrees_on_random_instances() {
        // deterministic LCG
        let mut state = 0xDEADBEEFu64;
        let mut rng = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let atoms = vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["A", "C"])),
        ];
        for _ in 0..20 {
            let mut db = Database::new();
            for schema in &atoms {
                let mut inst = crate::relation::RelationInstance::new(schema.clone());
                for _ in 0..rng(6) {
                    inst.insert(&[rng(3), rng(3)]);
                }
                db.add(inst);
            }
            let head = attrs(&["A"]);
            let a = evaluate(&db, &atoms, &head);
            let b = evaluate_nested_loop(&db, &atoms, &head);
            assert_eq!(sorted_outputs(&a), sorted_outputs(&b));
            assert_eq!(a.witness_count(), b.witness_count());
        }
    }

    #[test]
    fn cross_product_matches() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("S", attrs(&["B"]), &[&[7], &[8], &[9]]);
        let atoms = vec![
            RelationSchema::new("R", attrs(&["A"])),
            RelationSchema::new("S", attrs(&["B"])),
        ];
        let a = evaluate(&db, &atoms, &attrs(&["A", "B"]));
        let b = evaluate_nested_loop(&db, &atoms, &attrs(&["A", "B"]));
        assert_eq!(sorted_outputs(&a), sorted_outputs(&b));
    }
}
