//! Compiled query plans: resolve once, execute many times.
//!
//! [`crate::join::evaluate`] re-derived the join order, re-keyed every
//! lookup through `String` attribute/relation names, and rebuilt every
//! hash index from scratch on each call. The ADP solvers, however,
//! repeatedly re-evaluate the *same* conjunctive query — across the
//! benchmark ρ-sweep, across solution verification, and under shrinking
//! deletion sets. This module splits evaluation into the three phases
//! that make re-evaluation cheap:
//!
//! 1. [`QueryPlan::new`] — name resolution (via the database
//!    [`Catalog`](crate::catalog::Catalog)), schema validation, join
//!    ordering, and binding-slot assignment. Pure metadata; no data is
//!    scanned. After this point execution touches only dense `u32` ids.
//! 2. [`QueryPlan::build_indexes`] — one hash index per non-leading
//!    atom, built over the *full* relation so the same [`JoinIndexes`]
//!    serves every subsequent execution. Build sides at paper scale are
//!    hash-partitioned and the per-partition tables are constructed
//!    concurrently on the [`adp_runtime`] pool
//!    ([`QueryPlan::build_indexes_on`]); an optional memory budget
//!    degrades to fewer, larger partitions with a recorded note
//!    ([`JoinIndexes::notes`]).
//! 3. [`QueryPlan::execute`] / [`QueryPlan::execute_masked`] — the
//!    backtracking join. The masked variant skips tuples an
//!    [`AliveMask`] marks dead, giving `Q(D − S)` for any deletion set
//!    `S` without touching the database or the indexes. Large lead
//!    ranges are probed in parallel chunks and merged deterministically,
//!    so parallel results are **byte-identical** to the sequential path
//!    (same output ids, same witness order — the internal merge step
//!    re-deduplicates outputs in first-seen chunk order).
//!
//! Witness tuple indices always refer to the original relation
//! instances, so masked results compose directly with
//! [`crate::provenance`] and the solvers' tuple bookkeeping.

use crate::catalog::RelId;
use crate::database::Database;
use crate::join::{EvalResult, Witness};
use crate::provenance::TupleRef;
use crate::relation::{RelationInstance, SegProbe};
use crate::schema::{Attr, RelationSchema};
use crate::value::Value;
use adp_runtime::ThreadPool;
use std::collections::HashMap;

/// Build sides smaller than this stay single-partition: the table fits
/// in cache and partitioning overhead outweighs the parallel build.
const PAR_BUILD_MIN_ROWS: usize = 1 << 13;

/// Lead ranges smaller than this are probed sequentially; the
/// deterministic merge is pure overhead for small joins.
const PAR_EXEC_MIN_CANDS: usize = 1 << 12;

/// Rough per-entry cost of one index posting: hash-table slot + boxed
/// key header + `Vec<u32>` posting overhead, amortized.
const INDEX_ENTRY_BYTES: usize = 48;

/// Fixed per-partition table slack (allocation rounding, growth
/// headroom). This is the term a smaller partition count saves.
const PARTITION_SLACK_BYTES: usize = 4096;

/// One atom's role in the join order: which tuple positions are already
/// bound (and to which binding slots) and which bind fresh slots.
#[derive(Clone, Debug)]
struct JoinStep {
    /// Query-atom position this step scans.
    atom: usize,
    /// Tuple positions checked against already-bound slots.
    bound_pos: Box<[u32]>,
    /// Binding slots the bound positions must match, pairwise.
    bound_slot: Box<[u32]>,
    /// Tuple positions that bind fresh slots.
    free_pos: Box<[u32]>,
    /// Slots the free positions bind, pairwise.
    free_slot: Box<[u32]>,
}

/// A compiled evaluation plan for one conjunctive query body + head over
/// one database's catalog. Build once with [`QueryPlan::new`], execute
/// any number of times.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Per query atom: the relation it scans.
    rels: Box<[RelId]>,
    /// Join steps, in execution order.
    steps: Box<[JoinStep]>,
    /// Binding slots projected into output tuples.
    head_slots: Box<[u32]>,
    /// Total number of binding slots.
    n_slots: usize,
    /// Relation name per atom, for [`EvalResult`] compatibility.
    atom_names: Vec<String>,
    /// Head attributes, for [`EvalResult`] compatibility.
    head: Vec<Attr>,
}

/// One atom's hash index: bound-attr key → tuple indices.
///
/// Two representations, chosen per instance by `build_step_index`:
///
/// * **Flat** — the unsegmented store's index, hash-split into a
///   power-of-two number of partitions so construction can fan out
///   across workers. A probe hashes the key once to pick its partition;
///   with one partition this is exactly the old flat table.
/// * **Segmented** — for sealed stores: one cached, `Arc`-shared
///   per-segment index (tombstone-independent, reused by every epoch
///   that contains the segment) plus a fresh map over the mutable tail.
///   A probe walks the segments in dense order, applying each epoch's
///   tombstone overlay and rank-shift at probe time.
///
/// Either way, [`StepIndex::extend_into`] yields ascending dense tuple
/// ids — flat posting lists are built in id order
/// ([`adp_runtime::partition_ids`]), and segment-local postings are
/// rebased by their segment's dense offset in segment order — so the
/// probe order (hence the whole evaluation) is byte-identical across
/// representations, worker counts, and epochs.
#[derive(Clone, Debug)]
pub struct StepIndex {
    repr: StepRepr,
}

#[derive(Clone, Debug)]
enum StepRepr {
    Flat(Vec<HashMap<Box<[Value]>, Vec<u32>>>),
    Segmented {
        segs: Vec<SegProbe>,
        tail: HashMap<Box<[Value]>, Vec<u32>>,
    },
}

impl StepIndex {
    #[inline]
    fn part_of(parts: &[HashMap<Box<[Value]>, Vec<u32>>], key: &[Value]) -> usize {
        if parts.len() == 1 {
            0
        } else {
            hash_values(key.iter().copied()) as usize & (parts.len() - 1)
        }
    }

    /// Appends the tuple ids whose bound attributes equal `key` to
    /// `out`, in ascending dense-id order.
    #[inline]
    pub fn extend_into(&self, key: &[Value], out: &mut Vec<u32>) {
        match &self.repr {
            StepRepr::Flat(parts) => {
                if let Some(list) = parts[Self::part_of(parts, key)].get(key) {
                    out.extend_from_slice(list);
                }
            }
            StepRepr::Segmented { segs, tail } => {
                for seg in segs {
                    seg.extend_matches(key, out);
                }
                if let Some(list) = tail.get(key) {
                    out.extend_from_slice(list);
                }
            }
        }
    }

    /// Tuple ids whose bound attributes equal `key`, ascending
    /// (allocating convenience over
    /// [`extend_into`](StepIndex::extend_into)).
    pub fn matches(&self, key: &[Value]) -> Vec<u32> {
        let mut out = Vec::new();
        self.extend_into(key, &mut out);
        out
    }

    /// Number of probe units: hash partitions (power of two) for a flat
    /// index, segments + tail for a segmented one.
    pub fn partition_count(&self) -> usize {
        match &self.repr {
            StepRepr::Flat(parts) => parts.len(),
            StepRepr::Segmented { segs, .. } => segs.len() + 1,
        }
    }

    /// Number of distinct keys across all partitions/segments.
    pub fn entry_count(&self) -> usize {
        match &self.repr {
            StepRepr::Flat(parts) => parts.iter().map(|m| m.len()).sum(),
            StepRepr::Segmented { segs, tail } => {
                segs.iter().map(SegProbe::entry_count).sum::<usize>() + tail.len()
            }
        }
    }

    /// Test-only view of the flat partition tables.
    #[cfg(test)]
    fn flat_parts(&self) -> &[HashMap<Box<[Value]>, Vec<u32>>] {
        match &self.repr {
            StepRepr::Flat(parts) => parts,
            StepRepr::Segmented { .. } => panic!("expected a flat index"),
        }
    }
}

/// FNV-1a over the little-endian bytes of a value sequence. Used both to
/// scatter build rows and to route probes, so the two always agree.
#[inline]
fn hash_values<I: IntoIterator<Item = Value>>(vals: I) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in vals {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Estimated resident bytes for one step index: postings dominate,
/// partitions add fixed slack. Deliberately simple — the budget fallback
/// only needs the right *shape* (monotone in both `rows` and `parts`).
fn index_bytes_estimate(rows: usize, key_arity: usize, parts: usize) -> usize {
    rows * (INDEX_ENTRY_BYTES + key_arity * std::mem::size_of::<Value>())
        + parts * PARTITION_SLACK_BYTES
}

/// Knobs for [`QueryPlan::build_indexes_on`]. The default builds
/// exactly like [`QueryPlan::build_indexes`]: partition count chosen
/// from the pool size, no memory budget.
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexBuildOptions {
    /// Partition count per build side (rounded up to a power of two).
    /// `None`: automatic — 1 for small build sides or single-worker
    /// pools, otherwise ~2× the pool's workers.
    pub partitions: Option<usize>,
    /// Approximate byte budget across all build-side indexes. When the
    /// estimate exceeds the per-step share, the builder halves that
    /// step's partition count (fewer, larger partitions carry less
    /// fixed table slack) and records what happened in
    /// [`JoinIndexes::notes`].
    pub memory_budget_bytes: Option<usize>,
}

/// Hash indexes for a plan's non-leading atoms, built once over the full
/// relations by [`QueryPlan::build_indexes`] and reused across
/// executions (masked or not).
#[derive(Clone, Debug)]
pub struct JoinIndexes {
    /// Per join step: bound-attr key → tuple indices (leading step:
    /// `None`).
    per_step: Vec<Option<StepIndex>>,
    /// Degradation notes recorded during the build (memory-budget
    /// fallbacks). Empty when the build ran unconstrained.
    notes: Vec<String>,
}

impl JoinIndexes {
    /// Degradation notes recorded during the build — one entry per
    /// budget-driven fallback, empty for unconstrained builds.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Partition count per join step (0 for the un-indexed lead step).
    pub fn partition_counts(&self) -> Vec<usize> {
        self.per_step
            .iter()
            .map(|s| s.as_ref().map_or(0, StepIndex::partition_count))
            .collect()
    }
}

/// Per-atom liveness of input tuples: the deletion state `S` in
/// `Q(D − S)`, layered over immutable relation instances so tuple
/// indices stay stable.
#[derive(Clone, Debug)]
pub struct AliveMask {
    alive: Vec<Vec<bool>>,
}

impl AliveMask {
    /// An all-alive mask for the instances behind `atoms` in `db`.
    pub fn all_alive(db: &Database, atoms: &[RelationSchema]) -> Self {
        AliveMask {
            alive: atoms
                .iter()
                // adp-lint: allow(panic-path) -- documented panicking
                // lookup; masks are built for atoms already validated
                // against the database.
                .map(|a| vec![true; db.expect(a.name()).len()])
                .collect(),
        }
    }

    /// Marks a tuple dead. Returns whether it was alive.
    pub fn kill(&mut self, atom: usize, index: u32) -> bool {
        let slot = &mut self.alive[atom][index as usize];
        std::mem::replace(slot, false)
    }

    /// Marks every referenced tuple dead.
    pub fn kill_all<'a, I: IntoIterator<Item = &'a TupleRef>>(&mut self, refs: I) {
        for t in refs {
            self.kill(t.atom, t.index);
        }
    }

    /// Marks a tuple alive again.
    pub fn revive(&mut self, atom: usize, index: u32) {
        self.alive[atom][index as usize] = true;
    }

    /// Is the tuple alive?
    pub fn is_alive(&self, atom: usize, index: u32) -> bool {
        self.alive[atom][index as usize]
    }

    /// Number of live tuples in one atom.
    pub fn live_count(&self, atom: usize) -> usize {
        self.alive[atom].iter().filter(|&&a| a).count()
    }
}

impl QueryPlan {
    /// Compiles a plan for the body `atoms` projected on `head`.
    ///
    /// Every atom's relation must exist in `db` with the same attribute
    /// set, and `head` must be a subset of the body attributes — the
    /// same contract as [`crate::join::evaluate`], checked here once
    /// instead of on every evaluation.
    pub fn new(db: &Database, atoms: &[RelationSchema], head: &[Attr]) -> Self {
        assert!(!atoms.is_empty(), "cannot plan a query with no atoms");
        let catalog = db.catalog();

        // Resolve atoms to relations and validate attribute sets.
        let rels: Vec<RelId> = atoms
            .iter()
            .map(|a| {
                let id = db
                    .rel_id(a.name())
                    // adp-lint: allow(panic-path) -- compile's documented
                    // contract: atoms must name registered relations;
                    // Query::validate is the typed front door.
                    .unwrap_or_else(|| panic!("relation {} not in database", a.name()));
                let mut want: Vec<_> = a
                    .attrs()
                    .iter()
                    .map(|x| catalog.attr_id(x))
                    .collect::<Option<Vec<_>>>()
                    .unwrap_or_default();
                let mut have: Vec<_> = db.resolved_attrs(id).to_vec();
                want.sort_unstable();
                have.sort_unstable();
                assert!(
                    want.len() == a.arity() && want == have,
                    "schema mismatch for {}: query says {:?}, database says {:?}",
                    a.name(),
                    a,
                    db.relation_by_id(id).schema()
                );
                id
            })
            .collect();

        let sizes: Vec<usize> = rels.iter().map(|&r| db.relation_by_id(r).len()).collect();
        let order = join_order(db, &rels, &sizes);

        // Binding slots, assigned in first-seen order along the join
        // order. Dense over the catalog's attribute space.
        let mut slot_of: Vec<Option<u32>> = vec![None; catalog.attr_count()];
        let mut n_slots = 0u32;
        let steps: Vec<JoinStep> = order
            .iter()
            .map(|&ai| {
                let mut bound_pos = Vec::new();
                let mut bound_slot = Vec::new();
                let mut free_pos = Vec::new();
                let mut free_slot = Vec::new();
                for (pos, &aid) in db.resolved_attrs(rels[ai]).iter().enumerate() {
                    match slot_of[aid.index()] {
                        Some(s) => {
                            // adp-lint: allow(truncating-cast) -- pos
                            // indexes a schema's attributes (arity-bounded).
                            bound_pos.push(pos as u32);
                            bound_slot.push(s);
                        }
                        None => {
                            slot_of[aid.index()] = Some(n_slots);
                            // adp-lint: allow(truncating-cast) -- pos
                            // indexes a schema's attributes (arity-bounded).
                            free_pos.push(pos as u32);
                            free_slot.push(n_slots);
                            n_slots += 1;
                        }
                    }
                }
                JoinStep {
                    atom: ai,
                    bound_pos: bound_pos.into(),
                    bound_slot: bound_slot.into(),
                    free_pos: free_pos.into(),
                    free_slot: free_slot.into(),
                }
            })
            .collect();

        let head_slots: Vec<u32> = head
            .iter()
            .map(|a| {
                catalog
                    .attr_id(a)
                    .and_then(|id| slot_of[id.index()])
                    // adp-lint: allow(panic-path) -- compile's documented
                    // contract: head attributes must occur in the body;
                    // Query::validate is the typed front door.
                    .unwrap_or_else(|| panic!("head attribute {a} not in query body"))
            })
            .collect();

        QueryPlan {
            rels: rels.into(),
            steps: steps.into(),
            head_slots: head_slots.into(),
            n_slots: n_slots as usize,
            atom_names: atoms.iter().map(|a| a.name().to_owned()).collect(),
            head: head.to_vec(),
        }
    }

    /// The relation scanned by each query atom.
    pub fn rels(&self) -> &[RelId] {
        &self.rels
    }

    /// Number of query atoms.
    pub fn atom_count(&self) -> usize {
        self.rels.len()
    }

    /// Builds the hash indexes the plan's non-leading atoms probe.
    /// Indexes cover the full relations; masked executions filter at
    /// probe time, so one build serves every deletion state.
    ///
    /// Paper-scale build sides fan out over the process-wide
    /// [`adp_runtime::global`] pool with automatic partitioning; small
    /// build sides stay sequential and never touch (or lazily
    /// initialize) the global pool. See
    /// [`QueryPlan::build_indexes_on`] for explicit control.
    pub fn build_indexes(&self, db: &Database) -> JoinIndexes {
        let big = self
            .steps
            .iter()
            .skip(1)
            .any(|s| db.relation_by_id(self.rels[s.atom]).len() >= PAR_BUILD_MIN_ROWS);
        let pool = if big {
            Some(adp_runtime::global())
        } else {
            None
        };
        self.build_indexes_inner(db, pool, IndexBuildOptions::default())
    }

    /// Builds the join indexes on an explicit pool with explicit
    /// options. Results are identical for every `(pool, partitions)`
    /// combination — partitioning only changes *where* a key lives, and
    /// per-key posting lists stay in ascending tuple-id order.
    pub fn build_indexes_on(
        &self,
        db: &Database,
        pool: &ThreadPool,
        opts: IndexBuildOptions,
    ) -> JoinIndexes {
        self.build_indexes_inner(db, Some(pool), opts)
    }

    fn build_indexes_inner(
        &self,
        db: &Database,
        pool: Option<&ThreadPool>,
        opts: IndexBuildOptions,
    ) -> JoinIndexes {
        let threads = pool.map_or(1, ThreadPool::threads);
        let mut notes = Vec::new();
        let non_lead = self.steps.len().saturating_sub(1).max(1);
        let budget_share = opts.memory_budget_bytes.map(|b| b / non_lead);
        let per_step = self
            .steps
            .iter()
            .enumerate()
            .map(|(depth, step)| {
                if depth == 0 {
                    return None;
                }
                let inst = db.relation_by_id(self.rels[step.atom]);
                let rows = inst.len();
                let mut parts = match opts.partitions {
                    Some(p) => p.next_power_of_two().max(1),
                    None if threads <= 1 || rows < PAR_BUILD_MIN_ROWS => 1,
                    None => (threads * 2).next_power_of_two().min(64),
                };
                if let Some(budget) = budget_share {
                    let arity = step.bound_pos.len();
                    let before = parts;
                    while parts > 1 && index_bytes_estimate(rows, arity, parts) > budget {
                        parts /= 2;
                    }
                    if parts < before {
                        notes.push(format!(
                            "step {depth} ({}): partitions reduced {before} -> {parts} to fit \
                             ~{budget}B budget share (estimate was {}B)",
                            self.atom_names[step.atom],
                            index_bytes_estimate(rows, arity, before),
                        ));
                    }
                    let est = index_bytes_estimate(rows, arity, parts);
                    if est > budget {
                        notes.push(format!(
                            "step {depth} ({}): estimate {est}B exceeds ~{budget}B budget share \
                             even single-partition; building anyway",
                            self.atom_names[step.atom],
                        ));
                    }
                }
                Some(build_step_index(inst, &step.bound_pos, parts, pool))
            })
            .collect();
        JoinIndexes { per_step, notes }
    }

    /// Evaluates over the full database (every tuple alive). Large lead
    /// ranges fan out over the global pool; small ones run sequentially
    /// without touching it.
    pub fn execute(&self, db: &Database, indexes: &JoinIndexes) -> EvalResult {
        self.run(db, indexes, None, None, 0)
    }

    /// Evaluates `Q(D − S)` where `S` is the set of dead tuples in
    /// `alive`. Witness indices refer to the original instances, so
    /// results are directly comparable across masks.
    pub fn execute_masked(
        &self,
        db: &Database,
        indexes: &JoinIndexes,
        alive: &AliveMask,
    ) -> EvalResult {
        self.run(db, indexes, Some(alive), None, 0)
    }

    /// [`QueryPlan::execute`] / [`QueryPlan::execute_masked`] on an
    /// explicit pool (auto-chunked). Needed by harnesses that sweep
    /// worker counts with local pools — the global pool is fixed-size.
    pub fn execute_on(
        &self,
        db: &Database,
        indexes: &JoinIndexes,
        alive: Option<&AliveMask>,
        pool: &ThreadPool,
    ) -> EvalResult {
        self.run(db, indexes, alive, Some(pool), 0)
    }

    /// Evaluates with an explicit probe chunk count, bypassing the
    /// size threshold. `chunks == 0` means automatic. Exposed so tests
    /// can force the parallel merge path on small inputs and assert
    /// byte-identity against the sequential result.
    pub fn execute_chunked(
        &self,
        db: &Database,
        indexes: &JoinIndexes,
        alive: Option<&AliveMask>,
        pool: &ThreadPool,
        chunks: usize,
    ) -> EvalResult {
        self.run(db, indexes, alive, Some(pool), chunks)
    }

    /// Convenience for one-shot callers: build indexes and execute.
    pub fn execute_once(&self, db: &Database) -> EvalResult {
        if self.rels.iter().any(|&r| db.relation_by_id(r).is_empty()) {
            return self.empty_result();
        }
        let indexes = self.build_indexes(db);
        self.execute(db, &indexes)
    }

    fn empty_result(&self) -> EvalResult {
        EvalResult {
            atom_names: self.atom_names.clone(),
            head: self.head.clone(),
            ..Default::default()
        }
    }

    /// Backtracking join over the lead candidates, optionally fanned out
    /// across `pool` in contiguous chunks. Chunk results are merged in
    /// chunk order, re-deduplicating outputs in first-seen order, so the
    /// merged [`EvalResult`] is byte-identical to the sequential scan:
    /// same output ids, same witness ids, same posting order.
    fn run(
        &self,
        db: &Database,
        indexes: &JoinIndexes,
        alive: Option<&AliveMask>,
        pool: Option<&ThreadPool>,
        chunks: usize,
    ) -> EvalResult {
        let instances: Vec<_> = self.rels.iter().map(|&r| db.relation_by_id(r)).collect();
        if instances.iter().any(|r| r.is_empty()) {
            return self.empty_result();
        }
        let lead = self.steps[0].atom;
        let cands: Vec<u32> = instances[lead]
            .indices()
            .filter(|&i| alive.is_none_or(|m| m.is_alive(lead, i)))
            .collect();
        // Consult the global pool only past the size threshold: small
        // executions stay sequential and never lazily initialize it.
        let pool = match pool {
            Some(p) => Some(p),
            None if cands.len() >= PAR_EXEC_MIN_CANDS => Some(adp_runtime::global()),
            None => None,
        };
        let threads = pool.map_or(1, ThreadPool::threads);
        let chunks = match chunks {
            0 if threads > 1 && cands.len() >= PAR_EXEC_MIN_CANDS => threads * 4,
            0 => 1,
            n => n,
        };
        let (Some(pool), false) = (pool, chunks <= 1 || cands.len() <= 1) else {
            let part = self.run_range(&instances, indexes, alive, &cands);
            return self.merge(vec![part]);
        };
        let chunk_size = cands.len().div_ceil(chunks).max(1);
        let n_chunks = cands.len().div_ceil(chunk_size);
        let partials = pool.par_indexed(n_chunks, |c| {
            let lo = c * chunk_size;
            let hi = ((c + 1) * chunk_size).min(cands.len());
            self.run_range(&instances, indexes, alive, &cands[lo..hi])
        });
        self.merge(partials)
    }

    /// The iterative backtracking loop over one contiguous slice of lead
    /// candidates. Outputs are deduplicated locally (first-seen order
    /// within the slice); [`QueryPlan::merge`] rebuilds global ids.
    fn run_range(
        &self,
        instances: &[&RelationInstance],
        indexes: &JoinIndexes,
        alive: Option<&AliveMask>,
        lead_cands: &[u32],
    ) -> PartialEval {
        let mut partial = PartialEval::default();
        let is_alive = |atom: usize, idx: u32| alive.is_none_or(|m| m.is_alive(atom, idx));

        let mut binding: Vec<Value> = vec![0; self.n_slots];
        let mut chosen: Vec<u32> = vec![0; self.rels.len()];
        let mut output_dedup: HashMap<Box<[Value]>, u32> = HashMap::new();
        let mut key_buf: Vec<Value> = Vec::new();

        // Candidate list + cursor per depth.
        let mut cand: Vec<Vec<u32>> = vec![Vec::new(); self.steps.len()];
        let mut cursor: Vec<usize> = vec![0; self.steps.len()];
        let mut depth: usize = 0;
        cand[0] = lead_cands.to_vec();
        cursor[0] = 0;

        loop {
            if cursor[depth] >= cand[depth].len() {
                if depth == 0 {
                    break;
                }
                depth -= 1;
                continue;
            }
            let step = &self.steps[depth];
            let inst = instances[step.atom];
            let idx = cand[depth][cursor[depth]];
            cursor[depth] += 1;
            let t = inst.tuple(idx);
            for (i, &p) in step.free_pos.iter().enumerate() {
                binding[step.free_slot[i] as usize] = t[p as usize];
            }
            debug_assert!(step
                .bound_pos
                .iter()
                .zip(step.bound_slot.iter())
                .all(|(&p, &s)| t[p as usize] == binding[s as usize]));
            chosen[step.atom] = idx;

            if depth + 1 == self.steps.len() {
                // Complete witness.
                let out_key: Box<[Value]> = self
                    .head_slots
                    .iter()
                    .map(|&s| binding[s as usize])
                    .collect();
                let next_id = crate::ids::dense_id(output_dedup.len(), "output ids");
                let out_id = *output_dedup.entry(out_key.clone()).or_insert(next_id);
                if out_id == next_id {
                    partial.outputs.push(out_key);
                }
                partial.witnesses.push(Witness {
                    tuples: chosen.clone().into_boxed_slice(),
                });
                partial.witness_output.push(out_id);
                continue;
            }

            // Descend. The probe key buffer is reused across probes —
            // no per-probe allocation.
            let next = &self.steps[depth + 1];
            key_buf.clear();
            key_buf.extend(next.bound_slot.iter().map(|&s| binding[s as usize]));
            let sidx = indexes.per_step[depth + 1]
                .as_ref()
                // adp-lint: allow(panic-path) -- JoinIndexes::build
                // populates every non-leading step; a miss is plan/index
                // mismatch (internal invariant).
                .expect("non-leading steps have indexes");
            let nd = depth + 1;
            cand[nd].clear();
            sidx.extend_into(&key_buf, &mut cand[nd]);
            cand[nd].retain(|&i| is_alive(next.atom, i));
            if cand[nd].is_empty() {
                continue;
            }
            depth = nd;
            cursor[depth] = 0;
        }

        partial
    }

    /// Concatenates partial results in chunk order, remapping each
    /// chunk's local output ids to global first-seen ids. Because chunks
    /// cover the lead candidates in ascending contiguous slices, the
    /// concatenation visits witnesses in exactly the sequential order —
    /// making the merged result byte-identical to a one-chunk run.
    fn merge(&self, partials: Vec<PartialEval>) -> EvalResult {
        let mut result = self.empty_result();
        let mut output_dedup: HashMap<Box<[Value]>, u32> = HashMap::new();
        for partial in partials {
            let mut local_to_global = Vec::with_capacity(partial.outputs.len());
            for out_key in partial.outputs {
                let next_id = crate::ids::dense_id(output_dedup.len(), "output ids");
                let out_id = *output_dedup.entry(out_key.clone()).or_insert(next_id);
                if out_id == next_id {
                    result.outputs.push(out_key);
                    result.output_witnesses.push(Vec::new());
                }
                local_to_global.push(out_id);
            }
            for (w, local) in partial.witnesses.into_iter().zip(partial.witness_output) {
                let wid = crate::ids::dense_id(result.witnesses.len(), "witness ids");
                let out_id = local_to_global[local as usize];
                result.witnesses.push(w);
                result.witness_output.push(out_id);
                result.output_witnesses[out_id as usize].push(wid);
            }
        }
        result
    }
}

/// One chunk's worth of join results: outputs in local first-seen order,
/// witnesses in lead-candidate order, witness → local output id.
#[derive(Default)]
struct PartialEval {
    outputs: Vec<Box<[Value]>>,
    witnesses: Vec<Witness>,
    witness_output: Vec<u32>,
}

/// Builds one step's hash index.
///
/// Sealed stores get the segmented representation: per-segment indexes
/// are fetched from (or built into) the segments' shared caches — so a
/// segment indexed once serves every epoch that contains it — plus a
/// fresh map over the tail rows. Unsegmented stores get the flat
/// representation with `parts` partitions (power of two):
/// single-partition builds scan sequentially; partitioned builds scatter
/// ids with [`adp_runtime::partition_ids`] and fill each partition's
/// table on the pool. All paths yield probe-identical content.
fn build_step_index(
    inst: &RelationInstance,
    bound_pos: &[u32],
    parts: usize,
    pool: Option<&ThreadPool>,
) -> StepIndex {
    debug_assert!(parts.is_power_of_two());
    if inst.is_segmented() {
        let segs = inst.segment_probes(bound_pos, pool);
        let mut tail: HashMap<Box<[Value]>, Vec<u32>> = HashMap::new();
        let mut buf: Vec<Value> = Vec::with_capacity(bound_pos.len());
        for idx in inst.tail_dense_range() {
            let t = inst.tuple(idx);
            buf.clear();
            buf.extend(bound_pos.iter().map(|&p| t[p as usize]));
            match tail.get_mut(buf.as_slice()) {
                Some(list) => list.push(idx),
                None => {
                    tail.insert(buf.clone().into_boxed_slice(), vec![idx]);
                }
            }
        }
        return StepIndex {
            repr: StepRepr::Segmented { segs, tail },
        };
    }
    let fill = |ids: &[u32]| {
        let mut map: HashMap<Box<[Value]>, Vec<u32>> = HashMap::new();
        let mut buf: Vec<Value> = Vec::with_capacity(bound_pos.len());
        for &idx in ids {
            let t = inst.tuple(idx);
            buf.clear();
            buf.extend(bound_pos.iter().map(|&p| t[p as usize]));
            match map.get_mut(buf.as_slice()) {
                Some(list) => list.push(idx),
                None => {
                    map.insert(buf.clone().into_boxed_slice(), vec![idx]);
                }
            }
        }
        map
    };
    if parts == 1 {
        let ids: Vec<u32> = inst.indices().collect();
        return StepIndex {
            repr: StepRepr::Flat(vec![fill(&ids)]),
        };
    }
    let mask = parts - 1;
    let part_of = |idx: u32| {
        let t = inst.tuple(idx);
        hash_values(bound_pos.iter().map(|&p| t[p as usize])) as usize & mask
    };
    match pool {
        Some(pool) => {
            let buckets = adp_runtime::partition_ids(pool, inst.len(), parts, part_of);
            StepIndex {
                repr: StepRepr::Flat(pool.par_indexed(parts, |p| fill(&buckets[p]))),
            }
        }
        None => {
            // Sequential partitioned build — same scatter, same tables.
            let mut buckets = vec![Vec::new(); parts];
            for idx in inst.indices() {
                buckets[part_of(idx)].push(idx);
            }
            StepIndex {
                repr: StepRepr::Flat(buckets.iter().map(|b| fill(b)).collect()),
            }
        }
    }
}

/// Greedy join order: smallest relation first, then repeatedly the
/// smallest atom sharing an attribute with the bound set (falling back
/// to the smallest remaining atom for disconnected queries). Operates
/// entirely on dense ids.
fn join_order(db: &Database, rels: &[RelId], sizes: &[usize]) -> Vec<usize> {
    let n = rels.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound = vec![false; db.catalog().attr_count()];

    let first = *remaining
        .iter()
        .min_by_key(|&&i| (sizes[i], i))
        // adp-lint: allow(panic-path) -- compile rejects empty queries
        // before ordering; remaining starts with one entry per atom.
        .expect("non-empty");
    remaining.retain(|&i| i != first);
    for &aid in db.resolved_attrs(rels[first]) {
        bound[aid.index()] = true;
    }
    order.push(first);

    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| db.resolved_attrs(rels[i]).iter().any(|a| bound[a.index()]))
            .collect();
        let pool = if connected.is_empty() {
            &remaining
        } else {
            &connected
        };
        // adp-lint: allow(panic-path) -- pool is non-empty by
        // construction: it falls back to `remaining`, and the loop runs
        // only while `remaining` is non-empty.
        let next = *pool.iter().min_by_key(|&&i| (sizes[i], i)).unwrap();
        remaining.retain(|&i| i != next);
        for &aid in db.resolved_attrs(rels[next]) {
            bound[aid.index()] = true;
        }
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::evaluate;
    use crate::naive::evaluate_nested_loop;
    use crate::schema::attrs;

    /// The running example from Figure 1 of the paper.
    fn figure1_db() -> Database {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[2, 2], &[3, 3]]);
        db.add_relation(
            "R2",
            attrs(&["B", "C"]),
            &[&[1, 1], &[2, 2], &[2, 3], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1], &[2, 3], &[3, 3]]);
        db
    }

    fn figure1_atoms() -> Vec<RelationSchema> {
        vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ]
    }

    fn sorted_outputs(r: &EvalResult) -> Vec<Vec<Value>> {
        let mut v: Vec<Vec<Value>> = r.outputs.iter().map(|o| o.to_vec()).collect();
        v.sort();
        v
    }

    fn sorted_witnesses(r: &EvalResult) -> Vec<Vec<u32>> {
        let mut v: Vec<Vec<u32>> = r.witnesses.iter().map(|w| w.tuples.to_vec()).collect();
        v.sort();
        v
    }

    #[test]
    fn plan_execute_matches_evaluate() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        for head in [attrs(&["A", "E"]), attrs(&["A", "B", "C", "E"]), vec![]] {
            let plan = QueryPlan::new(&db, &atoms, &head);
            let planned = plan.execute_once(&db);
            let classic = evaluate(&db, &atoms, &head);
            assert_eq!(sorted_outputs(&planned), sorted_outputs(&classic));
            assert_eq!(sorted_witnesses(&planned), sorted_witnesses(&classic));
        }
    }

    #[test]
    fn indexes_are_reusable_across_executions() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A", "E"]));
        let idx = plan.build_indexes(&db);
        let a = plan.execute(&db, &idx);
        let b = plan.execute(&db, &idx);
        assert_eq!(sorted_witnesses(&a), sorted_witnesses(&b));
        assert_eq!(a.output_count(), 3);
    }

    #[test]
    fn all_alive_mask_is_identity() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A", "E"]));
        let idx = plan.build_indexes(&db);
        let mask = AliveMask::all_alive(&db, &atoms);
        let masked = plan.execute_masked(&db, &idx, &mask);
        let full = plan.execute(&db, &idx);
        assert_eq!(sorted_witnesses(&masked), sorted_witnesses(&full));
        assert_eq!(sorted_outputs(&masked), sorted_outputs(&full));
    }

    #[test]
    fn masked_execution_matches_filtered_database() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let head = attrs(&["A", "E"]);
        let plan = QueryPlan::new(&db, &atoms, &head);
        let idx = plan.build_indexes(&db);

        // Kill R3(c3,e3) — the paper's ADP(Q1, D, 2) answer.
        let c3e3 = db.expect("R3").index_of(&[3, 3]).unwrap();
        let mut mask = AliveMask::all_alive(&db, &atoms);
        assert!(mask.kill(2, c3e3));
        assert!(!mask.kill(2, c3e3), "second kill reports already-dead");
        let masked = plan.execute_masked(&db, &idx, &mask);

        // Reference: rebuild the database without the tuple.
        let mut db2 = Database::new();
        for (ai, atom) in atoms.iter().enumerate() {
            let rel = db.expect(atom.name());
            let (kept, _) = rel.filter_by_index(|i| mask.is_alive(ai, i));
            db2.add(kept);
        }
        let reference = evaluate_nested_loop(&db2, &atoms, &head);
        assert_eq!(sorted_outputs(&masked), sorted_outputs(&reference));
        assert_eq!(masked.witness_count(), reference.witness_count());
        // Original indices survive masking.
        for w in &masked.witnesses {
            assert!(mask.is_alive(2, w.tuples[2]));
        }
    }

    #[test]
    fn mask_revive_restores_results() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A", "E"]));
        let idx = plan.build_indexes(&db);
        let mut mask = AliveMask::all_alive(&db, &atoms);
        mask.kill(0, 0);
        assert_eq!(plan.execute_masked(&db, &idx, &mask).output_count(), 2);
        assert_eq!(mask.live_count(0), 2);
        mask.revive(0, 0);
        assert_eq!(plan.execute_masked(&db, &idx, &mask).output_count(), 3);
    }

    #[test]
    fn fully_masked_leading_atom_gives_empty_result() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A"]));
        let idx = plan.build_indexes(&db);
        let mut mask = AliveMask::all_alive(&db, &atoms);
        for i in 0..db.expect("R1").len() as u32 {
            mask.kill(0, i);
        }
        let r = plan.execute_masked(&db, &idx, &mask);
        assert_eq!(r.output_count(), 0);
        assert_eq!(r.witness_count(), 0);
    }

    #[test]
    fn kill_all_accepts_tuple_refs() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A", "E"]));
        let idx = plan.build_indexes(&db);
        let mut mask = AliveMask::all_alive(&db, &atoms);
        mask.kill_all(&[
            TupleRef::new(0, 0),
            TupleRef::new(0, 1),
            TupleRef::new(0, 2),
        ]);
        assert_eq!(plan.execute_masked(&db, &idx, &mask).output_count(), 0);
    }

    #[test]
    fn vacuum_atom_plans_and_executes() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("V", vec![], &[&[]]);
        let atoms = vec![
            RelationSchema::new("R", attrs(&["A"])),
            RelationSchema::new("V", vec![]),
        ];
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A"]));
        assert_eq!(plan.execute_once(&db).output_count(), 2);
    }

    /// A bigger chain instance with shared join keys and duplicate
    /// head projections, to exercise dedup across chunk boundaries.
    fn chain_db(n: u64) -> Database {
        let mut db = Database::new();
        let r1: Vec<Vec<Value>> = (0..n).map(|i| vec![i, i % 17]).collect();
        let r2: Vec<Vec<Value>> = (0..n).map(|i| vec![i % 17, i % 5]).collect();
        let r3: Vec<Vec<Value>> = (0..n).map(|i| vec![i % 5, i % 3]).collect();
        fn as_refs(rows: &[Vec<Value>]) -> Vec<&[Value]> {
            rows.iter().map(|r| &r[..]).collect()
        }
        db.add_relation("R1", attrs(&["A", "B"]), &as_refs(&r1));
        db.add_relation("R2", attrs(&["B", "C"]), &as_refs(&r2));
        db.add_relation("R3", attrs(&["C", "E"]), &as_refs(&r3));
        db
    }

    #[test]
    fn partitioned_index_matches_flat_index() {
        let db = chain_db(500);
        let atoms = figure1_atoms();
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A", "E"]));
        let pool = ThreadPool::new(4);
        let flat = plan.build_indexes_on(
            &db,
            &pool,
            IndexBuildOptions {
                partitions: Some(1),
                ..Default::default()
            },
        );
        for parts in [2usize, 8, 16] {
            let split = plan.build_indexes_on(
                &db,
                &pool,
                IndexBuildOptions {
                    partitions: Some(parts),
                    ..Default::default()
                },
            );
            assert_eq!(split.partition_counts()[1], parts);
            // Identical results through either index.
            assert_eq!(plan.execute(&db, &flat), plan.execute(&db, &split));
            for (f, s) in flat.per_step.iter().zip(&split.per_step) {
                let (Some(f), Some(s)) = (f.as_ref(), s.as_ref()) else {
                    continue;
                };
                assert_eq!(f.entry_count(), s.entry_count());
                for (key, list) in f.flat_parts()[0].iter() {
                    assert_eq!(&s.matches(key), list, "key {key:?}");
                }
            }
        }
    }

    #[test]
    fn partitioned_build_is_pool_size_invariant() {
        let db = chain_db(300);
        let plan = QueryPlan::new(&db, &figure1_atoms(), &attrs(&["A", "E"]));
        let opts = IndexBuildOptions {
            partitions: Some(8),
            ..Default::default()
        };
        let one = plan.build_indexes_on(&db, &ThreadPool::new(1), opts);
        let four = plan.build_indexes_on(&db, &ThreadPool::new(4), opts);
        for (a, b) in one.per_step.iter().zip(&four.per_step) {
            match (a.as_ref(), b.as_ref()) {
                (Some(a), Some(b)) => assert_eq!(a.flat_parts(), b.flat_parts()),
                (None, None) => {}
                _ => panic!("index presence differs"),
            }
        }
    }

    /// A sealed (segmented) store must evaluate byte-identically to the
    /// unsegmented original — and, after tombstoning, to a from-scratch
    /// database holding only the live tuples. This is the engine half of
    /// the COW-epoch contract: plans and provenance never see segments,
    /// only the dense view.
    #[test]
    fn segmented_store_executes_byte_identically() {
        let db = chain_db(400);
        let atoms = figure1_atoms();
        let pool = ThreadPool::new(4);
        for head in [attrs(&["A", "E"]), attrs(&["B"]), vec![]] {
            let plan = QueryPlan::new(&db, &atoms, &head);
            let baseline = plan.execute_once(&db);

            let mut sealed = db.clone();
            sealed.seal_all(64);
            let idx = plan.build_indexes(&sealed);
            assert_eq!(plan.execute(&sealed, &idx), baseline);
            // Pool-built segmented indexes answer identically too.
            let idx_on = plan.build_indexes_on(&sealed, &pool, IndexBuildOptions::default());
            assert_eq!(plan.execute_on(&sealed, &idx_on, None, &pool), baseline);

            // Tombstone a spread of every relation, then compare against
            // a database rebuilt from the live view.
            for name in ["R1", "R2", "R3"] {
                let id = sealed.rel_id(name).unwrap();
                let n = crate::ids::dense_id(sealed.relation_by_id(id).len(), "test rows");
                for s in (0..n).step_by(7) {
                    assert!(sealed.relation_mut_by_id(id).delete_stable(s));
                }
            }
            let mut oracle = Database::new();
            for name in ["R1", "R2", "R3"] {
                let (kept, _) = sealed.expect(name).filter_by_index(|_| true);
                oracle.add(kept);
            }
            let plan_s = QueryPlan::new(&sealed, &atoms, &head);
            let plan_o = QueryPlan::new(&oracle, &atoms, &head);
            let got = plan_s.execute(&sealed, &plan_s.build_indexes(&sealed));
            let want = plan_o.execute(&oracle, &plan_o.build_indexes(&oracle));
            assert_eq!(got, want, "head {head:?}");
        }
    }

    #[test]
    fn chunked_execution_is_byte_identical() {
        let db = chain_db(400);
        let atoms = figure1_atoms();
        let pool = ThreadPool::new(4);
        for head in [attrs(&["A", "E"]), attrs(&["B"]), vec![]] {
            let plan = QueryPlan::new(&db, &atoms, &head);
            let idx = plan.build_indexes_on(
                &db,
                &pool,
                IndexBuildOptions {
                    partitions: Some(4),
                    ..Default::default()
                },
            );
            let seq = plan.execute_chunked(&db, &idx, None, &pool, 1);
            for chunks in [2usize, 3, 7, 64] {
                let par = plan.execute_chunked(&db, &idx, None, &pool, chunks);
                assert_eq!(seq, par, "chunks={chunks}");
            }
            // Masked path, killing a spread of tuples.
            let mut mask = AliveMask::all_alive(&db, &atoms);
            for i in (0..db.expect("R1").len() as u32).step_by(3) {
                mask.kill(0, i);
            }
            for i in (0..db.expect("R2").len() as u32).step_by(5) {
                mask.kill(1, i);
            }
            let seq = plan.execute_chunked(&db, &idx, Some(&mask), &pool, 1);
            let par = plan.execute_chunked(&db, &idx, Some(&mask), &pool, 8);
            assert_eq!(seq, par);
            assert_eq!(seq, plan.execute_on(&db, &idx, Some(&mask), &pool));
        }
    }

    #[test]
    fn chunk_count_exceeding_candidates_is_fine() {
        let db = figure1_db();
        let plan = QueryPlan::new(&db, &figure1_atoms(), &attrs(&["A", "E"]));
        let pool = ThreadPool::new(2);
        let idx = plan.build_indexes_on(&db, &pool, IndexBuildOptions::default());
        let seq = plan.execute(&db, &idx);
        let par = plan.execute_chunked(&db, &idx, None, &pool, 1000);
        assert_eq!(seq, par);
    }

    #[test]
    fn memory_budget_degrades_partitions_with_note() {
        let db = chain_db(200);
        let plan = QueryPlan::new(&db, &figure1_atoms(), &attrs(&["A", "E"]));
        let pool = ThreadPool::new(2);
        // Budget sized so 16 partitions overflow but 4 fit: rows cost is
        // fixed, each partition adds PARTITION_SLACK_BYTES.
        let rows = 200;
        let budget_share = index_bytes_estimate(rows, 1, 4) + PARTITION_SLACK_BYTES;
        let idx = plan.build_indexes_on(
            &db,
            &pool,
            IndexBuildOptions {
                partitions: Some(16),
                memory_budget_bytes: Some(budget_share * 2),
            },
        );
        assert!(idx.partition_counts().iter().all(|&p| p == 0 || p <= 4));
        assert!(!idx.notes().is_empty());
        assert!(idx.notes()[0].contains("partitions reduced 16 -> "));
        // Degraded index still answers identically.
        let flat = plan.build_indexes_on(&db, &pool, IndexBuildOptions::default());
        assert_eq!(plan.execute(&db, &flat), plan.execute(&db, &idx));
    }

    #[test]
    fn impossible_budget_records_note_but_still_builds() {
        let db = chain_db(100);
        let plan = QueryPlan::new(&db, &figure1_atoms(), &attrs(&["A"]));
        let pool = ThreadPool::new(1);
        let idx = plan.build_indexes_on(
            &db,
            &pool,
            IndexBuildOptions {
                partitions: None,
                memory_budget_bytes: Some(16),
            },
        );
        assert!(
            idx.notes().iter().any(|n| n.contains("building anyway")),
            "{:?}",
            idx.notes()
        );
        let unconstrained = plan.build_indexes_on(&db, &pool, IndexBuildOptions::default());
        assert_eq!(plan.execute(&db, &unconstrained), plan.execute(&db, &idx));
    }

    #[test]
    #[should_panic(expected = "not in database")]
    fn unknown_relation_rejected_at_plan_time() {
        let db = figure1_db();
        let atoms = vec![RelationSchema::new("Nope", attrs(&["A"]))];
        QueryPlan::new(&db, &atoms, &[]);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn schema_mismatch_rejected_at_plan_time() {
        let db = figure1_db();
        let atoms = vec![RelationSchema::new("R1", attrs(&["A", "Z"]))];
        QueryPlan::new(&db, &atoms, &[]);
    }
}
