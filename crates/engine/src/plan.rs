//! Compiled query plans: resolve once, execute many times.
//!
//! [`crate::join::evaluate`] re-derived the join order, re-keyed every
//! lookup through `String` attribute/relation names, and rebuilt every
//! hash index from scratch on each call. The ADP solvers, however,
//! repeatedly re-evaluate the *same* conjunctive query — across the
//! benchmark ρ-sweep, across solution verification, and under shrinking
//! deletion sets. This module splits evaluation into the three phases
//! that make re-evaluation cheap:
//!
//! 1. [`QueryPlan::new`] — name resolution (via the database
//!    [`Catalog`](crate::catalog::Catalog)), schema validation, join
//!    ordering, and binding-slot assignment. Pure metadata; no data is
//!    scanned. After this point execution touches only dense `u32` ids.
//! 2. [`QueryPlan::build_indexes`] — one hash index per non-leading
//!    atom, built over the *full* relation so the same [`JoinIndexes`]
//!    serves every subsequent execution.
//! 3. [`QueryPlan::execute`] / [`QueryPlan::execute_masked`] — the
//!    backtracking join. The masked variant skips tuples an
//!    [`AliveMask`] marks dead, giving `Q(D − S)` for any deletion set
//!    `S` without touching the database or the indexes.
//!
//! Witness tuple indices always refer to the original relation
//! instances, so masked results compose directly with
//! [`crate::provenance`] and the solvers' tuple bookkeeping.

use crate::catalog::RelId;
use crate::database::Database;
use crate::join::{EvalResult, Witness};
use crate::provenance::TupleRef;
use crate::schema::{Attr, RelationSchema};
use crate::value::Value;
use std::collections::HashMap;

/// One atom's role in the join order: which tuple positions are already
/// bound (and to which binding slots) and which bind fresh slots.
#[derive(Clone, Debug)]
struct JoinStep {
    /// Query-atom position this step scans.
    atom: usize,
    /// Tuple positions checked against already-bound slots.
    bound_pos: Box<[u32]>,
    /// Binding slots the bound positions must match, pairwise.
    bound_slot: Box<[u32]>,
    /// Tuple positions that bind fresh slots.
    free_pos: Box<[u32]>,
    /// Slots the free positions bind, pairwise.
    free_slot: Box<[u32]>,
}

/// A compiled evaluation plan for one conjunctive query body + head over
/// one database's catalog. Build once with [`QueryPlan::new`], execute
/// any number of times.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Per query atom: the relation it scans.
    rels: Box<[RelId]>,
    /// Join steps, in execution order.
    steps: Box<[JoinStep]>,
    /// Binding slots projected into output tuples.
    head_slots: Box<[u32]>,
    /// Total number of binding slots.
    n_slots: usize,
    /// Relation name per atom, for [`EvalResult`] compatibility.
    atom_names: Vec<String>,
    /// Head attributes, for [`EvalResult`] compatibility.
    head: Vec<Attr>,
}

/// One atom's hash index: bound-attr key → tuple indices.
type StepIndex = HashMap<Box<[Value]>, Vec<u32>>;

/// Hash indexes for a plan's non-leading atoms, built once over the full
/// relations by [`QueryPlan::build_indexes`] and reused across
/// executions (masked or not).
#[derive(Clone, Debug)]
pub struct JoinIndexes {
    /// Per join step: bound-attr key → tuple indices (leading step:
    /// `None`).
    per_step: Vec<Option<StepIndex>>,
}

/// Per-atom liveness of input tuples: the deletion state `S` in
/// `Q(D − S)`, layered over immutable relation instances so tuple
/// indices stay stable.
#[derive(Clone, Debug)]
pub struct AliveMask {
    alive: Vec<Vec<bool>>,
}

impl AliveMask {
    /// An all-alive mask for the instances behind `atoms` in `db`.
    pub fn all_alive(db: &Database, atoms: &[RelationSchema]) -> Self {
        AliveMask {
            alive: atoms
                .iter()
                .map(|a| vec![true; db.expect(a.name()).len()])
                .collect(),
        }
    }

    /// Marks a tuple dead. Returns whether it was alive.
    pub fn kill(&mut self, atom: usize, index: u32) -> bool {
        let slot = &mut self.alive[atom][index as usize];
        std::mem::replace(slot, false)
    }

    /// Marks every referenced tuple dead.
    pub fn kill_all<'a, I: IntoIterator<Item = &'a TupleRef>>(&mut self, refs: I) {
        for t in refs {
            self.kill(t.atom, t.index);
        }
    }

    /// Marks a tuple alive again.
    pub fn revive(&mut self, atom: usize, index: u32) {
        self.alive[atom][index as usize] = true;
    }

    /// Is the tuple alive?
    pub fn is_alive(&self, atom: usize, index: u32) -> bool {
        self.alive[atom][index as usize]
    }

    /// Number of live tuples in one atom.
    pub fn live_count(&self, atom: usize) -> usize {
        self.alive[atom].iter().filter(|&&a| a).count()
    }
}

impl QueryPlan {
    /// Compiles a plan for the body `atoms` projected on `head`.
    ///
    /// Every atom's relation must exist in `db` with the same attribute
    /// set, and `head` must be a subset of the body attributes — the
    /// same contract as [`crate::join::evaluate`], checked here once
    /// instead of on every evaluation.
    pub fn new(db: &Database, atoms: &[RelationSchema], head: &[Attr]) -> Self {
        assert!(!atoms.is_empty(), "cannot plan a query with no atoms");
        let catalog = db.catalog();

        // Resolve atoms to relations and validate attribute sets.
        let rels: Vec<RelId> = atoms
            .iter()
            .map(|a| {
                let id = db
                    .rel_id(a.name())
                    .unwrap_or_else(|| panic!("relation {} not in database", a.name()));
                let mut want: Vec<_> = a
                    .attrs()
                    .iter()
                    .map(|x| catalog.attr_id(x))
                    .collect::<Option<Vec<_>>>()
                    .unwrap_or_default();
                let mut have: Vec<_> = db.resolved_attrs(id).to_vec();
                want.sort_unstable();
                have.sort_unstable();
                assert!(
                    want.len() == a.arity() && want == have,
                    "schema mismatch for {}: query says {:?}, database says {:?}",
                    a.name(),
                    a,
                    db.relation_by_id(id).schema()
                );
                id
            })
            .collect();

        let sizes: Vec<usize> = rels.iter().map(|&r| db.relation_by_id(r).len()).collect();
        let order = join_order(db, &rels, &sizes);

        // Binding slots, assigned in first-seen order along the join
        // order. Dense over the catalog's attribute space.
        let mut slot_of: Vec<Option<u32>> = vec![None; catalog.attr_count()];
        let mut n_slots = 0u32;
        let steps: Vec<JoinStep> = order
            .iter()
            .map(|&ai| {
                let mut bound_pos = Vec::new();
                let mut bound_slot = Vec::new();
                let mut free_pos = Vec::new();
                let mut free_slot = Vec::new();
                for (pos, &aid) in db.resolved_attrs(rels[ai]).iter().enumerate() {
                    match slot_of[aid.index()] {
                        Some(s) => {
                            bound_pos.push(pos as u32);
                            bound_slot.push(s);
                        }
                        None => {
                            slot_of[aid.index()] = Some(n_slots);
                            free_pos.push(pos as u32);
                            free_slot.push(n_slots);
                            n_slots += 1;
                        }
                    }
                }
                JoinStep {
                    atom: ai,
                    bound_pos: bound_pos.into(),
                    bound_slot: bound_slot.into(),
                    free_pos: free_pos.into(),
                    free_slot: free_slot.into(),
                }
            })
            .collect();

        let head_slots: Vec<u32> = head
            .iter()
            .map(|a| {
                catalog
                    .attr_id(a)
                    .and_then(|id| slot_of[id.index()])
                    .unwrap_or_else(|| panic!("head attribute {a} not in query body"))
            })
            .collect();

        QueryPlan {
            rels: rels.into(),
            steps: steps.into(),
            head_slots: head_slots.into(),
            n_slots: n_slots as usize,
            atom_names: atoms.iter().map(|a| a.name().to_owned()).collect(),
            head: head.to_vec(),
        }
    }

    /// The relation scanned by each query atom.
    pub fn rels(&self) -> &[RelId] {
        &self.rels
    }

    /// Number of query atoms.
    pub fn atom_count(&self) -> usize {
        self.rels.len()
    }

    /// Builds the hash indexes the plan's non-leading atoms probe.
    /// Indexes cover the full relations; masked executions filter at
    /// probe time, so one build serves every deletion state.
    pub fn build_indexes(&self, db: &Database) -> JoinIndexes {
        let per_step = self
            .steps
            .iter()
            .enumerate()
            .map(|(depth, step)| {
                if depth == 0 {
                    return None;
                }
                let inst = db.relation_by_id(self.rels[step.atom]);
                let mut map = StepIndex::new();
                for idx in 0..inst.len() as u32 {
                    let t = inst.tuple(idx);
                    let key: Box<[Value]> = step.bound_pos.iter().map(|&p| t[p as usize]).collect();
                    map.entry(key).or_default().push(idx);
                }
                Some(map)
            })
            .collect();
        JoinIndexes { per_step }
    }

    /// Evaluates over the full database (every tuple alive).
    pub fn execute(&self, db: &Database, indexes: &JoinIndexes) -> EvalResult {
        self.run(db, indexes, None)
    }

    /// Evaluates `Q(D − S)` where `S` is the set of dead tuples in
    /// `alive`. Witness indices refer to the original instances, so
    /// results are directly comparable across masks.
    pub fn execute_masked(
        &self,
        db: &Database,
        indexes: &JoinIndexes,
        alive: &AliveMask,
    ) -> EvalResult {
        self.run(db, indexes, Some(alive))
    }

    /// Convenience for one-shot callers: build indexes and execute.
    pub fn execute_once(&self, db: &Database) -> EvalResult {
        if self.rels.iter().any(|&r| db.relation_by_id(r).is_empty()) {
            return self.empty_result();
        }
        let indexes = self.build_indexes(db);
        self.execute(db, &indexes)
    }

    fn empty_result(&self) -> EvalResult {
        EvalResult {
            atom_names: self.atom_names.clone(),
            head: self.head.clone(),
            ..Default::default()
        }
    }

    fn run(&self, db: &Database, indexes: &JoinIndexes, alive: Option<&AliveMask>) -> EvalResult {
        let mut result = self.empty_result();
        let instances: Vec<_> = self.rels.iter().map(|&r| db.relation_by_id(r)).collect();
        if instances.iter().any(|r| r.is_empty()) {
            return result;
        }
        let is_alive = |atom: usize, idx: u32| alive.is_none_or(|m| m.is_alive(atom, idx));

        let mut binding: Vec<Value> = vec![0; self.n_slots];
        let mut chosen: Vec<u32> = vec![0; self.rels.len()];
        let mut output_dedup: HashMap<Box<[Value]>, u32> = HashMap::new();

        // Iterative backtracking over the join order: candidate list +
        // cursor per depth.
        let mut cand: Vec<Vec<u32>> = vec![Vec::new(); self.steps.len()];
        let mut cursor: Vec<usize> = vec![0; self.steps.len()];
        let mut depth: usize = 0;
        let lead = self.steps[0].atom;
        cand[0] = (0..instances[lead].len() as u32)
            .filter(|&i| is_alive(lead, i))
            .collect();
        cursor[0] = 0;

        loop {
            if cursor[depth] >= cand[depth].len() {
                if depth == 0 {
                    break;
                }
                depth -= 1;
                continue;
            }
            let step = &self.steps[depth];
            let inst = instances[step.atom];
            let idx = cand[depth][cursor[depth]];
            cursor[depth] += 1;
            let t = inst.tuple(idx);
            for (i, &p) in step.free_pos.iter().enumerate() {
                binding[step.free_slot[i] as usize] = t[p as usize];
            }
            debug_assert!(step
                .bound_pos
                .iter()
                .zip(step.bound_slot.iter())
                .all(|(&p, &s)| t[p as usize] == binding[s as usize]));
            chosen[step.atom] = idx;

            if depth + 1 == self.steps.len() {
                // Complete witness.
                let out_key: Box<[Value]> = self
                    .head_slots
                    .iter()
                    .map(|&s| binding[s as usize])
                    .collect();
                let next_id = output_dedup.len() as u32;
                let out_id = *output_dedup.entry(out_key.clone()).or_insert(next_id);
                if out_id == next_id {
                    result.outputs.push(out_key);
                    result.output_witnesses.push(Vec::new());
                }
                let wid = result.witnesses.len() as u32;
                result.witnesses.push(Witness {
                    tuples: chosen.clone().into_boxed_slice(),
                });
                result.witness_output.push(out_id);
                result.output_witnesses[out_id as usize].push(wid);
                continue;
            }

            // Descend.
            let next = &self.steps[depth + 1];
            let key: Box<[Value]> = next
                .bound_slot
                .iter()
                .map(|&s| binding[s as usize])
                .collect();
            let matches = indexes.per_step[depth + 1]
                .as_ref()
                .expect("non-leading steps have indexes")
                .get(&key);
            match matches {
                Some(list) => {
                    depth += 1;
                    cand[depth].clear();
                    cand[depth].extend(list.iter().copied().filter(|&i| is_alive(next.atom, i)));
                    cursor[depth] = 0;
                }
                None => continue,
            }
        }

        result
    }
}

/// Greedy join order: smallest relation first, then repeatedly the
/// smallest atom sharing an attribute with the bound set (falling back
/// to the smallest remaining atom for disconnected queries). Operates
/// entirely on dense ids.
fn join_order(db: &Database, rels: &[RelId], sizes: &[usize]) -> Vec<usize> {
    let n = rels.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut bound = vec![false; db.catalog().attr_count()];

    let first = *remaining
        .iter()
        .min_by_key(|&&i| (sizes[i], i))
        .expect("non-empty");
    remaining.retain(|&i| i != first);
    for &aid in db.resolved_attrs(rels[first]) {
        bound[aid.index()] = true;
    }
    order.push(first);

    while !remaining.is_empty() {
        let connected: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&i| db.resolved_attrs(rels[i]).iter().any(|a| bound[a.index()]))
            .collect();
        let pool = if connected.is_empty() {
            &remaining
        } else {
            &connected
        };
        let next = *pool.iter().min_by_key(|&&i| (sizes[i], i)).unwrap();
        remaining.retain(|&i| i != next);
        for &aid in db.resolved_attrs(rels[next]) {
            bound[aid.index()] = true;
        }
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::evaluate;
    use crate::naive::evaluate_nested_loop;
    use crate::schema::attrs;

    /// The running example from Figure 1 of the paper.
    fn figure1_db() -> Database {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[2, 2], &[3, 3]]);
        db.add_relation(
            "R2",
            attrs(&["B", "C"]),
            &[&[1, 1], &[2, 2], &[2, 3], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1], &[2, 3], &[3, 3]]);
        db
    }

    fn figure1_atoms() -> Vec<RelationSchema> {
        vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ]
    }

    fn sorted_outputs(r: &EvalResult) -> Vec<Vec<Value>> {
        let mut v: Vec<Vec<Value>> = r.outputs.iter().map(|o| o.to_vec()).collect();
        v.sort();
        v
    }

    fn sorted_witnesses(r: &EvalResult) -> Vec<Vec<u32>> {
        let mut v: Vec<Vec<u32>> = r.witnesses.iter().map(|w| w.tuples.to_vec()).collect();
        v.sort();
        v
    }

    #[test]
    fn plan_execute_matches_evaluate() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        for head in [attrs(&["A", "E"]), attrs(&["A", "B", "C", "E"]), vec![]] {
            let plan = QueryPlan::new(&db, &atoms, &head);
            let planned = plan.execute_once(&db);
            let classic = evaluate(&db, &atoms, &head);
            assert_eq!(sorted_outputs(&planned), sorted_outputs(&classic));
            assert_eq!(sorted_witnesses(&planned), sorted_witnesses(&classic));
        }
    }

    #[test]
    fn indexes_are_reusable_across_executions() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A", "E"]));
        let idx = plan.build_indexes(&db);
        let a = plan.execute(&db, &idx);
        let b = plan.execute(&db, &idx);
        assert_eq!(sorted_witnesses(&a), sorted_witnesses(&b));
        assert_eq!(a.output_count(), 3);
    }

    #[test]
    fn all_alive_mask_is_identity() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A", "E"]));
        let idx = plan.build_indexes(&db);
        let mask = AliveMask::all_alive(&db, &atoms);
        let masked = plan.execute_masked(&db, &idx, &mask);
        let full = plan.execute(&db, &idx);
        assert_eq!(sorted_witnesses(&masked), sorted_witnesses(&full));
        assert_eq!(sorted_outputs(&masked), sorted_outputs(&full));
    }

    #[test]
    fn masked_execution_matches_filtered_database() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let head = attrs(&["A", "E"]);
        let plan = QueryPlan::new(&db, &atoms, &head);
        let idx = plan.build_indexes(&db);

        // Kill R3(c3,e3) — the paper's ADP(Q1, D, 2) answer.
        let c3e3 = db.expect("R3").index_of(&[3, 3]).unwrap();
        let mut mask = AliveMask::all_alive(&db, &atoms);
        assert!(mask.kill(2, c3e3));
        assert!(!mask.kill(2, c3e3), "second kill reports already-dead");
        let masked = plan.execute_masked(&db, &idx, &mask);

        // Reference: rebuild the database without the tuple.
        let mut db2 = Database::new();
        for (ai, atom) in atoms.iter().enumerate() {
            let rel = db.expect(atom.name());
            let (kept, _) = rel.filter_by_index(|i| mask.is_alive(ai, i));
            db2.add(kept);
        }
        let reference = evaluate_nested_loop(&db2, &atoms, &head);
        assert_eq!(sorted_outputs(&masked), sorted_outputs(&reference));
        assert_eq!(masked.witness_count(), reference.witness_count());
        // Original indices survive masking.
        for w in &masked.witnesses {
            assert!(mask.is_alive(2, w.tuples[2]));
        }
    }

    #[test]
    fn mask_revive_restores_results() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A", "E"]));
        let idx = plan.build_indexes(&db);
        let mut mask = AliveMask::all_alive(&db, &atoms);
        mask.kill(0, 0);
        assert_eq!(plan.execute_masked(&db, &idx, &mask).output_count(), 2);
        assert_eq!(mask.live_count(0), 2);
        mask.revive(0, 0);
        assert_eq!(plan.execute_masked(&db, &idx, &mask).output_count(), 3);
    }

    #[test]
    fn fully_masked_leading_atom_gives_empty_result() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A"]));
        let idx = plan.build_indexes(&db);
        let mut mask = AliveMask::all_alive(&db, &atoms);
        for i in 0..db.expect("R1").len() as u32 {
            mask.kill(0, i);
        }
        let r = plan.execute_masked(&db, &idx, &mask);
        assert_eq!(r.output_count(), 0);
        assert_eq!(r.witness_count(), 0);
    }

    #[test]
    fn kill_all_accepts_tuple_refs() {
        let db = figure1_db();
        let atoms = figure1_atoms();
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A", "E"]));
        let idx = plan.build_indexes(&db);
        let mut mask = AliveMask::all_alive(&db, &atoms);
        mask.kill_all(&[
            TupleRef::new(0, 0),
            TupleRef::new(0, 1),
            TupleRef::new(0, 2),
        ]);
        assert_eq!(plan.execute_masked(&db, &idx, &mask).output_count(), 0);
    }

    #[test]
    fn vacuum_atom_plans_and_executes() {
        let mut db = Database::new();
        db.add_relation("R", attrs(&["A"]), &[&[1], &[2]]);
        db.add_relation("V", vec![], &[&[]]);
        let atoms = vec![
            RelationSchema::new("R", attrs(&["A"])),
            RelationSchema::new("V", vec![]),
        ];
        let plan = QueryPlan::new(&db, &atoms, &attrs(&["A"]));
        assert_eq!(plan.execute_once(&db).output_count(), 2);
    }

    #[test]
    #[should_panic(expected = "not in database")]
    fn unknown_relation_rejected_at_plan_time() {
        let db = figure1_db();
        let atoms = vec![RelationSchema::new("Nope", attrs(&["A"]))];
        QueryPlan::new(&db, &atoms, &[]);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn schema_mismatch_rejected_at_plan_time() {
        let db = figure1_db();
        let atoms = vec![RelationSchema::new("R1", attrs(&["A", "Z"]))];
        QueryPlan::new(&db, &atoms, &[]);
    }
}
