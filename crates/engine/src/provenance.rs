//! Witness/output/input incidence with deletion ("kill") semantics.
//!
//! The ADP heuristics repeatedly ask two questions the paper answers with
//! SQL round-trips:
//!
//! 1. *profit*: how many **outputs** disappear if input tuple `t` is
//!    deleted (`|Q(D−S)| − |Q(D−S−t)|`, Algorithm 6)?
//! 2. *kill*: actually delete `t` and update the remaining result.
//!
//! [`ProvenanceIndex`] answers both in memory. An output tuple dies when
//! **all** of its witnesses die; a witness dies when any of its input
//! tuples is deleted. For queries with projection an input tuple is a
//! *sole killer* of an output iff every live witness of that output uses
//! the tuple — computed by a per-output agreement scan (`profits`).

use crate::error::AdpError;
use crate::join::EvalResult;
use std::collections::{BTreeMap, HashMap};

/// Below this many witnesses the incidence maps are built sequentially;
/// the parallel chunk merge only pays off at paper scale.
const PAR_BUILD_MIN_WITNESSES: usize = 1 << 14;

/// A reference to an input tuple: query atom position + tuple index within
/// that atom's relation instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleRef {
    /// Index of the atom in the query body (atoms are distinct relations —
    /// no self-joins — so this also identifies the relation).
    pub atom: usize,
    /// Tuple index within the relation instance.
    pub index: u32,
}

impl TupleRef {
    /// Convenience constructor.
    pub fn new(atom: usize, index: u32) -> Self {
        TupleRef { atom, index }
    }
}

/// Incidence structure over an [`EvalResult`] supporting deletion.
#[derive(Clone, Debug)]
pub struct ProvenanceIndex {
    /// witness → tuple index per atom (copied from the eval result).
    witness_tuples: Vec<Box<[u32]>>,
    witness_output: Vec<u32>,
    witness_alive: Vec<bool>,
    /// output → live witness count.
    output_live: Vec<u32>,
    /// output → its witnesses (static).
    output_witnesses: Vec<Vec<u32>>,
    /// per atom: tuple index → witnesses containing it.
    tuple_witnesses: Vec<HashMap<u32, Vec<u32>>>,
    live_outputs: u64,
    n_atoms: usize,
}

impl ProvenanceIndex {
    /// Builds the index from an evaluation result.
    ///
    /// Panics if the result has more witnesses than the dense `u32` id
    /// space can address; fallible callers should use
    /// [`try_new`](Self::try_new), which surfaces
    /// [`AdpError::TooManyWitnesses`] instead.
    pub fn new(result: &EvalResult) -> Self {
        // adp-lint: allow(panic-path) -- documented panicking convenience
        // wrapper; try_new is the checked API.
        Self::try_new(result).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the index, rejecting results whose witness count overflows
    /// the `u32` id space (which would silently alias distinct witnesses
    /// and corrupt the incidence).
    pub fn try_new(result: &EvalResult) -> Result<Self, AdpError> {
        Self::try_new_with_cap(result, u32::MAX as u64)
    }

    /// [`try_new`](Self::try_new) with an injected witness-id cap, so the
    /// overflow guard is testable without materializing 4B witnesses.
    pub fn try_new_with_cap(result: &EvalResult, cap: u64) -> Result<Self, AdpError> {
        let witnesses = result.witnesses.len() as u64;
        if witnesses > cap {
            return Err(AdpError::TooManyWitnesses { witnesses, cap });
        }
        let n_atoms = result.atom_names.len();
        let tuple_witnesses = build_tuple_witnesses(result, n_atoms);
        Ok(ProvenanceIndex {
            witness_tuples: result.witnesses.iter().map(|w| w.tuples.clone()).collect(),
            witness_output: result.witness_output.clone(),
            witness_alive: vec![true; result.witnesses.len()],
            output_live: result
                .output_witnesses
                .iter()
                // adp-lint: allow(truncating-cast) -- per-output witness
                // lists are subsets of the cap-checked witness set.
                .map(|ws| ws.len() as u32)
                .collect(),
            output_witnesses: result.output_witnesses.clone(),
            tuple_witnesses,
            live_outputs: result.outputs.len() as u64,
            n_atoms,
        })
    }

    /// Number of atoms in the underlying query.
    pub fn atom_count(&self) -> usize {
        self.n_atoms
    }

    /// Outputs still alive (`|Q(D − deleted)|`).
    pub fn live_outputs(&self) -> u64 {
        self.live_outputs
    }

    /// Witnesses still alive.
    pub fn live_witnesses(&self) -> u64 {
        self.witness_alive.iter().filter(|&&a| a).count() as u64
    }

    /// Is the given input tuple used by at least one live witness?
    pub fn is_live(&self, t: TupleRef) -> bool {
        self.tuple_witnesses[t.atom]
            .get(&t.index)
            .map(|ws| ws.iter().any(|&w| self.witness_alive[w as usize]))
            .unwrap_or(false)
    }

    /// The input tuples that participate in at least one witness (the
    /// *non-dangling* tuples), per atom.
    pub fn participating_tuples(&self) -> Vec<Vec<u32>> {
        self.tuple_witnesses
            .iter()
            .map(|m| {
                let mut v: Vec<u32> = m.keys().copied().collect();
                v.sort_unstable();
                v
            })
            .collect()
    }

    /// Deletes an input tuple: kills every live witness using it. Returns
    /// the number of outputs that died as a consequence.
    pub fn kill(&mut self, t: TupleRef) -> u64 {
        let Some(ws) = self.tuple_witnesses[t.atom].get(&t.index) else {
            return 0;
        };
        let mut died = 0;
        for &w in ws {
            let w = w as usize;
            if !self.witness_alive[w] {
                continue;
            }
            self.witness_alive[w] = false;
            let out = self.witness_output[w] as usize;
            self.output_live[out] -= 1;
            if self.output_live[out] == 0 {
                died += 1;
            }
        }
        self.live_outputs -= died;
        died
    }

    /// Number of output slots (live or dead) in the underlying result.
    /// Ranges passed to [`profits_range`](Self::profits_range) partition
    /// `0..output_slots()`.
    pub fn output_slots(&self) -> usize {
        self.output_witnesses.len()
    }

    /// Number of witness slots (live or dead) in the underlying result.
    /// Ranges passed to [`live_counts_range`](Self::live_counts_range)
    /// partition `0..witness_slots()`.
    pub fn witness_slots(&self) -> usize {
        self.witness_tuples.len()
    }

    /// Profit of every input tuple under the *current* deletion state:
    /// `profit(t) = #outputs all of whose live witnesses use t` — exactly
    /// `|Q(D−S)| − |Q(D−S−{t})|`. Returned as one map per atom.
    ///
    /// Cost: one pass over live witnesses, `O(live_witnesses · p)`.
    pub fn profits(&self) -> Vec<HashMap<u32, u64>> {
        self.profits_range(0, self.output_witnesses.len())
    }

    /// [`profits`](Self::profits) restricted to the outputs in
    /// `lo..hi`. Each output contributes its sole killers independently,
    /// so summing the maps of any partition of `0..output_slots()`
    /// reproduces `profits()` exactly — the contract the parallel greedy
    /// scorer relies on.
    pub fn profits_range(&self, lo: usize, hi: usize) -> Vec<HashMap<u32, u64>> {
        let mut profits: Vec<HashMap<u32, u64>> = vec![HashMap::new(); self.n_atoms];
        // For each output: find, per atom, whether all live witnesses agree
        // on the tuple used. Agreeing tuples are sole killers.
        for (out, ws) in self.output_witnesses[lo..hi].iter().enumerate() {
            let out = out + lo;
            if self.output_live[out] == 0 {
                continue;
            }
            let mut agreed: Option<Vec<Option<u32>>> = None;
            for &w in ws {
                let w = w as usize;
                if !self.witness_alive[w] {
                    continue;
                }
                let tuples = &self.witness_tuples[w];
                match agreed.as_mut() {
                    None => {
                        agreed = Some(tuples.iter().map(|&t| Some(t)).collect());
                    }
                    Some(a) => {
                        for (atom, slot) in a.iter_mut().enumerate() {
                            if let Some(t) = *slot {
                                if t != tuples[atom] {
                                    *slot = None;
                                }
                            }
                        }
                    }
                }
            }
            if let Some(a) = agreed {
                for (atom, slot) in a.into_iter().enumerate() {
                    if let Some(t) = slot {
                        *profits[atom].entry(t).or_insert(0) += 1;
                    }
                }
            }
        }
        profits
    }

    /// Number of live witnesses each input tuple participates in, per
    /// atom. Used as a greedy tie-breaker when no tuple is a sole killer.
    pub fn live_counts(&self) -> Vec<HashMap<u32, u64>> {
        self.live_counts_range(0, self.witness_tuples.len())
    }

    /// [`live_counts`](Self::live_counts) restricted to the witnesses in
    /// `lo..hi`. Counts are additive across any partition of
    /// `0..witness_slots()`, mirroring
    /// [`profits_range`](Self::profits_range).
    pub fn live_counts_range(&self, lo: usize, hi: usize) -> Vec<HashMap<u32, u64>> {
        let mut counts: Vec<HashMap<u32, u64>> = vec![HashMap::new(); self.n_atoms];
        for (w, tuples) in self.witness_tuples[lo..hi].iter().enumerate() {
            if !self.witness_alive[w + lo] {
                continue;
            }
            for (atom, &t) in tuples.iter().enumerate() {
                *counts[atom].entry(t).or_insert(0) += 1;
            }
        }
        counts
    }

    /// How many outputs would die if the whole `set` were removed at once,
    /// without mutating the index. Used by the brute-force baseline.
    pub fn killed_by_set(&self, set: &[TupleRef]) -> u64 {
        // BTreeMap, not HashMap: the final filter iterates this map, and
        // counting must not depend on hash order (adp-lint unordered-iter).
        let mut dead_live: BTreeMap<u32, u32> = BTreeMap::new(); // output -> newly dead witnesses
        let mut seen: Vec<bool> = vec![false; self.witness_tuples.len()];
        for t in set {
            if let Some(ws) = self.tuple_witnesses[t.atom].get(&t.index) {
                for &w in ws {
                    let wi = w as usize;
                    if !self.witness_alive[wi] || seen[wi] {
                        continue;
                    }
                    seen[wi] = true;
                    *dead_live
                        .entry(self.witness_output[w as usize])
                        .or_insert(0) += 1;
                }
            }
        }
        dead_live
            .into_iter()
            .filter(|&(out, dead)| self.output_live[out as usize] == dead)
            .count() as u64
    }
}

/// Per atom: tuple index → witness ids using it, ascending.
///
/// At paper scale (millions of witnesses) the scan is fanned out over
/// the global pool in contiguous witness chunks, then the per-chunk maps
/// are appended **in chunk order** — every posting list comes out in the
/// same ascending witness-id order the sequential loop produces, for any
/// worker count.
fn build_tuple_witnesses(result: &EvalResult, n_atoms: usize) -> Vec<HashMap<u32, Vec<u32>>> {
    // Check the threshold before consulting the pool: small results
    // stay sequential and never lazily initialize the global pool.
    if result.witnesses.len() < PAR_BUILD_MIN_WITNESSES {
        return scan_tuple_witnesses(result, n_atoms, 0, result.witnesses.len());
    }
    build_tuple_witnesses_on(
        result,
        n_atoms,
        adp_runtime::global(),
        PAR_BUILD_MIN_WITNESSES,
    )
}

/// The sequential incidence scan over witnesses `lo..hi` (global ids).
fn scan_tuple_witnesses(
    result: &EvalResult,
    n_atoms: usize,
    lo: usize,
    hi: usize,
) -> Vec<HashMap<u32, Vec<u32>>> {
    let mut maps: Vec<HashMap<u32, Vec<u32>>> = vec![HashMap::new(); n_atoms];
    for (wid, w) in result.witnesses[lo..hi].iter().enumerate() {
        // adp-lint: allow(truncating-cast) -- wid + lo indexes
        // result.witnesses, cap-checked by the caller's try_new.
        let wid = (wid + lo) as u32;
        for (atom, &t) in w.tuples.iter().enumerate() {
            maps[atom].entry(t).or_default().push(wid);
        }
    }
    maps
}

fn build_tuple_witnesses_on(
    result: &EvalResult,
    n_atoms: usize,
    pool: &adp_runtime::ThreadPool,
    min_witnesses: usize,
) -> Vec<HashMap<u32, Vec<u32>>> {
    let n = result.witnesses.len();
    let scan = |lo: usize, hi: usize| scan_tuple_witnesses(result, n_atoms, lo, hi);
    if pool.threads() <= 1 || n < min_witnesses {
        return scan(0, n);
    }
    let n_chunks = pool.threads() * 4;
    let chunk_size = n.div_ceil(n_chunks).max(1);
    let n_chunks = n.div_ceil(chunk_size);
    let partials = pool.par_indexed(n_chunks, |c| {
        scan(c * chunk_size, ((c + 1) * chunk_size).min(n))
    });
    let mut merged: Vec<HashMap<u32, Vec<u32>>> = vec![HashMap::new(); n_atoms];
    for partial in partials {
        for (atom, map) in partial.into_iter().enumerate() {
            for (t, wids) in map {
                merged[atom].entry(t).or_default().extend_from_slice(&wids);
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::join::evaluate;
    use crate::schema::{attrs, RelationSchema};

    /// Figure 1 database with Q2(A,E) (projection query).
    fn q2_index() -> (Database, ProvenanceIndex) {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[2, 2], &[3, 3]]);
        db.add_relation(
            "R2",
            attrs(&["B", "C"]),
            &[&[1, 1], &[2, 2], &[2, 3], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1], &[2, 3], &[3, 3]]);
        let atoms = vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ];
        let r = evaluate(&db, &atoms, &attrs(&["A", "E"]));
        let p = ProvenanceIndex::new(&r);
        (db, p)
    }

    #[test]
    fn initial_counts() {
        let (_, p) = q2_index();
        assert_eq!(p.live_outputs(), 3);
        assert_eq!(p.live_witnesses(), 4);
    }

    #[test]
    fn killing_r3_c3e3_removes_two_outputs_of_q1() {
        // Paper §3.2: ADP(Q1, D, 2) removes R3(c3,e3) — it kills the last
        // two Q1 outputs. Under Q1 (full CQ) every witness is an output.
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[2, 2], &[3, 3]]);
        db.add_relation(
            "R2",
            attrs(&["B", "C"]),
            &[&[1, 1], &[2, 2], &[2, 3], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1], &[2, 3], &[3, 3]]);
        let atoms = vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ];
        let r = evaluate(&db, &atoms, &attrs(&["A", "B", "C", "E"]));
        let mut p = ProvenanceIndex::new(&r);
        let c3e3 = db.expect("R3").index_of(&[3, 3]).unwrap();
        let died = p.kill(TupleRef::new(2, c3e3));
        assert_eq!(died, 2);
        assert_eq!(p.live_outputs(), 2);
    }

    #[test]
    fn profit_counts_sole_killers_under_projection() {
        let (db, p) = q2_index();
        let profits = p.profits();
        // Output (a2,e3) has two witnesses (via c2 and c3), so neither R2
        // nor R3 tuple alone kills it, but R1(a2,b2) does.
        let a2b2 = db.expect("R1").index_of(&[2, 2]).unwrap();
        assert_eq!(profits[0].get(&a2b2), Some(&1));
        let b2c2 = db.expect("R2").index_of(&[2, 2]).unwrap();
        assert_eq!(profits[1].get(&b2c2), None, "not a sole killer");
        // R3(c3,e3) solely kills only (a3,e3): (a2,e3) survives via c2.
        let c3e3 = db.expect("R3").index_of(&[3, 3]).unwrap();
        assert_eq!(profits[2].get(&c3e3), Some(&1));
    }

    #[test]
    fn kill_then_profit_updates() {
        let (db, mut p) = q2_index();
        // Kill R2(b2,c2): output (a2,e3) now has a single witness via c3,
        // so R3(c3,e3) becomes a sole killer of both (a2,e3) and (a3,e3).
        let b2c2 = db.expect("R2").index_of(&[2, 2]).unwrap();
        let died = p.kill(TupleRef::new(1, b2c2));
        assert_eq!(died, 0, "output survives through the other witness");
        let profits = p.profits();
        let c3e3 = db.expect("R3").index_of(&[3, 3]).unwrap();
        assert_eq!(profits[2].get(&c3e3), Some(&2));
    }

    #[test]
    fn killed_by_set_is_pure() {
        let (db, p) = q2_index();
        let r1 = db.expect("R1");
        let all_r1: Vec<TupleRef> = (0..r1.len() as u32).map(|i| TupleRef::new(0, i)).collect();
        assert_eq!(p.killed_by_set(&all_r1), 3);
        assert_eq!(p.live_outputs(), 3, "no mutation");
        assert_eq!(p.killed_by_set(&[]), 0);
    }

    #[test]
    fn range_scoring_partitions_sum_to_full_maps() {
        let (db, mut p) = q2_index();
        // Also check under a non-trivial deletion state.
        let b2c2 = db.expect("R2").index_of(&[2, 2]).unwrap();
        p.kill(TupleRef::new(1, b2c2));

        let merge = |parts: Vec<Vec<HashMap<u32, u64>>>| {
            let mut acc: Vec<HashMap<u32, u64>> = vec![HashMap::new(); p.atom_count()];
            for part in parts {
                for (atom, map) in part.into_iter().enumerate() {
                    for (t, c) in map {
                        *acc[atom].entry(t).or_insert(0) += c;
                    }
                }
            }
            acc
        };

        for chunk in 1..=p.output_slots() {
            let parts: Vec<_> = (0..p.output_slots())
                .step_by(chunk)
                .map(|lo| p.profits_range(lo, (lo + chunk).min(p.output_slots())))
                .collect();
            assert_eq!(merge(parts), p.profits(), "profits chunk={chunk}");
        }
        for chunk in 1..=p.witness_slots() {
            let parts: Vec<_> = (0..p.witness_slots())
                .step_by(chunk)
                .map(|lo| p.live_counts_range(lo, (lo + chunk).min(p.witness_slots())))
                .collect();
            assert_eq!(merge(parts), p.live_counts(), "live_counts chunk={chunk}");
        }
    }

    #[test]
    fn witness_cap_guard_surfaces_too_many_witnesses() {
        // Regression: witness ids used to be truncated with `wid as u32`,
        // silently aliasing witnesses past the id space. The guard must
        // surface the overflow instead (tested at an injected small cap).
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[2, 2], &[3, 3]]);
        db.add_relation(
            "R2",
            attrs(&["B", "C"]),
            &[&[1, 1], &[2, 2], &[2, 3], &[3, 3]],
        );
        db.add_relation("R3", attrs(&["C", "E"]), &[&[1, 1], &[2, 3], &[3, 3]]);
        let atoms = vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ];
        let r = evaluate(&db, &atoms, &attrs(&["A", "E"]));
        assert_eq!(r.witness_count(), 4);
        let err = ProvenanceIndex::try_new_with_cap(&r, 3).unwrap_err();
        assert_eq!(
            err,
            crate::error::AdpError::TooManyWitnesses {
                witnesses: 4,
                cap: 3
            }
        );
        assert!(ProvenanceIndex::try_new_with_cap(&r, 4).is_ok());
        assert!(ProvenanceIndex::try_new(&r).is_ok());
    }

    #[test]
    fn parallel_incidence_build_matches_sequential() {
        // Synthetic result with colliding tuples across many witnesses, so
        // posting lists span chunk boundaries.
        let n = 5000u32;
        let mut r = EvalResult {
            atom_names: vec!["R1".into(), "R2".into()],
            ..Default::default()
        };
        for w in 0..n {
            r.outputs.push(vec![w as u64 % 7].into_boxed_slice());
            r.witnesses.push(crate::join::Witness {
                tuples: vec![w % 13, w % 31].into_boxed_slice(),
            });
            r.witness_output.push(w % 7);
        }
        r.output_witnesses = vec![Vec::new(); n as usize];
        let seq = build_tuple_witnesses_on(&r, 2, &adp_runtime::ThreadPool::new(1), usize::MAX);
        for threads in [2usize, 4] {
            let par = build_tuple_witnesses_on(&r, 2, &adp_runtime::ThreadPool::new(threads), 1);
            assert_eq!(seq, par, "threads={threads}");
        }
        // Ascending posting lists (ordering contract).
        for map in &seq {
            for list in map.values() {
                assert!(list.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn participating_tuples_reports_non_dangling() {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A"]), &[&[1], &[2], &[9]]); // 9 dangles
        db.add_relation("R2", attrs(&["A", "B"]), &[&[1, 5], &[2, 6]]);
        let atoms = vec![
            RelationSchema::new("R1", attrs(&["A"])),
            RelationSchema::new("R2", attrs(&["A", "B"])),
        ];
        let r = evaluate(&db, &atoms, &attrs(&["A", "B"]));
        let p = ProvenanceIndex::new(&r);
        let parts = p.participating_tuples();
        assert_eq!(parts[0], vec![0, 1]);
        assert_eq!(parts[1], vec![0, 1]);
    }
}
