//! Relation instances: a schema plus a columnar tuple store.
//!
//! Storage is column-oriented and value-interned: every attribute value
//! (`u64`) is mapped through a per-relation interner to a dense `u32`
//! *symbol*, and each attribute position holds one dense `Vec<u32>`
//! symbol column. A 10M-row arity-2 relation is therefore two 40 MB
//! arrays plus the interner — no per-tuple heap allocation, no boxed
//! rows. Set semantics are enforced by an open-addressing dedup table
//! that stores only tuple ids and probes the columns directly, so a
//! tuple is stored exactly once (the old row store cloned every tuple a
//! second time into its `HashMap` keys).

use crate::error::AdpError;
use crate::schema::{Attr, RelationSchema};
use crate::value::Value;
use std::collections::HashMap;

/// An owned tuple, used at API boundaries (storage itself is columnar).
pub type Tuple = Box<[Value]>;

/// Empty-slot sentinel in the dedup table.
const EMPTY: u32 = u32::MAX;

/// Dedup table load limit: grow when `len * 8 >= capacity * 7`.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// The next dense id for a store of `len` entries, or
/// [`AdpError::RelationFull`] once the `u32` space (minus the reserved
/// [`EMPTY`] sentinel) is exhausted. Both id spaces of the store — tuple
/// indices and interned symbols — allocate through this one checked
/// gate, so no `as u32` truncation exists on the insert path.
fn checked_next_id(len: usize, relation: &str, what: &'static str) -> Result<u32, AdpError> {
    match u32::try_from(len) {
        Ok(id) if id != EMPTY => Ok(id),
        _ => Err(AdpError::RelationFull {
            relation: relation.to_owned(),
            what,
        }),
    }
}

/// FNV-1a over a symbol row; the dedup table's hash function. Symbols
/// are injective in values, so hashing symbols is hashing the tuple.
#[inline]
fn hash_syms(syms: &[u32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &s in syms {
        for b in s.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// A relation instance: schema + columnar tuple store.
///
/// Tuples are deduplicated on insert (set semantics, as in the paper).
/// Tuple *indices* are stable: deletions used by the solvers are expressed
/// as "alive" masks layered on top (see [`crate::provenance`]), so an index
/// handed out once always refers to the same tuple.
#[derive(Clone, Debug)]
pub struct RelationInstance {
    schema: RelationSchema,
    /// symbol → value (reverse side of the interner).
    sym_values: Vec<Value>,
    /// value → symbol.
    sym_of: HashMap<Value, u32>,
    /// `columns[pos][row]` = symbol of attribute `pos` in tuple `row`.
    columns: Vec<Vec<u32>>,
    /// Number of stored tuples (columns may be empty for vacuum schemas).
    rows: u32,
    /// Open-addressing dedup: tuple ids, probed against the columns.
    /// Power-of-two capacity, linear probing, every stored row present
    /// exactly once. No keys are stored — this is the "one stored copy
    /// per tuple" invariant.
    dedup: Vec<u32>,
    /// Scratch symbol buffer reused across inserts.
    scratch: Vec<u32>,
}

impl RelationInstance {
    /// Creates an empty instance of `schema`.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity();
        RelationInstance {
            schema,
            sym_values: Vec::new(),
            sym_of: HashMap::new(),
            columns: vec![Vec::new(); arity],
            rows: 0,
            dedup: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The instance's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Relation name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Pre-allocates room for `additional` more tuples, so streaming
    /// builders (e.g. the 10M-row `adp-datagen` generators) pay no
    /// incremental reallocation.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.columns {
            c.reserve(additional);
        }
        let want = (self.rows as usize + additional) * LOAD_DEN / LOAD_NUM + 1;
        if want > self.dedup.len() {
            self.rebuild_dedup(want.next_power_of_two());
        }
    }

    /// Inserts a tuple, returning its index. Duplicate inserts return the
    /// existing index. Panics if the arity does not match the schema or
    /// the id space is exhausted; use [`try_insert`](Self::try_insert)
    /// for a typed error instead.
    pub fn insert(&mut self, tuple: &[Value]) -> u32 {
        // adp-lint: allow(panic-path) -- documented panicking convenience
        // wrapper; try_insert is the checked API.
        self.try_insert(tuple).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`insert`](Self::insert) with a typed error: rejects tuples whose
    /// length disagrees with the schema's arity as
    /// [`AdpError::ArityMismatch`], and a store whose dense `u32` id
    /// space is exhausted as [`AdpError::RelationFull`], instead of
    /// panicking.
    pub fn try_insert(&mut self, tuple: &[Value]) -> Result<u32, AdpError> {
        if tuple.len() != self.schema.arity() {
            return Err(AdpError::ArityMismatch {
                relation: self.schema.name().to_owned(),
                expected: self.schema.arity(),
                got: tuple.len(),
            });
        }
        // Map values to symbols. A value the interner has never seen
        // makes the tuple definitely fresh — no probe needed.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let mut all_known = true;
        for &v in tuple {
            match self.sym_of.get(&v) {
                Some(&s) => scratch.push(s),
                None => {
                    all_known = false;
                    break;
                }
            }
        }
        if all_known {
            let h = hash_syms(&scratch);
            if let Some(idx) = self.probe(h, &scratch) {
                self.scratch = scratch;
                return Ok(idx);
            }
            let idx = self.append_syms(&scratch, h);
            self.scratch = scratch;
            return idx;
        }
        // Fresh tuple: intern the remaining values, then append.
        scratch.clear();
        for &v in tuple {
            match self.intern_value(v) {
                Ok(s) => scratch.push(s),
                Err(e) => {
                    self.scratch = scratch;
                    return Err(e);
                }
            }
        }
        let h = hash_syms(&scratch);
        let idx = self.append_syms(&scratch, h);
        self.scratch = scratch;
        idx
    }

    /// Bulk insert.
    pub fn extend<I: IntoIterator<Item = Vec<Value>>>(&mut self, iter: I) {
        for t in iter {
            self.insert(&t);
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows as usize
    }

    /// True if the instance holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Every tuple index, `0..len()`, as the dense `u32` ids the engine
    /// uses everywhere. Iterating this instead of `0..len() as u32`
    /// keeps callers free of truncating casts — the store itself
    /// guarantees indices fit (see [`AdpError::RelationFull`]).
    pub fn indices(&self) -> std::ops::Range<u32> {
        0..self.rows
    }

    /// Number of distinct interned values in this relation.
    pub fn symbol_count(&self) -> usize {
        self.sym_values.len()
    }

    /// Estimated resident bytes of the store: symbol columns + interner +
    /// dedup table. An accounting estimate (it ignores allocator slack),
    /// used by [`crate::database::Database::memory_report`] and the size
    /// regression tests.
    pub fn approx_bytes(&self) -> usize {
        let columns: usize = self.columns.iter().map(|c| c.capacity() * 4).sum();
        let interner = self.sym_values.capacity() * 8
            // HashMap<Value, u32>: key + value + bucket control, estimated.
            + self.sym_of.capacity() * (8 + 4 + 4);
        columns + interner + self.dedup.len() * 4
    }

    /// The value at tuple `idx`, attribute position `pos` — the columnar
    /// hot-path accessor (two dense array reads).
    #[inline]
    pub fn value_at(&self, idx: u32, pos: usize) -> Value {
        self.sym_values[self.columns[pos][idx as usize] as usize]
    }

    /// The interned symbol at tuple `idx`, position `pos`. Symbols are
    /// relation-local dense ids; equal symbols ⇔ equal values.
    #[inline]
    pub fn symbol_at(&self, idx: u32, pos: usize) -> u32 {
        self.columns[pos][idx as usize]
    }

    /// A zero-copy view of the tuple at `idx`.
    #[inline]
    pub fn tuple(&self, idx: u32) -> TupleView<'_> {
        debug_assert!(idx < self.rows, "tuple index {idx} out of {}", self.rows);
        TupleView { rel: self, idx }
    }

    /// The tuple at `idx`, materialized (cold paths and API boundaries).
    pub fn tuple_vec(&self, idx: u32) -> Vec<Value> {
        (0..self.schema.arity())
            .map(|p| self.value_at(idx, p))
            .collect()
    }

    /// Iterates over all tuples, in index order.
    pub fn iter(&self) -> impl Iterator<Item = TupleView<'_>> {
        (0..self.rows).map(move |i| self.tuple(i))
    }

    /// All tuples, materialized in index order (tests/presentation; the
    /// store itself is columnar).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows).map(|i| self.tuple_vec(i)).collect()
    }

    /// Does the instance contain exactly this tuple?
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.index_of(tuple).is_some()
    }

    /// Index of `tuple` if present.
    pub fn index_of(&self, tuple: &[Value]) -> Option<u32> {
        if tuple.len() != self.schema.arity() {
            return None;
        }
        let syms: Option<Vec<u32>> = tuple.iter().map(|v| self.sym_of.get(v).copied()).collect();
        let syms = syms?;
        self.probe(hash_syms(&syms), &syms)
    }

    /// Projects tuple `idx` onto the attributes `on` (which must all be in
    /// the schema), in the order given.
    pub fn project(&self, idx: u32, on: &[Attr]) -> Vec<Value> {
        on.iter()
            .map(|a| {
                let p = self
                    .schema
                    .position(a)
                    // adp-lint: allow(panic-path) -- documented contract:
                    // `on` must name schema attributes; projections are
                    // built from validated plans.
                    .unwrap_or_else(|| panic!("attribute {a} not in {}", self.schema));
                self.value_at(idx, p)
            })
            .collect()
    }

    /// A new instance keeping only the tuples whose index passes `keep`.
    /// The surviving tuples get fresh dense indices; the returned map sends
    /// new index → old index.
    pub fn filter_by_index<F: Fn(u32) -> bool>(&self, keep: F) -> (RelationInstance, Vec<u32>) {
        let mut out = RelationInstance::new(self.schema.clone());
        let mut back = Vec::new();
        let mut buf = Vec::with_capacity(self.schema.arity());
        for idx in 0..self.rows {
            if keep(idx) {
                buf.clear();
                buf.extend((0..self.schema.arity()).map(|p| self.value_at(idx, p)));
                out.insert(&buf);
                back.push(idx);
            }
        }
        (out, back)
    }

    /// A new instance with the attributes in `remove` projected away.
    /// Projection can merge tuples; the returned map sends old index → new
    /// index.
    pub fn project_away(&self, remove: &[Attr]) -> (RelationInstance, Vec<u32>) {
        let schema = self.schema.without_attrs(remove);
        let keep_attrs: Vec<Attr> = schema.attrs().to_vec();
        let mut out = RelationInstance::new(schema);
        let mut fwd = Vec::with_capacity(self.rows as usize);
        for idx in 0..self.rows {
            let proj = self.project(idx, &keep_attrs);
            fwd.push(out.insert(&proj));
        }
        (out, fwd)
    }

    /// Is stored row `row` exactly the symbol sequence `syms`?
    #[inline]
    fn row_eq_syms(&self, row: u32, syms: &[u32]) -> bool {
        self.columns
            .iter()
            .zip(syms)
            .all(|(c, &s)| c[row as usize] == s)
    }

    /// Probes the dedup table for a row equal to `syms`.
    fn probe(&self, h: u64, syms: &[u32]) -> Option<u32> {
        if self.dedup.is_empty() {
            return None;
        }
        let mask = self.dedup.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let e = self.dedup[i];
            if e == EMPTY {
                return None;
            }
            if self.row_eq_syms(e, syms) {
                return Some(e);
            }
            i = (i + 1) & mask;
        }
    }

    /// Appends a (known-fresh) symbol row and registers it in the dedup
    /// table. `h` is `hash_syms(syms)`. Fails with
    /// [`AdpError::RelationFull`] when the tuple id space is exhausted
    /// (interned symbols stay consistent: the tuple is simply absent).
    fn append_syms(&mut self, syms: &[u32], h: u64) -> Result<u32, AdpError> {
        let idx = checked_next_id(self.rows as usize, self.schema.name(), "tuple ids")?;
        for (c, &s) in self.columns.iter_mut().zip(syms) {
            c.push(s);
        }
        self.rows += 1;
        if (self.rows as usize) * LOAD_DEN >= self.dedup.len() * LOAD_NUM {
            let cap = ((self.rows as usize) * 2).next_power_of_two().max(16);
            self.rebuild_dedup(cap);
        } else {
            Self::place(&mut self.dedup, h, idx);
        }
        Ok(idx)
    }

    /// Rebuilds the dedup table at `capacity` (a power of two) from the
    /// columns. Every stored row re-hashes to exactly one slot.
    fn rebuild_dedup(&mut self, capacity: usize) {
        let capacity = capacity.next_power_of_two().max(16);
        let mut slots = vec![EMPTY; capacity];
        let mut syms = Vec::with_capacity(self.columns.len());
        for row in 0..self.rows {
            syms.clear();
            syms.extend(self.columns.iter().map(|c| c[row as usize]));
            Self::place(&mut slots, hash_syms(&syms), row);
        }
        self.dedup = slots;
    }

    /// Places `row` at the first free slot of its probe sequence.
    fn place(slots: &mut [u32], h: u64, row: u32) {
        let mask = slots.len() - 1;
        let mut i = (h as usize) & mask;
        while slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        slots[i] = row;
    }

    /// Interns `v`, returning its relation-local symbol, or
    /// [`AdpError::RelationFull`] once the symbol space is exhausted.
    fn intern_value(&mut self, v: Value) -> Result<u32, AdpError> {
        if let Some(&s) = self.sym_of.get(&v) {
            return Ok(s);
        }
        let s = checked_next_id(self.sym_values.len(), self.schema.name(), "symbols")?;
        self.sym_values.push(v);
        self.sym_of.insert(v, s);
        Ok(s)
    }
}

/// A zero-copy view of one stored tuple. Indexes like a slice
/// (`view[pos]` is the [`Value`] at attribute position `pos`) and
/// compares against other views, slices, and arrays by value.
#[derive(Clone, Copy)]
pub struct TupleView<'a> {
    rel: &'a RelationInstance,
    idx: u32,
}

impl<'a> TupleView<'a> {
    /// The tuple's arity.
    pub fn len(&self) -> usize {
        self.rel.schema.arity()
    }

    /// True for vacuum (arity-0) tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at position `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> Value {
        self.rel.value_at(self.idx, pos)
    }

    /// The tuple's index in its relation.
    pub fn index(&self) -> u32 {
        self.idx
    }

    /// Materializes the tuple.
    pub fn to_vec(&self) -> Vec<Value> {
        self.rel.tuple_vec(self.idx)
    }

    /// Iterates the tuple's values in position order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + 'a {
        let rel = self.rel;
        let idx = self.idx;
        (0..rel.schema.arity()).map(move |p| rel.value_at(idx, p))
    }
}

impl std::ops::Index<usize> for TupleView<'_> {
    type Output = Value;
    #[inline]
    fn index(&self, pos: usize) -> &Value {
        // The reference points into the interner's value table, which
        // holds exactly this tuple's value at the column's symbol.
        &self.rel.sym_values[self.rel.columns[pos][self.idx as usize] as usize]
    }
}

impl PartialEq for TupleView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for TupleView<'_> {}

impl PartialEq<[Value]> for TupleView<'_> {
    fn eq(&self, other: &[Value]) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, &b)| a == b)
    }
}

impl PartialEq<&[Value]> for TupleView<'_> {
    fn eq(&self, other: &&[Value]) -> bool {
        *self == **other
    }
}

impl<const N: usize> PartialEq<[Value; N]> for TupleView<'_> {
    fn eq(&self, other: &[Value; N]) -> bool {
        *self == other[..]
    }
}

impl<const N: usize> PartialEq<&[Value; N]> for TupleView<'_> {
    fn eq(&self, other: &&[Value; N]) -> bool {
        *self == other[..]
    }
}

impl PartialEq<Vec<Value>> for TupleView<'_> {
    fn eq(&self, other: &Vec<Value>) -> bool {
        *self == other[..]
    }
}

impl std::fmt::Debug for TupleView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attrs;

    fn rel() -> RelationInstance {
        let mut r = RelationInstance::new(RelationSchema::new("R", attrs(&["A", "B"])));
        r.insert(&[1, 10]);
        r.insert(&[2, 20]);
        r.insert(&[2, 30]);
        r
    }

    #[test]
    fn insert_dedups() {
        let mut r = rel();
        let before = r.len();
        let idx = r.insert(&[1, 10]);
        assert_eq!(idx, 0);
        assert_eq!(r.len(), before);
    }

    // A 4-billion-row instance is not constructible in a test, so the
    // overflow guard is exercised at the allocation gate both id spaces
    // share: the regression here is the PR-3 class of bug where a
    // `len() as u32` silently wrapped instead of failing typed.
    #[test]
    fn checked_next_id_guards_the_dense_space() {
        assert_eq!(checked_next_id(0, "R", "tuple ids"), Ok(0));
        assert_eq!(
            checked_next_id(u32::MAX as usize - 1, "R", "tuple ids"),
            Ok(u32::MAX - 1)
        );
        // u32::MAX is the dedup sentinel: allocating it would corrupt
        // the probe table, so the last usable id is u32::MAX - 1.
        for len in [u32::MAX as usize, u32::MAX as usize + 1, usize::MAX] {
            assert_eq!(
                checked_next_id(len, "R", "tuple ids"),
                Err(AdpError::RelationFull {
                    relation: "R".to_owned(),
                    what: "tuple ids",
                })
            );
        }
    }

    #[test]
    fn indices_matches_len() {
        let r = rel();
        let ids: Vec<u32> = r.indices().collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(
            RelationInstance::new(rel().schema().clone())
                .indices()
                .count(),
            0
        );
    }

    #[test]
    fn project_orders_by_request() {
        let r = rel();
        assert_eq!(r.project(1, &attrs(&["B", "A"])), vec![20, 2]);
    }

    #[test]
    fn filter_by_index_keeps_backmap() {
        let r = rel();
        let (f, back) = r.filter_by_index(|i| i != 1);
        assert_eq!(f.len(), 2);
        assert_eq!(back, vec![0, 2]);
        assert_eq!(f.tuple(1), &[2, 30]);
    }

    #[test]
    fn project_away_merges() {
        let r = rel();
        let (p, fwd) = r.project_away(&attrs(&["B"]));
        assert_eq!(p.schema().attrs(), &attrs(&["A"])[..]);
        assert_eq!(p.len(), 2); // values 1 and 2
        assert_eq!(fwd, vec![0, 1, 1]);
    }

    #[test]
    fn vacuum_relation_roundtrip() {
        let mut v = RelationInstance::new(RelationSchema::new("V", vec![]));
        assert!(v.is_empty());
        v.insert(&[]);
        assert_eq!(v.len(), 1);
        v.insert(&[]);
        assert_eq!(v.len(), 1, "vacuum instance is {{()}} at most");
        assert!(v.contains(&[]));
        assert_eq!(v.index_of(&[]), Some(0));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        rel().insert(&[1]);
    }

    #[test]
    fn tuple_view_reads_like_a_slice() {
        let r = rel();
        let t = r.tuple(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], 2);
        assert_eq!(t[1], 30);
        assert_eq!(t.to_vec(), vec![2, 30]);
        assert_eq!(t, [2u64, 30]);
        assert_eq!(t, &[2u64, 30]);
        assert_eq!(format!("{t:?}"), "[2, 30]");
        assert_eq!(r.tuple(1), r.tuple(1));
        assert_ne!(r.tuple(1), r.tuple(2));
    }

    #[test]
    fn index_of_and_contains_probe_columns() {
        let r = rel();
        assert_eq!(r.index_of(&[2, 20]), Some(1));
        assert_eq!(r.index_of(&[2, 99]), None, "unseen value short-circuits");
        assert_eq!(r.index_of(&[20, 2]), None, "position matters");
        assert!(r.contains(&[1, 10]));
        assert!(!r.contains(&[1, 10, 0]), "arity mismatch is just absent");
    }

    #[test]
    fn interner_is_shared_across_columns() {
        let mut r = RelationInstance::new(RelationSchema::new("R", attrs(&["A", "B"])));
        r.insert(&[7, 7]);
        r.insert(&[7, 8]);
        // 7 and 8: two distinct values, regardless of column.
        assert_eq!(r.symbol_count(), 2);
        assert_eq!(r.symbol_at(0, 0), r.symbol_at(0, 1));
        assert_eq!(r.symbol_at(0, 0), r.symbol_at(1, 0));
    }

    /// Regression (tuple-memory double-store): the old row store kept a
    /// `Box<[Value]>` in its tuple vector *and* a clone of it as the
    /// dedup `HashMap` key — ≥ 2 heap copies (≥ 64 bytes) per arity-2
    /// tuple before map overhead. The columnar store keeps one `u32`
    /// symbol per attribute plus a keyless id-only dedup slot: the size
    /// accounting must stay near 8 bytes of column data per arity-2
    /// tuple, bounded well under one boxed copy.
    #[test]
    fn one_stored_copy_per_tuple() {
        let mut r = RelationInstance::new(RelationSchema::new("R", attrs(&["A", "B"])));
        let n = 10_000u64;
        for i in 0..n {
            r.insert(&[i % 64, i]); // column A: 64 symbols; column B: n symbols
        }
        assert_eq!(r.len(), n as usize);
        let per_tuple = r.approx_bytes() as f64 / n as f64;
        // columns: 8 B; dedup: ≤ 32768 slots × 4 B / 10k ≈ 13 B;
        // interner: ~10k distinct values ≈ 24 B of map + 8 B of table.
        // A second stored copy (the old design) would add ≥ 32 B on top.
        assert!(
            per_tuple < 64.0,
            "expected ~one stored copy per tuple, measured {per_tuple:.1} B/tuple"
        );
        // The dominant term must be the columns, not tuple copies: with
        // capacity slack the columns alone are ≤ 16 B/tuple.
        let columns_only = 2.0 * 4.0;
        assert!(
            per_tuple < columns_only * 8.0,
            "storage is not column-dominated: {per_tuple:.1} B/tuple"
        );
    }

    /// The dedup table keeps probing correctly across growth rehashes.
    #[test]
    fn dedup_survives_growth() {
        let mut r = RelationInstance::new(RelationSchema::new("R", attrs(&["A"])));
        for i in 0..1000u64 {
            assert_eq!(r.insert(&[i]), i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(r.insert(&[i]), i as u32, "duplicate must find original");
        }
        assert_eq!(r.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(r.index_of(&[i]), Some(i as u32));
        }
    }

    #[test]
    fn reserve_preserves_contents() {
        let mut r = rel();
        r.reserve(100_000);
        assert_eq!(r.len(), 3);
        assert_eq!(r.insert(&[2, 20]), 1, "dedup intact after reserve");
        assert_eq!(r.insert(&[5, 50]), 3);
    }

    #[test]
    fn iter_and_to_rows_are_index_ordered() {
        let r = rel();
        let rows: Vec<Vec<Value>> = r.iter().map(|t| t.to_vec()).collect();
        assert_eq!(rows, vec![vec![1, 10], vec![2, 20], vec![2, 30]]);
        assert_eq!(r.to_rows(), rows);
    }
}
