//! Relation instances: a schema plus a segmented columnar tuple store.
//!
//! Storage is column-oriented and value-interned: every attribute value
//! (`u64`) is mapped through a per-relation interner to a dense `u32`
//! *symbol*, and each attribute position holds one dense `Vec<u32>`
//! symbol column. A 10M-row arity-2 relation is therefore two 40 MB
//! arrays plus the interner — no per-tuple heap allocation, no boxed
//! rows. Set semantics are enforced by an open-addressing dedup table
//! that stores only tuple ids and probes the columns directly, so a
//! tuple is stored exactly once.
//!
//! # Segments, overlays, and epochs
//!
//! An instance has two storage tiers:
//!
//! * **Sealed segments** ([`Segment`]): immutable column chunks shared
//!   by `Arc` across clones. A segment never changes after
//!   [`seal`](RelationInstance::seal); mutation state lives *next to*
//!   it as a per-clone sorted tombstone overlay (copy-on-write via
//!   `Arc::make_mut`, so a Δ-row mutation clones O(overlay), not the
//!   columns).
//! * **The tail**: a plain mutable columnar store for rows inserted
//!   after the last seal, exactly the pre-segmentation representation.
//!
//! Every tuple carries a permanent **stable id** — its insertion
//! sequence number — which survives seals and compactions and is the
//! coordinate mutations are expressed in ([`delete_stable`],
//! [`restore_stable`]). The **dense view** (what [`len`], [`indices`],
//! [`tuple`], the planner and the solvers see) enumerates live rows in
//! stable order, so it is byte-identical to a from-scratch store built
//! by inserting the live tuples in their original order. Rank/select
//! arithmetic over the sorted tombstone overlays converts between the
//! two coordinate systems in O(log overlay).
//!
//! [`maybe_compact`] physically drops tombstoned rows from a segment
//! once their ratio passes a threshold, replacing the `Arc` — clones
//! holding the old epoch keep the old segment alive until they drop.
//!
//! [`delete_stable`]: RelationInstance::delete_stable
//! [`restore_stable`]: RelationInstance::restore_stable
//! [`len`]: RelationInstance::len
//! [`indices`]: RelationInstance::indices
//! [`tuple`]: RelationInstance::tuple
//! [`maybe_compact`]: RelationInstance::maybe_compact

use crate::error::AdpError;
use crate::schema::{Attr, RelationSchema};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError, Weak};

/// An owned tuple, used at API boundaries (storage itself is columnar).
pub type Tuple = Box<[Value]>;

/// Empty-slot sentinel in the dedup tables.
const EMPTY: u32 = u32::MAX;

/// Dedup table load limit: grow when `len * 8 >= capacity * 7`.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// Accounting estimate for one cached per-segment index entry (key box,
/// posting vec headers, bucket control); mirrors the planner's estimate.
const SEG_INDEX_ENTRY_BYTES: usize = 48;

/// Sentinel "segment" number meaning the mutable tail.
const TAIL_SEG: usize = usize::MAX;

/// The next dense id for a store of `len` entries, or
/// [`AdpError::RelationFull`] once the `u32` space (minus the reserved
/// [`EMPTY`] sentinel) is exhausted. Both id spaces of the store — tuple
/// indices and interned symbols — allocate through this one checked
/// gate, so no `as u32` truncation exists on the insert path.
fn checked_next_id(len: usize, relation: &str, what: &'static str) -> Result<u32, AdpError> {
    match u32::try_from(len) {
        Ok(id) if id != EMPTY => Ok(id),
        _ => Err(AdpError::RelationFull {
            relation: relation.to_owned(),
            what,
        }),
    }
}

/// FNV-1a over a symbol row; the dedup tables' hash function. Symbols
/// are injective in values, so hashing symbols is hashing the tuple.
#[inline]
fn hash_syms(syms: &[u32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &s in syms {
        for b in s.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Number of tombstones strictly below local row `l` (sorted input).
#[inline]
fn rank_below(tombs: &[u32], l: u32) -> u32 {
    crate::ids::dense_id(tombs.partition_point(|&t| t < l), "tombstone ranks")
}

/// Is local row `l` tombstoned?
#[inline]
fn is_dead(tombs: &[u32], l: u32) -> bool {
    tombs.binary_search(&l).is_ok()
}

/// The local row holding the `rank`-th (0-based) live entry: the
/// smallest live `l` with exactly `rank` live rows below it. Binary
/// search over `[rank, rank + tombs.len()]`.
#[inline]
fn select_alive(tombs: &[u32], rank: u32) -> u32 {
    if tombs.is_empty() {
        return rank;
    }
    let mut lo = rank as usize;
    let mut hi = rank as usize + tombs.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        // live rows in [0, mid] = (mid + 1) - tombstones ≤ mid.
        let t = tombs.partition_point(|&x| x as usize <= mid);
        if mid + 1 - t > rank as usize {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    crate::ids::dense_id(lo, "tombstone ranks")
}

/// Probes an open-addressing id table (power-of-two sized, linear
/// probing, [`EMPTY`] sentinel) for a row satisfying `eq`.
fn probe_slots(slots: &[u32], h: u64, eq: impl Fn(u32) -> bool) -> Option<u32> {
    if slots.is_empty() {
        return None;
    }
    let mask = slots.len() - 1;
    let mut i = (h as usize) & mask;
    loop {
        let e = slots[i];
        if e == EMPTY {
            return None;
        }
        if eq(e) {
            return Some(e);
        }
        i = (i + 1) & mask;
    }
}

/// Places `row` at the first free slot of its probe sequence.
fn place(slots: &mut [u32], h: u64, row: u32) {
    let mask = slots.len() - 1;
    let mut i = (h as usize) & mask;
    while slots[i] != EMPTY {
        i = (i + 1) & mask;
    }
    slots[i] = row;
}

/// The relation-local value interner: symbol → value and value → symbol.
/// Shared (`Arc`) between the tail and every sealed segment; append-only,
/// so a symbol minted once stays valid in every epoch. Copy-on-write:
/// interning a brand-new value after a clone copies the table once.
#[derive(Clone, Debug, Default)]
struct Symbols {
    /// symbol → value (reverse side of the interner).
    values: Vec<Value>,
    /// value → symbol.
    of: HashMap<Value, u32>,
}

impl Symbols {
    #[inline]
    fn get(&self, v: Value) -> Option<u32> {
        self.of.get(&v).copied()
    }

    #[inline]
    fn value(&self, sym: u32) -> Value {
        self.values[sym as usize]
    }

    fn approx_bytes(&self) -> usize {
        // HashMap<Value, u32>: key + value + bucket control, estimated.
        self.values.capacity() * 8 + self.of.capacity() * (8 + 4 + 4)
    }
}

/// How a segment maps local rows to stable ids.
#[derive(Clone, Debug)]
enum StableIds {
    /// `stable = stable_lo + local` — freshly sealed chunks.
    Contiguous,
    /// Explicit sorted stable id per local row — post-compaction gaps.
    Explicit(Box<[u32]>),
}

/// One immutable sealed chunk of a relation: columns, a private dedup
/// table, the stable-id range it covers, and a cache of join indexes
/// keyed by bound attribute positions. Never mutated after
/// construction; shared by `Arc` across epoch snapshots, so a segment's
/// cached indexes are reused by every epoch that contains it.
#[derive(Debug)]
pub struct Segment {
    /// `columns[pos][local]` = symbol of attribute `pos` in local row.
    columns: Vec<Vec<u32>>,
    rows: u32,
    /// Open-addressing dedup over local rows.
    dedup: Vec<u32>,
    /// Stable-id range `[stable_lo, stable_hi)` this segment covers —
    /// fixed at seal time, preserved across compactions (a compacted
    /// segment still "owns" the ids of rows it dropped, so restores
    /// find their way home).
    stable_lo: u32,
    stable_hi: u32,
    stable: StableIds,
    /// Cached join indexes: bound positions → local-row postings.
    /// Tombstone-independent, hence valid in every epoch.
    indexes: Mutex<SegIndexCache>,
}

/// A per-segment join index: bound-value key → local rows (ascending).
pub(crate) type SegIndex = HashMap<Box<[Value]>, Vec<u32>>;

/// Cached indexes of one segment, keyed by bound attribute positions.
type SegIndexCache = Vec<(Box<[u32]>, Arc<SegIndex>)>;

impl Segment {
    #[inline]
    fn stable_of_local(&self, l: u32) -> u32 {
        match &self.stable {
            StableIds::Contiguous => self.stable_lo + l,
            StableIds::Explicit(ids) => ids[l as usize],
        }
    }

    fn local_of_stable(&self, stable: u32) -> Option<u32> {
        match &self.stable {
            StableIds::Contiguous => (self.stable_lo..self.stable_hi)
                .contains(&stable)
                .then(|| stable - self.stable_lo),
            StableIds::Explicit(ids) => ids
                .binary_search(&stable)
                .ok()
                .map(|p| crate::ids::dense_id(p, "segment rows")),
        }
    }

    /// Is stored local row `row` exactly the symbol sequence `syms`?
    #[inline]
    fn row_eq_syms(&self, row: u32, syms: &[u32]) -> bool {
        self.columns
            .iter()
            .zip(syms)
            .all(|(c, &s)| c[row as usize] == s)
    }

    fn probe(&self, h: u64, syms: &[u32]) -> Option<u32> {
        probe_slots(&self.dedup, h, |e| self.row_eq_syms(e, syms))
    }

    /// Rebuilds the dedup table from the columns.
    fn rebuild_dedup(&mut self) {
        let capacity = ((self.rows as usize) * LOAD_DEN / LOAD_NUM + 1)
            .next_power_of_two()
            .max(16);
        let mut slots = vec![EMPTY; capacity];
        let mut syms = Vec::with_capacity(self.columns.len());
        for row in 0..self.rows {
            syms.clear();
            syms.extend(self.columns.iter().map(|c| c[row as usize]));
            place(&mut slots, hash_syms(&syms), row);
        }
        self.dedup = slots;
    }

    /// Builds the join index for `bound_pos` over every physical row
    /// (tombstone-independent: overlays are applied at probe time).
    fn build_index(&self, bound_pos: &[u32], syms: &Symbols) -> SegIndex {
        let mut map: SegIndex = HashMap::new();
        let mut key: Vec<Value> = Vec::with_capacity(bound_pos.len());
        for l in 0..self.rows {
            key.clear();
            key.extend(
                bound_pos
                    .iter()
                    .map(|&p| syms.value(self.columns[p as usize][l as usize])),
            );
            map.entry(key.as_slice().into()).or_default().push(l);
        }
        map
    }

    fn cached_index(&self, bound_pos: &[u32]) -> Option<Arc<SegIndex>> {
        let cache = self.indexes.lock().unwrap_or_else(PoisonError::into_inner);
        cache
            .iter()
            .find(|(k, _)| &k[..] == bound_pos)
            .map(|(_, v)| Arc::clone(v))
    }

    /// Registers `built` for `bound_pos` (first writer wins) and returns
    /// the cached copy.
    fn store_index(&self, bound_pos: &[u32], built: SegIndex) -> Arc<SegIndex> {
        let mut cache = self.indexes.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((_, v)) = cache.iter().find(|(k, _)| &k[..] == bound_pos) {
            return Arc::clone(v);
        }
        let arc = Arc::new(built);
        cache.push((bound_pos.into(), Arc::clone(&arc)));
        arc
    }

    fn approx_bytes(&self) -> usize {
        let columns: usize = self.columns.iter().map(|c| c.capacity() * 4).sum();
        let stable = match &self.stable {
            StableIds::Contiguous => 0,
            StableIds::Explicit(ids) => ids.len() * 4,
        };
        let cache = self.indexes.lock().unwrap_or_else(PoisonError::into_inner);
        let idx: usize = cache
            .iter()
            .map(|(k, m)| k.len() * 4 + m.len() * SEG_INDEX_ENTRY_BYTES)
            .sum();
        columns + self.dedup.len() * 4 + stable + idx
    }
}

/// A sealed segment plus this clone's tombstone overlay for it. Cloning
/// is two `Arc` bumps; the overlay copies on first write
/// (`Arc::make_mut`), leaving sibling epochs untouched.
#[derive(Clone, Debug)]
struct SegState {
    seg: Arc<Segment>,
    /// Sorted tombstoned local rows.
    tombs: Arc<Vec<u32>>,
}

impl SegState {
    #[inline]
    fn live(&self) -> usize {
        self.seg.rows as usize - self.tombs.len()
    }
}

/// A probe handle for one segment inside a [`crate::plan::StepIndex`]:
/// the (shared, cached) per-segment index, this epoch's tombstone
/// overlay, and the segment's dense offset in this epoch's view.
#[derive(Clone, Debug)]
pub(crate) struct SegProbe {
    index: Arc<SegIndex>,
    tombs: Arc<Vec<u32>>,
    start: u32,
}

impl SegProbe {
    /// Appends the dense ids matching `key` (ascending), applying the
    /// tombstone overlay and the local→dense rank shift.
    pub(crate) fn extend_matches(&self, key: &[Value], out: &mut Vec<u32>) {
        let Some(list) = self.index.get(key) else {
            return;
        };
        if self.tombs.is_empty() {
            out.extend(list.iter().map(|&l| self.start + l));
            return;
        }
        for &l in list {
            let r = rank_below(&self.tombs, l);
            if self.tombs.get(r as usize) == Some(&l) {
                continue; // tombstoned in this epoch
            }
            out.push(self.start + l - r);
        }
    }

    /// Distinct keys in the underlying segment index.
    pub(crate) fn entry_count(&self) -> usize {
        self.index.len()
    }
}

/// A relation instance: schema + segmented columnar tuple store.
///
/// Tuples are deduplicated on insert (set semantics, as in the paper).
/// Tuple *indices* are stable within one snapshot: deletions used by the
/// solvers are expressed as "alive" masks layered on top (see
/// [`crate::provenance`]), so an index handed out once refers to the
/// same tuple for that snapshot's lifetime. Across epochs, tuples are
/// addressed by their permanent stable id (see the module docs).
#[derive(Clone, Debug)]
pub struct RelationInstance {
    schema: RelationSchema,
    /// Shared append-only interner (tail + all segments).
    interner: Arc<Symbols>,
    /// Sealed segments, in stable-id order.
    sealed: Vec<SegState>,
    /// `starts[i]` = dense id of segment `i`'s first live row;
    /// `starts[sealed.len()]` = the tail's dense offset. Never empty.
    starts: Vec<u32>,
    /// `columns[pos][row]` = symbol of attribute `pos` in tail row.
    columns: Vec<Vec<u32>>,
    /// Number of stored tail rows (columns may be empty for vacuum
    /// schemas).
    rows: u32,
    /// Open-addressing dedup over tail rows: tuple ids, probed against
    /// the columns. Power-of-two capacity, linear probing, every stored
    /// row present exactly once. No keys are stored — this is the "one
    /// stored copy per tuple" invariant.
    dedup: Vec<u32>,
    /// Scratch symbol buffer reused across inserts.
    scratch: Vec<u32>,
    /// Stable id of tail row 0 (== total rows ever sealed).
    tail_stable_lo: u32,
    /// Sorted tombstoned tail rows.
    tail_tombs: Vec<u32>,
}

impl RelationInstance {
    /// Creates an empty instance of `schema`.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity();
        RelationInstance {
            schema,
            interner: Arc::new(Symbols::default()),
            sealed: Vec::new(),
            starts: vec![0],
            columns: vec![Vec::new(); arity],
            rows: 0,
            dedup: Vec::new(),
            scratch: Vec::new(),
            tail_stable_lo: 0,
            tail_tombs: Vec::new(),
        }
    }

    /// The instance's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Relation name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Pre-allocates room for `additional` more tuples, so streaming
    /// builders (e.g. the 10M-row `adp-datagen` generators) pay no
    /// incremental reallocation.
    pub fn reserve(&mut self, additional: usize) {
        for c in &mut self.columns {
            c.reserve(additional);
        }
        let want = (self.rows as usize + additional) * LOAD_DEN / LOAD_NUM + 1;
        if want > self.dedup.len() {
            self.rebuild_dedup(want.next_power_of_two());
        }
    }

    /// Dense offset of the tail (== live rows across all segments).
    #[inline]
    fn sealed_live(&self) -> u32 {
        self.starts[self.starts.len() - 1]
    }

    /// Live tuples, as the dense `u32` count.
    #[inline]
    fn live_u32(&self) -> u32 {
        self.sealed_live() + self.rows - rank_below(&self.tail_tombs, self.rows)
    }

    /// Dense id of live segment row `(i, local)` in this epoch's view.
    #[inline]
    fn seg_dense(&self, i: usize, local: u32) -> u32 {
        self.starts[i] + local - rank_below(&self.sealed[i].tombs, local)
    }

    /// Dense id of live tail row `local` in this epoch's view.
    #[inline]
    fn tail_dense(&self, local: u32) -> u32 {
        self.sealed_live() + local - rank_below(&self.tail_tombs, local)
    }

    /// Physical coordinates of dense id `idx`: `(TAIL_SEG, tail row)` or
    /// `(segment, local row)`.
    #[inline]
    fn phys(&self, idx: u32) -> (usize, u32) {
        if self.sealed.is_empty() && self.tail_tombs.is_empty() {
            return (TAIL_SEG, idx); // unsegmented fast path
        }
        self.phys_slow(idx)
    }

    fn phys_slow(&self, idx: u32) -> (usize, u32) {
        let tail_start = self.sealed_live();
        if idx >= tail_start {
            return (TAIL_SEG, select_alive(&self.tail_tombs, idx - tail_start));
        }
        let i = self.starts.partition_point(|&s| s <= idx) - 1;
        let rank = idx - self.starts[i];
        (i, select_alive(&self.sealed[i].tombs, rank))
    }

    /// Inserts a tuple, returning its dense index in the current view.
    /// Duplicate inserts return the existing index; inserting a tuple
    /// that exists only tombstoned *revives* it in place (set
    /// semantics). Panics if the arity does not match the schema or the
    /// id space is exhausted; use [`try_insert`](Self::try_insert) for a
    /// typed error instead.
    pub fn insert(&mut self, tuple: &[Value]) -> u32 {
        // adp-lint: allow(panic-path) -- documented panicking convenience
        // wrapper; try_insert is the checked API.
        self.try_insert(tuple).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`insert`](Self::insert) with a typed error: rejects tuples whose
    /// length disagrees with the schema's arity as
    /// [`AdpError::ArityMismatch`], and a store whose dense `u32` id
    /// space is exhausted as [`AdpError::RelationFull`], instead of
    /// panicking.
    pub fn try_insert(&mut self, tuple: &[Value]) -> Result<u32, AdpError> {
        if tuple.len() != self.schema.arity() {
            return Err(AdpError::ArityMismatch {
                relation: self.schema.name().to_owned(),
                expected: self.schema.arity(),
                got: tuple.len(),
            });
        }
        // Map values to symbols. A value the interner has never seen
        // makes the tuple definitely fresh in *every* tier (the interner
        // is shared with the segments) — no probe needed.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let mut all_known = true;
        for &v in tuple {
            match self.interner.get(v) {
                Some(s) => scratch.push(s),
                None => {
                    all_known = false;
                    break;
                }
            }
        }
        if all_known {
            let h = hash_syms(&scratch);
            if let Some(idx) = self.find_or_revive(h, &scratch) {
                self.scratch = scratch;
                return Ok(idx);
            }
            let idx = self.append_syms(&scratch, h);
            self.scratch = scratch;
            return idx;
        }
        // Fresh tuple: intern the remaining values, then append.
        scratch.clear();
        for &v in tuple {
            match self.intern_value(v) {
                Ok(s) => scratch.push(s),
                Err(e) => {
                    self.scratch = scratch;
                    return Err(e);
                }
            }
        }
        let h = hash_syms(&scratch);
        let idx = self.append_syms(&scratch, h);
        self.scratch = scratch;
        idx
    }

    /// Looks for a physical copy of `syms` in any tier. An alive hit
    /// returns its dense id; a tombstoned hit is revived first (the
    /// store holds at most one physical copy of a tuple, so insert ==
    /// un-delete).
    fn find_or_revive(&mut self, h: u64, syms: &[u32]) -> Option<u32> {
        for i in 0..self.sealed.len() {
            if let Some(l) = self.sealed[i].seg.probe(h, syms) {
                if is_dead(&self.sealed[i].tombs, l) {
                    let tombs = Arc::make_mut(&mut self.sealed[i].tombs);
                    if let Ok(p) = tombs.binary_search(&l) {
                        tombs.remove(p);
                    }
                    self.refresh_starts();
                }
                return Some(self.seg_dense(i, l));
            }
        }
        let l = probe_slots(&self.dedup, h, |e| self.row_eq_tail(e, syms))?;
        if let Ok(p) = self.tail_tombs.binary_search(&l) {
            self.tail_tombs.remove(p);
        }
        Some(self.tail_dense(l))
    }

    /// Bulk insert.
    pub fn extend<I: IntoIterator<Item = Vec<Value>>>(&mut self, iter: I) {
        for t in iter {
            self.insert(&t);
        }
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live_u32() as usize
    }

    /// True if the instance holds no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live_u32() == 0
    }

    /// Every live tuple index, `0..len()`, as the dense `u32` ids the
    /// engine uses everywhere. Iterating this instead of `0..len() as
    /// u32` keeps callers free of truncating casts — the store itself
    /// guarantees indices fit (see [`AdpError::RelationFull`]).
    pub fn indices(&self) -> std::ops::Range<u32> {
        0..self.live_u32()
    }

    /// Number of distinct interned values in this relation.
    pub fn symbol_count(&self) -> usize {
        self.interner.values.len()
    }

    /// Estimated resident bytes of the store: segment + tail columns,
    /// interner, dedup tables, tombstone overlays, and cached segment
    /// indexes. An accounting estimate (it ignores allocator slack),
    /// used by [`crate::database::Database::memory_report`] and the size
    /// regression tests.
    pub fn approx_bytes(&self) -> usize {
        let tail: usize = self.columns.iter().map(|c| c.capacity() * 4).sum();
        let segs: usize = self
            .sealed
            .iter()
            .map(|s| s.seg.approx_bytes() + s.tombs.len() * 4)
            .sum();
        tail + segs
            + self.interner.approx_bytes()
            + self.dedup.len() * 4
            + self.tail_tombs.len() * 4
    }

    /// The value at tuple `idx`, attribute position `pos` — the columnar
    /// hot-path accessor (two dense array reads on the unsegmented fast
    /// path; plus an O(log segments + log overlay) coordinate hop once
    /// sealed).
    #[inline]
    pub fn value_at(&self, idx: u32, pos: usize) -> Value {
        self.interner.value(self.symbol_at(idx, pos))
    }

    /// The interned symbol at tuple `idx`, position `pos`. Symbols are
    /// relation-local dense ids; equal symbols ⇔ equal values.
    #[inline]
    pub fn symbol_at(&self, idx: u32, pos: usize) -> u32 {
        match self.phys(idx) {
            (TAIL_SEG, l) => self.columns[pos][l as usize],
            (i, l) => self.sealed[i].seg.columns[pos][l as usize],
        }
    }

    /// A zero-copy view of the tuple at `idx`.
    #[inline]
    pub fn tuple(&self, idx: u32) -> TupleView<'_> {
        debug_assert!(
            idx < self.live_u32(),
            "tuple index {idx} out of {}",
            self.live_u32()
        );
        TupleView { rel: self, idx }
    }

    /// The tuple at `idx`, materialized (cold paths and API boundaries).
    pub fn tuple_vec(&self, idx: u32) -> Vec<Value> {
        (0..self.schema.arity())
            .map(|p| self.value_at(idx, p))
            .collect()
    }

    /// Iterates over all live tuples, in index order.
    pub fn iter(&self) -> impl Iterator<Item = TupleView<'_>> {
        self.indices().map(move |i| self.tuple(i))
    }

    /// All live tuples, materialized in index order (tests/presentation;
    /// the store itself is columnar).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        self.indices().map(|i| self.tuple_vec(i)).collect()
    }

    /// Does the instance contain exactly this tuple (alive)?
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.index_of(tuple).is_some()
    }

    /// Dense index of `tuple` if present and alive.
    pub fn index_of(&self, tuple: &[Value]) -> Option<u32> {
        if tuple.len() != self.schema.arity() {
            return None;
        }
        let syms: Option<Vec<u32>> = tuple.iter().map(|&v| self.interner.get(v)).collect();
        let syms = syms?;
        let h = hash_syms(&syms);
        for (i, s) in self.sealed.iter().enumerate() {
            if let Some(l) = s.seg.probe(h, &syms) {
                // At most one physical copy exists across all tiers.
                return (!is_dead(&s.tombs, l)).then(|| self.seg_dense(i, l));
            }
        }
        let l = probe_slots(&self.dedup, h, |e| self.row_eq_tail(e, &syms))?;
        (!is_dead(&self.tail_tombs, l)).then(|| self.tail_dense(l))
    }

    /// Projects tuple `idx` onto the attributes `on` (which must all be in
    /// the schema), in the order given.
    pub fn project(&self, idx: u32, on: &[Attr]) -> Vec<Value> {
        on.iter()
            .map(|a| {
                let p = self
                    .schema
                    .position(a)
                    // adp-lint: allow(panic-path) -- documented contract:
                    // `on` must name schema attributes; projections are
                    // built from validated plans.
                    .unwrap_or_else(|| panic!("attribute {a} not in {}", self.schema));
                self.value_at(idx, p)
            })
            .collect()
    }

    /// A new (unsegmented) instance keeping only the tuples whose dense
    /// index passes `keep`. The surviving tuples get fresh dense
    /// indices; the returned map sends new index → old index.
    pub fn filter_by_index<F: Fn(u32) -> bool>(&self, keep: F) -> (RelationInstance, Vec<u32>) {
        let mut out = RelationInstance::new(self.schema.clone());
        let mut back = Vec::new();
        let mut buf = Vec::with_capacity(self.schema.arity());
        for idx in self.indices() {
            if keep(idx) {
                buf.clear();
                buf.extend((0..self.schema.arity()).map(|p| self.value_at(idx, p)));
                out.insert(&buf);
                back.push(idx);
            }
        }
        (out, back)
    }

    /// A new instance with the attributes in `remove` projected away.
    /// Projection can merge tuples; the returned map sends old index → new
    /// index.
    pub fn project_away(&self, remove: &[Attr]) -> (RelationInstance, Vec<u32>) {
        let schema = self.schema.without_attrs(remove);
        let keep_attrs: Vec<Attr> = schema.attrs().to_vec();
        let mut out = RelationInstance::new(schema);
        let mut fwd = Vec::with_capacity(self.len());
        for idx in self.indices() {
            let proj = self.project(idx, &keep_attrs);
            fwd.push(out.insert(&proj));
        }
        (out, fwd)
    }

    // ------------------------------------------------------------------
    // Epoch mechanics: seal / tombstone / restore / compact.
    // ------------------------------------------------------------------

    /// Moves every tail row into immutable sealed segments of at most
    /// `target_rows` rows each. Stable ids, the dense view, and pending
    /// tail tombstones are all preserved (tombstones migrate into the
    /// new segments' overlays). After sealing, a clone of this instance
    /// shares all column data by `Arc` and a Δ-row mutation costs
    /// O(Δ + overlay), not O(n).
    pub fn seal(&mut self, target_rows: usize) {
        if self.rows == 0 {
            return;
        }
        let total = self.rows as usize;
        let target = target_rows.max(1);
        let mut start = 0usize;
        while start < total {
            let end = start.saturating_add(target).min(total);
            let lo32 = crate::ids::dense_id(start, "segment rows");
            let rows32 = crate::ids::dense_id(end - start, "segment rows");
            let mut seg = Segment {
                columns: self
                    .columns
                    .iter()
                    .map(|c| c[start..end].to_vec())
                    .collect(),
                rows: rows32,
                dedup: Vec::new(),
                stable_lo: self.tail_stable_lo + lo32,
                stable_hi: self.tail_stable_lo + lo32 + rows32,
                stable: StableIds::Contiguous,
                indexes: Mutex::new(Vec::new()),
            };
            seg.rebuild_dedup();
            let t0 = self.tail_tombs.partition_point(|&t| (t as usize) < start);
            let t1 = self.tail_tombs.partition_point(|&t| (t as usize) < end);
            let tombs: Vec<u32> = self.tail_tombs[t0..t1].iter().map(|&t| t - lo32).collect();
            self.sealed.push(SegState {
                seg: Arc::new(seg),
                tombs: Arc::new(tombs),
            });
            start = end;
        }
        self.tail_stable_lo =
            crate::ids::dense_id(self.tail_stable_lo as usize + total, "tuple ids");
        self.columns = vec![Vec::new(); self.schema.arity()];
        self.rows = 0;
        self.dedup = Vec::new();
        self.tail_tombs.clear();
        self.refresh_starts();
    }

    /// Tombstones the tuple with stable id `stable`. Returns `false` if
    /// the id is out of range, already tombstoned, or was physically
    /// compacted away. O(log segments + overlay) — never touches column
    /// data.
    pub fn delete_stable(&mut self, stable: u32) -> bool {
        if stable >= self.tail_stable_lo {
            let local = stable - self.tail_stable_lo;
            if local >= self.rows {
                return false;
            }
            match self.tail_tombs.binary_search(&local) {
                Ok(_) => false,
                Err(p) => {
                    self.tail_tombs.insert(p, local);
                    true
                }
            }
        } else {
            let Some(i) = self.seg_of_stable(stable) else {
                return false;
            };
            let Some(local) = self.sealed[i].seg.local_of_stable(stable) else {
                return false;
            };
            let tombs = Arc::make_mut(&mut self.sealed[i].tombs);
            match tombs.binary_search(&local) {
                Ok(_) => false,
                Err(p) => {
                    tombs.insert(p, local);
                    self.refresh_starts();
                    true
                }
            }
        }
    }

    /// Undoes [`delete_stable`](Self::delete_stable): brings the tuple
    /// with stable id `stable` back to life at its original position in
    /// the dense order. `values` must be the tuple's original values —
    /// they are only consulted when the row was physically compacted
    /// away and has to be re-materialized into its segment. Returns
    /// `false` if the id is out of range or already alive.
    pub fn restore_stable(&mut self, stable: u32, values: &[Value]) -> bool {
        if stable >= self.tail_stable_lo {
            let local = stable - self.tail_stable_lo;
            if local >= self.rows {
                return false;
            }
            match self.tail_tombs.binary_search(&local) {
                Ok(p) => {
                    self.tail_tombs.remove(p);
                    true
                }
                Err(_) => false,
            }
        } else {
            let Some(i) = self.seg_of_stable(stable) else {
                return false;
            };
            if let Some(local) = self.sealed[i].seg.local_of_stable(stable) {
                let tombs = Arc::make_mut(&mut self.sealed[i].tombs);
                match tombs.binary_search(&local) {
                    Ok(p) => {
                        tombs.remove(p);
                        self.refresh_starts();
                        true
                    }
                    Err(_) => false,
                }
            } else {
                if values.len() != self.schema.arity() {
                    return false;
                }
                let mut syms = Vec::with_capacity(values.len());
                for &v in values {
                    match self.intern_value(v) {
                        Ok(s) => syms.push(s),
                        Err(_) => return false,
                    }
                }
                self.reinsert_into_segment(i, stable, &syms);
                self.refresh_starts();
                true
            }
        }
    }

    /// The segment whose stable-id range contains `stable`, if any.
    fn seg_of_stable(&self, stable: u32) -> Option<usize> {
        let i = self.sealed.partition_point(|s| s.seg.stable_hi <= stable);
        (i < self.sealed.len() && self.sealed[i].seg.stable_lo <= stable).then_some(i)
    }

    /// Re-materializes a compacted-away row back into segment `i` at its
    /// stable-order position, remapping the overlay. Rebuilds that one
    /// segment (O(segment)); the restore path only lands here when
    /// compaction physically dropped the row first.
    fn reinsert_into_segment(&mut self, i: usize, stable: u32, syms: &[u32]) {
        let state = &self.sealed[i];
        let old = &state.seg;
        let rows = old.rows as usize;
        // Locals are stable-ascending: binary-search the insert slot.
        let mut lo = 0usize;
        let mut hi = rows;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if old.stable_of_local(crate::ids::dense_id(mid, "segment rows")) < stable {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let p = lo;
        let columns: Vec<Vec<u32>> = old
            .columns
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let mut nc = Vec::with_capacity(rows + 1);
                nc.extend_from_slice(&c[..p]);
                nc.push(syms[ci]);
                nc.extend_from_slice(&c[p..]);
                nc
            })
            .collect();
        let new_rows = crate::ids::dense_id(rows + 1, "segment rows");
        let stable_ids = if new_rows == old.stable_hi - old.stable_lo {
            StableIds::Contiguous
        } else {
            let mut ids = Vec::with_capacity(rows + 1);
            for l in 0..old.rows {
                if (l as usize) == p {
                    ids.push(stable);
                }
                ids.push(old.stable_of_local(l));
            }
            if p == rows {
                ids.push(stable);
            }
            StableIds::Explicit(ids.into_boxed_slice())
        };
        let tombs: Vec<u32> = state
            .tombs
            .iter()
            .map(|&t| if (t as usize) >= p { t + 1 } else { t })
            .collect();
        let mut seg = Segment {
            columns,
            rows: new_rows,
            dedup: Vec::new(),
            stable_lo: old.stable_lo,
            stable_hi: old.stable_hi,
            stable: stable_ids,
            indexes: Mutex::new(Vec::new()),
        };
        seg.rebuild_dedup();
        self.sealed[i] = SegState {
            seg: Arc::new(seg),
            tombs: Arc::new(tombs),
        };
    }

    /// Physically drops tombstoned rows from every segment whose
    /// tombstone ratio reaches `tombstone_pct` percent (`0` compacts any
    /// segment with at least one tombstone). Stable ids and the dense
    /// view are unchanged; each compacted segment gets a fresh `Arc`, so
    /// clones pinning the old epoch keep the old column data alive until
    /// they drop. Returns the number of segments compacted.
    pub fn maybe_compact(&mut self, tombstone_pct: u32) -> usize {
        let mut n = 0;
        for i in 0..self.sealed.len() {
            let t = self.sealed[i].tombs.len();
            if t == 0 {
                continue;
            }
            if t * 100 >= (self.sealed[i].seg.rows as usize) * tombstone_pct as usize {
                self.compact_segment(i);
                n += 1;
            }
        }
        n
    }

    /// Compacts every segment holding at least one tombstone.
    pub fn compact_all(&mut self) -> usize {
        self.maybe_compact(0)
    }

    fn compact_segment(&mut self, i: usize) {
        let state = &self.sealed[i];
        let old = &state.seg;
        let keep: Vec<u32> = (0..old.rows)
            .filter(|&l| !is_dead(&state.tombs, l))
            .collect();
        let columns: Vec<Vec<u32>> = old
            .columns
            .iter()
            .map(|c| keep.iter().map(|&l| c[l as usize]).collect())
            .collect();
        let rows = crate::ids::dense_id(keep.len(), "segment rows");
        let stable = if rows == old.stable_hi - old.stable_lo {
            StableIds::Contiguous
        } else {
            StableIds::Explicit(keep.iter().map(|&l| old.stable_of_local(l)).collect())
        };
        let mut seg = Segment {
            columns,
            rows,
            dedup: Vec::new(),
            stable_lo: old.stable_lo,
            stable_hi: old.stable_hi,
            stable,
            indexes: Mutex::new(Vec::new()),
        };
        seg.rebuild_dedup();
        self.sealed[i] = SegState {
            seg: Arc::new(seg),
            tombs: Arc::new(Vec::new()),
        };
    }

    /// Rebuilds the cumulative dense offsets after an overlay change.
    fn refresh_starts(&mut self) {
        self.starts.clear();
        self.starts.push(0);
        let mut acc = 0usize;
        for s in &self.sealed {
            acc += s.live();
            self.starts.push(crate::ids::dense_id(acc, "tuple ids"));
        }
    }

    // ------------------------------------------------------------------
    // Coordinate translation + diagnostics.
    // ------------------------------------------------------------------

    /// The permanent stable id of the live tuple at dense index `idx`.
    pub fn stable_id_at(&self, idx: u32) -> u32 {
        match self.phys(idx) {
            (TAIL_SEG, l) => self.tail_stable_lo + l,
            (i, l) => self.sealed[i].seg.stable_of_local(l),
        }
    }

    /// The dense index of the tuple with stable id `stable`, if it is
    /// alive in this epoch.
    pub fn dense_of_stable(&self, stable: u32) -> Option<u32> {
        if stable >= self.tail_stable_lo {
            let local = stable - self.tail_stable_lo;
            (local < self.rows && !is_dead(&self.tail_tombs, local)).then(|| self.tail_dense(local))
        } else {
            let i = self.seg_of_stable(stable)?;
            let local = self.sealed[i].seg.local_of_stable(stable)?;
            (!is_dead(&self.sealed[i].tombs, local)).then(|| self.seg_dense(i, local))
        }
    }

    /// True once [`seal`](Self::seal) has produced at least one segment.
    pub fn is_segmented(&self) -> bool {
        !self.sealed.is_empty()
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.sealed.len()
    }

    /// Total tombstones across all overlays (segments + tail).
    pub fn tombstone_count(&self) -> usize {
        self.sealed.iter().map(|s| s.tombs.len()).sum::<usize>() + self.tail_tombs.len()
    }

    /// Weak handles to every sealed segment — lets liveness tests
    /// observe when dropping the last epoch that references a segment
    /// actually releases its memory.
    pub fn segment_handles(&self) -> Vec<Weak<Segment>> {
        self.sealed.iter().map(|s| Arc::downgrade(&s.seg)).collect()
    }

    /// The dense index range of the mutable tail (rows inserted after
    /// the last seal).
    pub fn tail_dense_range(&self) -> std::ops::Range<u32> {
        self.sealed_live()..self.live_u32()
    }

    /// Probe handles for every segment under the join-index key
    /// `bound_pos`, building and caching any missing per-segment
    /// indexes (in parallel on `pool` when given). Cached indexes live
    /// on the shared segments, so every epoch containing a segment
    /// reuses one build.
    pub(crate) fn segment_probes(
        &self,
        bound_pos: &[u32],
        pool: Option<&adp_runtime::ThreadPool>,
    ) -> Vec<SegProbe> {
        if let Some(p) = pool {
            let missing: Vec<usize> = (0..self.sealed.len())
                .filter(|&i| self.sealed[i].seg.cached_index(bound_pos).is_none())
                .collect();
            if p.threads() > 1 && missing.len() > 1 {
                let built = p.par_indexed(missing.len(), |k| {
                    self.sealed[missing[k]]
                        .seg
                        .build_index(bound_pos, &self.interner)
                });
                for (&i, idx) in missing.iter().zip(built) {
                    self.sealed[i].seg.store_index(bound_pos, idx);
                }
            }
        }
        let mut probes = Vec::with_capacity(self.sealed.len());
        for (i, s) in self.sealed.iter().enumerate() {
            let index = match s.seg.cached_index(bound_pos) {
                Some(a) => a,
                None => s
                    .seg
                    .store_index(bound_pos, s.seg.build_index(bound_pos, &self.interner)),
            };
            probes.push(SegProbe {
                index,
                tombs: Arc::clone(&s.tombs),
                start: self.starts[i],
            });
        }
        probes
    }

    /// Is stored tail row `row` exactly the symbol sequence `syms`?
    #[inline]
    fn row_eq_tail(&self, row: u32, syms: &[u32]) -> bool {
        self.columns
            .iter()
            .zip(syms)
            .all(|(c, &s)| c[row as usize] == s)
    }

    /// Appends a (known-fresh) symbol row to the tail and registers it
    /// in the dedup table. `h` is `hash_syms(syms)`. Fails with
    /// [`AdpError::RelationFull`] when the stable tuple id space is
    /// exhausted (interned symbols stay consistent: the tuple is simply
    /// absent).
    fn append_syms(&mut self, syms: &[u32], h: u64) -> Result<u32, AdpError> {
        let stable = checked_next_id(
            self.tail_stable_lo as usize + self.rows as usize,
            self.schema.name(),
            "tuple ids",
        )?;
        let local = stable - self.tail_stable_lo;
        for (c, &s) in self.columns.iter_mut().zip(syms) {
            c.push(s);
        }
        self.rows += 1;
        if (self.rows as usize) * LOAD_DEN >= self.dedup.len() * LOAD_NUM {
            let cap = ((self.rows as usize) * 2).next_power_of_two().max(16);
            self.rebuild_dedup(cap);
        } else {
            place(&mut self.dedup, h, local);
        }
        Ok(self.tail_dense(local))
    }

    /// Rebuilds the tail dedup table at `capacity` (a power of two) from
    /// the columns. Every stored row re-hashes to exactly one slot.
    fn rebuild_dedup(&mut self, capacity: usize) {
        let capacity = capacity.next_power_of_two().max(16);
        let mut slots = vec![EMPTY; capacity];
        let mut syms = Vec::with_capacity(self.columns.len());
        for row in 0..self.rows {
            syms.clear();
            syms.extend(self.columns.iter().map(|c| c[row as usize]));
            place(&mut slots, hash_syms(&syms), row);
        }
        self.dedup = slots;
    }

    /// Interns `v`, returning its relation-local symbol, or
    /// [`AdpError::RelationFull`] once the symbol space is exhausted.
    /// Copy-on-write: the first brand-new value interned after a clone
    /// copies the shared table once.
    fn intern_value(&mut self, v: Value) -> Result<u32, AdpError> {
        if let Some(s) = self.interner.get(v) {
            return Ok(s);
        }
        let s = checked_next_id(self.interner.values.len(), self.schema.name(), "symbols")?;
        let int = Arc::make_mut(&mut self.interner);
        int.values.push(v);
        int.of.insert(v, s);
        Ok(s)
    }
}

/// A zero-copy view of one stored tuple. Indexes like a slice
/// (`view[pos]` is the [`Value`] at attribute position `pos`) and
/// compares against other views, slices, and arrays by value.
#[derive(Clone, Copy)]
pub struct TupleView<'a> {
    rel: &'a RelationInstance,
    idx: u32,
}

impl<'a> TupleView<'a> {
    /// The tuple's arity.
    pub fn len(&self) -> usize {
        self.rel.schema.arity()
    }

    /// True for vacuum (arity-0) tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at position `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> Value {
        self.rel.value_at(self.idx, pos)
    }

    /// The tuple's dense index in its relation.
    pub fn index(&self) -> u32 {
        self.idx
    }

    /// Materializes the tuple.
    pub fn to_vec(&self) -> Vec<Value> {
        self.rel.tuple_vec(self.idx)
    }

    /// Iterates the tuple's values in position order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + 'a {
        let rel = self.rel;
        let idx = self.idx;
        (0..rel.schema.arity()).map(move |p| rel.value_at(idx, p))
    }
}

impl std::ops::Index<usize> for TupleView<'_> {
    type Output = Value;
    #[inline]
    fn index(&self, pos: usize) -> &Value {
        // The reference points into the interner's value table, which
        // holds exactly this tuple's value at the column's symbol.
        &self.rel.interner.values[self.rel.symbol_at(self.idx, pos) as usize]
    }
}

impl PartialEq for TupleView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for TupleView<'_> {}

impl PartialEq<[Value]> for TupleView<'_> {
    fn eq(&self, other: &[Value]) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, &b)| a == b)
    }
}

impl PartialEq<&[Value]> for TupleView<'_> {
    fn eq(&self, other: &&[Value]) -> bool {
        *self == **other
    }
}

impl<const N: usize> PartialEq<[Value; N]> for TupleView<'_> {
    fn eq(&self, other: &[Value; N]) -> bool {
        *self == other[..]
    }
}

impl<const N: usize> PartialEq<&[Value; N]> for TupleView<'_> {
    fn eq(&self, other: &&[Value; N]) -> bool {
        *self == other[..]
    }
}

impl PartialEq<Vec<Value>> for TupleView<'_> {
    fn eq(&self, other: &Vec<Value>) -> bool {
        *self == other[..]
    }
}

impl std::fmt::Debug for TupleView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attrs;

    fn rel() -> RelationInstance {
        let mut r = RelationInstance::new(RelationSchema::new("R", attrs(&["A", "B"])));
        r.insert(&[1, 10]);
        r.insert(&[2, 20]);
        r.insert(&[2, 30]);
        r
    }

    #[test]
    fn insert_dedups() {
        let mut r = rel();
        let before = r.len();
        let idx = r.insert(&[1, 10]);
        assert_eq!(idx, 0);
        assert_eq!(r.len(), before);
    }

    // A 4-billion-row instance is not constructible in a test, so the
    // overflow guard is exercised at the allocation gate both id spaces
    // share: the regression here is the PR-3 class of bug where a
    // `len() as u32` silently wrapped instead of failing typed.
    #[test]
    fn checked_next_id_guards_the_dense_space() {
        assert_eq!(checked_next_id(0, "R", "tuple ids"), Ok(0));
        assert_eq!(
            checked_next_id(u32::MAX as usize - 1, "R", "tuple ids"),
            Ok(u32::MAX - 1)
        );
        // u32::MAX is the dedup sentinel: allocating it would corrupt
        // the probe table, so the last usable id is u32::MAX - 1.
        for len in [u32::MAX as usize, u32::MAX as usize + 1, usize::MAX] {
            assert_eq!(
                checked_next_id(len, "R", "tuple ids"),
                Err(AdpError::RelationFull {
                    relation: "R".to_owned(),
                    what: "tuple ids",
                })
            );
        }
    }

    #[test]
    fn indices_matches_len() {
        let r = rel();
        let ids: Vec<u32> = r.indices().collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(
            RelationInstance::new(rel().schema().clone())
                .indices()
                .count(),
            0
        );
    }

    #[test]
    fn project_orders_by_request() {
        let r = rel();
        assert_eq!(r.project(1, &attrs(&["B", "A"])), vec![20, 2]);
    }

    #[test]
    fn filter_by_index_keeps_backmap() {
        let r = rel();
        let (f, back) = r.filter_by_index(|i| i != 1);
        assert_eq!(f.len(), 2);
        assert_eq!(back, vec![0, 2]);
        assert_eq!(f.tuple(1), &[2, 30]);
    }

    #[test]
    fn project_away_merges() {
        let r = rel();
        let (p, fwd) = r.project_away(&attrs(&["B"]));
        assert_eq!(p.schema().attrs(), &attrs(&["A"])[..]);
        assert_eq!(p.len(), 2); // values 1 and 2
        assert_eq!(fwd, vec![0, 1, 1]);
    }

    #[test]
    fn vacuum_relation_roundtrip() {
        let mut v = RelationInstance::new(RelationSchema::new("V", vec![]));
        assert!(v.is_empty());
        v.insert(&[]);
        assert_eq!(v.len(), 1);
        v.insert(&[]);
        assert_eq!(v.len(), 1, "vacuum instance is {{()}} at most");
        assert!(v.contains(&[]));
        assert_eq!(v.index_of(&[]), Some(0));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        rel().insert(&[1]);
    }

    #[test]
    fn tuple_view_reads_like_a_slice() {
        let r = rel();
        let t = r.tuple(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], 2);
        assert_eq!(t[1], 30);
        assert_eq!(t.to_vec(), vec![2, 30]);
        assert_eq!(t, [2u64, 30]);
        assert_eq!(t, &[2u64, 30]);
        assert_eq!(format!("{t:?}"), "[2, 30]");
        assert_eq!(r.tuple(1), r.tuple(1));
        assert_ne!(r.tuple(1), r.tuple(2));
    }

    #[test]
    fn index_of_and_contains_probe_columns() {
        let r = rel();
        assert_eq!(r.index_of(&[2, 20]), Some(1));
        assert_eq!(r.index_of(&[2, 99]), None, "unseen value short-circuits");
        assert_eq!(r.index_of(&[20, 2]), None, "position matters");
        assert!(r.contains(&[1, 10]));
        assert!(!r.contains(&[1, 10, 0]), "arity mismatch is just absent");
    }

    #[test]
    fn interner_is_shared_across_columns() {
        let mut r = RelationInstance::new(RelationSchema::new("R", attrs(&["A", "B"])));
        r.insert(&[7, 7]);
        r.insert(&[7, 8]);
        // 7 and 8: two distinct values, regardless of column.
        assert_eq!(r.symbol_count(), 2);
        assert_eq!(r.symbol_at(0, 0), r.symbol_at(0, 1));
        assert_eq!(r.symbol_at(0, 0), r.symbol_at(1, 0));
    }

    /// Regression (tuple-memory double-store): the old row store kept a
    /// `Box<[Value]>` in its tuple vector *and* a clone of it as the
    /// dedup `HashMap` key — ≥ 2 heap copies (≥ 64 bytes) per arity-2
    /// tuple before map overhead. The columnar store keeps one `u32`
    /// symbol per attribute plus a keyless id-only dedup slot: the size
    /// accounting must stay near 8 bytes of column data per arity-2
    /// tuple, bounded well under one boxed copy.
    #[test]
    fn one_stored_copy_per_tuple() {
        let mut r = RelationInstance::new(RelationSchema::new("R", attrs(&["A", "B"])));
        let n = 10_000u64;
        for i in 0..n {
            r.insert(&[i % 64, i]); // column A: 64 symbols; column B: n symbols
        }
        assert_eq!(r.len(), n as usize);
        let per_tuple = r.approx_bytes() as f64 / n as f64;
        // columns: 8 B; dedup: ≤ 32768 slots × 4 B / 10k ≈ 13 B;
        // interner: ~10k distinct values ≈ 24 B of map + 8 B of table.
        // A second stored copy (the old design) would add ≥ 32 B on top.
        assert!(
            per_tuple < 64.0,
            "expected ~one stored copy per tuple, measured {per_tuple:.1} B/tuple"
        );
        // The dominant term must be the columns, not tuple copies: with
        // capacity slack the columns alone are ≤ 16 B/tuple.
        let columns_only = 2.0 * 4.0;
        assert!(
            per_tuple < columns_only * 8.0,
            "storage is not column-dominated: {per_tuple:.1} B/tuple"
        );
    }

    /// The dedup table keeps probing correctly across growth rehashes.
    #[test]
    fn dedup_survives_growth() {
        let mut r = RelationInstance::new(RelationSchema::new("R", attrs(&["A"])));
        for i in 0..1000u64 {
            assert_eq!(r.insert(&[i]), i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(r.insert(&[i]), i as u32, "duplicate must find original");
        }
        assert_eq!(r.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(r.index_of(&[i]), Some(i as u32));
        }
    }

    #[test]
    fn reserve_preserves_contents() {
        let mut r = rel();
        r.reserve(100_000);
        assert_eq!(r.len(), 3);
        assert_eq!(r.insert(&[2, 20]), 1, "dedup intact after reserve");
        assert_eq!(r.insert(&[5, 50]), 3);
    }

    #[test]
    fn iter_and_to_rows_are_index_ordered() {
        let r = rel();
        let rows: Vec<Vec<Value>> = r.iter().map(|t| t.to_vec()).collect();
        assert_eq!(rows, vec![vec![1, 10], vec![2, 20], vec![2, 30]]);
        assert_eq!(r.to_rows(), rows);
    }

    // ------------------------------------------------------------------
    // Segment / overlay / seal mechanics.
    // ------------------------------------------------------------------

    #[test]
    fn select_alive_ranks_around_tombstones() {
        assert_eq!(select_alive(&[], 5), 5);
        assert_eq!(select_alive(&[0], 0), 1);
        assert_eq!(select_alive(&[2], 2), 3);
        assert_eq!(select_alive(&[0, 1, 2], 0), 3);
        // alive locals of rows 0..6 with tombs {1, 4}: 0, 2, 3, 5.
        for (rank, local) in [(0u32, 0u32), (1, 2), (2, 3), (3, 5)] {
            assert_eq!(select_alive(&[1, 4], rank), local);
        }
    }

    #[test]
    fn seal_preserves_the_dense_view() {
        let mut r = rel();
        let rows = r.to_rows();
        r.seal(2);
        assert!(r.is_segmented());
        assert_eq!(r.segment_count(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.to_rows(), rows);
        assert_eq!(r.index_of(&[2, 20]), Some(1));
        // Dedup reaches into segments: a duplicate is found, a fresh
        // tuple lands in the tail with the next dense (and stable) id.
        assert_eq!(r.insert(&[1, 10]), 0);
        assert_eq!(r.insert(&[5, 50]), 3);
        assert_eq!(r.tail_dense_range(), 3..4);
        assert_eq!(r.stable_id_at(3), 3);
    }

    #[test]
    fn delete_and_restore_by_stable_id() {
        let mut r = rel();
        r.seal(2);
        assert!(r.delete_stable(1));
        assert!(!r.delete_stable(1), "already tombstoned");
        assert_eq!(r.len(), 2);
        assert_eq!(r.to_rows(), vec![vec![1, 10], vec![2, 30]]);
        // Dense/stable translation skips the tombstone.
        assert_eq!(r.stable_id_at(1), 2);
        assert_eq!(r.dense_of_stable(2), Some(1));
        assert_eq!(r.dense_of_stable(1), None);
        assert!(!r.contains(&[2, 20]));
        assert!(r.restore_stable(1, &[2, 20]));
        assert!(!r.restore_stable(1, &[2, 20]), "already alive");
        assert_eq!(r.to_rows(), rel().to_rows());
    }

    #[test]
    fn inserting_a_tombstoned_tuple_revives_it() {
        let mut r = rel();
        r.seal(10);
        assert!(r.delete_stable(1));
        assert_eq!(r.len(), 2);
        // Set semantics: insert == un-delete, same dense position.
        assert_eq!(r.insert(&[2, 20]), 1);
        assert_eq!(r.len(), 3);
        assert_eq!(r.to_rows(), rel().to_rows());
        // Same for tail rows.
        r.insert(&[9, 90]);
        assert!(r.delete_stable(3));
        assert_eq!(r.len(), 3);
        assert_eq!(r.insert(&[9, 90]), 3);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn compaction_preserves_view_and_frees_old_segments() {
        let mut r = rel();
        r.seal(2);
        let old = r.clone(); // a reader pinning the pre-compaction epoch
        assert!(r.delete_stable(0));
        let handles = r.segment_handles();
        assert_eq!(r.compact_all(), 1);
        assert_eq!(r.to_rows(), vec![vec![2, 20], vec![2, 30]]);
        assert_eq!(r.tombstone_count(), 0);
        // The pinned clone still sees the original data via the old Arc.
        assert_eq!(old.to_rows(), rel().to_rows());
        assert!(handles[0].upgrade().is_some(), "old epoch pins segment 0");
        drop(old);
        assert!(
            handles[0].upgrade().is_none(),
            "last reader gone ⇒ segment memory released"
        );
        assert!(handles[1].upgrade().is_some(), "untouched segment shared");
    }

    #[test]
    fn restore_after_compaction_rematerializes_in_stable_order() {
        let mut r = rel();
        r.insert(&[4, 40]);
        r.seal(4);
        assert!(r.delete_stable(1));
        assert!(r.delete_stable(2));
        assert_eq!(r.compact_all(), 1);
        assert_eq!(r.dense_of_stable(1), None);
        // Physically gone — restore must rebuild the row mid-segment.
        assert!(r.restore_stable(1, &[2, 20]));
        assert_eq!(r.to_rows(), vec![vec![1, 10], vec![2, 20], vec![4, 40]]);
        assert!(r.restore_stable(2, &[2, 30]));
        assert_eq!(
            r.to_rows(),
            vec![vec![1, 10], vec![2, 20], vec![2, 30], vec![4, 40]]
        );
        assert_eq!(r.stable_id_at(2), 2);
        assert_eq!(r.index_of(&[2, 30]), Some(2));
    }

    #[test]
    fn clone_shares_segments_and_diverges_overlays() {
        let mut a = rel();
        a.seal(10);
        let mut b = a.clone();
        assert!(b.delete_stable(0));
        assert_eq!(a.len(), 3, "sibling epoch untouched");
        assert_eq!(b.len(), 2);
        assert!(a.delete_stable(2));
        assert_eq!(a.to_rows(), vec![vec![1, 10], vec![2, 20]]);
        assert_eq!(b.to_rows(), vec![vec![2, 20], vec![2, 30]]);
        // One shared physical segment underneath both.
        assert_eq!(
            a.segment_handles()[0].as_ptr(),
            b.segment_handles()[0].as_ptr()
        );
    }

    #[test]
    fn segment_probes_apply_overlays_and_rank_shifts() {
        let mut r = rel();
        r.seal(2);
        let probes = r.segment_probes(&[0], None);
        assert_eq!(probes.len(), 2);
        let mut out = Vec::new();
        for p in &probes {
            p.extend_matches(&[2], &mut out);
        }
        assert_eq!(out, vec![1, 2], "dense ids, ascending across segments");
        assert!(probes[0].entry_count() > 0);
        // Tombstone the first [2, _] row: the probe must skip it and
        // rank-shift the second one down.
        assert!(r.delete_stable(1));
        let probes = r.segment_probes(&[0], None);
        out.clear();
        for p in &probes {
            p.extend_matches(&[2], &mut out);
        }
        assert_eq!(out, vec![1]);
        // The underlying segment index was reused, not rebuilt: the two
        // epochs' probes share the same Arc.
        let again = r.segment_probes(&[0], None);
        assert!(Arc::ptr_eq(&probes[0].index, &again[0].index));
    }

    #[test]
    fn sealed_view_matches_rebuilt_oracle_after_mutation_storm() {
        // Interleave seals, deletes, restores, compactions, and inserts;
        // after every step the dense view must equal a from-scratch
        // store holding the live tuples in insertion order.
        let schema = RelationSchema::new("R", attrs(&["A", "B"]));
        let mut r = RelationInstance::new(schema.clone());
        let mut oracle: Vec<Option<Vec<Value>>> = Vec::new(); // stable → live tuple
        for i in 0..40u64 {
            r.insert(&[i % 7, i]);
            oracle.push(Some(vec![i % 7, i]));
        }
        let check = |r: &RelationInstance, oracle: &[Option<Vec<Value>>]| {
            let want: Vec<Vec<Value>> = oracle.iter().flatten().cloned().collect();
            assert_eq!(r.to_rows(), want);
            let mut rebuilt = RelationInstance::new(schema.clone());
            for t in &want {
                rebuilt.insert(t);
            }
            for i in rebuilt.indices() {
                assert_eq!(r.tuple(i), rebuilt.tuple(i));
            }
        };
        r.seal(8);
        check(&r, &oracle);
        for s in [3u32, 9, 17, 23, 31, 38] {
            assert!(r.delete_stable(s));
            oracle[s as usize] = None;
        }
        check(&r, &oracle);
        r.maybe_compact(10);
        check(&r, &oracle);
        for s in [9u32, 31] {
            let vals = vec![u64::from(s) % 7, u64::from(s)];
            assert!(r.restore_stable(s, &vals));
            oracle[s as usize] = Some(vals);
        }
        check(&r, &oracle);
        for i in 40..50u64 {
            r.insert(&[i % 7, i]);
            oracle.push(Some(vec![i % 7, i]));
        }
        check(&r, &oracle);
        r.seal(8);
        check(&r, &oracle);
        for s in [0u32, 44, 49] {
            assert!(r.delete_stable(s));
            oracle[s as usize] = None;
        }
        r.compact_all();
        check(&r, &oracle);
    }
}
