//! Relation instances: a schema plus a tuple store.

use crate::error::AdpError;
use crate::schema::{Attr, RelationSchema};
use crate::value::Value;
use std::collections::HashMap;

/// A stored tuple. Arity always matches the owning relation's schema.
pub type Tuple = Box<[Value]>;

/// A relation instance: schema + tuples.
///
/// Tuples are deduplicated on insert (set semantics, as in the paper).
/// Tuple *indices* are stable: deletions used by the solvers are expressed
/// as "alive" masks layered on top (see [`crate::provenance`]), so an index
/// handed out once always refers to the same tuple.
#[derive(Clone, Debug)]
pub struct RelationInstance {
    schema: RelationSchema,
    tuples: Vec<Tuple>,
    dedup: HashMap<Tuple, u32>,
}

impl RelationInstance {
    /// Creates an empty instance of `schema`.
    pub fn new(schema: RelationSchema) -> Self {
        RelationInstance {
            schema,
            tuples: Vec::new(),
            dedup: HashMap::new(),
        }
    }

    /// The instance's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Relation name (shorthand for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Inserts a tuple, returning its index. Duplicate inserts return the
    /// existing index. Panics if the arity does not match the schema; use
    /// [`try_insert`](Self::try_insert) for a typed error instead.
    pub fn insert(&mut self, tuple: &[Value]) -> u32 {
        self.try_insert(tuple).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`insert`](Self::insert) with a typed error: rejects tuples whose
    /// length disagrees with the schema's arity as
    /// [`AdpError::ArityMismatch`] instead of panicking.
    pub fn try_insert(&mut self, tuple: &[Value]) -> Result<u32, AdpError> {
        if tuple.len() != self.schema.arity() {
            return Err(AdpError::ArityMismatch {
                relation: self.schema.name().to_owned(),
                expected: self.schema.arity(),
                got: tuple.len(),
            });
        }
        if let Some(&idx) = self.dedup.get(tuple) {
            return Ok(idx);
        }
        let idx = self.tuples.len() as u32;
        let boxed: Tuple = tuple.into();
        self.tuples.push(boxed.clone());
        self.dedup.insert(boxed, idx);
        Ok(idx)
    }

    /// Bulk insert.
    pub fn extend<I: IntoIterator<Item = Vec<Value>>>(&mut self, iter: I) {
        for t in iter {
            self.insert(&t);
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the instance holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple at `idx`.
    pub fn tuple(&self, idx: u32) -> &[Value] {
        &self.tuples[idx as usize]
    }

    /// All tuples, in index order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Does the instance contain exactly this tuple?
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.dedup.contains_key(tuple)
    }

    /// Index of `tuple` if present.
    pub fn index_of(&self, tuple: &[Value]) -> Option<u32> {
        self.dedup.get(tuple).copied()
    }

    /// Projects tuple `idx` onto the attributes `on` (which must all be in
    /// the schema), in the order given.
    pub fn project(&self, idx: u32, on: &[Attr]) -> Vec<Value> {
        let t = self.tuple(idx);
        on.iter()
            .map(|a| {
                let p = self
                    .schema
                    .position(a)
                    .unwrap_or_else(|| panic!("attribute {a} not in {}", self.schema));
                t[p]
            })
            .collect()
    }

    /// A new instance keeping only the tuples whose index passes `keep`.
    /// The surviving tuples get fresh dense indices; the returned map sends
    /// new index → old index.
    pub fn filter_by_index<F: Fn(u32) -> bool>(&self, keep: F) -> (RelationInstance, Vec<u32>) {
        let mut out = RelationInstance::new(self.schema.clone());
        let mut back = Vec::new();
        for idx in 0..self.tuples.len() as u32 {
            if keep(idx) {
                out.insert(self.tuple(idx));
                back.push(idx);
            }
        }
        (out, back)
    }

    /// A new instance with the attributes in `remove` projected away.
    /// Projection can merge tuples; the returned map sends old index → new
    /// index.
    pub fn project_away(&self, remove: &[Attr]) -> (RelationInstance, Vec<u32>) {
        let schema = self.schema.without_attrs(remove);
        let keep_attrs: Vec<Attr> = schema.attrs().to_vec();
        let mut out = RelationInstance::new(schema);
        let mut fwd = Vec::with_capacity(self.tuples.len());
        for idx in 0..self.tuples.len() as u32 {
            let proj = self.project(idx, &keep_attrs);
            fwd.push(out.insert(&proj));
        }
        (out, fwd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attrs;

    fn rel() -> RelationInstance {
        let mut r = RelationInstance::new(RelationSchema::new("R", attrs(&["A", "B"])));
        r.insert(&[1, 10]);
        r.insert(&[2, 20]);
        r.insert(&[2, 30]);
        r
    }

    #[test]
    fn insert_dedups() {
        let mut r = rel();
        let before = r.len();
        let idx = r.insert(&[1, 10]);
        assert_eq!(idx, 0);
        assert_eq!(r.len(), before);
    }

    #[test]
    fn project_orders_by_request() {
        let r = rel();
        assert_eq!(r.project(1, &attrs(&["B", "A"])), vec![20, 2]);
    }

    #[test]
    fn filter_by_index_keeps_backmap() {
        let r = rel();
        let (f, back) = r.filter_by_index(|i| i != 1);
        assert_eq!(f.len(), 2);
        assert_eq!(back, vec![0, 2]);
        assert_eq!(f.tuple(1), &[2, 30]);
    }

    #[test]
    fn project_away_merges() {
        let r = rel();
        let (p, fwd) = r.project_away(&attrs(&["B"]));
        assert_eq!(p.schema().attrs(), &attrs(&["A"])[..]);
        assert_eq!(p.len(), 2); // values 1 and 2
        assert_eq!(fwd, vec![0, 1, 1]);
    }

    #[test]
    fn vacuum_relation_roundtrip() {
        let mut v = RelationInstance::new(RelationSchema::new("V", vec![]));
        assert!(v.is_empty());
        v.insert(&[]);
        assert_eq!(v.len(), 1);
        v.insert(&[]);
        assert_eq!(v.len(), 1, "vacuum instance is {{()}} at most");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        rel().insert(&[1]);
    }
}
