//! Attributes and relation schemas.
//!
//! Attributes are cheap-to-clone interned strings ([`Attr`]); a
//! [`RelationSchema`] is a named, ordered list of distinct attributes.
//! Natural-join semantics (shared attribute names join) are defined on top
//! of these in [`crate::join`].

use std::fmt;
use std::sync::Arc;

/// An attribute (column) name. Clones are reference-counted and cheap, so
/// attributes can be freely copied between queries, schemas and analyses.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Attr(Arc<str>);

impl Attr {
    /// Creates an attribute from a name.
    pub fn new(name: &str) -> Self {
        Attr(Arc::from(name))
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Attr {
    fn from(s: &str) -> Self {
        Attr::new(s)
    }
}

/// Convenience constructor: `attr("A")`.
pub fn attr(name: &str) -> Attr {
    Attr::new(name)
}

/// Convenience constructor for a list of attributes.
pub fn attrs(names: &[&str]) -> Vec<Attr> {
    names.iter().map(|n| Attr::new(n)).collect()
}

/// A relation schema: a name plus an ordered list of distinct attributes.
///
/// A schema with no attributes is *vacuum* (paper §3.1): its instance is
/// either `{()}` ("true") or `{}` ("false").
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RelationSchema {
    name: Arc<str>,
    attrs: Vec<Attr>,
}

impl RelationSchema {
    /// Creates a schema. Panics if attribute names repeat — the paper's
    /// queries never repeat an attribute within one atom.
    pub fn new(name: &str, attrs: Vec<Attr>) -> Self {
        for (i, a) in attrs.iter().enumerate() {
            assert!(
                !attrs[..i].contains(a),
                "duplicate attribute {a} in relation {name}"
            );
        }
        RelationSchema {
            name: Arc::from(name),
            attrs,
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's attributes, in declaration order.
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes (paper §3.1).
    pub fn is_vacuum(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Position of `a` within this schema, if present.
    pub fn position(&self, a: &Attr) -> Option<usize> {
        self.attrs.iter().position(|x| x == a)
    }

    /// True if this schema contains attribute `a`.
    pub fn contains(&self, a: &Attr) -> bool {
        self.position(a).is_some()
    }

    /// A copy of this schema with every attribute in `remove` dropped
    /// (used for residual queries `Q^{-A}` and head joins).
    pub fn without_attrs(&self, remove: &[Attr]) -> RelationSchema {
        RelationSchema {
            name: self.name.clone(),
            attrs: self
                .attrs
                .iter()
                .filter(|a| !remove.contains(a))
                .cloned()
                .collect(),
        }
    }
}

impl fmt::Debug for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_equality_is_by_name() {
        assert_eq!(attr("A"), attr("A"));
        assert_ne!(attr("A"), attr("B"));
    }

    #[test]
    fn schema_basics() {
        let s = RelationSchema::new("R", attrs(&["A", "B"]));
        assert_eq!(s.name(), "R");
        assert_eq!(s.arity(), 2);
        assert!(!s.is_vacuum());
        assert_eq!(s.position(&attr("B")), Some(1));
        assert!(s.contains(&attr("A")));
        assert!(!s.contains(&attr("C")));
    }

    #[test]
    fn vacuum_schema() {
        let s = RelationSchema::new("V", vec![]);
        assert!(s.is_vacuum());
        assert_eq!(s.arity(), 0);
    }

    #[test]
    fn without_attrs_projects_schema() {
        let s = RelationSchema::new("R", attrs(&["A", "B", "C"]));
        let t = s.without_attrs(&attrs(&["B"]));
        assert_eq!(t.attrs(), &attrs(&["A", "C"])[..]);
        assert_eq!(t.name(), "R");
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attrs_rejected() {
        RelationSchema::new("R", attrs(&["A", "A"]));
    }

    #[test]
    fn display_formats() {
        let s = RelationSchema::new("R", attrs(&["A", "B"]));
        assert_eq!(format!("{s}"), "R(A,B)");
    }
}
