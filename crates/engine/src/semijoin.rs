//! GYO ear decomposition and dangling-tuple removal.
//!
//! A tuple is *dangling* if it participates in no full-join result (paper
//! §7.2, footnote 2). The boolean resilience solver and `Singleton`'s case
//! 2 both require the non-dangling reduction of the instance.
//!
//! For **acyclic** queries we build a join tree via the classic GYO ear
//! decomposition and run a Yannakakis full reducer (two semijoin passes),
//! which removes all dangling tuples in time linear in the data. For
//! cyclic queries we fall back to enumerating witnesses and keeping the
//! participating tuples.

use crate::database::Database;
use crate::join::evaluate;
use crate::provenance::ProvenanceIndex;
use crate::relation::RelationInstance;
use crate::schema::{Attr, RelationSchema};
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// A join tree over query atoms: `parent[i]` is the parent atom of atom
/// `i` (`None` for the root). Produced by GYO when the query is acyclic.
#[derive(Clone, Debug)]
pub struct JoinTree {
    /// Parent per atom; exactly one `None` entry (the root).
    pub parent: Vec<Option<usize>>,
    /// Elimination order: ears in the order GYO removed them (leaves
    /// first). The root is last.
    pub order: Vec<usize>,
}

/// Attempts a GYO ear decomposition. Returns `None` if the query
/// (hyper)graph is cyclic.
pub fn gyo_join_tree(atoms: &[RelationSchema]) -> Option<JoinTree> {
    let n = atoms.len();
    if n == 0 {
        return None;
    }
    let mut alive: Vec<bool> = vec![true; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut removed = 0;

    while removed + 1 < n {
        // Find an ear: an alive atom i whose attributes shared with other
        // alive atoms are all contained in a single other alive atom j.
        let mut found = None;
        'outer: for i in 0..n {
            if !alive[i] {
                continue;
            }
            // attributes of i shared with any other alive atom
            let shared: Vec<&Attr> = atoms[i]
                .attrs()
                .iter()
                .filter(|a| (0..n).any(|j| j != i && alive[j] && atoms[j].contains(a)))
                .collect();
            for j in 0..n {
                if j == i || !alive[j] {
                    continue;
                }
                if shared.iter().all(|a| atoms[j].contains(a)) {
                    found = Some((i, j));
                    break 'outer;
                }
            }
        }
        match found {
            Some((ear, witness)) => {
                alive[ear] = false;
                parent[ear] = Some(witness);
                order.push(ear);
                removed += 1;
            }
            None => return None, // cyclic
        }
    }
    // adp-lint: allow(panic-path) -- GYO removes exactly n-1 ears from
    // n atoms, so one alive atom always remains.
    let root = (0..n).find(|&i| alive[i]).expect("one atom remains");
    order.push(root);
    Some(JoinTree { parent, order })
}

/// True if the query is (GYO-)acyclic.
pub fn is_acyclic(atoms: &[RelationSchema]) -> bool {
    gyo_join_tree(atoms).is_some()
}

/// Result of dangling-tuple removal: the reduced database plus, per atom,
/// a map *new tuple index → original tuple index*.
#[derive(Clone, Debug)]
pub struct Reduced {
    /// The reduced database (same relation names, subsets of the tuples).
    pub db: Database,
    /// `backmap[atom][new_idx] = old_idx` in the original database.
    pub backmap: Vec<Vec<u32>>,
}

/// Removes all dangling tuples. Uses the Yannakakis full reducer when the
/// query is acyclic, otherwise the witness-based fallback.
pub fn remove_dangling(db: &Database, atoms: &[RelationSchema]) -> Reduced {
    match gyo_join_tree(atoms) {
        Some(tree) => full_reduce(db, atoms, &tree),
        None => reduce_by_witnesses(db, atoms),
    }
}

/// Yannakakis full reducer over a join tree: a leaf-to-root semijoin pass
/// followed by a root-to-leaf pass. On an acyclic query this leaves
/// exactly the non-dangling tuples.
pub fn full_reduce(db: &Database, atoms: &[RelationSchema], tree: &JoinTree) -> Reduced {
    let n = atoms.len();
    // keep[a] = set of surviving ORIGINAL tuple indices for atom a.
    let mut keep: Vec<HashSet<u32>> = (0..n)
        // adp-lint: allow(panic-path) -- documented panicking lookup; the
        // reducer runs on atoms already validated against the database.
        .map(|a| db.expect(atoms[a].name()).indices().collect())
        .collect();

    // If any relation is empty, everything dangles.
    // adp-lint: allow(panic-path) -- same validated-atoms contract.
    if atoms.iter().any(|a| db.expect(a.name()).is_empty()) {
        for k in keep.iter_mut() {
            k.clear();
        }
        return materialize(db, atoms, &keep);
    }

    // Pass 1 (leaf → root): parent ⋉ child, in elimination order.
    for &child in &tree.order {
        if let Some(parent) = tree.parent[child] {
            semijoin(db, atoms, &mut keep, parent, child);
        }
    }
    // Pass 2 (root → leaf): child ⋉ parent, in reverse elimination order.
    for &child in tree.order.iter().rev() {
        if let Some(parent) = tree.parent[child] {
            semijoin(db, atoms, &mut keep, child, parent);
        }
    }
    // If anything became empty, the join is empty: everything dangles.
    if keep.iter().any(|k| k.is_empty()) {
        for k in keep.iter_mut() {
            k.clear();
        }
    }
    materialize(db, atoms, &keep)
}

/// `keep[target] ⋉ keep[source]`: drop target tuples whose projection on
/// the shared attributes matches no surviving source tuple.
fn semijoin(
    db: &Database,
    atoms: &[RelationSchema],
    keep: &mut [HashSet<u32>],
    target: usize,
    source: usize,
) {
    let shared: Vec<Attr> = atoms[target]
        .attrs()
        .iter()
        .filter(|a| atoms[source].contains(a))
        .cloned()
        .collect();
    // adp-lint: allow(panic-path) -- same validated-atoms contract.
    let src_rel = db.expect(atoms[source].name());
    let mut src_keys: HashSet<Vec<Value>> = HashSet::new();
    // adp-lint: allow(unordered-iter) -- builds a set; membership is
    // visit-order-independent.
    for &idx in keep[source].iter() {
        src_keys.insert(src_rel.project(idx, &shared));
    }
    // adp-lint: allow(panic-path) -- same validated-atoms contract.
    let tgt_rel = db.expect(atoms[target].name());
    keep[target].retain(|&idx| src_keys.contains(&tgt_rel.project(idx, &shared)));
}

/// Witness-based reduction for cyclic queries: evaluate the full join and
/// keep the participating tuples.
pub fn reduce_by_witnesses(db: &Database, atoms: &[RelationSchema]) -> Reduced {
    let result = evaluate(db, atoms, &[]);
    let prov = ProvenanceIndex::new(&result);
    let parts = prov.participating_tuples();
    let keep: Vec<HashSet<u32>> = parts.into_iter().map(|v| v.into_iter().collect()).collect();
    materialize(db, atoms, &keep)
}

fn materialize(db: &Database, atoms: &[RelationSchema], keep: &[HashSet<u32>]) -> Reduced {
    let mut out = Database::new();
    let mut backmap = Vec::with_capacity(atoms.len());
    for (a, schema) in atoms.iter().enumerate() {
        // adp-lint: allow(panic-path) -- same validated-atoms contract.
        let rel = db.expect(schema.name());
        // adp-lint: allow(unordered-iter) -- collected then immediately
        // sorted; hash order never escapes.
        let mut sorted: Vec<u32> = keep[a].iter().copied().collect();
        sorted.sort_unstable();
        let mut inst = RelationInstance::new(rel.schema().clone());
        for &idx in &sorted {
            inst.insert(&rel.tuple_vec(idx));
        }
        out.add(inst);
        backmap.push(sorted);
    }
    Reduced { db: out, backmap }
}

/// Checks pairwise-consistency bookkeeping used by tests: every remaining
/// tuple participates in at least one witness.
pub fn is_fully_reduced(db: &Database, atoms: &[RelationSchema]) -> bool {
    let result = evaluate(db, atoms, &[]);
    let prov = ProvenanceIndex::new(&result);
    let parts = prov.participating_tuples();
    atoms
        .iter()
        .enumerate()
        // adp-lint: allow(panic-path) -- same validated-atoms contract.
        .all(|(a, s)| parts[a].len() == db.expect(s.name()).len())
}

/// Shared-attribute helper used by analyses: attributes of `a` also
/// appearing in `b`.
pub fn shared_attrs(a: &RelationSchema, b: &RelationSchema) -> Vec<Attr> {
    a.attrs()
        .iter()
        .filter(|x| b.contains(x))
        .cloned()
        .collect()
}

/// Groups tuples of `rel` by their projection onto `on`.
pub fn group_by_projection(
    rel: &RelationInstance,
    on: &[Attr],
    indices: &[u32],
) -> HashMap<Vec<Value>, Vec<u32>> {
    let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
    for &idx in indices {
        map.entry(rel.project(idx, on)).or_default().push(idx);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::attrs;

    fn chain_atoms() -> Vec<RelationSchema> {
        vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "E"])),
        ]
    }

    fn triangle_atoms() -> Vec<RelationSchema> {
        vec![
            RelationSchema::new("R1", attrs(&["A", "B"])),
            RelationSchema::new("R2", attrs(&["B", "C"])),
            RelationSchema::new("R3", attrs(&["C", "A"])),
        ]
    }

    #[test]
    fn chain_is_acyclic_triangle_is_not() {
        assert!(is_acyclic(&chain_atoms()));
        assert!(!is_acyclic(&triangle_atoms()));
    }

    #[test]
    fn join_tree_shape_for_chain() {
        let t = gyo_join_tree(&chain_atoms()).unwrap();
        assert_eq!(t.parent.iter().filter(|p| p.is_none()).count(), 1);
        assert_eq!(t.order.len(), 3);
    }

    #[test]
    fn full_reduce_removes_dangling() {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1], &[9, 9]]);
        db.add_relation("R2", attrs(&["B", "C"]), &[&[1, 2], &[7, 7]]);
        db.add_relation("R3", attrs(&["C", "E"]), &[&[2, 3], &[7, 8]]);
        let atoms = chain_atoms();
        let red = remove_dangling(&db, &atoms);
        assert_eq!(red.db.expect("R1").len(), 1);
        assert_eq!(red.db.expect("R2").len(), 1);
        assert_eq!(red.db.expect("R3").len(), 1);
        assert_eq!(red.backmap[0], vec![0]);
        assert!(is_fully_reduced(&red.db, &atoms));
    }

    #[test]
    fn reduce_agrees_with_witness_fallback_on_acyclic() {
        let mut db = Database::new();
        db.add_relation(
            "R1",
            attrs(&["A", "B"]),
            &[&[1, 1], &[2, 2], &[3, 7], &[4, 2]],
        );
        db.add_relation("R2", attrs(&["B", "C"]), &[&[1, 5], &[2, 6], &[9, 9]]);
        db.add_relation("R3", attrs(&["C", "E"]), &[&[5, 1], &[6, 1], &[8, 8]]);
        let atoms = chain_atoms();
        let a = full_reduce(&db, &atoms, &gyo_join_tree(&atoms).unwrap());
        let b = reduce_by_witnesses(&db, &atoms);
        for i in 0..atoms.len() {
            assert_eq!(a.backmap[i], b.backmap[i], "atom {i}");
        }
    }

    #[test]
    fn cyclic_reduction_by_witnesses() {
        let mut db = Database::new();
        // triangle 1-2-3 plus a dangling edge
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 2], &[5, 6]]);
        db.add_relation("R2", attrs(&["B", "C"]), &[&[2, 3]]);
        db.add_relation("R3", attrs(&["C", "A"]), &[&[3, 1]]);
        let red = remove_dangling(&db, &triangle_atoms());
        assert_eq!(red.db.expect("R1").len(), 1);
        assert_eq!(red.backmap[0], vec![0]);
    }

    #[test]
    fn empty_join_dangles_everything() {
        let mut db = Database::new();
        db.add_relation("R1", attrs(&["A", "B"]), &[&[1, 1]]);
        db.add_relation("R2", attrs(&["B", "C"]), &[&[2, 2]]);
        db.add_relation("R3", attrs(&["C", "E"]), &[&[2, 3]]);
        let red = remove_dangling(&db, &chain_atoms());
        assert!(red.db.expect("R1").is_empty());
        assert!(red.db.expect("R2").is_empty());
        assert!(red.db.expect("R3").is_empty());
    }

    #[test]
    fn vacuum_atom_is_an_ear() {
        let atoms = vec![
            RelationSchema::new("V", vec![]),
            RelationSchema::new("R", attrs(&["A"])),
        ];
        assert!(is_acyclic(&atoms));
    }
}
