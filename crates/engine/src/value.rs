//! Values and interning.
//!
//! The engine stores every attribute value as a dense `u64`. Symbolic data
//! (student names, part keys, …) is mapped to dense ids through an
//! [`Interner`], which also supports reverse lookup for presentation.

use std::collections::HashMap;

/// A database value. All columns are value-typed; strings are interned.
pub type Value = u64;

/// Bidirectional map between symbolic names and dense [`Value`]s.
///
/// ```
/// use adp_engine::value::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("alice");
/// let b = i.intern("bob");
/// assert_ne!(a, b);
/// assert_eq!(i.intern("alice"), a);
/// assert_eq!(i.resolve(a), Some("alice"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Value>,
    names: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning a stable dense id.
    pub fn intern(&mut self, name: &str) -> Value {
        if let Some(&v) = self.map.get(name) {
            return v;
        }
        let v = self.names.len() as Value;
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), v);
        v
    }

    /// Looks up an already-interned name without inserting.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.map.get(name).copied()
    }

    /// Reverse lookup: the name behind a dense id.
    pub fn resolve(&self, v: Value) -> Option<&str> {
        self.names.get(v as usize).map(String::as_str)
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("x");
        assert_eq!(i.intern("x"), a);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        for s in ["p", "q", "r"] {
            let v = i.intern(s);
            assert_eq!(i.resolve(v), Some(s));
        }
        assert_eq!(i.resolve(99), None);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("nope"), None);
        assert!(i.is_empty());
        i.intern("yes");
        assert_eq!(i.get("yes"), Some(0));
    }
}
