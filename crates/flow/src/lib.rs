//! # adp-flow
//!
//! Max-flow / min-cut substrate for the ADP boolean resilience solver
//! (paper §7.1). Provides:
//!
//! * [`FlowNetwork`] — a directed network with identified edges,
//! * [`FlowNetwork::max_flow_dinic`] — Dinic's algorithm (the production
//!   path; strictly better worst case than the Edmonds–Karp the paper
//!   cites, identical answers),
//! * [`FlowNetwork::max_flow_edmonds_karp`] — the paper's Edmonds–Karp,
//!   kept as a differential-testing reference,
//! * [`FlowNetwork::min_cut`] — the saturated edges crossing the
//!   source-side/sink-side partition, mapped back to caller edge ids.
//!
//! Capacities are `u64`; [`INF`] marks undeletable (exogenous) tuples.

#![forbid(unsafe_code)]

use std::collections::VecDeque;

/// Effectively-infinite capacity for edges that must never be cut.
pub const INF: u64 = u64::MAX / 4;

#[derive(Clone, Debug)]
struct Edge {
    to: u32,
    cap: u64,
    /// index of the reverse edge in `edges`
    rev: u32,
    /// caller-supplied id; `u32::MAX` for reverse edges
    id: u32,
}

/// A directed flow network over `n` nodes.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    graph: Vec<Vec<u32>>, // node -> edge indices
    edges: Vec<Edge>,
}

/// Result of a max-flow computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaxFlow {
    /// Total flow value (also the min-cut capacity).
    pub value: u64,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.len()
    }

    /// Adds a directed edge `from → to` with capacity `cap` and a caller
    /// id used to report min-cut membership.
    pub fn add_edge(&mut self, from: u32, to: u32, cap: u64, id: u32) {
        // adp-lint: allow(truncating-cast) -- edge ids mirror the
        // caller's u32 id space (builders mint ids via dense_id); a
        // graph cannot hold 2^32 edges of 2^32-addressable nodes.
        let e = self.edges.len() as u32;
        self.graph[from as usize].push(e);
        self.edges.push(Edge {
            to,
            cap,
            rev: e + 1,
            id,
        });
        self.graph[to as usize].push(e + 1);
        self.edges.push(Edge {
            to: from,
            cap: 0,
            rev: e,
            id: u32::MAX,
        });
    }

    /// Dinic's algorithm. Mutates residual capacities in place.
    pub fn max_flow_dinic(&mut self, s: u32, t: u32) -> MaxFlow {
        assert_ne!(s, t, "source and sink must differ");
        let n = self.graph.len();
        let mut flow = 0u64;
        loop {
            // BFS level graph
            let mut level = vec![u32::MAX; n];
            level[s as usize] = 0;
            let mut q = VecDeque::new();
            q.push_back(s);
            while let Some(u) = q.pop_front() {
                for &ei in &self.graph[u as usize] {
                    let e = &self.edges[ei as usize];
                    if e.cap > 0 && level[e.to as usize] == u32::MAX {
                        level[e.to as usize] = level[u as usize] + 1;
                        q.push_back(e.to);
                    }
                }
            }
            if level[t as usize] == u32::MAX {
                break;
            }
            // DFS blocking flow with iteration pointers
            let mut it = vec![0usize; n];
            loop {
                let pushed = self.dfs(s, t, INF * 4, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        MaxFlow { value: flow }
    }

    fn dfs(&mut self, u: u32, t: u32, limit: u64, level: &[u32], it: &mut [usize]) -> u64 {
        if u == t {
            return limit;
        }
        while it[u as usize] < self.graph[u as usize].len() {
            let ei = self.graph[u as usize][it[u as usize]] as usize;
            let (to, cap) = (self.edges[ei].to, self.edges[ei].cap);
            if cap > 0 && level[to as usize] == level[u as usize] + 1 {
                let pushed = self.dfs(to, t, limit.min(cap), level, it);
                if pushed > 0 {
                    self.edges[ei].cap -= pushed;
                    let rev = self.edges[ei].rev as usize;
                    self.edges[rev].cap += pushed;
                    return pushed;
                }
            }
            it[u as usize] += 1;
        }
        0
    }

    /// Edmonds–Karp (BFS augmenting paths), as cited by the paper.
    /// Kept for differential testing against Dinic.
    pub fn max_flow_edmonds_karp(&mut self, s: u32, t: u32) -> MaxFlow {
        assert_ne!(s, t, "source and sink must differ");
        let n = self.graph.len();
        let mut flow = 0u64;
        loop {
            let mut pred: Vec<Option<u32>> = vec![None; n]; // edge index into node
            let mut q = VecDeque::new();
            q.push_back(s);
            let mut seen = vec![false; n];
            seen[s as usize] = true;
            'bfs: while let Some(u) = q.pop_front() {
                for &ei in &self.graph[u as usize] {
                    let e = &self.edges[ei as usize];
                    if e.cap > 0 && !seen[e.to as usize] {
                        seen[e.to as usize] = true;
                        pred[e.to as usize] = Some(ei);
                        if e.to == t {
                            break 'bfs;
                        }
                        q.push_back(e.to);
                    }
                }
            }
            if pred[t as usize].is_none() {
                break;
            }
            // find bottleneck
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                // adp-lint: allow(panic-path) -- pred is set for every
                // vertex on the BFS-found augmenting path being walked.
                let ei = pred[v as usize].unwrap() as usize;
                bottleneck = bottleneck.min(self.edges[ei].cap);
                v = self.edges[self.edges[ei].rev as usize].to;
            }
            let mut v = t;
            while v != s {
                // adp-lint: allow(panic-path) -- same augmenting-path
                // invariant as the bottleneck walk above.
                let ei = pred[v as usize].unwrap() as usize;
                self.edges[ei].cap -= bottleneck;
                let rev = self.edges[ei].rev as usize;
                self.edges[rev].cap += bottleneck;
                v = self.edges[rev].to;
            }
            flow += bottleneck;
        }
        MaxFlow { value: flow }
    }

    /// After a max-flow run, returns the ids of the original edges that
    /// cross the min cut (source side → sink side, saturated).
    pub fn min_cut(&self, s: u32) -> Vec<u32> {
        let n = self.graph.len();
        let mut reach = vec![false; n];
        reach[s as usize] = true;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ei in &self.graph[u as usize] {
                let e = &self.edges[ei as usize];
                if e.cap > 0 && !reach[e.to as usize] {
                    reach[e.to as usize] = true;
                    q.push_back(e.to);
                }
            }
        }
        let mut cut = Vec::new();
        for e in &self.edges {
            if e.id == u32::MAX {
                continue; // reverse edge
            }
            let from = self.edges[e.rev as usize].to;
            if reach[from as usize] && !reach[e.to as usize] {
                cut.push(e.id);
            }
        }
        cut.sort_unstable();
        cut.dedup();
        cut
    }
}

/// Convenience: build a network, run Dinic, return (value, cut edge ids).
pub fn min_cut_value_and_edges(
    n: usize,
    edges: &[(u32, u32, u64, u32)],
    s: u32,
    t: u32,
) -> (u64, Vec<u32>) {
    let mut net = FlowNetwork::new(n);
    for &(u, v, c, id) in edges {
        net.add_edge(u, v, c, id);
    }
    let f = net.max_flow_dinic(s, t);
    (f.value, net.min_cut(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let (v, cut) = min_cut_value_and_edges(2, &[(0, 1, 5, 0)], 0, 1);
        assert_eq!(v, 5);
        assert_eq!(cut, vec![0]);
    }

    #[test]
    fn parallel_edges_sum() {
        let (v, cut) = min_cut_value_and_edges(2, &[(0, 1, 2, 0), (0, 1, 3, 1)], 0, 1);
        assert_eq!(v, 5);
        assert_eq!(cut, vec![0, 1]);
    }

    #[test]
    fn diamond_network() {
        // s -> a (3), s -> b (2), a -> t (2), b -> t (3): max flow 4
        let edges = [(0, 1, 3, 0), (0, 2, 2, 1), (1, 3, 2, 2), (2, 3, 3, 3)];
        let (v, _) = min_cut_value_and_edges(4, &edges, 0, 3);
        assert_eq!(v, 4);
    }

    #[test]
    fn inf_edges_never_cut() {
        // s -> a (INF), a -> t (1)
        let edges = [(0, 1, INF, 0), (1, 2, 1, 1)];
        let (v, cut) = min_cut_value_and_edges(3, &edges, 0, 2);
        assert_eq!(v, 1);
        assert_eq!(cut, vec![1]);
    }

    #[test]
    fn classic_clrs_example() {
        // CLRS figure: max flow 23
        let edges = [
            (0, 1, 16, 0),
            (0, 2, 13, 1),
            (1, 2, 10, 2),
            (2, 1, 4, 3),
            (1, 3, 12, 4),
            (3, 2, 9, 5),
            (2, 4, 14, 6),
            (4, 3, 7, 7),
            (3, 5, 20, 8),
            (4, 5, 4, 9),
        ];
        let (v, _) = min_cut_value_and_edges(6, &edges, 0, 5);
        assert_eq!(v, 23);
    }

    #[test]
    fn dinic_matches_edmonds_karp_on_random_graphs() {
        // deterministic LCG so this crate keeps zero dependencies
        let mut state = 0x243F6A8885A308D3u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..50 {
            let n = 4 + (rng() % 8) as usize;
            let m = 5 + (rng() % 20) as usize;
            let mut edges = Vec::new();
            for id in 0..m as u32 {
                let u = rng() % n as u32;
                let mut v = rng() % n as u32;
                if u == v {
                    v = (v + 1) % n as u32;
                }
                edges.push((u, v, (rng() % 10 + 1) as u64, id));
            }
            let mut a = FlowNetwork::new(n);
            let mut b = FlowNetwork::new(n);
            for &(u, v, c, id) in &edges {
                a.add_edge(u, v, c, id);
                b.add_edge(u, v, c, id);
            }
            let fa = a.max_flow_dinic(0, (n - 1) as u32);
            let fb = b.max_flow_edmonds_karp(0, (n - 1) as u32);
            assert_eq!(fa.value, fb.value);
            // cut capacity equals flow value (strong duality on unit graphs
            // would need exact edge accounting; here check weak duality)
            let cut = a.min_cut(0);
            let cap: u64 = cut
                .iter()
                .map(|&id| edges.iter().filter(|e| e.3 == id).map(|e| e.2).sum::<u64>())
                .sum();
            assert!(cap >= fa.value);
        }
    }

    /// The min-cut *edge ids* — not just the flow value — must round-trip
    /// identically through Dinic and Edmonds–Karp. `min_cut` reports the
    /// source side reachable in the residual graph, which is the unique
    /// source-minimal min cut for **any** maximum flow, so the two
    /// algorithms must agree edge-for-edge even though their residual
    /// capacities differ.
    #[test]
    fn min_cut_edge_ids_round_trip_dinic_and_edmonds_karp() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut nontrivial_cuts = 0;
        for round in 0..200 {
            let n = 4 + (rng() % 10) as usize;
            let m = 6 + (rng() % 24) as usize;
            let mut edges = Vec::new();
            for id in 0..m as u32 {
                let u = rng() % n as u32;
                let mut v = rng() % n as u32;
                if u == v {
                    v = (v + 1) % n as u32;
                }
                // Mix finite and INF (undeletable) capacities.
                let cap = if rng() % 8 == 0 {
                    INF
                } else {
                    (rng() % 12 + 1) as u64
                };
                edges.push((u, v, cap, id));
            }
            let (s, t) = (0u32, (n - 1) as u32);
            let mut dinic = FlowNetwork::new(n);
            let mut ek = FlowNetwork::new(n);
            for &(u, v, c, id) in &edges {
                dinic.add_edge(u, v, c, id);
                ek.add_edge(u, v, c, id);
            }
            let fd = dinic.max_flow_dinic(s, t);
            let fe = ek.max_flow_edmonds_karp(s, t);
            assert_eq!(fd.value, fe.value, "round {round}: flow values differ");
            let cut_d = dinic.min_cut(s);
            let cut_e = ek.min_cut(s);
            assert_eq!(
                cut_d, cut_e,
                "round {round}: min-cut edge ids differ between Dinic and Edmonds–Karp"
            );
            if !cut_d.is_empty() {
                nontrivial_cuts += 1;
            }
        }
        assert!(
            nontrivial_cuts >= 50,
            "generator must produce plenty of non-empty cuts ({nontrivial_cuts})"
        );
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let (v, cut) = min_cut_value_and_edges(3, &[(0, 1, 7, 0)], 0, 2);
        assert_eq!(v, 0);
        assert!(cut.is_empty());
    }

    #[test]
    fn cut_edges_capacity_equals_flow_on_unit_network() {
        // bipartite vertex-cover-style network: unit edges only
        let edges = [
            (0, 1, 1, 0),
            (0, 2, 1, 1),
            (1, 3, 1, 2),
            (2, 3, 1, 3),
            (1, 4, 1, 4),
            (4, 5, 1, 5),
            (3, 5, 1, 6),
        ];
        let (v, cut) = min_cut_value_and_edges(6, &edges, 0, 5);
        assert_eq!(v as usize, cut.len());
    }
}
