//! A minimal, line-aware Rust lexer.
//!
//! Just enough lexing to make the rules in [`crate::rules`] sound
//! against the things a plain `grep` gets wrong: `unwrap()` inside a
//! string literal, `HashMap` in a doc comment, `as u32` in a `//`
//! comment, `unsafe` spelled inside a raw string. The lexer classifies
//! every byte of the file as code, comment, or literal; rules only ever
//! see the code tokens, while comments are kept (per line) so the
//! annotation and `SAFETY:` checks can read them.
//!
//! This is intentionally not a full Rust grammar. It understands:
//!
//! - line (`//`) and nested block (`/* */`) comments,
//! - string literals with escapes, raw strings `r#".."#` with any
//!   number of hashes, byte/raw-byte strings,
//! - char literals vs. lifetimes (`'a'` vs. `'a`),
//! - numeric literals (so `0..n` doesn't produce spurious idents),
//! - `#[cfg(test)]` / `#[test]` item masking: tokens belonging to
//!   test-only items are dropped before rules run, because every rule
//!   in this tool is scoped to non-test code.

use std::collections::BTreeMap;

/// One lexed token kind. Punctuation is kept one character at a time
/// (`::` arrives as two `Punct(':')` tokens); rules match on short
/// token sequences, so this keeps the lexer trivial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `for`, `HashMap`, ...).
    Ident(String),
    /// A single punctuation / operator character.
    Punct(char),
    /// Any literal (string, char, number). The content is irrelevant
    /// to every rule; only the fact that it is not code matters.
    Lit,
}

/// A token with the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// What was lexed.
    pub kind: TokKind,
}

/// A comment with the span of lines it covers. Line comments cover one
/// line; block comments may cover many.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based first line.
    pub first_line: u32,
    /// 1-based last line (inclusive).
    pub last_line: u32,
    /// Comment text without the `//` / `/* */` delimiters.
    pub text: String,
}

/// The fully lexed file: code tokens plus side tables for comments and
/// test-masked regions.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens outside test-only items, in source order.
    pub toks: Vec<Tok>,
    /// All comments, in source order (including those in test items —
    /// the annotation checker needs them to avoid false
    /// `unused-allow` reports).
    pub comments: Vec<Comment>,
    /// Line ranges `(first, last)` of items masked out as test-only.
    pub test_ranges: Vec<(u32, u32)>,
}

impl Lexed {
    /// Concatenated comment text touching `line`, if any.
    pub fn comment_on(&self, line: u32) -> Option<String> {
        let mut out = String::new();
        for c in &self.comments {
            if c.first_line <= line && line <= c.last_line {
                out.push_str(&c.text);
                out.push('\n');
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// True if `line` is covered by at least one comment.
    pub fn is_comment_line(&self, line: u32) -> bool {
        self.comments
            .iter()
            .any(|c| c.first_line <= line && line <= c.last_line)
    }

    /// True if `line` falls inside a masked test-only item.
    pub fn in_test_range(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Walks contiguous comment lines upward from `line - 1` (and the
    /// trailing comment on `line` itself) looking for `needle`.
    /// This is the "immediately preceding comment block" search used
    /// by the `SAFETY:` rule.
    pub fn adjacent_comment_contains(&self, line: u32, needle: &str) -> bool {
        if let Some(t) = self.comment_on(line) {
            if t.contains(needle) {
                return true;
            }
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.is_comment_line(l) {
            if let Some(t) = self.comment_on(l) {
                if t.contains(needle) {
                    return true;
                }
            }
            if l == 1 {
                break;
            }
            l -= 1;
        }
        false
    }
}

/// Lexes `src`, then masks test-only items.
pub fn lex(src: &str) -> Lexed {
    let raw = lex_raw(src);
    mask_test_items(raw)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn lex_raw(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();
    // Index + doc-ness of the previous `//` comment, for merging a run
    // of line comments into one multi-line [`Comment`]. Doc comments
    // (`///`, `//!`) never merge with plain comments: annotation parsing
    // treats doc blocks as documentation, and a merge across kinds would
    // hide (or invent) annotations.
    let mut prev_lc: Option<(usize, bool)> = None;

    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment. Consecutive comment-only lines of the same kind
        // (doc vs plain) merge into one multi-line block, so an
        // annotation's reason may wrap onto following comment lines and
        // the block still sits adjacent to the code below it.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = line;
            let mut text = String::new();
            i += 2;
            while i < n && b[i] != '\n' {
                text.push(b[i]);
                i += 1;
            }
            let is_doc = matches!(text.chars().next(), Some('/' | '!'));
            match prev_lc {
                Some((idx, prev_doc))
                    if prev_doc == is_doc && out.comments[idx].last_line + 1 == start =>
                {
                    let prev = &mut out.comments[idx];
                    prev.text.push('\n');
                    prev.text.push_str(&text);
                    prev.last_line = start;
                }
                _ => {
                    out.comments.push(Comment {
                        first_line: start,
                        last_line: start,
                        text,
                    });
                    prev_lc = Some((out.comments.len() - 1, is_doc));
                }
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = line;
            let mut depth = 1usize;
            let mut text = String::new();
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    bump!();
                    bump!();
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    bump!();
                    bump!();
                } else {
                    text.push(b[i]);
                    bump!();
                }
            }
            out.comments.push(Comment {
                first_line: start,
                last_line: line,
                text,
            });
            continue;
        }
        // Identifier, keyword, or (raw/byte) string prefix.
        if is_ident_start(c) {
            let tok_line = line;
            let mut id = String::new();
            while i < n && is_ident_continue(b[i]) {
                id.push(b[i]);
                i += 1;
            }
            // r"..", r#".."#, b"..", br#".."#, b'x'
            let is_str_prefix = matches!(id.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
            if is_str_prefix && i < n && (b[i] == '"' || b[i] == '#' || b[i] == '\'') {
                if b[i] == '\'' {
                    // byte char b'x'
                    i += 1;
                    consume_char_literal(&b, &mut i, &mut line);
                    out.toks.push(Tok {
                        line: tok_line,
                        kind: TokKind::Lit,
                    });
                    continue;
                }
                let raw = id.contains('r');
                if raw {
                    let mut hashes = 0usize;
                    while i < n && b[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && b[i] == '"' {
                        i += 1;
                        consume_raw_string(&b, &mut i, &mut line, hashes);
                        out.toks.push(Tok {
                            line: tok_line,
                            kind: TokKind::Lit,
                        });
                        continue;
                    }
                    // `r#ident` raw identifier: fall through, emit ident.
                    let mut rid = String::new();
                    while i < n && is_ident_continue(b[i]) {
                        rid.push(b[i]);
                        i += 1;
                    }
                    out.toks.push(Tok {
                        line: tok_line,
                        kind: TokKind::Ident(rid),
                    });
                    continue;
                } else if b[i] == '"' {
                    i += 1;
                    consume_string(&b, &mut i, &mut line);
                    out.toks.push(Tok {
                        line: tok_line,
                        kind: TokKind::Lit,
                    });
                    continue;
                }
            }
            out.toks.push(Tok {
                line: tok_line,
                kind: TokKind::Ident(id),
            });
            continue;
        }
        // Number literal.
        if c.is_ascii_digit() {
            let tok_line = line;
            while i < n
                && (is_ident_continue(b[i])
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            out.toks.push(Tok {
                line: tok_line,
                kind: TokKind::Lit,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            let tok_line = line;
            i += 1;
            consume_string(&b, &mut i, &mut line);
            out.toks.push(Tok {
                line: tok_line,
                kind: TokKind::Lit,
            });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let tok_line = line;
            i += 1;
            // Lifetime: 'ident not closed by a quote.
            if i < n && is_ident_start(b[i]) {
                let mut j = i;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == '\'' && j == i + 1 {
                    // 'a' — single-char literal
                    i = j + 1;
                    out.toks.push(Tok {
                        line: tok_line,
                        kind: TokKind::Lit,
                    });
                } else {
                    // lifetime — skip the identifier, emit nothing
                    i = j;
                }
                continue;
            }
            consume_char_literal(&b, &mut i, &mut line);
            out.toks.push(Tok {
                line: tok_line,
                kind: TokKind::Lit,
            });
            continue;
        }
        out.toks.push(Tok {
            line,
            kind: TokKind::Punct(c),
        });
        i += 1;
    }
    out
}

fn consume_string(b: &[char], i: &mut usize, line: &mut u32) {
    let n = b.len();
    while *i < n {
        match b[*i] {
            '\\' => {
                *i += 1;
                if *i < n {
                    if b[*i] == '\n' {
                        *line += 1;
                    }
                    *i += 1;
                }
            }
            '"' => {
                *i += 1;
                return;
            }
            '\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

fn consume_raw_string(b: &[char], i: &mut usize, line: &mut u32, hashes: usize) {
    let n = b.len();
    while *i < n {
        if b[*i] == '\n' {
            *line += 1;
            *i += 1;
            continue;
        }
        if b[*i] == '"' {
            let mut j = *i + 1;
            let mut seen = 0usize;
            while j < n && b[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                *i = j;
                return;
            }
        }
        *i += 1;
    }
}

fn consume_char_literal(b: &[char], i: &mut usize, line: &mut u32) {
    let n = b.len();
    while *i < n {
        match b[*i] {
            '\\' => {
                *i += 1;
                if *i < n {
                    *i += 1;
                }
            }
            '\'' => {
                *i += 1;
                return;
            }
            '\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// Returns `true` if the attribute token span `[start, end)` (the
/// tokens between `#[` and the matching `]`) marks a test-only item:
/// `#[test]`, `#[cfg(test)]`, or any `cfg(..)` whose argument list
/// mentions `test` (e.g. `cfg(any(test, fuzzing))`).
///
/// `#[cfg_attr(..)]` is explicitly NOT test-only: it conditionally
/// attaches an attribute, the item itself still compiles normally.
fn attr_is_test(toks: &[Tok]) -> bool {
    let idents: Vec<&str> = toks
        .iter()
        .filter_map(|t| match &t.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test"),
        _ => false,
    }
}

/// Drops tokens belonging to `#[cfg(test)]` / `#[test]` items and
/// records the masked line ranges.
fn mask_test_items(lexed: Lexed) -> Lexed {
    let toks = lexed.toks;
    let mut kept: Vec<Tok> = Vec::with_capacity(toks.len());
    let mut test_ranges: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    let n = toks.len();

    // Finds the end of the attribute starting at `i` (which points at
    // `#`). Returns the index one past the closing `]`, or None.
    let attr_end = |i: usize| -> Option<usize> {
        if toks.get(i).map(|t| &t.kind) != Some(&TokKind::Punct('#')) {
            return None;
        }
        let mut j = i + 1;
        if toks.get(j).map(|t| &t.kind) == Some(&TokKind::Punct('!')) {
            j += 1; // inner attribute #![..]
        }
        if toks.get(j).map(|t| &t.kind) != Some(&TokKind::Punct('[')) {
            return None;
        }
        let mut depth = 0i32;
        let mut k = j;
        while k < n {
            match toks[k].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k + 1);
                    }
                }
                _ => {}
            }
            k += 1;
        }
        None
    };

    while i < n {
        if let Some(end) = attr_end(i) {
            let body_start = if toks[i + 1].kind == TokKind::Punct('!') {
                i + 3
            } else {
                i + 2
            };
            if attr_is_test(&toks[body_start..end - 1]) {
                // Skip any further attributes, then the item itself.
                let first_line = toks[i].line;
                let mut j = end;
                while let Some(e) = attr_end(j) {
                    j = e;
                }
                // The item runs to the first `;` at brace depth 0, or
                // to the matching `}` of its first `{`.
                let mut depth = 0i32;
                let mut last_line = toks.get(j).map_or(first_line, |t| t.line);
                while j < n {
                    last_line = toks[j].line;
                    match toks[j].kind {
                        TokKind::Punct('{') => depth += 1,
                        TokKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        TokKind::Punct(';') if depth == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                test_ranges.push((first_line, last_line));
                i = j;
                continue;
            }
        }
        kept.push(toks[i].clone());
        i += 1;
    }

    // Merge adjacent/overlapping ranges for cleaner reporting.
    let mut merged: BTreeMap<u32, u32> = BTreeMap::new();
    for (a, b) in test_ranges {
        let e = merged.entry(a).or_insert(b);
        if *e < b {
            *e = b;
        }
    }
    Lexed {
        toks: kept,
        comments: lexed.comments,
        test_ranges: merged.into_iter().collect(),
    }
}
