//! `adp-lint`: a std-only static analysis pass for this workspace.
//!
//! The workspace's headline guarantees — parallel execution
//! byte-identical to sequential, a serving layer that sheds load with
//! typed errors instead of crashing — rest on coding conventions that
//! rustc cannot check: no hash-order iteration in solver paths, no
//! silently truncating casts, no panicking calls in library crates, a
//! written safety argument on every `unsafe`, no wall-clock reads
//! inside solver decisions. `adp-lint` machine-checks those
//! conventions so merges gate on them instead of review vigilance.
//!
//! The analyzer is deliberately lexical (a hand-rolled string-, char-
//! and comment-aware lexer, see [`lexer`]); where lexical precision
//! runs out, the escape hatch is an explicit, reasoned annotation:
//!
//! ```text
//! // adp-lint: allow(<rule>) -- <reason>
//! ```
//!
//! on the offending line or the line directly above. An annotation
//! without a reason, with an unknown rule slug, or that suppresses
//! nothing is itself a failure — the annotation inventory stays
//! honest.
//!
//! Pre-existing accepted sites can also live in a baseline file
//! (`lint-baseline.txt` at the workspace root, one
//! `file:line: rule -- reason` per line). Baselined sites are counted
//! and reported; new violations fail even when the baseline is
//! non-empty.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use rules::{RuleId, Violation, ALL_RULES};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Linting configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rules to run (defaults to all five).
    pub rules: Vec<RuleId>,
    /// Ignore per-rule path scopes and apply every enabled rule to
    /// every walked file. Used by the fixture tests.
    pub all_scopes: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            rules: ALL_RULES.to_vec(),
            all_scopes: false,
        }
    }
}

/// One baseline entry: an accepted pre-existing violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule slug.
    pub rule: String,
    /// The written justification (required).
    pub reason: String,
}

/// Parsed baseline file plus any malformed lines.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Well-formed entries.
    pub entries: Vec<BaselineEntry>,
    /// `(line number, problem)` for malformed lines — these fail the
    /// run, so the baseline cannot silently rot.
    pub errors: Vec<(usize, String)>,
}

/// Parses a baseline file. Format, one entry per line:
///
/// ```text
/// crates/engine/src/plan.rs:617: truncating-cast -- dedup ids are dense u32 by construction
/// ```
///
/// Blank lines and lines starting with `#` are ignored. Every entry
/// must carry a `-- <reason>`.
pub fn parse_baseline(text: &str) -> Baseline {
    let mut out = Baseline::default();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let (head, reason) = match line.split_once("--") {
            Some((h, r)) => (h.trim(), r.trim()),
            None => {
                out.errors.push((
                    lineno,
                    "baseline entry missing `-- <reason>` justification".to_string(),
                ));
                continue;
            }
        };
        if reason.is_empty() {
            out.errors
                .push((lineno, "baseline entry has an empty reason".to_string()));
            continue;
        }
        // head: file:line: rule
        let parts: Vec<&str> = head.splitn(3, ':').map(str::trim).collect();
        if parts.len() != 3 {
            out.errors.push((
                lineno,
                format!("malformed baseline entry (want `file:line: rule -- reason`): {line}"),
            ));
            continue;
        }
        let Ok(srcline) = parts[1].parse::<u32>() else {
            out.errors
                .push((lineno, format!("bad line number in baseline entry: {line}")));
            continue;
        };
        if RuleId::from_slug(parts[2]).is_none() {
            out.errors
                .push((lineno, format!("unknown rule `{}` in baseline", parts[2])));
            continue;
        }
        out.entries.push(BaselineEntry {
            file: parts[0].to_string(),
            line: srcline,
            rule: parts[2].to_string(),
            reason: reason.to_string(),
        });
    }
    out
}

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Rule violations that fail the run (not allowed, not baselined).
    pub failing_violations: Vec<Violation>,
    /// Meta-diagnostics that also fail the run: malformed baseline
    /// lines, annotations without reasons or with unknown slugs,
    /// annotations that suppress nothing. Pre-rendered
    /// `file:line: rule: message` strings.
    pub meta: Vec<String>,
    /// Violations suppressed by a site annotation.
    pub allowed: Vec<Violation>,
    /// Violations accepted by the baseline file.
    pub baselined: Vec<Violation>,
    /// Baseline entries that matched nothing (stale) — reported as
    /// warnings, not failures, so line drift elsewhere in a file does
    /// not break unrelated work; prune them with `--write-baseline`.
    pub stale_baseline: Vec<BaselineEntry>,
    /// Files actually checked.
    pub files_checked: usize,
}

impl Report {
    /// True when nothing fails.
    pub fn is_clean(&self) -> bool {
        self.failing_violations.is_empty() && self.meta.is_empty()
    }

    /// Every failing diagnostic as `file:line: rule: message` lines,
    /// violations first, meta-diagnostics after, each group sorted.
    pub fn failing_lines(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .failing_violations
            .iter()
            .map(Violation::render)
            .collect();
        out.extend(self.meta.iter().cloned());
        out
    }
}

/// Walks `root` collecting workspace `.rs` files, excluding
/// `third_party/`, `tests/`, fixture dirs, build output, and VCS
/// internals. Returned paths are workspace-relative, `/`-separated,
/// sorted — the walk order (and therefore diagnostic order) is
/// deterministic.
pub fn walk_rs_files(root: &Path) -> Vec<String> {
    const SKIP_DIRS: [&str; 6] = [
        "target",
        "third_party",
        "tests",
        "fixtures",
        ".git",
        ".github",
    ];
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let path = e.path();
            let name = e.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

/// Lints one file's source text. Returns raw `(violations, allows)`
/// before baseline filtering; allow filtering has already been
/// applied, with annotation problems appended to `meta`.
fn lint_source(
    rel_path: &str,
    src: &str,
    cfg: &Config,
    meta: &mut Vec<String>,
) -> (Vec<Violation>, Vec<Violation>) {
    let lexed = lexer::lex(src);
    let enabled: Vec<RuleId> = cfg
        .rules
        .iter()
        .copied()
        .filter(|r| cfg.all_scopes || r.applies_to(rel_path))
        .collect();
    let violations = rules::check_file(rel_path, &lexed, &enabled);
    let allows = rules::parse_allows(&lexed);

    // Validate annotations.
    for a in &allows {
        if a.rule.is_none() {
            meta.push(format!(
                "{}:{}: bad-allow: unknown rule `{}` in adp-lint annotation",
                rel_path, a.line, a.slug
            ));
        } else if a.reason.is_none() {
            meta.push(format!(
                "{}:{}: bad-allow: annotation for `{}` is missing its \
                 `-- <reason>` justification",
                rel_path, a.line, a.slug
            ));
        }
    }

    // Partition violations into kept / allowed.
    let mut kept = Vec::new();
    let mut allowed = Vec::new();
    let mut used_allow: BTreeSet<usize> = BTreeSet::new();
    'v: for v in violations {
        for (ai, a) in allows.iter().enumerate() {
            let matches_rule = a.rule == Some(v.rule);
            let adjacent = a.line == v.line || a.line + 1 == v.line;
            if matches_rule && adjacent && a.reason.is_some() {
                used_allow.insert(ai);
                allowed.push(v);
                continue 'v;
            }
        }
        kept.push(v);
    }

    // Unused annotations are failures too — unless they sit in
    // test-masked code (no rule runs there, so they can't match), or
    // their rule is disabled for this run.
    for (ai, a) in allows.iter().enumerate() {
        if used_allow.contains(&ai) {
            continue;
        }
        let Some(rule) = a.rule else { continue };
        if a.reason.is_none() {
            continue; // already reported as bad-allow
        }
        if lexed.in_test_range(a.line) || lexed.in_test_range(a.line + 1) {
            continue;
        }
        let rule_ran = cfg.rules.contains(&rule) && (cfg.all_scopes || rule.applies_to(rel_path));
        if !rule_ran {
            continue;
        }
        meta.push(format!(
            "{}:{}: unused-allow: annotation for `{}` suppresses nothing; \
             remove it or move it next to the site",
            rel_path,
            a.line,
            rule.slug()
        ));
    }

    (kept, allowed)
}

/// Lints every workspace file under `root` against `cfg` and
/// `baseline`.
pub fn lint_root(root: &Path, cfg: &Config, baseline: &Baseline) -> Report {
    let files = walk_rs_files(root);
    lint_files(root, &files, cfg, baseline)
}

/// Lints an explicit list of workspace-relative files.
pub fn lint_files(root: &Path, files: &[String], cfg: &Config, baseline: &Baseline) -> Report {
    let mut report = Report::default();
    let mut meta: Vec<String> = Vec::new();
    let mut matched_baseline: BTreeSet<usize> = BTreeSet::new();
    let mut failing_v: Vec<Violation> = Vec::new();

    for (lno, err) in &baseline.errors {
        report
            .meta
            .push(format!("lint-baseline.txt:{lno}: bad-baseline: {err}"));
    }

    for rel in files {
        let path: PathBuf = root.join(rel);
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        report.files_checked += 1;
        let (kept, allowed) = lint_source(rel, &src, cfg, &mut meta);
        report.allowed.extend(allowed);
        'v: for v in kept {
            for (bi, b) in baseline.entries.iter().enumerate() {
                if b.file == v.file && b.line == v.line && b.rule == v.rule.slug() {
                    matched_baseline.insert(bi);
                    report.baselined.push(v);
                    continue 'v;
                }
            }
            failing_v.push(v);
        }
    }

    for (bi, b) in baseline.entries.iter().enumerate() {
        if !matched_baseline.contains(&bi) {
            report.stale_baseline.push(b.clone());
        }
    }

    failing_v.sort();
    report.failing_violations = failing_v;
    meta.sort();
    report.meta.extend(meta);
    report.meta.sort();
    report
}

/// Renders the failing violations as baseline entries (with a
/// placeholder reason the author must fill in).
pub fn render_baseline(report_failing: &[Violation]) -> String {
    let mut out = String::from(
        "# adp-lint baseline: pre-existing accepted sites, one\n\
         # `file:line: rule -- reason` per line. New violations fail even\n\
         # when this file is non-empty. Regenerate with\n\
         # `cargo run -p adp-lint -- --write-baseline`, then replace every\n\
         # placeholder reason with a real justification.\n",
    );
    for v in report_failing {
        out.push_str(&format!(
            "{}:{}: {} -- TODO: justify this site\n",
            v.file,
            v.line,
            v.rule.slug()
        ));
    }
    out
}
