//! `adp-lint` CLI.
//!
//! ```text
//! cargo run -p adp-lint                  # lint the workspace, exit 1 on violations
//! cargo run -p adp-lint -- --list-rules  # show the rule table
//! cargo run -p adp-lint -- --allow panic-path   # disable one rule this run
//! cargo run -p adp-lint -- --write-baseline     # regenerate lint-baseline.txt
//! ```
//!
//! Exit codes: 0 clean (allowed/baselined sites are counted but do not
//! fail), 1 violations or annotation/baseline problems, 2 usage error.

use adp_lint::rules::{RuleId, ALL_RULES};
use adp_lint::{lint_root, parse_baseline, render_baseline, Baseline, Config};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "adp-lint: static analysis for the adp workspace

USAGE:
    adp-lint [OPTIONS]

OPTIONS:
    --list-rules          print the rule table and exit
    --allow <rule>        disable a rule for this run (repeatable)
    --root <path>         workspace root (default: nearest ancestor with
                          a [workspace] Cargo.toml)
    --baseline <path>     baseline file (default: <root>/lint-baseline.txt)
    --write-baseline      rewrite the baseline from current violations
                          (reasons become TODO placeholders to fill in)
    --all-scopes          apply every rule to every file, ignoring
                          per-rule crate scopes (fixture testing)
    -h, --help            show this help
";

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut cfg = Config::default();
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut list_rules = false;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => list_rules = true,
            "--allow" => {
                let Some(slug) = args.next() else {
                    eprintln!("adp-lint: --allow needs a rule name\n{USAGE}");
                    return ExitCode::from(2);
                };
                let Some(rule) = RuleId::from_slug(&slug) else {
                    eprintln!("adp-lint: unknown rule `{slug}` (see --list-rules)");
                    return ExitCode::from(2);
                };
                cfg.rules.retain(|&r| r != rule);
            }
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("adp-lint: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("adp-lint: --baseline needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => write_baseline = true,
            "--all-scopes" => cfg.all_scopes = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("adp-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        println!("{:<16} {:<44} scope", "rule", "invariant");
        for r in ALL_RULES {
            let scope = if r.scope().is_empty() {
                "all workspace files".to_string()
            } else {
                r.scope().join(", ")
            };
            println!("{:<16} {:<44} {}", r.slug(), r.description(), scope);
        }
        return ExitCode::SUCCESS;
    }

    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("adp-lint: no workspace root found (run inside the repo or pass --root)");
        return ExitCode::from(2);
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_baseline(&text),
        Err(_) => Baseline::default(),
    };

    let report = lint_root(&root, &cfg, &baseline);

    if write_baseline {
        let text = render_baseline(&report.failing_violations);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!("adp-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "adp-lint: wrote {} entr{} to {} (fill in the TODO reasons)",
            report.failing_violations.len(),
            if report.failing_violations.len() == 1 {
                "y"
            } else {
                "ies"
            },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    for line in report.failing_lines() {
        println!("{line}");
    }
    for b in &report.stale_baseline {
        eprintln!(
            "adp-lint: warning: stale baseline entry {}:{}: {} (prune with --write-baseline)",
            b.file, b.line, b.rule
        );
    }
    println!(
        "adp-lint: {} violation(s), {} allowed site(s), {} baselined, {} file(s) checked",
        report.failing_violations.len() + report.meta.len(),
        report.allowed.len(),
        report.baselined.len(),
        report.files_checked
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
