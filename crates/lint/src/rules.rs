//! The adp-lint rule set.
//!
//! Each rule encodes an invariant the workspace's headline guarantee
//! (parallel execution byte-identical to sequential, a service layer
//! that never crashes) rests on, and each traces back to a real past
//! bug class — see the repository README's "Static analysis" section
//! for the rule table and EXPERIMENTS.md for the history.
//!
//! Rules are lexical: they see the token stream of [`crate::lexer`],
//! never types. Where that is too coarse the escape hatch is an
//! explicit annotation with a written reason:
//!
//! ```text
//! // adp-lint: allow(unordered-iter) -- feeds a BTreeSet; order-insensitive
//! ```
//!
//! placed on the offending line or the line directly above it.

use crate::lexer::{Lexed, Tok, TokKind};
use std::collections::BTreeSet;

/// Stable rule identifiers. The slug (see [`RuleId::slug`]) is what
/// appears in diagnostics, `allow(..)` annotations, and the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// R1: no `HashMap`/`HashSet` iteration in determinism-critical
    /// crates.
    UnorderedIter,
    /// R2: no truncating `as` casts (`as u8`/`u16`/`u32`).
    TruncatingCast,
    /// R3: no `unwrap`/`expect`/`panic!`/`unreachable!` in library
    /// crates the service layer promises never crash.
    PanicPath,
    /// R4: every `unsafe` block/impl/fn carries a `// SAFETY:` comment.
    MissingSafety,
    /// R5: no wall-clock reads inside solver decision paths.
    WallClock,
}

/// All rules, in diagnostic order.
pub const ALL_RULES: [RuleId; 5] = [
    RuleId::UnorderedIter,
    RuleId::TruncatingCast,
    RuleId::PanicPath,
    RuleId::MissingSafety,
    RuleId::WallClock,
];

impl RuleId {
    /// The slug used in diagnostics, annotations, and the baseline.
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::UnorderedIter => "unordered-iter",
            RuleId::TruncatingCast => "truncating-cast",
            RuleId::PanicPath => "panic-path",
            RuleId::MissingSafety => "missing-safety",
            RuleId::WallClock => "wall-clock",
        }
    }

    /// Parses a slug back into a rule id.
    pub fn from_slug(s: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.slug() == s)
    }

    /// One-line description shown by `--list-rules`.
    pub fn description(self) -> &'static str {
        match self {
            RuleId::UnorderedIter => {
                "no HashMap/HashSet iteration in determinism-critical crates \
                 (solver answers must not depend on hash order)"
            }
            RuleId::TruncatingCast => {
                "no truncating `as u8`/`as u16`/`as u32` casts; use try_into() \
                 with a typed error, or annotate the invariant"
            }
            RuleId::PanicPath => {
                "no unwrap()/expect()/panic!/unreachable! in library crates \
                 the service layer promises never crash"
            }
            RuleId::MissingSafety => {
                "every `unsafe` block, fn, or impl must have a `// SAFETY:` \
                 comment on the preceding line"
            }
            RuleId::WallClock => {
                "no Instant::now()/SystemTime::now() inside solver decision \
                 paths outside deadline plumbing"
            }
        }
    }

    /// Path prefixes (relative to the workspace root, `/`-separated)
    /// the rule applies to. Empty means every walked file.
    pub fn scope(self) -> &'static [&'static str] {
        match self {
            RuleId::UnorderedIter => {
                &["crates/engine/src/", "crates/core/src/", "crates/flow/src/"]
            }
            RuleId::TruncatingCast => &[
                "crates/engine/src/",
                "crates/core/src/",
                "crates/flow/src/",
                "crates/service/src/",
                "crates/runtime/src/",
            ],
            RuleId::PanicPath => &[
                "crates/engine/src/",
                "crates/core/src/",
                "crates/flow/src/",
                "crates/service/src/",
            ],
            RuleId::MissingSafety => &[],
            RuleId::WallClock => &["crates/core/src/solver/", "crates/engine/src/delta.rs"],
        }
    }

    /// True if the rule applies to `rel_path` (workspace-relative,
    /// `/`-separated).
    pub fn applies_to(self, rel_path: &str) -> bool {
        let scope = self.scope();
        scope.is_empty() || scope.iter().any(|p| rel_path.starts_with(p))
    }
}

/// One diagnostic: a rule firing at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative, `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    /// Renders as `file:line: rule: message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.slug(),
            self.message
        )
    }
}

/// A parsed `// adp-lint: allow(<rule>) -- <reason>` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Last line of the comment carrying the annotation; it suppresses
    /// matching violations on this line and the next.
    pub line: u32,
    /// The rule being allowed, if the slug parsed.
    pub rule: Option<RuleId>,
    /// The slug as written (for error messages on bad slugs).
    pub slug: String,
    /// The written justification after `--`, if any.
    pub reason: Option<String>,
}

/// Extracts every adp-lint annotation from the file's comments.
pub fn parse_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        // Doc comments (`///` → text starts with `/`, `//!` → `!`,
        // `/** .. */` → `*`) are documentation, not annotations; this
        // lets docs show annotation examples without tripping the
        // bad-allow check.
        if matches!(c.text.chars().next(), Some('/' | '!' | '*')) {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("adp-lint:") {
            rest = &rest[pos + "adp-lint:".len()..];
            let trimmed = rest.trim_start();
            let Some(args) = trimmed.strip_prefix("allow(") else {
                continue;
            };
            let Some(close) = args.find(')') else {
                continue;
            };
            let slug = args[..close].trim().to_string();
            let after = &args[close + 1..];
            // Reason: everything after a `--` separator, up to EOL.
            let reason = after.find("--").map(|p| {
                after[p + 2..]
                    .lines()
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string()
            });
            out.push(Allow {
                line: c.last_line,
                rule: RuleId::from_slug(&slug),
                slug,
                reason: reason.filter(|r| !r.is_empty()),
            });
            rest = after;
        }
    }
    out
}

/// Runs every rule in `rules` against one lexed file.
pub fn check_file(rel_path: &str, lexed: &Lexed, rules: &[RuleId]) -> Vec<Violation> {
    let mut out = Vec::new();
    for &rule in rules {
        let vs = match rule {
            RuleId::UnorderedIter => check_unordered_iter(rel_path, lexed),
            RuleId::TruncatingCast => check_truncating_cast(rel_path, lexed),
            RuleId::PanicPath => check_panic_path(rel_path, lexed),
            RuleId::MissingSafety => check_missing_safety(rel_path, lexed),
            RuleId::WallClock => check_wall_clock(rel_path, lexed),
        };
        out.extend(vs);
    }
    out.sort();
    out
}

fn ident(t: &Tok) -> Option<&str> {
    match &t.kind {
        TokKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct(c)
}

/// R3: panicking calls in library code.
fn check_panic_path(rel_path: &str, lexed: &Lexed) -> Vec<Violation> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        match name {
            "unwrap" | "expect" | "unwrap_unchecked" => {
                let after_dot = i > 0 && punct(&toks[i - 1], '.');
                let called = toks.get(i + 1).is_some_and(|t| punct(t, '('));
                if after_dot && called {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: toks[i].line,
                        rule: RuleId::PanicPath,
                        message: format!(
                            ".{name}() can panic; return a typed error or annotate \
                             `adp-lint: allow(panic-path) -- <reason>`"
                        ),
                    });
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                let is_macro = toks.get(i + 1).is_some_and(|t| punct(t, '!'));
                // `std::panic::catch_unwind` has `panic` followed by
                // `::` — not a macro invocation.
                if is_macro {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: toks[i].line,
                        rule: RuleId::PanicPath,
                        message: format!(
                            "{name}! aborts the solve; return a typed error or annotate \
                             `adp-lint: allow(panic-path) -- <reason>`"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// R2: truncating numeric casts.
fn check_truncating_cast(rel_path: &str, lexed: &Lexed) -> Vec<Violation> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(1) {
        if ident(&toks[i]) != Some("as") {
            continue;
        }
        let Some(target) = ident(&toks[i + 1]) else {
            continue;
        };
        if !matches!(target, "u8" | "u16" | "u32") {
            continue;
        }
        // `as` must follow an expression, not appear in `use x as y`.
        // Heuristic: `use`-renames have an identifier before `as` and
        // `;`/`,`/`}` soon after, but the target here is a primitive
        // type name, which cannot be a rename target in this codebase.
        out.push(Violation {
            file: rel_path.to_string(),
            line: toks[i].line,
            rule: RuleId::TruncatingCast,
            message: format!(
                "`as {target}` silently truncates; use try_into() with a typed \
                 error, or annotate `adp-lint: allow(truncating-cast) -- <invariant>`"
            ),
        });
    }
    out
}

/// R4: `unsafe` without an adjacent `SAFETY:` comment.
fn check_missing_safety(rel_path: &str, lexed: &Lexed) -> Vec<Violation> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if ident(&toks[i]) != Some("unsafe") {
            continue;
        }
        let line = toks[i].line;
        if lexed.adjacent_comment_contains(line, "SAFETY:") {
            continue;
        }
        let form = match toks.get(i + 1).and_then(ident) {
            Some("impl") => "unsafe impl",
            Some("fn") => "unsafe fn",
            _ => "unsafe block",
        };
        out.push(Violation {
            file: rel_path.to_string(),
            line,
            rule: RuleId::MissingSafety,
            message: format!(
                "{form} without a `// SAFETY:` comment on the preceding line \
                 stating why the invariants hold"
            ),
        });
    }
    out
}

/// R5: wall-clock reads in solver decision paths.
fn check_wall_clock(rel_path: &str, lexed: &Lexed) -> Vec<Violation> {
    let toks = &lexed.toks;
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(3) {
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        if !matches!(name, "Instant" | "SystemTime") {
            continue;
        }
        if punct(&toks[i + 1], ':')
            && punct(&toks[i + 2], ':')
            && ident(&toks[i + 3]) == Some("now")
        {
            out.push(Violation {
                file: rel_path.to_string(),
                line: toks[i].line,
                rule: RuleId::WallClock,
                message: format!(
                    "{name}::now() in a solver decision path makes answers \
                     time-dependent; keep wall-clock reads in deadline plumbing \
                     and annotate `adp-lint: allow(wall-clock) -- <reason>`"
                ),
            });
        }
    }
    out
}

/// Iteration methods whose order reflects hash order.
const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// R1: hash-order iteration in determinism-critical crates.
///
/// Two-pass lexical type tracking:
///
/// 1. Collect identifiers bound with a `HashMap`/`HashSet` type
///    (`let x: HashMap<..>`, fields, fn params, `= HashMap::new()`),
///    and identifiers bound to containers *of* hash maps
///    (`Vec<HashMap<..>>`, `&[HashMap<..>]`) whose elements are
///    reached by indexing.
/// 2. Flag `x.iter()`-style calls on hash-typed identifiers,
///    `v[i].iter()` on hash-container identifiers, `for .. in &x`,
///    and rebind loop variables of `for m in hash_container` so the
///    body's `m.iter()` is caught too.
fn check_unordered_iter(rel_path: &str, lexed: &Lexed) -> Vec<Violation> {
    let toks = &lexed.toks;
    let n = toks.len();

    // ---- pass 1: collect hash-typed (H) and hash-container (VH) idents.
    let mut hash_idents: BTreeSet<String> = BTreeSet::new();
    let mut container_idents: BTreeSet<String> = BTreeSet::new();

    let is_hash_name = |s: &str| s == "HashMap" || s == "HashSet";

    // `NAME : <type tokens>` — classify by outer constructor.
    for i in 0..n {
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        if !toks.get(i + 1).is_some_and(|t| punct(t, ':')) {
            continue;
        }
        // Skip `::` paths.
        if toks.get(i + 2).is_some_and(|t| punct(t, ':')) {
            continue;
        }
        // Scan the type expression: until `=`, `;`, `)`, `,`, `{`, `>`
        // at angle depth 0.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut type_idents: Vec<&str> = Vec::new();
        let mut outer: Option<&str> = None;
        // `[T]` / `[T; n]` slices and arrays are containers reached by
        // indexing, same as Vec — `&mut [HashSet<u32>]` must classify
        // as a hash *container*, not a hash type.
        let mut slice_outer = false;
        while j < n {
            match &toks[j].kind {
                TokKind::Punct('[') if depth == 0 && outer.is_none() => {
                    slice_outer = true;
                }
                TokKind::Punct('<') => {
                    if depth == 0 && outer.is_none() {
                        outer = type_idents.last().copied();
                    }
                    depth += 1;
                }
                TokKind::Punct('>') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                TokKind::Punct('=' | ';' | ')' | ',' | '{' | '}') if depth == 0 => break,
                TokKind::Ident(s) => type_idents.push(s.as_str()),
                _ => {}
            }
            j += 1;
        }
        if type_idents.is_empty() {
            continue;
        }
        let outer = outer.unwrap_or_else(|| type_idents.last().copied().unwrap_or(""));
        let mentions_hash = type_idents.iter().any(|s| is_hash_name(s));
        if !mentions_hash {
            continue;
        }
        if is_hash_name(outer) && !slice_outer {
            hash_idents.insert(name.to_string());
        } else {
            container_idents.insert(name.to_string());
        }
    }

    // `NAME = HashMap::new()` / `NAME = vec![HashMap::..; ..]`.
    for i in 0..n {
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        if !toks.get(i + 1).is_some_and(|t| punct(t, '=')) {
            continue;
        }
        match toks.get(i + 2).and_then(ident) {
            Some(s) if is_hash_name(s) => {
                hash_idents.insert(name.to_string());
            }
            Some("vec")
                if toks.get(i + 3).is_some_and(|t| punct(t, '!'))
                    && toks.get(i + 5).and_then(ident).is_some_and(is_hash_name) =>
            {
                container_idents.insert(name.to_string());
            }
            _ => {}
        }
    }

    // `for PAT in <expr>` — rebind loop vars over hash containers.
    for i in 0..n {
        if ident(&toks[i]) != Some("for") {
            continue;
        }
        // Pattern idents until `in`.
        let mut j = i + 1;
        let mut pat: Vec<&str> = Vec::new();
        while j < n && ident(&toks[j]) != Some("in") {
            if let Some(s) = ident(&toks[j]) {
                if s != "mut" && s != "ref" {
                    pat.push(s);
                }
            }
            if punct(&toks[j], '{') {
                break; // not a for loop header after all
            }
            j += 1;
        }
        if j >= n || ident(&toks[j]) != Some("in") {
            continue;
        }
        // Expression until `{` at depth 0.
        let mut k = j + 1;
        let mut pdepth = 0i32;
        let mut expr: Vec<usize> = Vec::new();
        while k < n {
            match toks[k].kind {
                TokKind::Punct('(' | '[') => pdepth += 1,
                TokKind::Punct(')' | ']') => pdepth -= 1,
                TokKind::Punct('{') if pdepth == 0 => break,
                _ => {}
            }
            expr.push(k);
            k += 1;
        }
        let iterates_container = expr.iter().any(|&e| {
            ident(&toks[e]).is_some_and(|s| container_idents.contains(s))
                && !toks.get(e + 1).is_some_and(|t| punct(t, '['))
        });
        if iterates_container {
            if let Some(last) = pat.last() {
                hash_idents.insert((*last).to_string());
            }
        }
    }

    // ---- pass 2: flag iteration sites.
    let mut out = Vec::new();
    let mut flag = |line: u32, name: &str, how: &str| {
        out.push(Violation {
            file: rel_path.to_string(),
            line,
            rule: RuleId::UnorderedIter,
            message: format!(
                "{how} over hash-ordered `{name}` can reorder under a different \
                 hasher/layout; use BTreeMap/sorted vectors, or annotate \
                 `adp-lint: allow(unordered-iter) -- <why order-insensitive>`"
            ),
        });
    };

    for i in 0..n {
        let Some(name) = ident(&toks[i]) else {
            continue;
        };
        // Direct method call on a hash-typed ident: `h.iter()`.
        if hash_idents.contains(name) {
            if toks.get(i + 1).is_some_and(|t| punct(t, '.')) {
                if let Some(m) = toks.get(i + 2).and_then(ident) {
                    if HASH_ITER_METHODS.contains(&m)
                        && toks.get(i + 3).is_some_and(|t| punct(t, '('))
                    {
                        flag(toks[i].line, name, &format!(".{m}()"));
                    }
                }
            }
            continue;
        }
        // Indexed element of a hash container: `v[i].iter()`.
        if container_idents.contains(name) && toks.get(i + 1).is_some_and(|t| punct(t, '[')) {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < n {
                match toks[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if toks.get(j + 1).is_some_and(|t| punct(t, '.')) {
                if let Some(m) = toks.get(j + 2).and_then(ident) {
                    if HASH_ITER_METHODS.contains(&m)
                        && toks.get(j + 3).is_some_and(|t| punct(t, '('))
                    {
                        flag(toks[i].line, name, &format!("[..].{m}()"));
                    }
                }
            }
        }
    }

    // `for .. in [&[mut]] h` / `for .. in &self.h` — ends right at `{`.
    for i in 0..n {
        if ident(&toks[i]) != Some("for") {
            continue;
        }
        let mut j = i + 1;
        while j < n && ident(&toks[j]) != Some("in") {
            if punct(&toks[j], '{') {
                break;
            }
            j += 1;
        }
        if j >= n || ident(&toks[j]) != Some("in") {
            continue;
        }
        let mut k = j + 1;
        let mut pdepth = 0i32;
        let mut last_ident: Option<(usize, &str)> = None;
        while k < n {
            match &toks[k].kind {
                TokKind::Punct('(' | '[') => pdepth += 1,
                TokKind::Punct(')' | ']') => pdepth -= 1,
                TokKind::Punct('{') if pdepth == 0 => break,
                TokKind::Ident(s) => last_ident = Some((k, s.as_str())),
                _ => {}
            }
            k += 1;
        }
        if let Some((idx, name)) = last_ident {
            // Only when the expression ENDS at the ident (no method
            // call after it — those are handled above).
            if idx + 1 == k && hash_idents.contains(name) {
                flag(toks[i].line, name, "for-in");
            }
        }
    }

    out.sort();
    out.dedup();
    out
}
