//! Unit tests of the analyzer itself — lexer edge cases (strings,
//! lifetimes, nested comments, test masking) and per-rule checks over
//! inline sources, without touching the filesystem.

use adp_lint::lexer;
use adp_lint::rules::{check_file, RuleId, ALL_RULES};

fn lint_all(src: &str) -> Vec<String> {
    let lexed = lexer::lex(src);
    check_file("src/x.rs", &lexed, &ALL_RULES)
        .into_iter()
        .map(|v| format!("{}:{}", v.rule.slug(), v.line))
        .collect()
}

#[test]
fn comment_markers_inside_strings_are_not_comments() {
    let v = lint_all(
        r##"
pub fn f() -> String {
    let a = "// not a comment: x.unwrap()";
    let b = r#"/* also not "a comment" */"#;
    format!("{a}{b}")
}
"##,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn panic_calls_inside_strings_are_not_flagged() {
    let v = lint_all("pub fn f() -> &'static str {\n    \"call .unwrap() and panic!\"\n}\n");
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn lifetimes_are_not_char_literals() {
    // A naive char-literal scanner would swallow `'a>(x: &` and corrupt
    // everything after; the unwrap below must still be found.
    let v = lint_all("pub fn f<'a>(x: &'a Option<u32>) -> u32 {\n    x.unwrap()\n}\n");
    assert_eq!(v, ["panic-path:2"]);
}

#[test]
fn nested_block_comments_close_correctly() {
    let v = lint_all("/* outer /* inner */ still comment */\npub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n");
    assert_eq!(v, ["panic-path:3"]);
}

#[test]
fn test_items_are_masked() {
    let src = "
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
pub fn live(v: Option<u32>) -> u32 {
    v.expect(\"boom\")
}
";
    let v = lint_all(src);
    assert_eq!(v, ["panic-path:10"], "only the non-test expect fires");
}

#[test]
fn safety_comment_suppresses_missing_safety() {
    let ok = lint_all(
        "pub fn f(p: *const u32) -> u32 {\n    // SAFETY: caller contract.\n    unsafe { *p }\n}\n",
    );
    assert!(ok.is_empty(), "{ok:?}");
    let bad = lint_all("pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n");
    assert_eq!(bad, ["missing-safety:2"]);
}

#[test]
fn widening_casts_are_not_truncating() {
    let v = lint_all("pub fn f(x: u32, n: usize) -> (u64, usize, u32) {\n    (x as u64, x as usize, n as u32)\n}\n");
    assert_eq!(v, ["truncating-cast:2"], "only usize → u32 fires");
}

#[test]
fn vec_iteration_is_not_hash_iteration() {
    let v = lint_all(
        "use std::collections::HashMap;\npub fn f(v: &Vec<u32>, m: &HashMap<u32, u32>) -> usize {\n    let a = v.iter().count();\n    a + m.keys().count()\n}\n",
    );
    assert_eq!(v, ["unordered-iter:4"], "the Vec iter stays silent");
}

#[test]
fn rule_scopes_route_by_path() {
    assert!(RuleId::PanicPath.applies_to("crates/engine/src/plan.rs"));
    assert!(RuleId::PanicPath.applies_to("crates/service/src/lib.rs"));
    assert!(
        !RuleId::PanicPath.applies_to("crates/bench/src/lib.rs"),
        "the bench harness may panic freely"
    );
    assert!(RuleId::WallClock.applies_to("crates/core/src/solver/greedy.rs"));
    assert!(
        !RuleId::WallClock.applies_to("crates/service/src/lib.rs"),
        "the service layer measures wall-clock by design"
    );
    // missing-safety has an empty scope: every workspace file.
    assert!(RuleId::MissingSafety.applies_to("crates/bench/src/lib.rs"));
}
