//! End-to-end tests of the `adp-lint` binary over the fixture
//! workspaces in `tests/fixtures/`: every rule's fire path, allow path,
//! and baseline path, plus the CLI surface (`--list-rules`, `--allow`,
//! exit codes).

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_adp-lint"))
        .args(args)
        .output()
        .expect("spawn adp-lint")
}

fn lint_fixture(name: &str, extra: &[&str]) -> Output {
    let root = fixture(name);
    let root = root.to_str().expect("utf-8 fixture path");
    let mut args = vec!["--root", root, "--all-scopes"];
    args.extend_from_slice(extra);
    run(&args)
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn every_rule_fires_on_the_fire_fixture() {
    let out = lint_fixture("fire", &[]);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let text = stdout(&out);
    for (line, rule) in [
        ("src/bad.rs:8", "unordered-iter"),
        ("src/bad.rs:15", "truncating-cast"),
        ("src/bad.rs:19", "panic-path"),
        ("src/bad.rs:23", "missing-safety"),
        ("src/bad.rs:27", "wall-clock"),
    ] {
        assert!(
            text.contains(&format!("{line}: {rule}:")),
            "expected `{line}: {rule}:` in:\n{text}"
        );
    }
}

#[test]
fn casts_inside_the_hash_loop_are_also_reported() {
    // `*k as u64` widens (not flagged); `out.len() as u64` widens too.
    // Only the usize → u32 cast is a violation, and only once.
    let out = lint_fixture("fire", &[]);
    let text = stdout(&out);
    assert_eq!(
        text.matches("truncating-cast:").count(),
        1,
        "widening casts must not be flagged:\n{text}"
    );
}

#[test]
fn allow_annotations_suppress_with_reasons() {
    let out = lint_fixture("allowed", &[]);
    let text = stdout(&out);
    assert_eq!(
        out.status.code(),
        Some(0),
        "annotated fixture must be clean:\n{text}"
    );
    assert!(
        text.contains("4 allowed site(s)"),
        "the four annotated sites are counted:\n{text}"
    );
}

#[test]
fn disabling_every_rule_passes_the_fire_fixture() {
    let out = lint_fixture(
        "fire",
        &[
            "--allow",
            "unordered-iter",
            "--allow",
            "truncating-cast",
            "--allow",
            "panic-path",
            "--allow",
            "missing-safety",
            "--allow",
            "wall-clock",
        ],
    );
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
}

#[test]
fn bad_annotations_are_failures() {
    let out = lint_fixture("badallow", &[]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(
        text.contains("bad-allow: unknown rule `no-such-rule`"),
        "{text}"
    );
    assert!(
        text.contains("src/annotations.rs:10: bad-allow:") && text.contains("missing its"),
        "annotation without a reason is reported:\n{text}"
    );
    assert!(
        text.contains("src/annotations.rs:15: unused-allow:"),
        "annotation suppressing nothing is reported:\n{text}"
    );
}

#[test]
fn baselined_sites_pass_and_stale_entries_warn() {
    let root = fixture("baseline");
    let baseline = root.join("lint-baseline.txt");
    let out = run(&[
        "--root",
        root.to_str().expect("utf-8"),
        "--baseline",
        baseline.to_str().expect("utf-8"),
        "--all-scopes",
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(0), "{text}");
    assert!(text.contains("2 baselined"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        err.contains("stale baseline entry src/legacy.rs:99"),
        "stale entries warn on stderr:\n{err}"
    );
}

#[test]
fn new_violations_fail_despite_a_nonempty_baseline() {
    let root = fixture("baseline-fresh");
    let baseline = root.join("lint-baseline.txt");
    let out = run(&[
        "--root",
        root.to_str().expect("utf-8"),
        "--baseline",
        baseline.to_str().expect("utf-8"),
        "--all-scopes",
    ]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(1), "{text}");
    assert!(
        text.contains("src/fresh.rs:4: panic-path:"),
        "the un-baselined site still fails:\n{text}"
    );
    assert!(text.contains("2 baselined"), "{text}");
}

#[test]
fn list_rules_names_all_five() {
    let out = run(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for slug in [
        "unordered-iter",
        "truncating-cast",
        "panic-path",
        "missing-safety",
        "wall-clock",
    ] {
        assert!(text.contains(slug), "missing {slug} in:\n{text}");
    }
}

#[test]
fn unknown_arguments_are_usage_errors() {
    assert_eq!(run(&["--frobnicate"]).status.code(), Some(2));
    assert_eq!(run(&["--allow", "no-such-rule"]).status.code(), Some(2));
}
