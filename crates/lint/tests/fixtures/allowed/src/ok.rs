//! Fixture: the same five violation shapes as `fire`, each carrying a
//! reasoned annotation (or SAFETY comment). Must lint clean.
use std::collections::HashMap;
use std::time::Instant;

pub fn unordered(m: &HashMap<u32, u32>) -> u64 {
    let mut sum = 0u64;
    // adp-lint: allow(unordered-iter) -- summing with +; addition
    // commutes, so visit order cannot show in the result.
    for (k, v) in m.iter() {
        sum += u64::from(*k) + u64::from(*v);
    }
    sum
}

pub fn truncates(n: usize) -> u32 {
    // adp-lint: allow(truncating-cast) -- fixture invariant: callers
    // pass row counts of u32-dense stores.
    n as u32
}

pub fn panics(v: Option<u32>) -> u32 {
    // adp-lint: allow(panic-path) -- fixture invariant: v is Some by
    // construction.
    v.unwrap()
}

pub fn with_safety_comment(p: *const u32) -> u32 {
    // SAFETY: fixture contract — p points to a live, aligned u32.
    unsafe { *p }
}

pub fn reads_clock() -> Instant {
    // adp-lint: allow(wall-clock) -- deadline plumbing only.
    Instant::now()
}

#[cfg(test)]
mod tests {
    // Test code is masked: this unwrap must NOT be reported.
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
