//! Fixture: malformed annotations. Every annotation below is itself a
//! failure: unknown slug, missing reason, or suppressing nothing.

pub fn unknown_slug(v: Option<u32>) -> u32 {
    // adp-lint: allow(no-such-rule) -- reason present but slug bogus
    v.unwrap_or(0)
}

pub fn missing_reason(v: Option<u32>) -> u32 {
    // adp-lint: allow(panic-path)
    v.unwrap()
}

pub fn unused_annotation() -> u32 {
    // adp-lint: allow(panic-path) -- nothing here panics
    7
}
