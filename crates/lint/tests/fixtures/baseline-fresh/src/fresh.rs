//! Fixture: a NEW violation not in the baseline — must still fail.

pub fn fresh_panic(v: Option<u32>) -> u32 {
    v.expect("boom")
}
