//! Fixture: legacy violations accepted by a committed baseline file.

pub fn legacy_truncation(n: usize) -> u32 {
    n as u32
}

pub fn legacy_panic(v: Option<u32>) -> u32 {
    v.unwrap()
}
