//! Fixture: one unannotated violation of every rule. Linted with
//! `--all-scopes`; every site below must be reported.
use std::collections::HashMap;
use std::time::Instant;

pub fn unordered(m: &HashMap<u32, u32>) -> u64 {
    let mut out = Vec::new();
    for (k, v) in m.iter() {
        out.push(*k as u64 + *v as u64);
    }
    out.len() as u64
}

pub fn truncates(n: usize) -> u32 {
    n as u32
}

pub fn panics(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn no_safety_comment(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn reads_clock() -> Instant {
    Instant::now()
}
