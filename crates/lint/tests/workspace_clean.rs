//! The self-check: the workspace this linter ships in must itself lint
//! clean against the committed baseline. A change that introduces a
//! violation (or orphans an annotation) fails this test even before CI
//! runs the binary.

use adp_lint::{lint_root, parse_baseline, Baseline, Config};
use std::path::PathBuf;

#[test]
fn the_workspace_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let baseline = match std::fs::read_to_string(root.join("lint-baseline.txt")) {
        Ok(text) => parse_baseline(&text),
        Err(_) => Baseline::default(),
    };
    let report = lint_root(&root, &Config::default(), &baseline);
    assert!(
        report.files_checked > 50,
        "walk found only {} files — wrong root?",
        report.files_checked
    );
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.failing_lines().join("\n")
    );
}
