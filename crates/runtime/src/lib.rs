//! # adp-runtime
//!
//! A dependency-free, std-only parallel execution runtime for the ADP
//! workspace. The paper's evaluation (Figures 7–29) is embarrassingly
//! parallel — independent (solver, ρ, dataset) cells, and independent
//! candidate scoring inside the NP-hard solvers — but parallelism is
//! only usable if it is **deterministic**: a parallel run must return
//! byte-identical answers to the sequential path. Everything here is
//! built around that requirement.
//!
//! * [`ThreadPool`] — persistent `std::thread` workers with a scoped
//!   fork-join API ([`ThreadPool::scope`]) and panic propagation. A
//!   thread joining a scope *helps* execute queued jobs, so nested
//!   parallelism (a parallel solver inside a parallel sweep) cannot
//!   deadlock.
//! * [`ThreadPool::par_map`] / [`ThreadPool::par_chunks`] /
//!   [`ThreadPool::par_indexed`] — parallel maps with dynamic load
//!   balancing and deterministic, input-ordered results.
//! * [`parallel_sweep`] — the high-level entry point used by
//!   `adp-bench`: fan the (k, variant, trial) cells of a ρ-sweep out
//!   across workers, collecting results in cell order.
//! * [`global`] / [`configure_global`] — a process-wide pool sized by
//!   `--threads`, the `ADP_THREADS` environment variable, or the
//!   machine's available parallelism, in that order of precedence.
//!
//! The solvers in `adp-core` consult [`global`] and fall back to their
//! sequential loops whenever the pool has a single worker, so
//! single-threaded behavior is exactly the pre-runtime code path.

mod pool;

pub use pool::{Scope, ThreadPool};

use std::sync::OnceLock;

/// Fans the cells of a parameter sweep out across the pool's workers.
///
/// `run(i, &cells[i])` is invoked once per cell, cells are claimed
/// dynamically (long cells do not serialize short ones behind them), and
/// the result vector is in cell order — identical to the sequential
/// `cells.iter().enumerate().map(...)` loop.
pub fn parallel_sweep<C, R, F>(pool: &ThreadPool, cells: &[C], run: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(usize, &C) -> R + Sync,
{
    pool.par_indexed(cells.len(), |i| run(i, &cells[i]))
}

/// Hash-partitions the ids `0..n_items` into `n_parts` buckets using
/// `part_of`, fanning the classification out across the pool.
///
/// Two-phase and deterministic: workers first classify contiguous id
/// chunks independently, then each bucket is concatenated from the
/// per-chunk pieces **in chunk order**. Every bucket therefore lists its
/// ids in ascending order — exactly what a sequential
/// `for id in 0..n { buckets[part_of(id)].push(id) }` scan produces —
/// regardless of worker count or scheduling.
pub fn partition_ids<F>(
    pool: &ThreadPool,
    n_items: usize,
    n_parts: usize,
    part_of: F,
) -> Vec<Vec<u32>>
where
    F: Fn(u32) -> usize + Sync,
{
    assert!(n_parts > 0, "need at least one partition");
    assert!(n_items <= u32::MAX as usize, "ids must fit in u32");
    if n_items == 0 {
        return vec![Vec::new(); n_parts];
    }
    // Phase 1: classify chunks in parallel. Oversplit relative to the
    // worker count so dynamic claiming can balance skewed chunks.
    let n_chunks = (pool.threads() * 4).clamp(1, n_items);
    let chunk_size = n_items.div_ceil(n_chunks);
    let n_chunks = n_items.div_ceil(chunk_size);
    let per_chunk: Vec<Vec<Vec<u32>>> = pool.par_indexed(n_chunks, |c| {
        let lo = c * chunk_size;
        let hi = ((c + 1) * chunk_size).min(n_items);
        let mut buckets = vec![Vec::new(); n_parts];
        for id in lo..hi {
            // adp-lint: allow(truncating-cast) -- ids enumerate rows of a
            // u32-dense relation store; callers pass n ≤ u32::MAX.
            let id = id as u32;
            buckets[part_of(id)].push(id);
        }
        buckets
    });
    // Phase 2: concatenate per partition, in chunk order.
    pool.par_indexed(n_parts, |p| {
        let total: usize = per_chunk.iter().map(|c| c[p].len()).sum();
        let mut out = Vec::with_capacity(total);
        for c in &per_chunk {
            out.extend_from_slice(&c[p]);
        }
        out
    })
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// Strictly parses a worker-count string: a positive integer, nothing
/// else. Shared by the `--threads` flag and the `ADP_THREADS`
/// environment variable so the two can never drift apart.
pub fn parse_thread_count(v: &str) -> Result<usize, String> {
    match v.trim().parse::<usize>() {
        Ok(0) => Err("thread count must be at least 1, got 0".to_owned()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "thread count must be a positive integer, got {v:?}"
        )),
    }
}

/// The `ADP_THREADS` environment variable, strictly validated:
/// `Ok(None)` when unset, `Ok(Some(n))` for a positive integer, and an
/// error (never a silent fallback) for `0` or non-numeric values.
pub fn env_threads() -> Result<Option<usize>, String> {
    match std::env::var("ADP_THREADS") {
        Ok(v) => parse_thread_count(&v)
            .map(Some)
            .map_err(|e| format!("invalid ADP_THREADS: {e}")),
        Err(_) => Ok(None),
    }
}

/// Auto-detected worker count: [`std::thread::available_parallelism`],
/// falling back to 1. The single source of the detection policy for
/// every caller (the runtime default and the bench CLI).
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Default worker count for the global pool: `ADP_THREADS` if set,
/// otherwise [`auto_threads`]. An *invalid* `ADP_THREADS` is a hard
/// error (panic with the validation message), not a silent fallback —
/// binaries that can report it gracefully should call [`env_threads`]
/// themselves first (as `adp-bench` does).
pub fn default_threads() -> usize {
    match env_threads() {
        Ok(Some(n)) => n,
        Ok(None) => auto_threads(),
        Err(msg) => panic!("{msg}"),
    }
}

/// The error returned when [`configure_global`] loses the race against
/// first use of the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlreadyInitialized {
    /// The worker count the global pool was built with.
    pub threads: usize,
}

impl std::fmt::Display for AlreadyInitialized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "global thread pool already initialized with {} worker(s)",
            self.threads
        )
    }
}

impl std::error::Error for AlreadyInitialized {}

/// Sets the worker count for the process-wide pool, **building it
/// eagerly** if it does not exist yet. Call before the first [`global`]
/// use (e.g. from CLI parsing).
///
/// `Ok(())` guarantees the global pool has exactly `threads` workers
/// from this point on — even against a concurrent racing [`global`]
/// call, because both sides initialize through the same `OnceLock`
/// (the loser of the race observes the winner's finished pool).
/// Idempotent for the same count; a different count reports the actual
/// size via [`AlreadyInitialized`].
pub fn configure_global(threads: usize) -> Result<(), AlreadyInitialized> {
    let threads = threads.max(1);
    let pool = GLOBAL.get_or_init(|| ThreadPool::new(threads));
    if pool.threads() == threads {
        Ok(())
    } else {
        Err(AlreadyInitialized {
            threads: pool.threads(),
        })
    }
}

/// The process-wide pool, built on first use with the configured (or
/// default) worker count. Solvers treat a 1-worker pool as "run the
/// sequential path".
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_results_are_in_cell_order() {
        let pool = ThreadPool::new(4);
        let cells: Vec<u64> = (0..50).collect();
        let out = parallel_sweep(&pool, &cells, |i, &c| {
            assert_eq!(i as u64, c);
            c * 10
        });
        assert_eq!(out, (0..50).map(|c| c * 10).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_matches_sequential_loop_on_uneven_cells() {
        let pool = ThreadPool::new(3);
        // Cells of wildly different cost, like a ρ-sweep.
        let cells: Vec<u64> = vec![900, 1, 5, 400, 2, 777, 3, 10];
        let work = |c: u64| (0..c).map(|x| x ^ c).sum::<u64>();
        let seq: Vec<u64> = cells.iter().map(|&c| work(c)).collect();
        let par = parallel_sweep(&pool, &cells, |_, &c| work(c));
        assert_eq!(seq, par);
    }

    #[test]
    fn partition_ids_matches_sequential_scan() {
        let n = 10_000usize;
        let parts = 8;
        let part_of = |id: u32| (id.wrapping_mul(2654435761) as usize >> 16) % parts;
        let mut seq = vec![Vec::new(); parts];
        for id in 0..n as u32 {
            seq[part_of(id)].push(id);
        }
        for threads in [1, 2, 5] {
            let pool = ThreadPool::new(threads);
            let par = partition_ids(&pool, n, parts, part_of);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn partition_ids_handles_degenerate_shapes() {
        let pool = ThreadPool::new(3);
        assert_eq!(
            partition_ids(&pool, 0, 4, |_| 0),
            vec![Vec::<u32>::new(); 4]
        );
        // Fewer items than workers.
        let out = partition_ids(&pool, 2, 1, |_| 0);
        assert_eq!(out, vec![vec![0, 1]]);
        // Heavily skewed: everything in one bucket, still ascending.
        let out = partition_ids(&pool, 1000, 4, |_| 2);
        assert!(out[2].windows(2).all(|w| w[0] < w[1]));
        assert_eq!(out[2].len(), 1000);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    /// Regression: `ADP_THREADS=0` and non-numeric values used to fall
    /// back to auto-detection silently; the parser must reject them.
    #[test]
    fn thread_count_parser_rejects_zero_and_garbage() {
        assert_eq!(parse_thread_count("4"), Ok(4));
        assert_eq!(parse_thread_count(" 2 "), Ok(2));
        assert!(parse_thread_count("0").unwrap_err().contains("at least 1"));
        assert!(parse_thread_count("four")
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse_thread_count("-2")
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse_thread_count("").unwrap_err().contains("\"\""));
    }

    #[test]
    fn global_pool_configuration() {
        // First configure wins; the same value stays accepted afterwards,
        // a different value is rejected with the actual size.
        configure_global(2).unwrap();
        assert_eq!(global().threads(), 2);
        configure_global(2).unwrap();
        let err = configure_global(5).unwrap_err();
        assert_eq!(err.threads, 2);
        assert!(err.to_string().contains("2 worker"));
    }
}
