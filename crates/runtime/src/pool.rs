//! The worker pool: persistent `std::thread` workers fed by a shared
//! job queue, with a scoped fork-join API and panic propagation.
//!
//! Design constraints (see the crate docs):
//!
//! * **std-only** — `Mutex<VecDeque>` + `Condvar`, no external deps;
//! * **panic-safe** — a panicking job never poisons a worker; the first
//!   panic payload is re-raised on the thread that owns the scope;
//! * **nesting-safe** — a thread blocked in [`ThreadPool::scope`] *helps*
//!   by executing queued jobs **of that same scope** instead of
//!   sleeping, so solver code running on a worker may freely open
//!   nested scopes (e.g. parallel greedy scoring inside a parallel
//!   ρ-sweep) without deadlocking the pool: every scope's owner can
//!   always drain its own jobs. Helping never executes *unrelated*
//!   jobs, so time measured inside one task (a bench sweep cell, say)
//!   is never inflated by another task's work running inline.

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased unit of work.
type JobFn = Box<dyn FnOnce() + Send + 'static>;

/// A queued job, tagged with the scope it belongs to so joining
/// threads can help their own scope without running unrelated work.
struct Job {
    /// Identity of the owning scope (`ScopeState` address). Stable for
    /// the job's lifetime: the scope join waits for every job, so no
    /// job can outlive (or alias a recycled) `ScopeState`.
    scope: usize,
    run: JobFn,
}

/// First panic payload raised by a scope's jobs.
type PanicPayload = Box<dyn Any + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut s = self.state.lock().unwrap();
        s.jobs.push_back(job);
        drop(s);
        self.ready.notify_one();
    }

    /// Non-blocking pop of the oldest job belonging to `scope`, used by
    /// scope owners helping their own join along.
    fn try_pop_for(&self, scope: usize) -> Option<Job> {
        let mut s = self.state.lock().unwrap();
        let pos = s.jobs.iter().position(|j| j.scope == scope)?;
        s.jobs.remove(pos)
    }

    /// Blocking pop, used by workers. `None` means shutdown.
    fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(job) = s.jobs.pop_front() {
                return Some(job);
            }
            if s.shutdown {
                return None;
            }
            s = self.ready.wait(s).unwrap();
        }
    }

    fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.ready.notify_all();
    }
}

/// A persistent pool of worker threads executing fork-join workloads.
///
/// Workers are spawned once at construction and live until the pool is
/// dropped; submitting work through [`ThreadPool::scope`] or the
/// `par_*` helpers never spawns threads.
pub struct ThreadPool {
    queue: Arc<Queue>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue::new());
        let workers = (0..threads)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("adp-runtime-{i}"))
                    .spawn(move || {
                        // Jobs catch their own panics (see `Scope::spawn`),
                        // so a worker never unwinds.
                        while let Some(job) = queue.pop() {
                            (job.run)();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            queue,
            workers,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fork-join: runs `f` with a [`Scope`] handle on which borrowed
    /// (non-`'static`) jobs can be spawned, and returns only after every
    /// spawned job has finished.
    ///
    /// If any job panics, the first panic payload is re-raised here —
    /// after all jobs have completed, so borrows stay sound.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                sync: Mutex::new(ScopeSync {
                    pending: 0,
                    panic: None,
                }),
                done: Condvar::new(),
            }),
            env: PhantomData,
        };
        // The closure itself may panic after spawning jobs; those jobs
        // still borrow `'env` data, so join before propagating anything.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.join_scope(&scope.state);
        let job_panic = scope.state.sync.lock().unwrap().panic.take();
        match (result, job_panic) {
            (Ok(r), None) => r,
            (_, Some(p)) => resume_unwind(p),
            (Err(p), None) => resume_unwind(p),
        }
    }

    /// Waits until a scope's pending count reaches zero, executing that
    /// scope's still-queued jobs in the meantime. This keeps nested
    /// scopes on worker threads deadlock-free (every owner can drain
    /// its own jobs even when all workers are busy) without ever
    /// running *unrelated* work on the joining thread.
    fn join_scope(&self, state: &ScopeState) {
        let scope_id = state as *const ScopeState as usize;
        loop {
            if state.sync.lock().unwrap().pending == 0 {
                return;
            }
            if let Some(job) = self.queue.try_pop_for(scope_id) {
                (job.run)();
                continue;
            }
            // No queued job of this scope remains, and none can appear:
            // every spawn happened before the join started (`scope` runs
            // the closure to completion first), and a job cannot spawn
            // into its own scope — `Scope::spawn` requires `'env`-
            // outliving captures, which the scope's own stack reference
            // never satisfies. The pending jobs are executing on other
            // threads, so block until their completion notifies `done`
            // (the decrement and notify happen under this same mutex —
            // no wakeup can be lost). NOTE: if spawn is ever relaxed to
            // allow re-spawning into a running scope (as std's scoped
            // threads do), this wait must go back to polling the queue.
            let mut s = state.sync.lock().unwrap();
            while s.pending > 0 {
                s = state.done.wait(s).unwrap();
            }
            return;
        }
    }

    /// Applies `f` to `0..n`, in parallel, returning results in index
    /// order. Work is claimed dynamically (one index at a time) so
    /// unevenly sized items balance across workers; the output is
    /// nevertheless deterministic because slot `i` always holds `f(i)`.
    pub fn par_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if self.threads <= 1 || n == 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Slot<R>> = (0..n).map(|_| Slot(UnsafeCell::new(None))).collect();
        let drain = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let r = f(i);
            // SAFETY: index `i` was claimed by exactly one task via
            // `fetch_add`, so this slot has a unique writer; the scope
            // join synchronizes the writes with the reads below.
            unsafe { *slots[i].0.get() = Some(r) };
        };
        self.scope(|s| {
            for _ in 0..self.threads.min(n) {
                s.spawn(drain);
            }
        });
        slots
            .into_iter()
            .map(|c| c.0.into_inner().expect("all indexes claimed"))
            .collect()
    }

    /// Parallel map over a slice with deterministic (input-order) results.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_indexed(items.len(), |i| f(&items[i]))
    }

    /// Parallel map over contiguous chunks of at most `chunk` items,
    /// returning one result per chunk in slice order.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        let chunk = chunk.max(1);
        let n = items.len().div_ceil(chunk);
        self.par_indexed(n, |i| {
            let lo = i * chunk;
            let hi = (lo + chunk).min(items.len());
            f(&items[lo..hi])
        })
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.queue.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One result slot of [`ThreadPool::par_indexed`]. `Sync` is sound
/// because each slot has exactly one writer (the task that claimed its
/// index) and readers only run after the scope join.
struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: each slot is written by exactly one worker (the task that
// claimed its index) and read only after the scope join's acquire fence,
// so no two threads ever access a slot's cell concurrently; `T: Send`
// lets the value itself move from writer thread to reader thread.
unsafe impl<T: Send> Sync for Slot<T> {}

struct ScopeSync {
    pending: usize,
    panic: Option<PanicPayload>,
}

struct ScopeState {
    sync: Mutex<ScopeSync>,
    done: Condvar,
}

/// Handle for spawning borrowed jobs inside [`ThreadPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::scope`.
    env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawns a job that may borrow from the enclosing `'env`. The job
    /// runs on some pool worker (or on a thread helping while joining);
    /// the owning [`ThreadPool::scope`] call returns only after it
    /// completes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.sync.lock().unwrap().pending += 1;
        let scope_id = Arc::as_ptr(&self.state) as usize;
        let state = Arc::clone(&self.state);
        let run: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            let mut s = state.sync.lock().unwrap();
            if let Err(p) = result {
                s.panic.get_or_insert(p);
            }
            s.pending -= 1;
            if s.pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: `scope` joins every spawned job before returning (even
        // when the closure or a job panics), so the `'env` borrows
        // captured by `f` strictly outlive the job's execution. The
        // transmute only erases that lifetime; layout is identical.
        let run: JobFn = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(run)
        };
        self.pool.queue.push(Job {
            scope: scope_id,
            run,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_joins_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn par_indexed_is_ordered_and_complete() {
        let pool = ThreadPool::new(4);
        let out = pool.par_indexed(1000, |i| i * i);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let pool = ThreadPool::new(3);
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        let par = pool.par_map(&items, |x| x * 3 + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_chunks_covers_every_item_in_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<u32> = (0..103).collect();
        let chunks = pool.par_chunks(&items, 10, |c| c.to_vec());
        let flat: Vec<u32> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, items);
        // chunk = 0 is clamped, not a panic
        assert_eq!(pool.par_chunks(&items, 0, |c| c.len()).len(), items.len());
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let out = pool.par_indexed(10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn panics_propagate_to_the_scope_owner() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom from job"));
                s.spawn(|| {}); // sibling jobs still complete
            });
        }));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom from job");
        // The pool survives a panicking job.
        assert_eq!(pool.par_indexed(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn panic_in_par_indexed_closure_propagates() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_indexed(100, |i| {
                if i == 37 {
                    panic!("index 37");
                }
                i
            })
        }));
        assert!(result.is_err());
        assert_eq!(pool.par_indexed(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn nested_scopes_on_workers_do_not_deadlock() {
        // More nested scopes than workers: inner scopes can only finish
        // because joining threads help execute queued jobs.
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        let outer = pool.par_indexed(8, |i| {
            let inner = pool.par_indexed(8, |j| (i * 8 + j) as u64);
            inner.iter().sum::<u64>()
        });
        for v in outer {
            total.fetch_add(v, Ordering::Relaxed);
        }
        assert_eq!(total.load(Ordering::Relaxed), (0..64).sum::<u64>());
    }

    #[test]
    fn scope_returns_closure_value() {
        let pool = ThreadPool::new(2);
        let v = pool.scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn borrowed_data_is_visible_to_jobs() {
        let pool = ThreadPool::new(3);
        let data: Vec<u64> = (0..100).collect();
        let sums = Mutex::new(Vec::new());
        pool.scope(|s| {
            for c in data.chunks(25) {
                s.spawn(|| {
                    sums.lock().unwrap().push(c.iter().sum::<u64>());
                });
            }
        });
        let total: u64 = sums.lock().unwrap().iter().sum();
        assert_eq!(total, (0..100).sum::<u64>());
    }
}
