//! `adp-serverd` — the standalone ADP server daemon.
//!
//! ```text
//! adp-serverd [--addr HOST:PORT] [--store DIR] [--demo N] \
//!             [--max-conns N] [--smoke]
//! ```
//!
//! * `--addr` — bind address (default `127.0.0.1:7407`; `:0` picks an
//!   ephemeral port and prints it)
//! * `--store DIR` — durable mode: on first start, write an epoch-0
//!   snapshot of the database into `DIR` and log every effective
//!   mutation batch; on restart, recover from the snapshot + log and
//!   resume at the pre-crash epoch.
//! * `--demo N` — size of the built-in zipf demo database used when
//!   `--store` has no snapshot yet (default 20 000 rows).
//! * `--max-conns` — concurrent connection cap (default 64).
//! * `--smoke` — loopback self-test: start on an ephemeral port,
//!   exercise every opcode plus (with `--store`) a kill-and-recover
//!   cycle, then exit 0/1.
//!
//! The demo database is `adp_datagen::zipf_pair` with the standard
//! 3-relation path query, so the daemon is usable out of the box:
//!
//! ```text
//! adp-serverd --addr 127.0.0.1:7407 --store /var/lib/adp &
//! ```

use adp_server::client::Client;
use adp_server::persist::Store;
use adp_server::server::{Server, ServerConfig};
use adp_service::{Service, ServiceConfig, Target};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    store: Option<PathBuf>,
    demo_rows: usize,
    max_conns: usize,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7407".to_string(),
        store: None,
        demo_rows: 20_000,
        max_conns: 64,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--store" => args.store = Some(PathBuf::from(value("--store")?)),
            "--demo" => {
                args.demo_rows = value("--demo")?
                    .parse()
                    .map_err(|e| format!("--demo: {e}"))?;
            }
            "--max-conns" => {
                args.max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                return Err(
                    "usage: adp-serverd [--addr HOST:PORT] [--store DIR] [--demo N] \
                     [--max-conns N] [--smoke]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn demo_database(rows: usize) -> adp_engine::database::Database {
    let cfg = adp_datagen::zipf::ZipfConfig::new(rows.max(16), 0.5, 0xADB0_5EED, true);
    adp_datagen::zipf_pair(&cfg)
}

/// Builds the service and (in durable mode) its store: recover when a
/// snapshot exists, otherwise seed from the demo database.
fn open_service(args: &Args) -> Result<(Arc<Service>, Option<Store>), String> {
    let config = ServiceConfig::default();
    match &args.store {
        None => {
            let svc = Service::with_config(demo_database(args.demo_rows), config);
            Ok((Arc::new(svc), None))
        }
        Some(dir) => {
            if dir.join("snapshot.adp").exists() {
                let rec = Store::recover(dir, config).map_err(|e| format!("recover: {e}"))?;
                eprintln!(
                    "adp-serverd: recovered from {} at epoch {} ({} batch(es) replayed{})",
                    dir.display(),
                    rec.epoch,
                    rec.replayed,
                    if rec.truncated_tail {
                        ", torn tail truncated"
                    } else {
                        ""
                    }
                );
                Ok((Arc::new(rec.service), Some(rec.store)))
            } else {
                let db = demo_database(args.demo_rows);
                let store =
                    Store::init(dir, &db, &config).map_err(|e| format!("init store: {e}"))?;
                let svc = Service::with_config(db, config);
                eprintln!(
                    "adp-serverd: new store in {} (epoch 0 snapshot written)",
                    dir.display()
                );
                Ok((Arc::new(svc), Some(store)))
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        return match smoke(&args) {
            Ok(()) => {
                println!("adp-serverd: smoke OK");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("adp-serverd: smoke FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    let (svc, store) = match open_service(&args) {
        Ok(pair) => pair,
        Err(msg) => {
            eprintln!("adp-serverd: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let server_config = ServerConfig {
        max_connections: args.max_conns.max(1),
        ..ServerConfig::default()
    };
    let server = match Server::start(svc, store, args.addr.as_str(), server_config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("adp-serverd: bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("adp-serverd: listening on {}", server.addr());
    server.wait();
    server.stop();
    println!("adp-serverd: shut down");
    ExitCode::SUCCESS
}

/// Loopback self-test: every opcode once, then (with `--store`) a
/// kill-and-recover cycle that must resume at the pre-crash epoch.
fn smoke(args: &Args) -> Result<(), String> {
    let rows = args.demo_rows.min(2_000);
    let q_text = format!("{}", adp_datagen::queries::qpath());

    // Durable smoke runs against a scratch store under --store (or a
    // temp dir), so reruns start clean.
    let dir = args
        .store
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("adp-smoke-{}", std::process::id())));
    let _ = std::fs::remove_dir_all(&dir);

    let db = demo_database(rows);
    let config = ServiceConfig::default();
    let store = Store::init(&dir, &db, &config).map_err(|e| format!("init store: {e}"))?;
    let svc = Arc::new(Service::with_config(db, config.clone()));
    let server = Server::start(svc, Some(store), "127.0.0.1:0", ServerConfig::default())
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    c.ping().map_err(|e| format!("ping: {e}"))?;

    let solved = c
        .solve(&q_text, Target::Outputs(2), None)
        .map_err(|e| format!("solve: {e}"))?;
    if solved.outcome.achieved < 2 {
        return Err(format!("solve under-achieved: {:?}", solved.outcome));
    }

    let handle = c.prepare(&q_text).map_err(|e| format!("prepare: {e}"))?;
    let stmt_solved = c
        .solve_stmt(handle, Target::Outputs(2), Some(Duration::from_secs(5)))
        .map_err(|e| format!("solve_stmt: {e}"))?;
    if stmt_solved.outcome != solved.outcome {
        return Err("prepared solve disagrees with one-shot solve".to_string());
    }

    let sub = c
        .subscribe(handle, Target::Outputs(2), 16, None)
        .map_err(|e| format!("subscribe: {e}"))?;

    let e1 = c
        .mutate(true, &[("R2", 0), ("R2", 1)])
        .map_err(|e| format!("mutate: {e}"))?;
    if e1 == 0 {
        return Err("delete batch did not bump the epoch".to_string());
    }
    let mut saw_push = false;
    for _ in 0..20 {
        if let Some((id, _)) = c
            .poll_push(Duration::from_millis(250))
            .map_err(|e| format!("poll_push: {e}"))?
        {
            if id == sub {
                saw_push = true;
                break;
            }
        }
    }
    if !saw_push {
        return Err("no subscription push after an effective delete".to_string());
    }
    if !c
        .unsubscribe(sub)
        .map_err(|e| format!("unsubscribe: {e}"))?
    {
        return Err("unsubscribe did not find the live subscription".to_string());
    }

    let stats = c.stats().map_err(|e| format!("stats: {e}"))?;
    if stats.requests == 0 || stats.epoch_bumps == 0 {
        return Err(format!("implausible stats: {stats:?}"));
    }

    let pre_crash = c
        .solve(&q_text, Target::Outputs(2), None)
        .map_err(|e| format!("pre-crash solve: {e}"))?;

    // "Crash": stop the server without any graceful store finalization,
    // then recover from disk and compare answers at the same epoch.
    drop(c);
    server.stop();

    let rec = Store::recover(&dir, config).map_err(|e| format!("recover: {e}"))?;
    if rec.epoch != e1 {
        return Err(format!(
            "recovered epoch {} != pre-crash epoch {e1}",
            rec.epoch
        ));
    }
    let server = Server::start(
        Arc::new(rec.service),
        Some(rec.store),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .map_err(|e| format!("re-bind: {e}"))?;
    let mut c = Client::connect(server.addr()).map_err(|e| format!("reconnect: {e}"))?;
    let post_crash = c
        .solve(&q_text, Target::Outputs(2), None)
        .map_err(|e| format!("post-crash solve: {e}"))?;
    if post_crash.epoch != pre_crash.epoch || post_crash.outcome != pre_crash.outcome {
        return Err(format!(
            "recovery drift: pre {:?}@{} vs post {:?}@{}",
            pre_crash.outcome, pre_crash.epoch, post_crash.outcome, post_crash.epoch
        ));
    }

    c.shutdown_server().map_err(|e| format!("shutdown: {e}"))?;
    server.wait();
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
