//! A blocking client for the wire protocol, used by the loopback test
//! suites, the open-loop load generator, and the `--smoke` self-check.
//!
//! One [`Client`] owns one connection. Calls are synchronous: write the
//! request frame, read until the frame echoing its request id arrives.
//! Frames that arrive in between — pushed subscription updates and
//! their [`ErrorCode::Lagged`] warnings — are buffered and drained via
//! [`Client::poll_push`]. Request ids are odd and subscription ids even
//! (the server's convention), so the two can never collide.

use crate::protocol::{
    read_frame, resp, write_frame, ErrorCode, ProtoError, Request, Response, WireSolve, MAX_PAYLOAD,
};
use adp_service::{ServiceStats, Target, ViewUpdate};
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Proto(ProtoError),
    /// The server answered with a typed error frame.
    Server {
        /// Machine-readable kind.
        code: ErrorCode,
        /// Server-side detail.
        message: String,
    },
    /// The server answered with a frame of the wrong kind.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "client: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: wanted {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

impl ClientError {
    /// True for a typed [`ErrorCode::Overloaded`] shed.
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: ErrorCode::Overloaded,
                ..
            }
        )
    }
}

/// An event pulled off the push stream.
#[derive(Clone, Debug, PartialEq)]
pub enum PushEvent {
    /// A view diff for the subscription.
    Update(ViewUpdate),
    /// The server warned that this subscription dropped updates.
    Lagged(String),
}

/// One blocking protocol connection.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    /// Push frames that arrived while a call was waiting for its reply.
    pushes: VecDeque<(u64, PushEvent)>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_id: 1,
            pushes: VecDeque::new(),
        })
    }

    /// Sends `request` and blocks for its response, buffering any push
    /// frames that arrive first.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 2;
        let (opcode, payload) = request
            .encode()
            .map_err(|e| ClientError::Proto(ProtoError::Wire(e)))?;
        self.stream.set_read_timeout(None)?;
        write_frame(&mut self.stream, opcode, id, &payload)?;
        loop {
            let frame = match read_frame(&mut self.stream, MAX_PAYLOAD)? {
                Some(frame) => frame,
                None => {
                    return Err(ClientError::Proto(ProtoError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-call",
                    ))))
                }
            };
            let response = Response::decode(frame.opcode, &frame.payload)
                .map_err(|e| ClientError::Proto(ProtoError::Wire(e)))?;
            if frame.request_id == id {
                return match response {
                    Response::Error { code, message } => Err(ClientError::Server { code, message }),
                    other => Ok(other),
                };
            }
            self.buffer_push(frame.request_id, frame.opcode, response);
        }
    }

    fn buffer_push(&mut self, sub: u64, opcode: u8, response: Response) {
        match response {
            Response::Push(update) => self.pushes.push_back((sub, PushEvent::Update(update))),
            Response::Error {
                code: ErrorCode::Lagged,
                message,
            } if opcode == resp::ERROR => {
                self.pushes.push_back((sub, PushEvent::Lagged(message)));
            }
            // Anything else out-of-band is a protocol violation; drop
            // it rather than wedge the call.
            _ => {}
        }
    }

    /// Returns the next push event, waiting up to `timeout` for one to
    /// arrive on the socket. `Ok(None)` means the timeout elapsed.
    pub fn poll_push(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<(u64, PushEvent)>, ClientError> {
        if let Some(ev) = self.pushes.pop_front() {
            return Ok(Some(ev));
        }
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        match read_frame(&mut self.stream, MAX_PAYLOAD) {
            Ok(Some(frame)) => {
                let response = Response::decode(frame.opcode, &frame.payload)
                    .map_err(|e| ClientError::Proto(ProtoError::Wire(e)))?;
                self.buffer_push(frame.request_id, frame.opcode, response);
                Ok(self.pushes.pop_front())
            }
            Ok(None) => Ok(None),
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("pong")),
        }
    }

    /// One-shot solve.
    pub fn solve(
        &mut self,
        query: &str,
        target: Target,
        budget: Option<Duration>,
    ) -> Result<WireSolve, ClientError> {
        let request = Request::Solve {
            query: query.to_string(),
            target,
            budget_micros: budget.map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64),
        };
        match self.call(&request)? {
            Response::Solve(s) => Ok(s),
            _ => Err(ClientError::Unexpected("solve result")),
        }
    }

    /// Prepares a statement, returning its server-side handle.
    pub fn prepare(&mut self, query: &str) -> Result<u64, ClientError> {
        match self.call(&Request::Prepare {
            query: query.to_string(),
        })? {
            Response::Prepared { handle } => Ok(handle),
            _ => Err(ClientError::Unexpected("statement handle")),
        }
    }

    /// Solves a prepared statement.
    pub fn solve_stmt(
        &mut self,
        handle: u64,
        target: Target,
        budget: Option<Duration>,
    ) -> Result<WireSolve, ClientError> {
        let request = Request::SolveStmt {
            handle,
            target,
            budget_micros: budget.map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64),
        };
        match self.call(&request)? {
            Response::Solve(s) => Ok(s),
            _ => Err(ClientError::Unexpected("solve result")),
        }
    }

    /// Applies a delete (`delete = true`) or restore batch; returns the
    /// (possibly unchanged) epoch.
    pub fn mutate(&mut self, delete: bool, entries: &[(&str, u32)]) -> Result<u64, ClientError> {
        let request = Request::Mutate {
            delete,
            entries: entries
                .iter()
                .map(|(name, idx)| (name.to_string(), *idx))
                .collect(),
        };
        match self.call(&request)? {
            Response::Mutated { epoch } => Ok(epoch),
            _ => Err(ClientError::Unexpected("epoch")),
        }
    }

    /// Registers a subscription on a prepared statement; pushed frames
    /// are drained via [`poll_push`](Client::poll_push).
    pub fn subscribe(
        &mut self,
        handle: u64,
        target: Target,
        buffer: u32,
        projection: Option<Vec<u32>>,
    ) -> Result<u64, ClientError> {
        let request = Request::Subscribe {
            handle,
            target,
            buffer,
            projection,
        };
        match self.call(&request)? {
            Response::Subscribed { sub } => Ok(sub),
            _ => Err(ClientError::Unexpected("subscription id")),
        }
    }

    /// Cancels a subscription; true when the id was live.
    pub fn unsubscribe(&mut self, sub: u64) -> Result<bool, ClientError> {
        match self.call(&Request::Unsubscribe { sub })? {
            Response::Unsubscribed { found } => Ok(found),
            _ => Err(ClientError::Unexpected("unsubscribe ack")),
        }
    }

    /// Fetches the service counter snapshot.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::Unexpected("stats")),
        }
    }

    /// Asks the server process to shut down.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            _ => Err(ClientError::Unexpected("shutdown ack")),
        }
    }
}
