//! `adp-server`: a TCP front door for the ADP service.
//!
//! Three pieces, layered over [`adp_service::Service`]:
//!
//! - [`protocol`] — a length-prefixed, crc-checked binary wire format
//!   (magic `ADPW`) carrying solve, prepared-statement, mutation-batch,
//!   subscription, and stats traffic. Hand-rolled serialization on top
//!   of `adp_core::wire`; no external codec crates.
//! - [`server`] — a thread-per-connection TCP server with a bounded
//!   accept loop, per-request deadlines mapped onto
//!   `AdpOptions::deadline`, and a single mutation-ingest thread so
//!   writes never run on request threads. Overload and subscriber lag
//!   surface as typed error frames, not dropped connections.
//! - [`persist`] — an epoch-0 base snapshot plus a stable-id mutation
//!   log in a versioned, crc-checked binary format. Recovery replays
//!   the log through the ordinary O(Δ) apply path, so a restarted
//!   server resumes at the pre-crash epoch without re-ingesting base
//!   data.
//!
//! [`client`] is a small blocking client used by the test suites, the
//! open-loop load generator, and `adp-serverd --smoke`.

pub mod client;
pub mod persist;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, PushEvent};
pub use persist::{PersistError, Recovery, Store};
pub use protocol::{ErrorCode, ProtoError, Request, Response, WireSolve};
pub use server::{Server, ServerConfig};
